"""Tests for the graph substrate and its metrics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import Graph, edge_cut, graph_from_sparse, graph_imbalance
from repro.graph.metrics import graph_part_weights, validate_graph_partition


def path_graph(n: int) -> Graph:
    rows = list(range(n - 1)) + list(range(1, n))
    cols = list(range(1, n)) + list(range(n - 1))
    a = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
    return graph_from_sparse(a)


class TestGraph:
    def test_counts(self):
        g = path_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 4

    def test_neighbors_and_degree(self):
        g = path_graph(4)
        assert sorted(g.neighbors(1).tolist()) == [0, 2]
        assert g.degree(0) == 1
        assert g.degree(1) == 2

    def test_diagonal_ignored(self):
        a = sp.eye(3, format="csr") + sp.csr_matrix(
            ([1.0, 1.0], ([0, 1], [1, 0])), shape=(3, 3)
        )
        g = graph_from_sparse(a)
        assert g.num_edges == 1

    def test_vertex_weights(self):
        a = sp.csr_matrix(([1.0, 1.0], ([0, 1], [1, 0])), shape=(2, 2))
        g = graph_from_sparse(a, vwgt=[3, 4])
        assert g.total_vertex_weight() == 7

    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError, match="not symmetric"):
            Graph(2, [0, 1, 1], [1])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loops"):
            Graph(2, [0, 1, 1], [0], adjwgt=[1])

    def test_bad_adjacency_index(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [0, 1, 2], [5, 0])

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            graph_from_sparse(sp.csr_matrix((2, 3)))


class TestMetrics:
    def test_edge_cut(self):
        g = path_graph(4)
        assert edge_cut(g, np.array([0, 0, 1, 1])) == 1
        assert edge_cut(g, np.array([0, 1, 0, 1])) == 3
        assert edge_cut(g, np.array([0, 0, 0, 0])) == 0

    def test_edge_cut_weighted(self):
        a = sp.csr_matrix(
            ([2.0, 2.0, 5.0, 5.0], ([0, 1, 1, 2], [1, 0, 2, 1])), shape=(3, 3)
        )
        g = graph_from_sparse(a)
        assert edge_cut(g, np.array([0, 0, 1])) == 5
        assert edge_cut(g, np.array([0, 1, 1])) == 2

    def test_part_weights_and_imbalance(self):
        g = path_graph(4)
        part = np.array([0, 0, 0, 1])
        assert graph_part_weights(g, part, 2).tolist() == [3, 1]
        assert graph_imbalance(g, part, 2) == pytest.approx(0.5)

    def test_validate(self):
        g = path_graph(3)
        validate_graph_partition(g, np.array([0, 1, 0]), 2)
        with pytest.raises(ValueError):
            validate_graph_partition(g, np.array([0, 2, 0]), 2)
        with pytest.raises(ValueError):
            validate_graph_partition(g, np.array([0, 1]), 2)
