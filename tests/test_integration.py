"""Integration tests: the paper's experimental shape, end to end.

These run the real pipeline (generators -> models -> partitioners ->
simulator) on small instances and assert the qualitative results of the
evaluation section — the E2 'shape' contract of DESIGN.md.
"""

import numpy as np
import pytest

from repro import (
    decompose_1d_columnnet,
    decompose_1d_graph,
    decompose_2d_finegrain,
    simulate_spmv,
)
from repro.matrix import load_collection_matrix
from repro.spmv import communication_stats

K = 16
SCALE = 0.08


@pytest.fixture(scope="module")
def volumes():
    """Total volumes of the three models on two structured matrices."""
    out = {}
    for name in ("finan512", "mod2"):
        a = load_collection_matrix(name, scale=SCALE, seed=0)
        row = {}
        for label, fn in (
            ("graph", decompose_1d_graph),
            ("hypergraph1d", decompose_1d_columnnet),
            ("finegrain2d", decompose_2d_finegrain),
        ):
            dec, info = fn(a, K, seed=0)
            stats = communication_stats(dec)
            row[label] = (stats, info, dec, a)
        out[name] = row
    return out


class TestTable2Shape:
    @pytest.mark.parametrize("name", ["finan512", "mod2"])
    def test_finegrain_wins_on_volume(self, volumes, name):
        """The paper's headline: 2D fine-grain needs the least volume."""
        row = volumes[name]
        v2d = row["finegrain2d"][0].total_volume
        v1d = row["hypergraph1d"][0].total_volume
        vg = row["graph"][0].total_volume
        assert v2d <= v1d
        assert v2d < vg

    @pytest.mark.parametrize("name", ["finan512", "mod2"])
    def test_hypergraph_cutsizes_are_exact_volumes(self, volumes, name):
        row = volumes[name]
        for model in ("hypergraph1d", "finegrain2d"):
            stats, info, _, _ = row[model]
            assert stats.total_volume == info.cutsize

    @pytest.mark.parametrize("name", ["finan512", "mod2"])
    def test_message_bounds(self, volumes, name):
        row = volumes[name]
        assert row["graph"][0].max_messages <= K - 1
        assert row["hypergraph1d"][0].max_messages <= K - 1
        assert row["finegrain2d"][0].max_messages <= 2 * (K - 1)

    @pytest.mark.parametrize("name", ["finan512", "mod2"])
    def test_balance_epsilon(self, volumes, name):
        """'percent load imbalance values are below 3%' (§4) plus rounding
        slack from the small scaled instances."""
        for model in ("graph", "hypergraph1d", "finegrain2d"):
            stats = volumes[name][model][0]
            assert stats.load_imbalance <= 0.08

    @pytest.mark.parametrize("name", ["finan512", "mod2"])
    def test_numerics_all_models(self, volumes, name):
        for model in ("graph", "hypergraph1d", "finegrain2d"):
            stats, info, dec, a = volumes[name][model]
            x = np.random.default_rng(7).standard_normal(a.shape[0])
            assert np.allclose(simulate_spmv(dec, x).y, a @ x)
