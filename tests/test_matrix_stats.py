"""Tests for matrix structural statistics (Table 1 columns)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrix import matrix_stats


class TestMatrixStats:
    def test_known_matrix(self):
        a = sp.csr_matrix(np.array([
            [1.0, 2.0, 0.0],
            [0.0, 3.0, 0.0],
            [4.0, 5.0, 6.0],
        ]))
        s = matrix_stats(a, "t")
        assert s.rows == s.cols == 3
        assert s.nnz == 6
        assert s.avg_per_rowcol == pytest.approx(2.0)
        assert s.min_per_rowcol == 1   # row 1 / col 2 have 1
        assert s.max_per_rowcol == 3   # row 2 and col 1 have 3
        assert s.nnz_diag == 3

    def test_min_over_both_axes(self):
        # column 0 empty in this matrix? no — make col 1 sparse
        a = sp.csr_matrix(np.array([
            [1.0, 0.0],
            [1.0, 1.0],
        ]))
        s = matrix_stats(a)
        assert s.min_per_rowcol == 1
        assert s.max_per_rowcol == 2

    def test_explicit_zeros_eliminated(self):
        a = sp.csr_matrix((np.array([1.0, 0.0]), (np.array([0, 1]), np.array([0, 1]))), shape=(2, 2))
        s = matrix_stats(a)
        assert s.nnz == 1
        assert s.min_per_rowcol == 0  # row/col 1 became empty

    def test_rectangular(self):
        a = sp.csr_matrix(np.ones((2, 4)))
        s = matrix_stats(a)
        assert s.rows == 2 and s.cols == 4
        assert s.nnz_diag == 0  # diag undefined off-square, reported as 0
        assert s.min_per_rowcol == 2  # columns have 2 each
        assert s.max_per_rowcol == 4  # rows have 4 each

    def test_table1_row_format(self):
        a = sp.eye(3, format="csr")
        row = matrix_stats(a, "eye3").table1_row()
        assert row.startswith("eye3")
        assert "1.00" in row
