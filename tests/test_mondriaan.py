"""Tests for the Mondriaan-style recursive 2D decomposition."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.models import decompose_2d_checkerboard, decompose_2d_mondriaan
from repro.spmv import communication_stats, simulate_spmv


class TestMondriaan:
    def test_valid_and_symmetric(self, small_sparse_matrix):
        dec = decompose_2d_mondriaan(small_sparse_matrix, 4, seed=0)
        assert dec.k == 4
        assert dec.is_symmetric()
        assert dec.nnz == small_sparse_matrix.nnz

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_arbitrary_k(self, small_sparse_matrix, k):
        dec = decompose_2d_mondriaan(small_sparse_matrix, k, seed=0)
        assert dec.nnz_owner.max() < k
        x = np.ones(30)
        assert np.allclose(simulate_spmv(dec, x).y, small_sparse_matrix @ x)

    def test_balance(self, small_sparse_matrix):
        dec = decompose_2d_mondriaan(small_sparse_matrix, 4, seed=0)
        assert dec.load_imbalance() <= 0.25  # small instance slack

    def test_deterministic(self, small_sparse_matrix):
        d1 = decompose_2d_mondriaan(small_sparse_matrix, 4, seed=3)
        d2 = decompose_2d_mondriaan(small_sparse_matrix, 4, seed=3)
        assert np.array_equal(d1.nnz_owner, d2.nnz_owner)
        assert np.array_equal(d1.x_owner, d2.x_owner)

    def test_try_both_no_worse_than_rowwise_only(self):
        rng = np.random.default_rng(0)
        a = sp.random(120, 120, density=0.06, random_state=rng, format="csr")
        both = communication_stats(
            decompose_2d_mondriaan(a, 8, seed=1, try_both=True)
        ).total_volume
        row_only = communication_stats(
            decompose_2d_mondriaan(a, 8, seed=1, try_both=False)
        ).total_volume
        # direction choice is a per-split greedy, so only a soft dominance
        # is expected; allow a small tolerance
        assert both <= row_only * 1.15

    def test_beats_checkerboard_on_hidden_blocks(self):
        blocks = [sp.random(40, 40, density=0.2, random_state=i, format="csr")
                  for i in range(4)]
        a = sp.csr_matrix(sp.block_diag(blocks) + sp.eye(160))
        perm = np.random.default_rng(0).permutation(160)
        a = sp.csr_matrix(a[perm][:, perm])
        mon = communication_stats(decompose_2d_mondriaan(a, 4, seed=0))
        chk = communication_stats(decompose_2d_checkerboard(a, 4))
        assert mon.total_volume < chk.total_volume

    def test_zero_diagonal_vector_assignment(self):
        # matrix with empty diagonal: vector owners still well-defined
        a = sp.csr_matrix(
            (np.ones(4), ([0, 1, 2, 3], [1, 2, 3, 0])), shape=(4, 4)
        )
        dec = decompose_2d_mondriaan(a, 2, seed=0)
        assert dec.x_owner.min() >= 0 and dec.x_owner.max() < 2
        x = np.arange(4.0)
        assert np.allclose(simulate_spmv(dec, x).y, a @ x)

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            decompose_2d_mondriaan(sp.csr_matrix((2, 3)), 2)
