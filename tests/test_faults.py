"""Fault injection: every degradation path fires, and the bits never move.

The graceful-degradation promises of PRs 2–3 (inline recompute, pickle
fallback, backend fallback, guaranteed unlink) are asserted here by
actually making each failure happen via :mod:`repro.verify.faults` and
checking (a) the documented fallback telemetry counter incremented and
(b) the partition is bit-identical to the healthy run.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.api import decompose
from repro.hypergraph import Hypergraph
from repro.partitioner import PartitionerConfig, partition_multistart
from repro.telemetry import use_recorder
from repro.verify import faults
from repro.verify.faults import FaultInjected, FaultPlan, FaultSpec, inject


@pytest.fixture(autouse=True)
def _isolate_faults(monkeypatch):
    """No plan leaks between tests, in either direction."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def matrix() -> sp.csr_matrix:
    rng = np.random.default_rng(2)
    a = sp.random(60, 60, density=0.1, random_state=rng, format="lil")
    a.setdiag(rng.uniform(0.5, 1.0, 60))
    return sp.csr_matrix(a)


def _tree_cfg(**kw) -> PartitionerConfig:
    return PartitionerConfig(
        tree_parallel=True, n_workers=2, start_backend="thread",
        spawn_min_vertices=0, **kw,
    )


# ----------------------------------------------------------------------
# plan parsing
# ----------------------------------------------------------------------
class TestPlanParsing:
    @pytest.mark.parametrize(
        "text", ["tree.task:crash", "shm.attach:oserror@all",
                 "tree.task:sleep0.5@2", "pool.submit:crash@3"]
    )
    def test_spec_round_trips(self, text):
        assert FaultSpec.parse(text).spec_string() == text

    def test_default_hit_is_first(self):
        s = FaultSpec.parse("tree.task:crash")
        assert s.hit == 1 and s.action == "crash"

    def test_plan_round_trip(self):
        plan = FaultPlan.parse("tree.task:crash, shm.create:oserror@all")
        assert len(plan.specs) == 2
        assert plan.spec_string() == "tree.task:crash,shm.create:oserror@all"

    @pytest.mark.parametrize(
        "bad", ["no-colon", "mars.base:crash", "tree.task:explode",
                "tree.task:crash@0", "tree.task:sleep-1"]
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_plan_fires_on_chosen_hit_only(self):
        plan = FaultPlan.parse("tree.task:crash@2")
        plan.trip("tree.task")  # hit 1: silent
        with pytest.raises(FaultInjected):
            plan.trip("tree.task")  # hit 2: fires
        plan.trip("tree.task")  # hit 3: silent again
        assert plan.count("tree.task") == 3
        assert plan.fired == [("tree.task", "crash", 2)]

    def test_inject_restores_previous_plan(self):
        outer = FaultPlan.parse("tree.task:crash@99")
        with inject(outer):
            with inject("shm.create:oserror@99") as inner:
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_env_plan_and_cache_invalidation(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "shm.unlink:oserror@99")
        p1 = faults.active_plan()
        assert p1 is faults.active_plan()  # cached: counters persist
        monkeypatch.setenv(faults.ENV_VAR, "shm.unlink:oserror@98")
        assert faults.active_plan() is not p1  # changed text re-parses

    def test_trip_is_noop_when_inactive(self):
        faults.trip("tree.task")  # must not raise


# ----------------------------------------------------------------------
# tree-parallel recursion: crash, submit failure, timeout
# ----------------------------------------------------------------------
def test_tree_task_crash_recomputes_inline(matrix):
    ref = decompose(matrix, 4, method="finegrain", seed=3, config=_tree_cfg())
    with use_recorder() as rec, inject("tree.task:crash") as plan:
        res = decompose(matrix, 4, method="finegrain", seed=3, config=_tree_cfg())
    assert plan.fired == [("tree.task", "crash", 1)]
    assert rec.counter_totals().get("tree.task_failures", 0) >= 1
    assert np.array_equal(res.part, ref.part)
    assert res.cutsize == ref.cutsize


def test_pool_submit_failure_breaks_pool_and_runs_inline(matrix):
    ref = decompose(matrix, 4, method="finegrain", seed=3, config=_tree_cfg())
    with use_recorder() as rec, inject("pool.submit:oserror") as plan:
        res = decompose(matrix, 4, method="finegrain", seed=3, config=_tree_cfg())
    assert plan.fired == [("pool.submit", "oserror", 1)]
    assert rec.counter_totals().get("tree.pool_fallbacks", 0) >= 1
    assert np.array_equal(res.part, ref.part)


def test_tree_task_timeout_cancels_and_recomputes(matrix):
    ref = decompose(matrix, 4, method="finegrain", seed=3, config=_tree_cfg())
    cfg = _tree_cfg(tree_task_timeout=0.05)
    with use_recorder() as rec, inject("tree.task:sleep0.5") as plan:
        res = decompose(matrix, 4, method="finegrain", seed=3, config=cfg)
    assert plan.fired == [("tree.task", "sleep", 1)]
    assert rec.counter_totals().get("tree.task_timeouts", 0) >= 1
    assert np.array_equal(res.part, ref.part)


def test_tree_task_timeout_config_validation():
    with pytest.raises(ValueError, match="tree_task_timeout"):
        PartitionerConfig(tree_task_timeout=0.0)
    with pytest.raises(ValueError, match="tree_task_timeout"):
        PartitionerConfig(tree_task_timeout=-1.0)
    assert PartitionerConfig(tree_task_timeout=None).tree_task_timeout is None


def test_tree_task_timeout_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_TREE_TASK_TIMEOUT", "2.5")
    assert PartitionerConfig().tree_task_timeout == 2.5
    monkeypatch.setenv("REPRO_TREE_TASK_TIMEOUT", "not-a-number")
    assert PartitionerConfig().tree_task_timeout is None


# ----------------------------------------------------------------------
# engine: worker crash, shm create/attach/unlink failures
# ----------------------------------------------------------------------
def _engine_cfg(backend: str, **kw) -> PartitionerConfig:
    return PartitionerConfig(
        n_starts=2, n_workers=2, start_backend=backend, **kw
    )


def test_engine_start_crash_falls_back_to_serial(matrix):
    ref = decompose(matrix, 3, method="finegrain", seed=1,
                    config=_engine_cfg("serial"))
    with use_recorder() as rec, inject("engine.start:crash@all") as plan:
        res = decompose(matrix, 3, method="finegrain", seed=1,
                        config=_engine_cfg("thread"))
    assert plan.count("engine.start") >= 1
    assert rec.counter_totals().get("engine.backend_fallbacks", 0) >= 1
    assert np.array_equal(res.part, ref.part)


def test_shm_create_failure_falls_back_to_pickle(matrix):
    ref = decompose(matrix, 3, method="finegrain", seed=1,
                    config=_engine_cfg("serial"))
    with use_recorder() as rec, inject("shm.create:oserror") as plan:
        res = decompose(matrix, 3, method="finegrain", seed=1,
                        config=_engine_cfg("process"))
    assert plan.fired == [("shm.create", "oserror", 1)]
    assert rec.counter_totals().get("engine.shm_fallbacks", 0) >= 1
    assert np.array_equal(res.part, ref.part)


def _segment_gone(meta: dict) -> bool:
    try:
        Hypergraph.from_shm(meta)
    except FileNotFoundError:
        return True
    return False


def test_shm_attach_failure_in_workers_falls_back_and_unlinks(
    matrix, monkeypatch
):
    """Workers crash attaching the segment (plan travels via the
    environment); the engine must fall back to another backend AND the
    orphaned segment must still be unlinked."""
    from repro.core.finegrain import build_finegrain_model

    h = build_finegrain_model(matrix, consistency=True).hypergraph
    ref = partition_multistart(h, 3, _engine_cfg("serial"), seed=1)

    handles = []
    real_to_shm = Hypergraph.to_shm

    def tracking_to_shm(self):
        handle = real_to_shm(self)
        handles.append(handle)
        return handle

    monkeypatch.setattr(Hypergraph, "to_shm", tracking_to_shm)
    monkeypatch.setenv(faults.ENV_VAR, "shm.attach:crash@all")
    with use_recorder() as rec:
        res = partition_multistart(h, 3, _engine_cfg("process"), seed=1)
    # disarm before probing: the probe itself attaches (and would trip)
    monkeypatch.delenv(faults.ENV_VAR)
    faults.reset()
    assert handles, "process backend did not attempt shm transport"
    assert rec.counter_totals().get("engine.backend_fallbacks", 0) >= 1
    assert all(_segment_gone(hd.meta) for hd in handles)
    assert np.array_equal(res.part, ref.part)


def test_shm_unlink_failure_is_absorbed(matrix):
    """An unlink OSError must not fail a succeeded close(); it is counted,
    and the segment can still be reclaimed afterwards."""
    from repro.core.finegrain import build_finegrain_model

    h = build_finegrain_model(matrix, consistency=True).hypergraph
    handle = h.to_shm()
    meta = handle.meta
    with use_recorder() as rec, inject("shm.unlink:oserror") as plan:
        handle.close()  # must not raise
    assert plan.fired == [("shm.unlink", "oserror", 1)]
    assert rec.counter_totals().get("shm.unlink_errors", 0) == 1
    # close() is idempotent and the handle is spent; reclaim manually so
    # the injected leak does not outlive the test
    h2 = Hypergraph.from_shm(meta)
    h2._views["_shm_handle"].close()
    h2._views["_shm_handle"].unlink()
    assert _segment_gone(meta)


def test_engine_result_unchanged_when_no_fault_matches(matrix):
    """An armed plan whose hits never come due is completely invisible."""
    ref = decompose(matrix, 3, method="finegrain", seed=1,
                    config=_engine_cfg("serial"))
    with inject("engine.start:crash@999") as plan:
        res = decompose(matrix, 3, method="finegrain", seed=1,
                        config=_engine_cfg("serial"))
    assert plan.fired == []
    assert np.array_equal(res.part, ref.part)
