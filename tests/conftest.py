"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph, hypergraph_from_netlists

# CI runs shared machines with unpredictable scheduling: deadlines are
# disabled and the example budget bounded so property tests stay fast and
# flake-free.  Select with HYPOTHESIS_PROFILE=repro (the CI default).
settings.register_profile("repro", max_examples=30, deadline=None, derandomize=True)
settings.register_profile("thorough", max_examples=300, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


# ----------------------------------------------------------------------
# deterministic example structures
# ----------------------------------------------------------------------
@pytest.fixture
def tiny_hypergraph() -> Hypergraph:
    """4 vertices, 3 nets: a path of nets [0,1] [1,2,3] [2,3]."""
    return hypergraph_from_netlists(4, [[0, 1], [1, 2, 3], [2, 3]])


@pytest.fixture
def paper_figure1_matrix() -> sp.csr_matrix:
    """A small matrix realizing the dependency relations of Figure 1.

    Row i = 1 has nonzeros in columns h=0, i=1, k=2, j=3 (row net of size
    4); column j = 3 has nonzeros in rows i=1, j=3, l=4 (column net of size
    3) — the exact shapes discussed in §3.
    """
    rows = [1, 1, 1, 1, 3, 4, 0, 2]
    cols = [0, 1, 2, 3, 3, 3, 0, 2]
    vals = np.arange(1.0, len(rows) + 1)
    return sp.csr_matrix((vals, (rows, cols)), shape=(5, 5))


@pytest.fixture
def small_sparse_matrix() -> sp.csr_matrix:
    """A reproducible 30x30 random sparse matrix with full diagonal."""
    rng = np.random.default_rng(42)
    a = sp.random(30, 30, density=0.12, random_state=rng, format="lil")
    a.setdiag(rng.uniform(0.5, 1.0, 30))
    return sp.csr_matrix(a)


def random_hypergraph(
    rng: np.random.Generator,
    nv: int,
    nn: int,
    max_net_size: int = 6,
    weighted: bool = False,
) -> Hypergraph:
    """Random test hypergraph with non-trivial nets."""
    nets = []
    for _ in range(nn):
        size = int(rng.integers(1, min(max_net_size, nv) + 1))
        nets.append(sorted(rng.choice(nv, size=size, replace=False).tolist()))
    weights = rng.integers(1, 4, size=nv) if weighted else None
    costs = rng.integers(1, 3, size=nn) if weighted else None
    return hypergraph_from_netlists(nv, nets, vertex_weights=weights, net_costs=costs)


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def hypergraphs(
    draw,
    max_vertices: int = 12,
    max_nets: int = 10,
    weighted: bool = False,
    min_net_size: int = 1,
):
    """Strategy producing small valid hypergraphs.

    ``min_net_size=0`` additionally generates empty nets — legal in both
    file formats and a historical source of round-trip bugs.
    """
    nv = draw(st.integers(min_value=1, max_value=max_vertices))
    nn = draw(st.integers(min_value=0, max_value=max_nets))
    nets = []
    for _ in range(nn):
        size = draw(st.integers(min_value=min_net_size, max_value=nv))
        pins = draw(
            st.lists(
                st.integers(min_value=0, max_value=nv - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        nets.append(pins)
    weights = None
    costs = None
    if weighted:
        weights = draw(
            st.lists(st.integers(0, 5), min_size=nv, max_size=nv)
        )
        costs = draw(
            st.lists(st.integers(0, 4), min_size=nn, max_size=nn)
        )
    return hypergraph_from_netlists(nv, nets, vertex_weights=weights, net_costs=costs)


@st.composite
def sparse_square_matrices(draw, max_n: int = 14, ensure_some_nnz: bool = True):
    """Strategy producing small square scipy.sparse matrices."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    density = draw(st.floats(min_value=0.05, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=density, random_state=rng, format="csr")
    if ensure_some_nnz and a.nnz == 0:
        a = sp.csr_matrix(([1.0], ([0], [min(n - 1, 0)])), shape=(n, n))
    return a


@st.composite
def partitions_of(draw, nv: int, k: int):
    """Strategy producing an arbitrary part vector for nv vertices."""
    return np.asarray(
        draw(st.lists(st.integers(0, k - 1), min_size=nv, max_size=nv)),
        dtype=np.int64,
    )
