"""Tests for partition quality metrics (Eqs. 1-3 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    Partition,
    compute_part_weights,
    cutsize_connectivity,
    cutsize_cutnet,
    external_nets,
    hypergraph_from_netlists,
    imbalance,
    is_balanced,
    net_connectivities,
    validate_partition,
)
from repro.hypergraph.partition import net_connectivity_sets
from tests.conftest import hypergraphs


def brute_force_connectivity(h, part):
    """Reference implementation: per-net set of parts."""
    return [len({int(part[v]) for v in h.pins_of(j)}) for j in range(h.num_nets)]


class TestConnectivity:
    def test_hand_example(self, tiny_hypergraph):
        part = np.array([0, 0, 1, 1])
        lam = net_connectivities(tiny_hypergraph, part)
        assert lam.tolist() == [1, 2, 1]

    def test_three_parts(self):
        h = hypergraph_from_netlists(6, [[0, 2, 4], [1, 3, 5], [0, 1]])
        part = np.array([0, 0, 1, 1, 2, 2])
        assert net_connectivities(h, part).tolist() == [3, 3, 1]

    def test_connectivity_sets(self, tiny_hypergraph):
        part = np.array([0, 1, 1, 2])
        sets = net_connectivity_sets(tiny_hypergraph, part)
        assert [s.tolist() for s in sets] == [[0, 1], [1, 2], [1, 2]]

    @given(hypergraphs(), st.integers(1, 4), st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_matches_bruteforce(self, h, k, data):
        part = np.asarray(
            data.draw(
                st.lists(st.integers(0, k - 1), min_size=h.num_vertices,
                         max_size=h.num_vertices)
            ),
            dtype=np.int64,
        )
        assert net_connectivities(h, part).tolist() == brute_force_connectivity(h, part)


class TestCutsizes:
    def test_eq2_and_eq3_on_example(self):
        # one net over 3 parts: Eq2 charges cost once, Eq3 charges twice
        h = hypergraph_from_netlists(3, [[0, 1, 2]], net_costs=[5])
        part = np.array([0, 1, 2])
        assert cutsize_cutnet(h, part) == 5
        assert cutsize_connectivity(h, part) == 10

    def test_uncut_is_free(self, tiny_hypergraph):
        part = np.zeros(4, dtype=int)
        assert cutsize_cutnet(tiny_hypergraph, part) == 0
        assert cutsize_connectivity(tiny_hypergraph, part) == 0

    def test_external_nets(self, tiny_hypergraph):
        part = np.array([0, 0, 1, 1])
        assert external_nets(tiny_hypergraph, part).tolist() == [1]

    @given(hypergraphs(weighted=True), st.integers(2, 4), st.data())
    @settings(max_examples=50, deadline=None)
    def test_property_eq3_dominates_eq2(self, h, k, data):
        part = np.asarray(
            data.draw(
                st.lists(st.integers(0, k - 1), min_size=h.num_vertices,
                         max_size=h.num_vertices)
            ),
            dtype=np.int64,
        )
        assert cutsize_connectivity(h, part) >= cutsize_cutnet(h, part)

    @given(hypergraphs(), st.integers(2, 4), st.data())
    @settings(max_examples=50, deadline=None)
    def test_property_eq3_bounded_by_k_minus_1(self, h, k, data):
        part = np.asarray(
            data.draw(
                st.lists(st.integers(0, k - 1), min_size=h.num_vertices,
                         max_size=h.num_vertices)
            ),
            dtype=np.int64,
        )
        # with unit costs: each net contributes at most (k-1)
        assert cutsize_connectivity(h, part) <= h.num_nets * (k - 1)


class TestBalance:
    def test_part_weights(self, tiny_hypergraph):
        part = np.array([0, 0, 1, 1])
        assert compute_part_weights(tiny_hypergraph, part, 2).tolist() == [2, 2]

    def test_imbalance_perfect(self, tiny_hypergraph):
        part = np.array([0, 0, 1, 1])
        assert imbalance(tiny_hypergraph, part, 2) == 0.0

    def test_imbalance_skewed(self, tiny_hypergraph):
        part = np.array([0, 0, 0, 1])
        # weights (3, 1), avg 2 -> (3-2)/2 = 0.5
        assert imbalance(tiny_hypergraph, part, 2) == pytest.approx(0.5)

    def test_is_balanced_eq1(self, tiny_hypergraph):
        part = np.array([0, 0, 0, 1])
        assert is_balanced(tiny_hypergraph, part, 2, epsilon=0.5)
        assert not is_balanced(tiny_hypergraph, part, 2, epsilon=0.4)

    def test_zero_weight_vertices_free(self):
        h = hypergraph_from_netlists(3, [[0, 1, 2]], vertex_weights=[1, 1, 0])
        part = np.array([0, 1, 1])
        assert imbalance(h, part, 2) == 0.0


class TestValidatePartition:
    def test_ok(self, tiny_hypergraph):
        validate_partition(tiny_hypergraph, np.array([0, 1, 0, 1]), 2)

    def test_wrong_length(self, tiny_hypergraph):
        with pytest.raises(ValueError, match="wrong length"):
            validate_partition(tiny_hypergraph, np.array([0, 1]), 2)

    def test_out_of_range(self, tiny_hypergraph):
        with pytest.raises(ValueError, match="out of range"):
            validate_partition(tiny_hypergraph, np.array([0, 1, 2, 0]), 2)

    def test_fixed_violation(self):
        h = hypergraph_from_netlists(2, [[0, 1]], fixed=[1, -1])
        with pytest.raises(ValueError, match="fixed"):
            validate_partition(h, np.array([0, 0]), 2)
        validate_partition(h, np.array([1, 0]), 2)


class TestPartitionObject:
    def test_bind_and_metrics(self, tiny_hypergraph):
        p = Partition(np.array([0, 0, 1, 1]), 2).bind(tiny_hypergraph)
        assert p.cutsize == 1
        assert p.cutsize_cutnet == 1
        assert p.imbalance == 0.0
        assert p.part_weights.tolist() == [2, 2]
        assert p.is_balanced(0.0)

    def test_unbound_raises(self):
        p = Partition(np.array([0, 1]), 2)
        with pytest.raises(RuntimeError, match="not bound"):
            _ = p.cutsize
