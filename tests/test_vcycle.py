"""Tests for V-cycle (restricted-coarsening) refinement."""

import numpy as np
import pytest

from repro._util import as_rng
from repro.hypergraph import cutsize_connectivity
from repro.partitioner.coarsen import coarsen_restricted
from repro.partitioner.config import PartitionerConfig
from repro.partitioner import partition_hypergraph
from repro.partitioner.bisect import multilevel_bisect
from tests.conftest import random_hypergraph


class TestCoarsenRestricted:
    def test_partition_projects_exactly(self):
        """Restricted clusters never mix parts, so the projected coarse
        partition has the same cutsize as the fine one."""
        h = random_hypergraph(as_rng(0), 120, 90)
        part = as_rng(1).integers(0, 2, size=120)
        cfg = PartitionerConfig(coarsen_to=20)
        levels, coarsest, _, coarse_part = coarsen_restricted(
            h, cfg, as_rng(2), part
        )
        assert cutsize_connectivity(coarsest, coarse_part) == cutsize_connectivity(
            h, part
        )
        # project back down and compare
        p = coarse_part
        for level in reversed(levels):
            p = p[level.cmap]
        assert np.array_equal(p, part)

    def test_weight_preserved(self):
        h = random_hypergraph(as_rng(3), 100, 80, weighted=True)
        part = as_rng(4).integers(0, 2, size=100)
        cfg = PartitionerConfig(coarsen_to=20)
        _, coarsest, _, _ = coarsen_restricted(h, cfg, as_rng(5), part)
        assert coarsest.total_vertex_weight() == h.total_vertex_weight()

    def test_fixed_carried(self):
        h = random_hypergraph(as_rng(6), 80, 60)
        part = as_rng(7).integers(0, 2, size=80)
        fixed = np.full(80, -1, dtype=np.int64)
        fixed[:5] = part[:5]
        cfg = PartitionerConfig(coarsen_to=15)
        _, coarsest, cfix, cpart = coarsen_restricted(
            h, cfg, as_rng(8), part, fixed
        )
        assert cfix is not None
        locked = cfix >= 0
        assert np.array_equal(cpart[locked], cfix[locked])


class TestVcycleBisect:
    def test_vcycles_never_worse(self):
        """Per-bisection, adding V-cycles cannot increase the cut."""
        for seed in range(6):
            h = random_hypergraph(as_rng(seed), 150, 120)
            t = h.total_vertex_weight() // 2
            cuts = {}
            for vc in (0, 2):
                cfg = PartitionerConfig(n_vcycles=vc)
                _, cut = multilevel_bisect(
                    h, (t, h.total_vertex_weight() - t), 0.05, cfg, as_rng(seed)
                )
                cuts[vc] = cut
            assert cuts[2] <= cuts[0]

    def test_kway_with_vcycles_valid(self):
        h = random_hypergraph(as_rng(20), 100, 80)
        cfg = PartitionerConfig(n_vcycles=2)
        res = partition_hypergraph(h, 4, config=cfg, seed=0)
        assert res.cutsize == cutsize_connectivity(h, res.part)
        assert sum(res.bisection_cuts) == res.cutsize

    def test_zero_vcycles_config(self):
        h = random_hypergraph(as_rng(21), 60, 40)
        res = partition_hypergraph(
            h, 4, config=PartitionerConfig(n_vcycles=0), seed=0
        )
        assert res.cutsize == cutsize_connectivity(h, res.part)

    def test_negative_vcycles_rejected(self):
        with pytest.raises(ValueError, match="n_vcycles"):
            PartitionerConfig(n_vcycles=-1)
