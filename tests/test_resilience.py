"""The resilient execution runtime (:mod:`repro.partitioner.resilience`).

Every recovery path is driven deterministically through the fault-injection
sites (``engine.start``, ``worker.heartbeat``, ``checkpoint.write``) or by
killing real worker processes, and every recovered run is asserted
bit-identical to its failure-free counterpart — resilience must never move
the bits.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.partitioner import PartitionerConfig, partition_hypergraph, partition_multistart
from repro.partitioner import resilience
from repro.partitioner.resilience import (
    CheckpointStore,
    Deadline,
    backoff_delay,
    sweep_fingerprint,
)
from repro.telemetry import TelemetryRecorder, use_recorder
from repro.verify.faults import FaultInjected, inject

from .conftest import random_hypergraph


@pytest.fixture
def medium_hypergraph():
    """Big enough that a start takes measurable time on every backend."""
    return random_hypergraph(np.random.default_rng(11), nv=120, nn=400)


@pytest.fixture
def engine_cfg():
    return PartitionerConfig(n_starts=4, backoff_base=0.001, backoff_cap=0.01)


def run(h, cfg, seed=0, k=2):
    rec = TelemetryRecorder()
    with use_recorder(rec):
        res = partition_multistart(h, k, cfg, seed=seed)
    return res, rec.counter_totals()


# ----------------------------------------------------------------------
# backoff policy
# ----------------------------------------------------------------------
class TestBackoff:
    def test_grows_exponentially_and_caps(self):
        cfg = PartitionerConfig(backoff_base=0.1, backoff_cap=0.5)
        delays = [backoff_delay(cfg, a, salt=1) for a in range(8)]
        # jitter is in [0.5, 1.0] of the raw delay, so the cap bounds all
        assert all(0 < d <= 0.5 for d in delays)
        assert delays[2] > delays[0]

    def test_deterministic(self):
        cfg = PartitionerConfig(backoff_base=0.1)
        assert backoff_delay(cfg, 3, salt=7) == backoff_delay(cfg, 3, salt=7)
        assert backoff_delay(cfg, 3, salt=7) != backoff_delay(cfg, 3, salt=8)

    def test_zero_base_means_no_delay(self):
        cfg = PartitionerConfig(backoff_base=0.0)
        assert backoff_delay(cfg, 5, salt=1) == 0.0


class TestDeadline:
    def test_expiry(self):
        d = Deadline(1e-9)
        time.sleep(0.001)
        assert d.expired()
        assert not Deadline(60.0).expired()

    def test_from_config(self):
        assert Deadline.from_config(PartitionerConfig()) is None
        d = Deadline.from_config(PartitionerConfig(deadline=5.0))
        assert d is not None and d.budget == 5.0


# ----------------------------------------------------------------------
# retry with backoff: bit-identity against the failure-free run
# ----------------------------------------------------------------------
class TestRetry:
    def test_serial_retry_is_bit_identical(self, medium_hypergraph, engine_cfg):
        golden, _ = run(medium_hypergraph, engine_cfg)
        with inject("engine.start:crash@1") as plan:
            res, counters = run(medium_hypergraph, engine_cfg.with_(max_retries=2))
        assert plan.fired
        assert counters["engine.start_retries"] == 1
        assert np.array_equal(res.part, golden.part)
        assert res.cutsize == golden.cutsize
        # the retried start reports its retry count in the stats
        assert [s.retries for s in res.start_stats] == [1, 0, 0, 0]

    def test_thread_retry_is_bit_identical(self, medium_hypergraph, engine_cfg):
        golden, _ = run(medium_hypergraph, engine_cfg)
        cfg = engine_cfg.with_(max_retries=1, n_workers=2, start_backend="thread")
        with inject("engine.start:crash@2"):
            res, counters = run(medium_hypergraph, cfg)
        assert counters["engine.start_retries"] == 1
        assert np.array_equal(res.part, golden.part)

    def test_no_retries_preserves_crash_behavior(self, medium_hypergraph, engine_cfg):
        # max_retries=0 is the pre-resilience contract: serial crash raises
        with inject("engine.start:crash@1"):
            with pytest.raises(FaultInjected):
                run(medium_hypergraph, engine_cfg)

    def test_retries_exhausted_raises(self, medium_hypergraph, engine_cfg):
        with inject("engine.start:crash@all"):
            with pytest.raises(FaultInjected):
                run(medium_hypergraph, engine_cfg.with_(max_retries=2))

    def test_thread_crash_all_still_falls_back_to_serial(
        self, medium_hypergraph, engine_cfg
    ):
        # the fallback chain survives underneath the retry layer: when the
        # retries are exhausted on the thread backend the engine still
        # degrades to the in-process serial path, which does not re-trip
        golden, _ = run(medium_hypergraph, engine_cfg)
        cfg = engine_cfg.with_(max_retries=1, n_workers=2, start_backend="thread")
        with inject("engine.start:crash@all"):
            res, counters = run(medium_hypergraph, cfg)
        assert counters["engine.backend_fallbacks"] >= 1
        assert np.array_equal(res.part, golden.part)

    def test_subtree_retry_is_bit_identical(self):
        h = random_hypergraph(np.random.default_rng(5), nv=300, nn=900)
        cfg = PartitionerConfig(
            tree_parallel=True, n_workers=4, spawn_min_vertices=8,
            start_backend="thread",
        )
        golden = partition_hypergraph(h, 8, cfg, seed=3)
        rec = TelemetryRecorder()
        with use_recorder(rec), inject("tree.task:crash@1"):
            res = partition_hypergraph(
                h, 8, cfg.with_(max_retries=2, backoff_base=0.001), seed=3
            )
        counters = rec.counter_totals()
        assert counters["tree.task_failures"] >= 1
        assert counters["tree.task_retries"] >= 1
        assert np.array_equal(res.part, golden.part)


# ----------------------------------------------------------------------
# deadline budget: graceful degradation, never an exception
# ----------------------------------------------------------------------
class TestDeadlineBudget:
    def test_expired_deadline_still_runs_one_start(
        self, medium_hypergraph, engine_cfg
    ):
        res, counters = run(medium_hypergraph, engine_cfg.with_(deadline=1e-9))
        assert res.degraded
        assert "deadline" in res.degraded_reason
        assert len(res.start_stats) >= 1
        assert counters["engine.deadline_hits"] == 1
        assert counters["engine.degraded_runs"] == 1

    def test_generous_deadline_changes_nothing(self, medium_hypergraph, engine_cfg):
        golden, _ = run(medium_hypergraph, engine_cfg)
        res, counters = run(medium_hypergraph, engine_cfg.with_(deadline=3600.0))
        assert not res.degraded
        assert res.degraded_reason is None
        assert len(res.start_stats) == engine_cfg.n_starts
        assert "engine.deadline_hits" not in counters
        assert np.array_equal(res.part, golden.part)

    def test_degraded_winner_matches_completed_prefix(
        self, medium_hypergraph, engine_cfg
    ):
        # whatever completed before the deadline, the winner is the best
        # of it by the engine's total order
        res, _ = run(medium_hypergraph, engine_cfg.with_(deadline=1e-9))
        best = min(
            res.start_stats,
            key=lambda s: (max(0.0, s.imbalance - engine_cfg.epsilon), s.cutsize, s.start),
        )
        assert res.cutsize == best.cutsize

    def test_deadline_propagates_through_decompose(self):
        import scipy.sparse as sp

        from repro.core.api import decompose

        a = sp.random(60, 60, density=0.1, format="csr", random_state=0)
        res = decompose(a, 4, n_starts=4, seed=0, deadline=1e-9)
        assert res.degraded and res.degraded_reason
        assert "[degraded]" in res.summary()


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_interrupted_sweep_resumes_exactly_the_remainder(
        self, tmp_path, engine_cfg
    ):
        h = random_hypergraph(np.random.default_rng(11), nv=120, nn=400)
        cfg = engine_cfg.with_(
            n_starts=8, checkpoint_path=str(tmp_path / "sweep.ndjson")
        )
        golden, _ = run(h, engine_cfg.with_(n_starts=8))

        # the sweep dies at start 4 (index 3): exactly 3 starts recorded
        with inject("engine.start:crash@4"):
            with pytest.raises(FaultInjected):
                run(h, cfg)
        with pytest.warns(UserWarning, match="different sweep"):
            store = CheckpointStore.open(cfg.checkpoint_path, "ignore", 0.03, 8, 2)
        assert not store.completed
        # fingerprint mismatch loads nothing; re-open with the real one
        rng_probe = np.random.default_rng(0)
        fp = sweep_fingerprint(h, 2, cfg, rng_probe)
        store = CheckpointStore.open(cfg.checkpoint_path, fp, 0.03, 8, 2)
        assert sorted(store.completed) == [0, 1, 2]

        # the rerun completes exactly the 5 remaining starts ...
        res, counters = run(h, cfg)
        assert counters["engine.starts_resumed"] == 3
        assert counters["engine.starts"] == 8
        # ... and the result is bit-identical to the uninterrupted sweep
        assert np.array_equal(res.part, golden.part)
        assert res.cutsize == golden.cutsize
        assert [s.start for s in res.start_stats] == list(range(8))

    def test_completed_checkpoint_skips_everything(self, tmp_path, engine_cfg):
        h = random_hypergraph(np.random.default_rng(2), nv=60, nn=150)
        cfg = engine_cfg.with_(checkpoint_path=str(tmp_path / "done.ndjson"))
        first, _ = run(h, cfg)
        res, counters = run(h, cfg)
        assert counters["engine.starts_resumed"] == engine_cfg.n_starts
        assert np.array_equal(res.part, first.part)
        assert res.cutsize == first.cutsize

    def test_config_change_invalidates_checkpoint(self, tmp_path, engine_cfg):
        h = random_hypergraph(np.random.default_rng(2), nv=60, nn=150)
        path = str(tmp_path / "sweep.ndjson")
        run(h, engine_cfg.with_(checkpoint_path=path))
        # a different epsilon is a different sweep: refuse to mix results
        with pytest.warns(UserWarning, match="different sweep"):
            _, counters = run(h, engine_cfg.with_(checkpoint_path=path, epsilon=0.1))
        assert "engine.starts_resumed" not in counters
        assert counters["engine.checkpoint_mismatches"] == 1

    def test_different_seed_invalidates_checkpoint(self, tmp_path, engine_cfg):
        h = random_hypergraph(np.random.default_rng(2), nv=60, nn=150)
        path = str(tmp_path / "sweep.ndjson")
        run(h, engine_cfg.with_(checkpoint_path=path), seed=0)
        with pytest.warns(UserWarning, match="different sweep"):
            _, counters = run(h, engine_cfg.with_(checkpoint_path=path), seed=1)
        assert "engine.starts_resumed" not in counters

    def test_write_failure_never_fails_the_run(self, tmp_path, engine_cfg):
        h = random_hypergraph(np.random.default_rng(2), nv=60, nn=150)
        golden, _ = run(h, engine_cfg)
        cfg = engine_cfg.with_(checkpoint_path=str(tmp_path / "c.ndjson"))
        with inject("checkpoint.write:crash@all"):
            res, counters = run(h, cfg)
        assert counters["checkpoint.write_errors"] == engine_cfg.n_starts
        assert np.array_equal(res.part, golden.part)
        # the atomic protocol leaves no half-written file behind
        assert not os.path.exists(cfg.checkpoint_path)
        assert not os.path.exists(cfg.checkpoint_path + ".tmp")

    def test_orphaned_tmp_is_swept_on_open(self, tmp_path):
        # a crash between tmp-write and os.replace leaves sweep.ndjson.tmp
        # behind; opening the store must clean it up (and say so)
        path = str(tmp_path / "sweep.ndjson")
        with open(path + ".tmp", "w") as f:
            f.write('{"kind": "start"')  # a torn half-write
        rec = TelemetryRecorder()
        with use_recorder(rec):
            CheckpointStore.open(path, "fp", 0.03, 4, 2)
        assert not os.path.exists(path + ".tmp")
        assert rec.counter_totals().get("checkpoint.tmp_swept") == 1
        # nothing to sweep: quiet no-op
        assert CheckpointStore.sweep_stale_tmp(path) is False

    def test_corrupt_checkpoint_starts_fresh(self, tmp_path, engine_cfg):
        h = random_hypergraph(np.random.default_rng(2), nv=60, nn=150)
        path = tmp_path / "junk.ndjson"
        path.write_text("not json at all\n")
        with pytest.warns(UserWarning, match="unreadable"):
            res, _ = run(h, engine_cfg.with_(checkpoint_path=str(path)))
        golden, _ = run(h, engine_cfg)
        assert np.array_equal(res.part, golden.part)

    def test_file_is_always_a_complete_snapshot(self, tmp_path, engine_cfg):
        import json

        h = random_hypergraph(np.random.default_rng(2), nv=60, nn=150)
        path = str(tmp_path / "sweep.ndjson")
        res, _ = run(h, engine_cfg.with_(checkpoint_path=path))
        with open(path) as f:
            lines = [json.loads(s) for s in f if s.strip()]
        assert lines[0]["kind"] == "header"
        starts = [r for r in lines if r["kind"] == "start"]
        best = [r for r in lines if r["kind"] == "best"]
        assert len(starts) == engine_cfg.n_starts
        assert len(best) == 1
        assert best[0]["cutsize"] == res.cutsize


# ----------------------------------------------------------------------
# worker supervision (process backend)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSupervision:
    def test_killed_worker_is_respawned_and_bits_hold(self):
        h = random_hypergraph(np.random.default_rng(8), nv=300, nn=2500)
        cfg = PartitionerConfig(
            n_starts=6, n_workers=2, start_backend="process",
            heartbeat_interval=0.05, heartbeat_timeout=10.0,
        )
        golden = partition_multistart(
            h, 2, cfg.with_(start_backend="serial", n_workers=1), seed=0
        )

        def killer():
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                pids = list(resilience._LAST_WORKER_PIDS)
                if pids:
                    try:
                        os.kill(pids[0], signal.SIGKILL)
                        return
                    except ProcessLookupError:
                        pass
                time.sleep(0.05)

        rec = TelemetryRecorder()
        t = threading.Thread(target=killer)
        t.start()
        try:
            with use_recorder(rec):
                res = partition_multistart(h, 2, cfg, seed=0)
        finally:
            t.join()
        counters = rec.counter_totals()
        # the dead worker was respawned in place — no backend fallback
        assert counters["engine.worker_restarts"] >= 1
        assert "engine.backend_fallbacks" not in counters
        assert np.array_equal(res.part, golden.part)
        assert res.cutsize == golden.cutsize

    def test_dead_heartbeat_is_presumed_hung_and_recycled(self, monkeypatch):
        # every supervised worker's heartbeat dies instantly and every
        # start is slowed past the timeout: the supervisor recycles
        # workers until the restart budget runs out, then the backend
        # chain degrades — still bit-identical
        h = random_hypergraph(np.random.default_rng(11), nv=120, nn=400)
        cfg = PartitionerConfig(
            n_starts=3, n_workers=2, start_backend="process",
            heartbeat_interval=0.05, heartbeat_timeout=0.4,
            max_retries=1, backoff_base=0.001,
        )
        golden = partition_multistart(
            h, 2, cfg.with_(start_backend="serial", n_workers=1), seed=0
        )
        monkeypatch.setenv(
            "REPRO_FAULTS", "worker.heartbeat:crash@1,engine.start:sleep1.0@all"
        )
        rec = TelemetryRecorder()
        with use_recorder(rec):
            res = partition_multistart(h, 2, cfg, seed=0)
        counters = rec.counter_totals()
        assert counters["engine.worker_restarts"] >= 1
        assert counters["engine.backend_fallbacks"] >= 1
        assert np.array_equal(res.part, golden.part)

    def test_supervised_process_backend_matches_serial(self, medium_hypergraph):
        cfg = PartitionerConfig(
            n_starts=4, n_workers=2, start_backend="process", supervise=True
        )
        golden = partition_multistart(
            medium_hypergraph, 2, cfg.with_(start_backend="serial", n_workers=1),
            seed=0,
        )
        res = partition_multistart(medium_hypergraph, 2, cfg, seed=0)
        assert np.array_equal(res.part, golden.part)

    def test_unsupervised_process_backend_still_works(self, medium_hypergraph):
        cfg = PartitionerConfig(
            n_starts=4, n_workers=2, start_backend="process", supervise=False
        )
        golden = partition_multistart(
            medium_hypergraph, 2, cfg.with_(start_backend="serial", n_workers=1),
            seed=0,
        )
        res = partition_multistart(medium_hypergraph, 2, cfg, seed=0)
        assert np.array_equal(res.part, golden.part)


# ----------------------------------------------------------------------
# parallel SpMV shutdown hardening
# ----------------------------------------------------------------------
class TestSpmvShutdown:
    def test_hung_rank_raises_named_timeout(self, small_sparse_matrix, monkeypatch):
        from repro.core.api import decompose
        from repro.spmv import parallel as par

        res = decompose(small_sparse_matrix, 3, seed=0)
        x = np.random.default_rng(1).standard_normal(small_sparse_matrix.shape[1])

        real_worker = par._worker

        def wedged(rank, plan_data, local, inboxes, result_queue):
            if rank == 1:
                time.sleep(3600)
            real_worker(rank, plan_data, local, inboxes, result_queue)

        monkeypatch.setattr(par, "_worker", wedged)
        rec = TelemetryRecorder()
        with use_recorder(rec):
            # rank 1 never posts its expand fragments, so the whole
            # collective stalls — the error must name the missing ranks
            with pytest.raises(TimeoutError, match=r"missing ranks \[[012]"):
                par.parallel_spmv(res.decomposition, x, timeout=1.0)
        # the wedged rank was force-stopped, not leaked
        assert rec.counter_totals()["spmv.worker_killed"] >= 1

    def test_clean_run_kills_nothing(self, small_sparse_matrix):
        from repro.core.api import decompose
        from repro.spmv.parallel import parallel_spmv

        res = decompose(small_sparse_matrix, 3, seed=0)
        x = np.random.default_rng(1).standard_normal(small_sparse_matrix.shape[1])
        rec = TelemetryRecorder()
        with use_recorder(rec):
            y = parallel_spmv(res.decomposition, x)
        assert np.allclose(y, small_sparse_matrix @ x)
        assert "spmv.worker_killed" not in rec.counter_totals()


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCliFlags:
    def test_partition_checkpoint_resume_round_trip(self, tmp_path, capsys):
        import scipy.sparse as sp

        from repro.cli import main
        from repro.matrix.io import write_matrix_market

        a = sp.random(50, 50, density=0.1, format="csr", random_state=3)
        mtx = tmp_path / "m.mtx"
        write_matrix_market(a, mtx)
        ck = tmp_path / "sweep.ndjson"
        args = [
            "partition", str(mtx), "-k", "3", "--starts", "3",
            "--retries", "2", "--checkpoint", str(ck),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert ck.exists()
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert first == second  # resumed sweep reports identical quality

    def test_fresh_run_clears_stale_checkpoint(self, tmp_path):
        import scipy.sparse as sp

        from repro.cli import main
        from repro.matrix.io import write_matrix_market

        a = sp.random(40, 40, density=0.1, format="csr", random_state=3)
        mtx = tmp_path / "m.mtx"
        write_matrix_market(a, mtx)
        ck = tmp_path / "sweep.ndjson"
        ck.write_text("stale\n")
        assert main(
            ["partition", str(mtx), "-k", "2", "--starts", "2",
             "--checkpoint", str(ck)]
        ) == 0
        assert "stale" not in ck.read_text()
