"""Tests for the SpMV simulator — including the paper's central theorem.

Invariants 1-3 and 7 of DESIGN.md live here:

* cutsize (Eq. 3) of a consistent fine-grain partition == total simulated
  communication volume, for *any* partition (not only optimized ones);
* column-net cutsize == expand volume, row-net cutsize == fold volume;
* 1D rowwise decompositions have zero fold volume and their column-net
  model cutsize equals the expand volume;
* the distributed multiply reproduces the serial product.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_finegrain_model,
    decomposition_from_finegrain,
    decomposition_from_row_partition,
)
from repro.hypergraph.partition import net_connectivities
from repro.models import build_columnnet_model
from repro.spmv import communication_stats, simulate_spmv
from tests.conftest import sparse_square_matrices


def finegrain_dec(a, k, seed):
    model = build_finegrain_model(a)
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, size=model.hypergraph.num_vertices)
    return model, part, decomposition_from_finegrain(model, part, k)


class TestVolumeTheorem:
    """The validity claim of §3, checked exactly."""

    @given(sparse_square_matrices(), st.integers(2, 5), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_property_cutsize_equals_volume(self, a, k, seed):
        model, part, dec = finegrain_dec(a, k, seed)
        h = model.hypergraph
        lam = net_connectivities(h, part)
        cutsize = int((lam[lam > 0] - 1).sum())
        stats = communication_stats(dec)
        assert stats.total_volume == cutsize

    @given(sparse_square_matrices(), st.integers(2, 5), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_expand_is_colnets_fold_is_rownets(self, a, k, seed):
        model, part, dec = finegrain_dec(a, k, seed)
        h = model.hypergraph
        lam = net_connectivities(h, part)
        m = model.m
        row_cut = int((lam[:m][lam[:m] > 0] - 1).sum())
        col_cut = int((lam[m:][lam[m:] > 0] - 1).sum())
        stats = communication_stats(dec)
        assert stats.fold_volume == row_cut
        assert stats.expand_volume == col_cut

    def test_hand_example(self):
        # 2x2 dense matrix, nonzeros split so each net is cut
        a = sp.csr_matrix(np.array([[1.0, 2.0], [3.0, 4.0]]))
        model = build_finegrain_model(a)
        # vertices in row-major COO order: (0,0) (0,1) (1,0) (1,1)
        part = np.array([0, 1, 1, 0])
        dec = decomposition_from_finegrain(model, part, 2)
        stats = communication_stats(dec)
        # every row net and column net has both parts: cutsize = 4
        assert stats.total_volume == 4
        assert stats.expand_volume == 2
        assert stats.fold_volume == 2

    def test_internal_nets_are_free(self, small_sparse_matrix):
        model = build_finegrain_model(small_sparse_matrix)
        part = np.zeros(model.hypergraph.num_vertices, dtype=np.int64)
        dec = decomposition_from_finegrain(model, part, 2)
        assert communication_stats(dec).total_volume == 0


class TestOneDimDecompositions:
    @given(sparse_square_matrices(), st.integers(2, 4), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_rowwise_no_fold_and_colnet_cutsize(self, a, k, seed):
        a2 = sp.csr_matrix(a)
        a2.eliminate_zeros()
        m = a2.shape[0]
        rng = np.random.default_rng(seed)
        row_part = rng.integers(0, k, size=m)
        dec = decomposition_from_row_partition(a2, row_part, k)
        stats = communication_stats(dec)
        assert stats.fold_volume == 0
        model = build_columnnet_model(a2, consistency=True)
        lam = net_connectivities(model.hypergraph, row_part)
        cutsize = int((lam[lam > 0] - 1).sum())
        assert stats.expand_volume == cutsize

    def test_message_bound_rowwise(self, small_sparse_matrix):
        k = 4
        m = small_sparse_matrix.shape[0]
        dec = decomposition_from_row_partition(
            small_sparse_matrix, np.arange(m) % k, k
        )
        stats = communication_stats(dec)
        assert stats.max_messages <= k - 1
        assert stats.avg_messages <= k - 1


class TestNumerics:
    @given(sparse_square_matrices(), st.integers(1, 5), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_distributed_equals_serial(self, a, k, seed):
        model, part, dec = finegrain_dec(a, k, seed)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(model.m)
        res = simulate_spmv(dec, x)
        assert np.allclose(res.y, sp.csr_matrix(a) @ x)

    def test_default_x(self, small_sparse_matrix):
        _, _, dec = finegrain_dec(small_sparse_matrix, 3, 7)
        res = simulate_spmv(dec)
        assert res.y.shape == (30,)

    def test_wrong_x_shape(self, small_sparse_matrix):
        _, _, dec = finegrain_dec(small_sparse_matrix, 2, 0)
        with pytest.raises(ValueError, match="wrong shape"):
            simulate_spmv(dec, np.zeros(5))

    def test_deterministic(self, small_sparse_matrix):
        _, _, dec = finegrain_dec(small_sparse_matrix, 4, 1)
        x = np.random.default_rng(2).standard_normal(30)
        y1 = simulate_spmv(dec, x).y
        y2 = simulate_spmv(dec, x).y
        assert np.array_equal(y1, y2)


class TestMessageLedger:
    def test_ledger_matches_stats(self, small_sparse_matrix):
        _, _, dec = finegrain_dec(small_sparse_matrix, 4, 3)
        res = simulate_spmv(dec, collect_messages=True)
        stats = res.stats
        exp = [m for m in res.messages if m.phase == "expand"]
        fold = [m for m in res.messages if m.phase == "fold"]
        assert sum(m.words for m in exp) == stats.expand_volume
        assert sum(m.words for m in fold) == stats.fold_volume
        assert len(exp) == int(stats.expand_msgs.sum())
        assert len(fold) == int(stats.fold_msgs.sum())
        for m in res.messages:
            assert m.src != m.dst
            assert m.words >= 1

    def test_no_ledger_by_default(self, small_sparse_matrix):
        _, _, dec = finegrain_dec(small_sparse_matrix, 2, 4)
        assert simulate_spmv(dec).messages is None


class TestStatsObject:
    def test_per_processor_accounting(self, small_sparse_matrix):
        _, _, dec = finegrain_dec(small_sparse_matrix, 4, 5)
        stats = communication_stats(dec)
        # sends equal receives in aggregate, per phase
        assert stats.expand_sent.sum() == stats.expand_recv.sum()
        assert stats.fold_sent.sum() == stats.fold_recv.sum()
        assert stats.total_volume == stats.expand_volume + stats.fold_volume
        assert stats.max_volume == stats.per_processor_volume.max()
        assert stats.compute.sum() == dec.nnz

    def test_scaled_values(self, small_sparse_matrix):
        _, _, dec = finegrain_dec(small_sparse_matrix, 4, 6)
        stats = communication_stats(dec)
        assert stats.scaled_total_volume == pytest.approx(stats.total_volume / 30)
        assert stats.scaled_max_volume == pytest.approx(stats.max_volume / 30)

    def test_summary_string(self, small_sparse_matrix):
        _, _, dec = finegrain_dec(small_sparse_matrix, 2, 7)
        s = communication_stats(dec).summary()
        assert "vol=" in s and "K=2" in s
