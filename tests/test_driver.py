"""Tests for the public partitioner API."""

import numpy as np
import pytest

from repro._util import as_rng
from repro.hypergraph import cutsize_connectivity, hypergraph_from_netlists
from repro.partitioner import PartitionerConfig, partition_hypergraph
from tests.conftest import random_hypergraph


class TestPartitionHypergraph:
    def test_result_fields_consistent(self):
        h = random_hypergraph(as_rng(0), 60, 50)
        res = partition_hypergraph(h, 4, seed=0)
        assert res.k == 4
        assert res.cutsize == cutsize_connectivity(h, res.part)
        assert res.cutsize_cutnet <= res.cutsize
        assert res.runtime >= 0
        assert sum(res.bisection_cuts) == res.cutsize

    def test_deterministic_given_seed(self):
        h = random_hypergraph(as_rng(1), 50, 40)
        r1 = partition_hypergraph(h, 4, seed=123)
        r2 = partition_hypergraph(h, 4, seed=123)
        assert np.array_equal(r1.part, r2.part)
        assert r1.cutsize == r2.cutsize

    def test_multi_run_no_worse_than_single(self):
        h = random_hypergraph(as_rng(2), 70, 60)
        cfg1 = PartitionerConfig(n_runs=1)
        cfg3 = PartitionerConfig(n_runs=3)
        r1 = partition_hypergraph(h, 4, config=cfg1, seed=7)
        r3 = partition_hypergraph(h, 4, config=cfg3, seed=7)
        assert r3.cutsize <= r1.cutsize or r3.imbalance < r1.imbalance

    def test_structured_instance_quality(self):
        # 8 cliques of 8 chained by single links -> K=8 cut should be small
        nets = []
        for b in range(8):
            nets.append(list(range(b * 8, b * 8 + 8)))
            if b < 7:
                nets.append([b * 8 + 7, (b + 1) * 8])
        h = hypergraph_from_netlists(64, nets)
        res = partition_hypergraph(h, 8, seed=0)
        assert res.cutsize <= 10  # ideal 7
        assert res.imbalance <= 0.03 + 1e-9

    def test_kway_refine_helps_or_equal(self):
        h = random_hypergraph(as_rng(3), 80, 70)
        base = partition_hypergraph(
            h, 8, config=PartitionerConfig(kway_refine=False), seed=5
        )
        plus = partition_hypergraph(
            h, 8, config=PartitionerConfig(kway_refine=True), seed=5
        )
        assert plus.cutsize <= base.cutsize

    def test_fixed_from_hypergraph(self):
        nets = [[0, 1, 2], [3, 4, 5], [2, 3]]
        fixed = np.array([0, -1, -1, -1, -1, 1])
        h = hypergraph_from_netlists(6, nets, fixed=fixed)
        res = partition_hypergraph(h, 2, seed=0)
        assert res.part[0] == 0 and res.part[5] == 1

    def test_fixed_out_of_range_rejected(self):
        h = hypergraph_from_netlists(3, [[0, 1, 2]], fixed=[5, -1, -1])
        with pytest.raises(ValueError, match="fixed part id"):
            partition_hypergraph(h, 2, seed=0)

    def test_invalid_k(self):
        h = hypergraph_from_netlists(3, [[0, 1, 2]])
        with pytest.raises(ValueError):
            partition_hypergraph(h, 0)

    def test_zero_weight_vertices_ok(self):
        h = hypergraph_from_netlists(
            6, [[0, 1, 2], [3, 4, 5]], vertex_weights=[1, 1, 0, 0, 1, 1]
        )
        res = partition_hypergraph(h, 2, seed=0)
        assert res.imbalance <= 0.5  # 4 units over 2 parts

    @pytest.mark.parametrize("matching", ["hcm", "hcc", "none"])
    def test_matching_schemes_all_work(self, matching):
        h = random_hypergraph(as_rng(4), 50, 40)
        cfg = PartitionerConfig(matching=matching)
        res = partition_hypergraph(h, 4, config=cfg, seed=1)
        assert res.cutsize == cutsize_connectivity(h, res.part)

    def test_summary_string(self):
        h = random_hypergraph(as_rng(5), 20, 15)
        s = partition_hypergraph(h, 2, seed=0).summary()
        assert "K=2" in s and "cutsize=" in s
