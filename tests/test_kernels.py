"""Kernel-tier contract tests: bit-identity, fallback, introspection.

The ``kernel`` axis (``python | flat | jit``) promises that every tier
produces bit-identical partitions.  This suite pins that promise three
ways: golden replay under each tier (same bits as the pre-kernel
recordings), a hypothesis equivalence harness driving
:class:`FlatGainBucket` against the reference :class:`GainBucket`, and a
scripted-move equivalence of :class:`FlatMoveEngine` against
``FMCore.apply_move``.  The jit tier is exercised interpreted (numba
absent) by force-probing it available — same code path, no compilation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import random_hypergraph
from tests.golden import check_golden
from repro._util import as_rng
from repro.core.api import decompose
from repro.matrix.collection import load_collection_matrix
from repro.partitioner import PartitionerConfig, partition_hypergraph
from repro.partitioner import kernels as K
from repro.partitioner.config import KERNELS, ExecutionPolicy
from repro.partitioner.fm_flat import FlatGainBucket, FlatMoveEngine
from repro.partitioner.gainbucket import GainBucket
from repro.telemetry import TelemetryRecorder, use_recorder


@pytest.fixture
def forced_jit(monkeypatch):
    """Probe the jit tier available: without numba its kernels run
    interpreted — same code, same bits, no compilation."""
    monkeypatch.setitem(K._PROBES, "jit", (True, None))
    yield
    # monkeypatch.setitem restores the previous entry on teardown


# ----------------------------------------------------------------------
# golden replay across the kernel universe
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["flat", "jit"])
@pytest.mark.parametrize("k", [2, 8])
def test_golden_hypergraph_partitions_per_kernel(kernel, k, forced_jit):
    """Non-reference tiers replay the pre-kernel goldens bit for bit."""
    h = random_hypergraph(as_rng(1), 120, 90)
    cfg = PartitionerConfig(tree_parallel=False, kernel=kernel)
    res = partition_hypergraph(h, k, config=cfg, seed=0)
    check_golden(f"hg-120x90-s1-k{k}-seed0", res.part, res.cutsize)


@pytest.mark.parametrize("kernel", ["flat", "jit"])
def test_golden_matrix_decomposition_per_kernel(kernel, forced_jit):
    a = load_collection_matrix("sherman3", scale=0.25)
    cfg = PartitionerConfig(tree_parallel=False, kernel=kernel)
    res = decompose(a, 8, method="finegrain", config=cfg, seed=0)
    check_golden(f"sherman3-finegrain-k8-seed0", res.part, res.cutsize)


@pytest.mark.parametrize("kernel", ["flat", "jit"])
def test_tiers_match_python_on_fresh_instances(kernel, forced_jit):
    """Beyond the goldens: fresh random instances, python vs tier."""
    for hseed, seed, k in [(5, 3, 2), (9, 1, 4)]:
        h = random_hypergraph(as_rng(hseed), 180, 140, weighted=True)
        r_py = partition_hypergraph(
            h, k, config=PartitionerConfig(kernel="python"), seed=seed
        )
        r_kr = partition_hypergraph(
            h, k, config=PartitionerConfig(kernel=kernel), seed=seed
        )
        assert r_py.cutsize == r_kr.cutsize
        assert np.array_equal(r_py.part, r_kr.part)


# ----------------------------------------------------------------------
# FlatGainBucket == GainBucket under arbitrary op sequences
# ----------------------------------------------------------------------
N_VERTS = 24
MAX_GAIN = 6

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, N_VERTS - 1),
                  st.integers(-MAX_GAIN, MAX_GAIN)),
        st.tuples(st.just("remove"), st.integers(0, N_VERTS - 1)),
        st.tuples(st.just("adjust"), st.integers(0, N_VERTS - 1),
                  st.integers(-2, 2)),
        st.tuples(st.just("move_to"), st.integers(0, N_VERTS - 1),
                  st.integers(-MAX_GAIN, MAX_GAIN)),
        st.tuples(st.just("best"),),
        st.tuples(st.just("best_capped"), st.integers(0, 4)),
        st.tuples(st.just("pop_best"),),
        st.tuples(st.just("max_gain"),),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=_ops, wseed=st.integers(0, 2**16))
def test_flat_bucket_equals_reference_bucket(ops, wseed):
    """Same op sequence -> same observable behavior, including iteration
    order (best/pop_best results) and errors."""
    # gain adjustments can run past MAX_GAIN: size the range generously
    bound = MAX_GAIN + 2 * 60 + 1
    ref = GainBucket(N_VERTS, bound)
    flat = FlatGainBucket(N_VERTS, bound)
    w = as_rng(wseed).integers(1, 5, size=N_VERTS).tolist()
    w_arr = np.asarray(w, dtype=np.int64)
    for op in ops:
        name = op[0]
        if name == "insert":
            _, v, g = op
            err_ref = err_flat = None
            try:
                ref.insert(v, g)
            except ValueError as e:
                err_ref = str(e)
            try:
                flat.insert(v, g)
            except ValueError as e:
                err_flat = str(e)
            assert (err_ref is None) == (err_flat is None)
        elif name == "remove":
            _, v = op
            if ref.contains(v):
                ref.remove(v)
                flat.remove(v)
            else:
                with pytest.raises(ValueError):
                    ref.remove(v)
                with pytest.raises(ValueError):
                    flat.remove(v)
        elif name == "adjust":
            _, v, d = op
            if ref.contains(v):
                ref.adjust(v, d)
                flat.adjust(v, d)
        elif name == "move_to":
            _, v, g = op
            if ref.contains(v):
                ref.move_to(v, g)
                flat.move_to(v, g)
        elif name == "best":
            assert ref.best() == flat.best()
        elif name == "best_capped":
            _, cap = op
            assert ref.best_capped(w, cap) == flat.best_capped(w_arr, cap)
        elif name == "pop_best":
            assert ref.pop_best() == flat.pop_best()
        elif name == "max_gain":
            assert ref.max_gain() == flat.max_gain()
        assert len(ref) == len(flat)
        for v in range(N_VERTS):
            assert ref.contains(v) == flat.contains(v)


def test_flat_bucket_bulk_insert_order_matches_reference():
    rng = as_rng(0)
    vs = rng.permutation(N_VERTS)
    gains = rng.integers(-MAX_GAIN, MAX_GAIN + 1, size=N_VERTS)
    ref = GainBucket(N_VERTS, MAX_GAIN)
    flat = FlatGainBucket(N_VERTS, MAX_GAIN)
    ref.bulk_insert(vs, gains)
    flat.bulk_insert(vs, gains)
    # draining both must visit vertices in the identical order
    seq_ref = [ref.pop_best() for _ in range(N_VERTS)]
    seq_flat = [flat.pop_best() for _ in range(N_VERTS)]
    assert seq_ref == seq_flat


# ----------------------------------------------------------------------
# FlatMoveEngine == FMCore.apply_move on scripted move sequences
# ----------------------------------------------------------------------
def test_flat_move_engine_matches_reference_moves():
    from repro.partitioner.refine import FMCore

    h = random_hypergraph(as_rng(2), 80, 60, weighted=True)
    rng = as_rng(7)
    part0 = rng.integers(0, 2, size=h.num_vertices)
    vlist = rng.permutation(h.num_vertices)[:20].tolist()

    core = FMCore(h, part0)
    core.compute_all_gains()
    bound = core.max_gain_bound()
    rb0 = GainBucket(core.nv, bound)
    rb1 = GainBucket(core.nv, bound)
    core.buckets = (rb0, rb1)
    core.insert_on_touch = False
    gains = np.asarray(core.gain, dtype=np.int64)
    part = core.part_array()
    for b, idx in ((rb0, np.flatnonzero(part == 0)),
                   (rb1, np.flatnonzero(part == 1))):
        b.bulk_insert(idx, gains[idx])

    core_f = FMCore(h, part0)
    core_f.compute_all_gains()
    G = np.asarray(core_f.gain, dtype=np.int64)
    eng = FlatMoveEngine(core_f, G, boundary_mode=False)
    fb0 = FlatGainBucket(core_f.nv, bound, gains=G)
    fb1 = FlatGainBucket(core_f.nv, bound, gains=G)
    eng.buckets = (fb0, fb1)
    for b, idx in ((fb0, np.flatnonzero(eng.part == 0)),
                   (fb1, np.flatnonzero(eng.part == 1))):
        b.bulk_insert(idx, G[idx])

    for v in vlist:
        core.buckets[core.part[v]].remove(v)
        core.locked[v] = True
        core.apply_move(v)

        eng.buckets[int(eng.part[v])].remove(v)
        eng.lock(v)
        eng.apply_move(v)

        assert core.part == eng.part.tolist()
        assert core.gain == eng.G.tolist()
        assert core.W == eng.W
    # undo everything; the engines must converge back to the same state
    for v in reversed(vlist):
        core.undo_move(v)
        core.locked[v] = False
        eng.undo_move(v)
        assert core.part == eng.part.tolist()
    assert core.pc[0] == list(eng.pc0)
    assert core.pc[1] == list(eng.pc1)


# ----------------------------------------------------------------------
# resolution, fallback, introspection, defaults
# ----------------------------------------------------------------------
def test_kernels_introspection_shape():
    import repro

    info = repro.kernels()
    assert info["fallback_order"] == list(KERNELS)
    assert info["default"] in KERNELS
    for tier in KERNELS:
        assert set(info[tier]) == {"available", "reason"}
        if info[tier]["available"]:
            assert info[tier]["reason"] is None
        else:
            assert info[tier]["reason"]
    assert info["python"]["available"]
    assert info["flat"]["available"]


def test_resolve_kernel_explicit_and_auto():
    assert K.resolve_kernel("python") == "python"
    assert K.resolve_kernel("flat") == "flat"
    best = K.resolve_kernel("auto")
    assert best in KERNELS
    # auto picks the leftmost available tier of the fallback order
    for tier in KERNELS:
        if K.kernel_available(tier):
            assert best == tier
            break


def test_resolve_kernel_unknown_raises():
    with pytest.raises(ValueError, match="unknown kernel"):
        K.resolve_kernel("cuda")
    with pytest.raises(ValueError, match="unknown kernel"):
        ExecutionPolicy(kernel="cuda")


def test_unavailable_tier_falls_back_with_telemetry(monkeypatch):
    monkeypatch.setitem(K._PROBES, "jit", (False, "forced unavailable"))
    rec = TelemetryRecorder()
    with use_recorder(rec):
        assert K.resolve_kernel("jit") == "flat"
    assert rec.counter_totals().get("kernel.fallbacks") == 1


def test_import_repro_without_numba_is_clean():
    """``import repro`` and the python/flat tiers never require numba."""
    import repro

    assert hasattr(repro, "kernels")
    # the jit probe reports rather than raises when numba is missing
    info = repro.kernels()
    if not info["jit"]["available"]:
        assert "numba" in info["jit"]["reason"]


def test_repro_kernel_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "flat")
    assert ExecutionPolicy().kernel == "flat"
    monkeypatch.delenv("REPRO_KERNEL")
    assert ExecutionPolicy().kernel == "auto"


def test_decompose_kernel_kwarg_routes(forced_jit):
    import scipy.sparse as sp

    a = sp.random(
        120, 120, density=0.05,
        random_state=np.random.RandomState(4), format="csr",
    )
    a.data[:] = 1.0
    base = decompose(a, 4, method="finegrain", seed=2)
    for kernel in ("python", "flat", "jit", "auto"):
        r = decompose(a, 4, method="finegrain", seed=2, kernel=kernel)
        assert r.cutsize == base.cutsize
        assert np.array_equal(r.part, base.part)


def _walk(spans):
    for s in spans:
        yield s
        yield from _walk(s.children)


def test_refine_span_records_resolved_kernel():
    h = random_hypergraph(as_rng(4), 60, 50)
    rec = TelemetryRecorder()
    with use_recorder(rec):
        partition_hypergraph(
            h, 2, config=PartitionerConfig(kernel="flat"), seed=0
        )
    fm = [s for s in _walk(rec.roots) if s.name == "refine.fm"]
    assert fm and all(s.attrs.get("kernel") == "flat" for s in fm)


def test_engine_span_records_resolved_kernel():
    from repro.partitioner import partition_multistart

    h = random_hypergraph(as_rng(4), 60, 50)
    rec = TelemetryRecorder()
    with use_recorder(rec):
        partition_multistart(
            h, 2,
            config=PartitionerConfig(n_starts=2, kernel="flat"),
            seed=0,
        )
    engine = [s for s in _walk(rec.roots) if s.name == "engine"]
    assert engine and engine[0].attrs.get("kernel") == "flat"
