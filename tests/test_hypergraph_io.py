"""Round-trip and format tests for PaToH / hMeTiS hypergraph I/O."""

import io

import pytest
from hypothesis import given, settings

from repro.hypergraph import hypergraph_from_netlists
from repro.hypergraph.io import read_hmetis, read_patoh, write_hmetis, write_patoh
from tests.conftest import hypergraphs


def roundtrip(h, writer, reader, **kw):
    buf = io.StringIO()
    writer(h, buf, **kw)
    buf.seek(0)
    return reader(buf)


class TestPatoh:
    def test_roundtrip_unweighted(self, tiny_hypergraph):
        assert roundtrip(tiny_hypergraph, write_patoh, read_patoh) == tiny_hypergraph

    def test_roundtrip_base0(self, tiny_hypergraph):
        assert (
            roundtrip(tiny_hypergraph, write_patoh, read_patoh, base=0)
            == tiny_hypergraph
        )

    def test_roundtrip_weighted(self):
        h = hypergraph_from_netlists(
            4, [[0, 1], [1, 2, 3]], vertex_weights=[1, 2, 3, 4], net_costs=[5, 6]
        )
        assert roundtrip(h, write_patoh, read_patoh) == h

    def test_comments_skipped(self):
        text = "% header comment\n1 2 1 2 0\n% net comment\n1 2\n"
        h = read_patoh(io.StringIO(text))
        assert h.num_vertices == 2 and h.num_nets == 1
        assert h.pins_of(0).tolist() == [0, 1]

    def test_flag_optional(self):
        h = read_patoh(io.StringIO("1 2 1 2\n1 2\n"))
        assert h.num_pins == 2

    def test_pin_count_mismatch(self):
        with pytest.raises(ValueError, match="pin count mismatch"):
            read_patoh(io.StringIO("1 3 1 5\n1 2\n"))

    def test_malformed_header(self):
        with pytest.raises(ValueError, match="malformed"):
            read_patoh(io.StringIO("1 2\n"))

    def test_file_path_roundtrip(self, tiny_hypergraph, tmp_path):
        p = tmp_path / "h.patoh"
        write_patoh(tiny_hypergraph, p)
        assert read_patoh(p) == tiny_hypergraph

    @given(hypergraphs(weighted=False))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, h):
        assert roundtrip(h, write_patoh, read_patoh) == h


class TestHmetis:
    def test_roundtrip_unweighted(self, tiny_hypergraph):
        assert roundtrip(tiny_hypergraph, write_hmetis, read_hmetis) == tiny_hypergraph

    def test_roundtrip_net_costs_only(self):
        h = hypergraph_from_netlists(3, [[0, 1], [1, 2]], net_costs=[3, 4])
        assert roundtrip(h, write_hmetis, read_hmetis) == h

    def test_roundtrip_vertex_weights_only(self):
        h = hypergraph_from_netlists(3, [[0, 1], [1, 2]], vertex_weights=[2, 3, 4])
        assert roundtrip(h, write_hmetis, read_hmetis) == h

    def test_roundtrip_both_weighted(self):
        h = hypergraph_from_netlists(
            3, [[0, 1], [1, 2]], vertex_weights=[2, 3, 4], net_costs=[9, 8]
        )
        assert roundtrip(h, write_hmetis, read_hmetis) == h

    def test_known_format(self):
        # the example of the hMeTiS manual: 4 nets, 7 vertices
        text = "4 7\n1 2\n1 7 5 6\n4 5 6\n2 3 4\n"
        h = read_hmetis(io.StringIO(text))
        assert h.num_nets == 4 and h.num_vertices == 7
        assert h.pins_of(1).tolist() == [0, 6, 4, 5]

    def test_file_path_roundtrip(self, tiny_hypergraph, tmp_path):
        p = tmp_path / "h.hmetis"
        write_hmetis(tiny_hypergraph, p)
        assert read_hmetis(p) == tiny_hypergraph

    @given(hypergraphs(weighted=False))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, h):
        assert roundtrip(h, write_hmetis, read_hmetis) == h


class TestEmptyNets:
    """Regression: an empty net writes as a blank line, which the readers
    used to skip — shifting every following net up by one (or running off
    the end of the file)."""

    def _h(self, **kw):
        return hypergraph_from_netlists(5, [[0, 1], [], [2, 3, 4], []], **kw)

    @pytest.mark.parametrize(
        "writer,reader", [(write_patoh, read_patoh), (write_hmetis, read_hmetis)]
    )
    def test_roundtrip_empty_nets(self, writer, reader):
        h = self._h()
        assert roundtrip(h, writer, reader) == h

    @pytest.mark.parametrize(
        "writer,reader", [(write_patoh, read_patoh), (write_hmetis, read_hmetis)]
    )
    def test_roundtrip_empty_nets_weighted(self, writer, reader):
        h = self._h(vertex_weights=[2, 1, 3, 1, 1], net_costs=[1, 5, 2, 4])
        assert roundtrip(h, writer, reader) == h

    def test_trailing_empty_net(self):
        h = hypergraph_from_netlists(3, [[0, 1, 2], []])
        assert roundtrip(h, write_patoh, read_patoh) == h
        assert roundtrip(h, write_hmetis, read_hmetis) == h

    def test_truncated_net_block_raises(self):
        # header promises 3 nets but only 2 lines follow
        text = "1 4 3 4 0\n1 2\n3 4\n"
        with pytest.raises(ValueError, match="end of file"):
            read_patoh(io.StringIO(text))
