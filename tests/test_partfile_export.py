"""Tests for partition-file I/O and the CSV/LaTeX exporters."""

import io

import numpy as np
import pytest

from repro.bench.export import results_to_csv, results_to_latex
from repro.bench.runner import InstanceResult
from repro.hypergraph.partfile import read_partition, write_partition


class TestPartitionFile:
    def test_roundtrip(self):
        part = np.array([0, 3, 1, 2, 2, 0])
        buf = io.StringIO()
        write_partition(part, buf, comment="K=4 test")
        buf.seek(0)
        back = read_partition(buf, expected_length=6)
        assert np.array_equal(back, part)

    def test_file_path(self, tmp_path):
        p = tmp_path / "x.part.4"
        write_partition(np.array([1, 0]), p)
        assert read_partition(p).tolist() == [1, 0]

    def test_comments_skipped(self):
        buf = io.StringIO("% comment\n# another\n0\n1\n")
        assert read_partition(buf).tolist() == [0, 1]

    def test_length_validated(self):
        buf = io.StringIO("0\n1\n")
        with pytest.raises(ValueError, match="expected 3"):
            read_partition(buf, expected_length=3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            read_partition(io.StringIO("-1\n"))

    def test_metis_style_extra_columns(self):
        # some tools append extra per-line columns; first wins
        buf = io.StringIO("2 0.5\n1 0.2\n")
        assert read_partition(buf).tolist() == [2, 1]


def sample_results():
    out = []
    for model, tot in (("graph", 0.31), ("hypergraph1d", 0.25), ("finegrain2d", 0.25)):
        out.append(
            InstanceResult("sherman3", 16, model, 2, tot, tot / 4, 5.0, 0.7, 0.01, 42)
        )
    out.append(
        InstanceResult("custom", 16, "graph", 1, 0.5, 0.1, 3.0, 0.2, 0.0, 9)
    )
    return out


class TestCsvExport:
    def test_columns_and_paper_values(self):
        text = results_to_csv(sample_results())
        lines = text.strip().splitlines()
        assert lines[0].startswith("matrix,k,model")
        assert len(lines) == 5
        # paper value for sherman3/16/graph is 0.31
        row = next(l for l in lines if l.startswith("sherman3,16,graph"))
        assert ",0.31," in row

    def test_unknown_matrix_blank_paper_cells(self):
        text = results_to_csv(sample_results())
        row = next(l for l in text.splitlines() if l.startswith("custom"))
        assert row.endswith(",,,") or row.endswith(",,")


class TestLatexExport:
    def test_structure(self):
        text = results_to_latex(sample_results())
        assert r"\begin{tabular}" in text and r"\bottomrule" in text
        assert "2D fine-grain" in text
        assert "sherman3 & 16" in text

    def test_missing_cells_dashed(self):
        text = results_to_latex(sample_results())
        custom_line = next(
            l for l in text.splitlines() if l.startswith("custom")
        )
        assert "--" in custom_line
