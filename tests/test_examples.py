"""Smoke tests running the example scripts end to end.

Each example must exit 0 and print its key conclusion — examples are part
of the public contract, so they are tested like code.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "volume theorem holds" in out
        assert "distributed y == serial A @ x" in out

    def test_figure1(self):
        out = run_example("figure1_dependency_view.py")
        assert "column-net n_3" in out
        assert "row-net m_1" in out
        assert "cutsize=" in out

    def test_reduction_problem(self):
        out = run_example("reduction_problem.py")
        assert "fixed part vertices respected" in out

    def test_matrix_market_workflow(self, tmp_path):
        out = run_example("matrix_market_workflow.py", str(tmp_path))
        assert "partitioned: K=8" in out
        assert (tmp_path / "sherman3_finegrain.patoh").exists()
        assert (tmp_path / "sherman3_finegrain.part.8").exists()

    def test_rectangular_reduction(self):
        out = run_example("rectangular_reduction.py")
        assert "volume theorem holds for the rectangular reduction" in out
        assert "expected False" in out

    def test_parallel_execution(self):
        out = run_example("parallel_execution.py")
        assert "verified across real processes" in out
        assert "exactly as simulated" in out

    @pytest.mark.slow
    def test_iterative_solver(self):
        out = run_example("iterative_solver_decomposition.py")
        assert "least communication" in out

    @pytest.mark.slow
    def test_model_comparison(self):
        out = run_example("model_comparison.py", "sherman3", "0.05")
        assert "Fine-Grain" in out
        assert "improvement" in out

    @pytest.mark.slow
    def test_two_dimensional_methods(self):
        out = run_example("two_dimensional_methods.py")
        assert "checkerboard" in out
