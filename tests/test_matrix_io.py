"""Tests for the Matrix Market reader/writer."""

import io

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings

from repro.matrix import read_matrix_market, write_matrix_market
from tests.conftest import sparse_square_matrices


def roundtrip(a, **kw):
    buf = io.StringIO()
    write_matrix_market(a, buf, **kw)
    buf.seek(0)
    return read_matrix_market(buf)


class TestWriteRead:
    def test_roundtrip_real(self, small_sparse_matrix):
        b = roundtrip(small_sparse_matrix)
        assert abs(b - small_sparse_matrix).max() < 1e-15

    def test_roundtrip_exact_values(self):
        a = sp.csr_matrix(np.array([[0.1234567890123, 0], [0, -7.5e-3]]))
        b = roundtrip(a)
        assert np.array_equal(b.toarray(), a.toarray())

    def test_pattern_field(self, small_sparse_matrix):
        b = roundtrip(small_sparse_matrix, field="pattern")
        assert b.nnz == small_sparse_matrix.nnz
        assert set(b.data.tolist()) == {1.0}

    def test_integer_field(self):
        a = sp.csr_matrix(np.array([[3, 0], [0, -2]], dtype=float))
        b = roundtrip(a, field="integer")
        assert np.array_equal(b.toarray(), a.toarray())

    def test_comment_written_and_skipped(self):
        a = sp.eye(2, format="csr")
        buf = io.StringIO()
        write_matrix_market(a, buf, comment="hello\nworld")
        text = buf.getvalue()
        assert "% hello" in text and "% world" in text
        buf.seek(0)
        assert abs(read_matrix_market(buf) - a).max() == 0

    def test_file_path(self, tmp_path, small_sparse_matrix):
        p = tmp_path / "m.mtx"
        write_matrix_market(small_sparse_matrix, p)
        assert abs(read_matrix_market(p) - small_sparse_matrix).max() < 1e-15

    @given(sparse_square_matrices())
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, a):
        b = roundtrip(a)
        assert (abs(b - a)).max() < 1e-15 if a.nnz else b.nnz == 0


class TestReadFormats:
    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 2.0\n"
            "2 1 3.0\n"
            "3 3 4.0\n"
        )
        a = read_matrix_market(io.StringIO(text))
        dense = a.toarray()
        assert dense[0, 1] == dense[1, 0] == 3.0
        assert dense[0, 0] == 2.0
        assert a.nnz == 4

    def test_skew_symmetric(self):
        text = (
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 5.0\n"
        )
        a = read_matrix_market(io.StringIO(text)).toarray()
        assert a[1, 0] == 5.0 and a[0, 1] == -5.0

    def test_pattern_read(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        a = read_matrix_market(io.StringIO(text))
        assert a.nnz == 2

    def test_rejects_array_format(self):
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(io.StringIO("%%MatrixMarket matrix array real general\n"))

    def test_rejects_complex(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
        with pytest.raises(ValueError, match="complex"):
            read_matrix_market(io.StringIO(text))

    def test_rejects_wrong_count(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"
        with pytest.raises(ValueError, match="expected 3"):
            read_matrix_market(io.StringIO(text))

    def test_rejects_bad_write_field(self):
        with pytest.raises(ValueError, match="unsupported field"):
            write_matrix_market(sp.eye(2, format="csr"), io.StringIO(), field="complex")
