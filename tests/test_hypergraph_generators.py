"""Tests for the library hypergraph generators."""

import numpy as np
import pytest

from repro.hypergraph.builders import validate_hypergraph
from repro.hypergraph.generators import (
    clique_chain_hypergraph,
    planted_partition_hypergraph,
    random_uniform_hypergraph,
)
from repro.hypergraph.partition import cutsize_connectivity
from repro.partitioner import PartitionerConfig, partition_hypergraph


class TestRandomUniform:
    def test_structure(self):
        h = random_uniform_hypergraph(50, 30, 4, seed=0)
        assert h.num_vertices == 50
        assert h.num_nets == 30
        assert h.num_pins == 120
        validate_hypergraph(h)

    def test_deterministic(self):
        a = random_uniform_hypergraph(40, 20, 3, seed=5)
        b = random_uniform_hypergraph(40, 20, 3, seed=5)
        assert a == b

    def test_weighted(self):
        h = random_uniform_hypergraph(30, 10, 3, weighted=True, seed=1)
        assert h.vertex_weights.max() > 1 or h.net_costs.max() > 1

    def test_net_size_too_large(self):
        with pytest.raises(ValueError):
            random_uniform_hypergraph(3, 1, 5)

    def test_zero_nets(self):
        h = random_uniform_hypergraph(5, 0, 2, seed=0)
        assert h.num_nets == 0


class TestPlantedPartition:
    def test_planted_cutsize_exact(self):
        h, planted, cut = planted_partition_hypergraph(4, 20, 10, 4, 6, seed=0)
        assert cutsize_connectivity(h, planted) == cut

    def test_partitioner_finds_planted_quality(self):
        h, planted, cut = planted_partition_hypergraph(4, 25, 15, 5, 5, seed=1)
        # the planted cut is achievable, so the partitioner should land at
        # or very near it; best-of-3 seeds keeps the bound meaningful on
        # an instance this small (single-seed quality is variance-bound,
        # whichever RNG universe — legacy or seed-tree — is active)
        best = min(
            partition_hypergraph(h, 4, seed=s).cutsize for s in range(3)
        )
        assert best <= cut + 3

    def test_single_part(self):
        h, planted, cut = planted_partition_hypergraph(1, 10, 5, 3, 0, seed=2)
        assert cut == 0
        assert set(planted.tolist()) == {0}


class TestCliqueChain:
    def test_optimum_known(self):
        h, opt = clique_chain_hypergraph(8, 6)
        assert opt == 7
        part = np.repeat(np.arange(8), 6)
        assert cutsize_connectivity(h, part) == opt

    def test_partitioner_near_optimal(self):
        h, opt = clique_chain_hypergraph(8, 8)
        res = partition_hypergraph(h, 8, seed=0)
        assert res.cutsize <= opt + 3
        assert res.imbalance <= 0.04
