"""Unit suite for the branch-and-bound exact bipartitioner.

The load-bearing test is the differential one: on every hypergraph small
enough to enumerate, the B&B result must match the brute-force optimum
**bit-exactly on the lexicographic quality key** for both paper
objectives.  Around it: budget semantics (exhaustion returns a valid
partition with ``proven=False``), symmetry breaking, fixed vertices, and
the degenerate shapes (empty hypergraph, single vertex, one dominant
weight) that make balance infeasible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import (
    MAX_BRUTE_VERTICES,
    ExactResult,
    bisection_bounds,
    brute_force_bisection,
    exact_bisection,
)
from repro.hypergraph import Hypergraph
from repro.hypergraph.partition import (
    compute_part_weights,
    cutsize_connectivity,
    cutsize_cutnet,
)
from repro.partitioner.resilience import Deadline

from tests.conftest import random_hypergraph


def _assert_scores_match(h, res: ExactResult) -> None:
    """The result's claimed cut/excess must equal independent recomputes."""
    score = cutsize_cutnet if res.objective == "cutnet" else cutsize_connectivity
    assert int(score(h, res.part)) == res.cutsize
    w = compute_part_weights(h, res.part, 2)
    excess = max(0, int(w[0]) - res.max_weights[0]) + max(
        0, int(w[1]) - res.max_weights[1]
    )
    assert excess == res.excess


# ----------------------------------------------------------------------
# differential: exact vs exhaustive enumeration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("objective", ["connectivity", "cutnet"])
@pytest.mark.parametrize("weighted", [False, True])
def test_exact_matches_brute_force(objective, weighted):
    rng = np.random.default_rng(20260809)
    for trial in range(60):
        nv = int(rng.integers(1, 13))  # <= 12 vertices: enumerable
        nn = int(rng.integers(1, 11))
        h = random_hypergraph(rng, nv, nn, weighted=weighted)
        eps = [0.03, 0.1, 0.5][trial % 3]
        _, maxw = bisection_bounds(h, eps)
        res = exact_bisection(h, eps, objective)
        assert res.proven, f"trial {trial} did not certify"
        _assert_scores_match(h, res)
        _bp, bcut, bexc = brute_force_bisection(h, maxw, objective)
        assert (res.excess, res.cutsize) == (bexc, bcut), (
            f"trial {trial}: B&B ({res.excess}, {res.cutsize}) != "
            f"brute force ({bexc}, {bcut})"
        )


def test_exact_matches_brute_force_with_fixed_vertices():
    rng = np.random.default_rng(7)
    for trial in range(25):
        nv = int(rng.integers(2, 11))
        h0 = random_hypergraph(rng, nv, int(rng.integers(1, 8)))
        fixed = np.full(nv, -1, dtype=np.int64)
        fixed[0] = 0
        if nv > 2:
            fixed[1] = 1
        h = Hypergraph(
            nv, h0.xpins, h0.pins, vertex_weights=h0.vertex_weights, fixed=fixed
        )
        _, maxw = bisection_bounds(h, 0.1)
        res = exact_bisection(h, 0.1)
        assert res.proven
        assert all(int(res.part[v]) == fixed[v] for v in range(nv) if fixed[v] >= 0)
        _bp, bcut, bexc = brute_force_bisection(h, maxw, "connectivity")
        assert (res.excess, res.cutsize) == (bexc, bcut)


def test_both_objectives_coincide_at_k2():
    rng = np.random.default_rng(99)
    for _ in range(20):
        h = random_hypergraph(rng, int(rng.integers(2, 12)), int(rng.integers(1, 9)))
        a = exact_bisection(h, 0.1, "connectivity")
        b = exact_bisection(h, 0.1, "cutnet")
        assert (a.excess, a.cutsize) == (b.excess, b.cutsize)


# ----------------------------------------------------------------------
# budget semantics
# ----------------------------------------------------------------------
def test_budget_exhaustion_returns_valid_unproven_partition():
    rng = np.random.default_rng(5)
    h = random_hypergraph(rng, 24, 30)
    res = exact_bisection(h, 0.03, max_nodes=10)
    assert not res.proven
    assert res.nodes <= 11  # the counter trips right past the budget
    assert len(res.part) == 24
    assert set(np.unique(res.part)) <= {0, 1}
    _assert_scores_match(h, res)  # best-found is still internally consistent


def test_node_budget_is_deterministic():
    rng = np.random.default_rng(6)
    h = random_hypergraph(rng, 20, 24)
    a = exact_bisection(h, 0.03, max_nodes=50)
    b = exact_bisection(h, 0.03, max_nodes=50)
    assert np.array_equal(a.part, b.part)
    assert (a.proven, a.nodes, a.cutsize, a.excess) == (
        b.proven,
        b.nodes,
        b.cutsize,
        b.excess,
    )


def test_expired_deadline_still_returns_a_partition():
    rng = np.random.default_rng(8)
    h = random_hypergraph(rng, 22, 28)
    dl = Deadline(0.0)  # already expired on entry
    res = exact_bisection(h, 0.03, deadline=dl)
    assert len(res.part) == 22
    _assert_scores_match(h, res)


def test_float_deadline_accepted():
    rng = np.random.default_rng(9)
    h = random_hypergraph(rng, 8, 6)
    res = exact_bisection(h, 0.1, deadline=30.0)
    assert res.proven  # tiny instance certifies long before 30s


def test_invalid_arguments_rejected():
    h = Hypergraph(2, [0, 2], [0, 1])
    with pytest.raises(ValueError, match="objective"):
        exact_bisection(h, objective="soap")
    with pytest.raises(ValueError, match="max_nodes"):
        exact_bisection(h, max_nodes=0)
    with pytest.raises(ValueError, match="fixed"):
        exact_bisection(h, fixed=np.array([0]))
    with pytest.raises(ValueError, match="part id"):
        exact_bisection(h, fixed=np.array([0, 3]))
    with pytest.raises(ValueError, match="brute-force cap"):
        brute_force_bisection(
            Hypergraph(MAX_BRUTE_VERTICES + 1, [0], []), (1, 1)
        )


# ----------------------------------------------------------------------
# symmetry breaking
# ----------------------------------------------------------------------
def test_symmetry_breaking_halves_the_search():
    rng = np.random.default_rng(11)
    h = random_hypergraph(rng, 10, 10)
    sym = exact_bisection(h, 0.1)  # max0 == max1, no fixed: first vertex pinned
    fixed = np.full(10, -1, dtype=np.int64)
    fixed[0] = 0  # fixing an arbitrary vertex disables the shortcut
    h_fixed = Hypergraph(10, h.xpins, h.pins, fixed=fixed)
    asym = exact_bisection(h_fixed, 0.1)
    assert sym.proven and asym.proven
    # symmetry breaking must not change the certified optimum value
    _, maxw = bisection_bounds(h, 0.1)
    _bp, bcut, bexc = brute_force_bisection(h, maxw, "connectivity")
    assert (sym.excess, sym.cutsize) == (bexc, bcut)


def test_symmetry_breaking_disabled_for_asymmetric_bounds():
    # asymmetric targets: the complement of a feasible optimum may be
    # infeasible, so both sides of the first vertex must be explored
    rng = np.random.default_rng(12)
    h = random_hypergraph(rng, 9, 8, weighted=True)
    total = h.total_vertex_weight()
    targets = (max(total - 1, 1), min(1, total))
    res = exact_bisection(h, 0.0, targets=targets)
    assert res.proven
    maxw = (int(targets[0]), int(targets[1]))
    _bp, bcut, bexc = brute_force_bisection(h, maxw, "connectivity")
    assert (res.excess, res.cutsize) == (bexc, bcut)


# ----------------------------------------------------------------------
# degenerate / balance-infeasible shapes
# ----------------------------------------------------------------------
def test_empty_hypergraph():
    res = exact_bisection(Hypergraph(0, [0], []))
    assert res.proven
    assert res.cutsize == 0 and res.excess == 0
    assert len(res.part) == 0


def test_single_vertex():
    # total weight 1 splits into targets (0, 1): parking the vertex in
    # part 1 is feasible, so the certified optimum is (excess=0, cut=0)
    res = exact_bisection(Hypergraph(1, [0, 1], [0]))
    assert res.proven and res.cutsize == 0 and res.excess == 0
    assert int(res.part[0]) == 1
    # under even targets the same vertex is genuinely unsplittable
    forced = exact_bisection(
        Hypergraph(1, [0, 1], [0], vertex_weights=[2]), targets=(1, 1)
    )
    assert forced.proven and forced.excess > 0


def test_all_weight_on_one_vertex_is_least_infeasible():
    # one vertex carries everything: no eps-balanced bipartition exists;
    # the solver must return the least-infeasible certified answer, not
    # raise and not pretend feasibility
    h = Hypergraph(4, [0, 4], [0, 1, 2, 3], vertex_weights=[99, 1, 1, 1])
    res = exact_bisection(h, 0.03)
    assert res.proven
    assert res.excess > 0
    _, maxw = bisection_bounds(h, 0.03)
    _bp, bcut, bexc = brute_force_bisection(h, maxw, "connectivity")
    assert (res.excess, res.cutsize) == (bexc, bcut)


def test_zero_weight_vertices_certify():
    # zero-weight dummies (the fine-grain model's diagonal fillers) can
    # sit anywhere without moving the balance; the must-cut bound has to
    # stay sound in their presence
    h = Hypergraph(
        6,
        [0, 3, 6, 8],
        [0, 1, 4, 2, 3, 5, 0, 2],
        vertex_weights=[1, 1, 1, 1, 0, 0],
    )
    res = exact_bisection(h, 0.03)
    assert res.proven
    _, maxw = bisection_bounds(h, 0.03)
    _bp, bcut, bexc = brute_force_bisection(h, maxw, "connectivity")
    assert (res.excess, res.cutsize) == (bexc, bcut)


def test_result_summary_and_key():
    h = Hypergraph(2, [0, 2], [0, 1])
    res = exact_bisection(h)
    assert res.key() == (res.excess, res.cutsize)
    assert "optimal" in res.summary()
    rng = np.random.default_rng(13)
    budget = exact_bisection(random_hypergraph(rng, 24, 30), max_nodes=1)
    assert not budget.proven
    assert "best-found" in budget.summary()
