"""ModelConfig/ExecutionPolicy split: routing, back-compat, fingerprint.

The split's contract: :class:`ModelConfig` holds exactly the bit-shaping
fields (``repro.fingerprint`` digests them), :class:`ExecutionPolicy`
holds the how-to-compute fields (changing one must never move the
fingerprint), and :class:`PartitionerConfig` composes the two while
keeping the pre-split flat-kwarg API byte-compatible.
"""

from __future__ import annotations

import pickle

import pytest

from repro.fingerprint import BIT_FIELDS
from repro.partitioner.config import (
    KERNELS,
    ExecutionPolicy,
    ModelConfig,
    PartitionerConfig,
)

from dataclasses import fields


# ----------------------------------------------------------------------
# construction and routing
# ----------------------------------------------------------------------
def test_flat_kwargs_route_to_sub_configs():
    cfg = PartitionerConfig(epsilon=0.1, n_workers=4, kernel="flat")
    assert cfg.model.epsilon == 0.1
    assert cfg.execution.n_workers == 4
    assert cfg.execution.kernel == "flat"
    # flat attribute access keeps working
    assert cfg.epsilon == 0.1
    assert cfg.n_workers == 4
    assert cfg.kernel == "flat"


def test_explicit_sub_config_construction():
    cfg = PartitionerConfig(
        model=ModelConfig(epsilon=0.05),
        execution=ExecutionPolicy(n_workers=2),
    )
    assert cfg.epsilon == 0.05
    assert cfg.n_workers == 2


def test_unknown_kwarg_raises_type_error():
    with pytest.raises(TypeError, match="unexpected keyword"):
        PartitionerConfig(epsilonn=0.1)


def test_mixing_sub_config_with_its_flat_kwargs_raises():
    with pytest.raises(TypeError, match="cannot combine model="):
        PartitionerConfig(model=ModelConfig(), epsilon=0.1)
    with pytest.raises(TypeError, match="cannot combine execution="):
        PartitionerConfig(execution=ExecutionPolicy(), n_workers=2)


def test_mixing_sub_config_with_other_sides_kwargs_is_fine():
    cfg = PartitionerConfig(model=ModelConfig(epsilon=0.2), n_workers=3)
    assert cfg.epsilon == 0.2
    assert cfg.n_workers == 3


def test_with_routes_flat_fields():
    cfg = PartitionerConfig()
    cfg2 = cfg.with_(epsilon=0.2, kernel="flat")
    assert cfg2.model.epsilon == 0.2
    assert cfg2.execution.kernel == "flat"
    # originals untouched (immutability)
    assert cfg.model.epsilon == 0.03
    assert cfg.execution.kernel in ("auto",) + KERNELS
    with pytest.raises(TypeError, match="unknown config fields"):
        cfg.with_(bogus=1)


def test_config_is_immutable():
    cfg = PartitionerConfig()
    with pytest.raises(AttributeError):
        cfg.epsilon = 0.5
    with pytest.raises(AttributeError):
        del cfg.epsilon
    with pytest.raises(AttributeError):
        cfg.model = ModelConfig()


def test_equality_and_hash():
    a = PartitionerConfig(epsilon=0.1, n_workers=4)
    b = PartitionerConfig(epsilon=0.1, n_workers=4)
    c = PartitionerConfig(epsilon=0.1, n_workers=5)
    assert a == b and hash(a) == hash(b)
    assert a != c


def test_pickle_round_trip():
    cfg = PartitionerConfig(epsilon=0.1, n_workers=4, kernel="flat")
    back = pickle.loads(pickle.dumps(cfg))
    assert back == cfg
    assert back.kernel == "flat"


def test_attribute_error_for_unknown_field():
    cfg = PartitionerConfig()
    with pytest.raises(AttributeError):
        cfg.not_a_field


# ----------------------------------------------------------------------
# the split line: fingerprint == ModelConfig
# ----------------------------------------------------------------------
def test_bit_fields_are_exactly_model_config_fields():
    assert set(BIT_FIELDS) == {f.name for f in fields(ModelConfig)}


def test_kernel_is_not_a_bit_field():
    assert "kernel" not in BIT_FIELDS
    assert "kernel" in {f.name for f in fields(ExecutionPolicy)}


def _instance():
    import numpy as np
    import scipy.sparse as sp

    a = sp.random(
        30, 30, density=0.1, random_state=np.random.RandomState(0), format="csr"
    )
    a.data[:] = 1.0
    return a


def test_fingerprint_invariant_under_execution_policy():
    from repro.fingerprint import fingerprint

    a = _instance()
    variants = [
        PartitionerConfig(n_workers=8),
        PartitionerConfig(kernel="flat"),
        PartitionerConfig(kernel="auto"),
        PartitionerConfig(max_retries=3, deadline=60.0),
        PartitionerConfig(start_backend="serial", shm_transport=False),
        PartitionerConfig(checkpoint_path="/tmp/ckpt.json"),
    ]
    ref = fingerprint(a, config=PartitionerConfig(), seed=0,
                      k=8, method="finegrain")
    for v in variants:
        assert fingerprint(a, config=v, seed=0, k=8, method="finegrain") == ref


def test_fingerprint_moves_with_model_config():
    from repro.fingerprint import fingerprint

    a = _instance()
    ref = fingerprint(a, config=PartitionerConfig(), seed=0,
                      k=8, method="finegrain")
    bumped = fingerprint(a, config=PartitionerConfig(epsilon=0.1), seed=0,
                         k=8, method="finegrain")
    assert bumped != ref


# ----------------------------------------------------------------------
# validation still fires through every construction path
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"epsilon": -0.1},
        {"matching": "nope"},
        {"n_workers": 0},
        {"kernel": "cuda"},
        {"start_backend": "mpi"},
    ],
)
def test_validation_via_flat_kwargs(kwargs):
    with pytest.raises(ValueError):
        PartitionerConfig(**kwargs)


def test_sub_configs_expose_with_():
    m = ModelConfig().with_(epsilon=0.2)
    assert m.epsilon == 0.2
    e = ExecutionPolicy().with_(kernel="flat")
    assert e.kernel == "flat"
