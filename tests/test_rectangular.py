"""Tests for rectangular-matrix decompositions (the §3 general reduction).

The consistency-free fine-grain model for M x N matrices: no symmetric
vector distribution exists (inputs and outputs are distinct element sets),
but the volume theorem still holds when every vector entry is assigned to
a part of its net's connectivity set.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import decompose_2d_rectangular
from repro.core import build_finegrain_model, decomposition_from_finegrain_rect
from repro.core.decomposition import Decomposition
from repro.core.vectordist import build_vector_distribution
from repro.hypergraph.partition import net_connectivities
from repro.spmv import build_comm_plan, communication_stats, execute_plan, simulate_spmv


@st.composite
def rect_matrices(draw, max_dim: int = 12):
    m = draw(st.integers(2, max_dim))
    n = draw(st.integers(2, max_dim))
    seed = draw(st.integers(0, 2**31 - 1))
    density = draw(st.floats(0.1, 0.5))
    rng = np.random.default_rng(seed)
    a = sp.random(m, n, density=density, random_state=rng, format="csr")
    if a.nnz == 0:
        a = sp.csr_matrix(([1.0], ([0], [0])), shape=(m, n))
    return a


def random_rect_dec(a, k, seed):
    model = build_finegrain_model(a, consistency=False)
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, size=model.hypergraph.num_vertices)
    return model, part, decomposition_from_finegrain_rect(model, part, k)


class TestRectModel:
    def test_shape_fields(self):
        a = sp.random(6, 9, density=0.4, random_state=0, format="csr")
        model = build_finegrain_model(a, consistency=False)
        assert model.m == 6 and model.n_cols == 9
        assert model.hypergraph.num_nets == 15

    def test_consistency_requires_square(self):
        a = sp.random(3, 5, density=0.5, random_state=1, format="csr")
        with pytest.raises(ValueError, match="square"):
            build_finegrain_model(a, consistency=True)


class TestRectVolumeTheorem:
    @given(rect_matrices(), st.integers(2, 5), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_cutsize_equals_volume(self, a, k, seed):
        """Majority-owner decode keeps volume == cutsize for rectangles."""
        model, part, dec = random_rect_dec(a, k, seed)
        lam = net_connectivities(model.hypergraph, part)
        cutsize = int((lam[lam > 0] - 1).sum())
        assert communication_stats(dec).total_volume == cutsize

    @given(rect_matrices(), st.integers(1, 4), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_numerics(self, a, k, seed):
        _, _, dec = random_rect_dec(a, k, seed)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(a.shape[1])
        assert np.allclose(simulate_spmv(dec, x).y, a @ x)

    @given(rect_matrices(), st.integers(1, 4), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_plan_agrees(self, a, k, seed):
        _, _, dec = random_rect_dec(a, k, seed)
        plan = build_comm_plan(dec)
        x = np.random.default_rng(seed).standard_normal(a.shape[1])
        assert np.allclose(execute_plan(plan, dec, x), sp.csr_matrix(a) @ x)
        assert plan.stats().total_volume == communication_stats(dec).total_volume


class TestRectApi:
    def test_end_to_end(self):
        rng = np.random.default_rng(0)
        a = sp.random(60, 90, density=0.05, random_state=rng, format="csr")
        dec, info = decompose_2d_rectangular(a, 4, seed=0)
        assert dec.shape == (60, 90)
        assert not dec.is_symmetric()
        stats = communication_stats(dec)
        assert stats.total_volume == info.cutsize
        x = rng.standard_normal(90)
        assert np.allclose(simulate_spmv(dec, x).y, a @ x)

    def test_vector_distribution_over_columns(self):
        a = sp.random(20, 35, density=0.15, random_state=1, format="csr")
        dec, _ = decompose_2d_rectangular(a, 3, seed=0)
        dist = build_vector_distribution(dec)
        all_owned = np.concatenate([l.owned for l in dist.layouts])
        assert sorted(all_owned.tolist()) == list(range(35))
        assert dist.total_ghosts() == communication_stats(dec).expand_volume

    def test_x_shape_validated(self):
        a = sp.random(5, 8, density=0.5, random_state=2, format="csr")
        dec, _ = decompose_2d_rectangular(a, 2, seed=0)
        with pytest.raises(ValueError, match="wrong shape"):
            simulate_spmv(dec, np.zeros(5))  # rows-length x must be rejected

    def test_decomposition_validates_rect_lengths(self):
        with pytest.raises(ValueError, match="x_owner"):
            Decomposition(
                k=1, m=2, n=3,
                nnz_row=np.array([0]), nnz_col=np.array([0]),
                nnz_val=np.array([1.0]), nnz_owner=np.array([0]),
                x_owner=np.zeros(2, dtype=np.int64),  # wrong: must be 3
                y_owner=np.zeros(2, dtype=np.int64),
            )
