"""Crash safety of the serving layer: journal, warm restart, draining,
serve-layer fault sites, and the resilient client.

The contract under test extends PR 5's invariant across process death:
a daemon SIGKILLed mid-compute loses nothing — the durable request
journal replays the interrupted request on restart and the served result
is byte-identical to an uninterrupted run — and every ``serve.*``
degradation path actually runs (deterministically, via
:mod:`repro.verify.faults`) without failing the request it degrades.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.serve.client import (
    ERROR_TYPES,
    BadRequestError,
    Client,
    ClientBusyError,
    EngineError,
    OversizedError,
    QueueFullError,
    ServeError,
    ShutdownRefusedError,
    UnknownFingerprintError,
    serve_error,
)
from repro.serve.journal import RequestJournal
from repro.serve.protocol import encode_msg, inline_matrix
from repro.serve.service import PartitionService, ServeConfig
from repro.verify import faults
from repro.verify.faults import inject


@pytest.fixture(autouse=True)
def _isolate_faults(monkeypatch):
    """No plan leaks between tests, in either direction."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def a():
    return sp.random(60, 60, density=0.08, format="csr", random_state=0)


def service_cfg(tmp_path, **kw) -> ServeConfig:
    kw.setdefault("port", None)
    kw.setdefault("cache_dir", str(tmp_path / "cache"))
    kw.setdefault("journal_path", str(tmp_path / "journal.ndjson"))
    return ServeConfig(**kw)


def req(a, seed=0, k=4, **kw) -> dict:
    return {
        "op": "decompose",
        "matrix": {"inline": inline_matrix(a)},
        "k": k,
        "seed": seed,
        **kw,
    }


def run_service(coro_fn, cfg: ServeConfig):
    service = PartitionService(cfg)
    try:
        return asyncio.run(coro_fn(service))
    finally:
        service.close()


# ----------------------------------------------------------------------
# the durable request journal
# ----------------------------------------------------------------------
class TestRequestJournal:
    def test_accept_complete_round_trip_across_reopen(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        j = RequestJournal.open(path)
        assert j.accept("fp-a", {"op": "decompose", "k": 2})
        assert j.accept("fp-b", {"op": "decompose", "k": 4})
        j.complete("fp-a")
        j.close()
        j2 = RequestJournal.open(path)
        assert j2.incomplete() == [("fp-b", {"op": "decompose", "k": 4})]

    def test_accept_is_idempotent_per_fingerprint(self, tmp_path):
        j = RequestJournal.open(str(tmp_path / "j.ndjson"))
        assert j.accept("fp", {"k": 2})
        appends = j.appends
        assert j.accept("fp", {"k": 2})  # a dedup waiter: no new line
        assert j.appends == appends
        j.complete("fp")
        j.complete("fp")  # idempotent too
        assert j.incomplete() == []

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        j = RequestJournal.open(path)
        j.accept("fp-ok", {"k": 2})
        j.close()
        with open(path, "a") as f:
            f.write('{"kind": "accept", "fingerpr')  # crash mid-append
        j2 = RequestJournal.open(path)
        assert j2.skipped_lines == 1
        assert [fp for fp, _ in j2.incomplete()] == ["fp-ok"]

    def test_open_compacts_completed_entries_away(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        j = RequestJournal.open(path)
        for i in range(5):
            j.accept(f"fp{i}", {"k": i})
            j.complete(f"fp{i}")
        j.accept("fp-open", {"k": 9})
        j.close()
        assert len(open(path).read().splitlines()) == 11
        j2 = RequestJournal.open(path)
        assert j2.compactions == 1
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["fingerprint"] == "fp-open"

    def test_stale_tmp_is_swept_on_open(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with open(path + ".tmp", "w") as f:
            f.write("half-written compaction\n")
        j = RequestJournal.open(path)
        assert j.orphan_tmp_swept == 1
        assert not os.path.exists(path + ".tmp")

    def test_write_failure_is_absorbed_and_counted(self, tmp_path):
        j = RequestJournal.open(str(tmp_path / "j.ndjson"))
        with inject("serve.journal_write:oserror"):
            assert not j.accept("fp", {"k": 2})
        assert j.write_errors == 1
        # the journal recovers: the next append works
        assert j.accept("fp", {"k": 2})
        assert [fp for fp, _ in j.incomplete()] == ["fp"]


# ----------------------------------------------------------------------
# serve-layer fault sites: every degradation path runs, requests survive
# ----------------------------------------------------------------------
class TestServeFaultSites:
    def test_cache_read_failure_is_a_miss(self, tmp_path, a):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            with inject("serve.cache_read:oserror"):
                return await svc.handle(req(a, seed=0), "c"), svc.stats()

        resp, stats = run_service(scenario, cfg)
        assert resp["ok"]
        assert resp["served"]["cache"] == "computed"
        assert stats["counters"]["cache_read_errors"] == 1

    def test_cache_write_failure_never_fails_the_response(self, tmp_path, a):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            with inject("serve.cache_write:oserror"):
                r1 = await svc.handle(req(a, seed=0), "c")
            r2 = await svc.handle(req(a, seed=0), "c")
            return r1, r2, svc.stats()

        r1, r2, stats = run_service(scenario, cfg)
        assert r1["ok"] and r2["ok"]
        assert stats["counters"]["cache_write_errors"] == 1
        # the insert was lost, so the repeat recomputed — byte-identically
        assert r2["served"]["cache"] == "computed"
        assert r1["result"] == r2["result"]

    def test_compute_crash_is_an_engine_error_not_a_daemon_death(
        self, tmp_path, a
    ):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            with inject("serve.compute:crash"):
                r1 = await svc.handle(req(a, seed=0), "c")
            r2 = await svc.handle(req(a, seed=0), "c")
            return r1, r2, svc.journal.incomplete()

        r1, r2, incomplete = run_service(scenario, cfg)
        assert not r1["ok"]
        assert r1["error"]["code"] == "engine-error"
        # the service survived and the journal did not retain the
        # deterministic failure for replay
        assert r2["ok"]
        assert incomplete == []

    def test_journal_write_failure_never_fails_the_request(self, tmp_path, a):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            with inject("serve.journal_write:oserror"):
                resp = await svc.handle(req(a, seed=0), "c")
            return resp, svc.stats()

        resp, stats = run_service(scenario, cfg)
        assert resp["ok"]
        assert stats["journal"]["write_errors"] >= 1


# ----------------------------------------------------------------------
# typed client errors: the full code -> exception -> retryable mapping
# ----------------------------------------------------------------------
class TestTypedClientErrors:
    EXPECTED = {
        "bad-request": (BadRequestError, False),
        "unknown-fingerprint": (UnknownFingerprintError, False),
        "queue-full": (QueueFullError, True),
        "client-busy": (ClientBusyError, True),
        "engine-error": (EngineError, False),
        "shutdown-refused": (ShutdownRefusedError, True),
        "oversized": (OversizedError, False),
    }

    def test_every_protocol_code_has_a_dedicated_class(self):
        assert set(ERROR_TYPES) == set(self.EXPECTED)
        for code, (cls, retryable) in self.EXPECTED.items():
            exc = serve_error(code, "boom")
            assert type(exc) is cls
            assert isinstance(exc, ServeError)  # except ServeError works
            assert exc.code == code
            assert exc.retryable is retryable
            assert "boom" in str(exc)

    def test_unknown_code_falls_back_to_base_not_retryable(self):
        exc = serve_error("some-future-code", "??")
        assert type(exc) is ServeError
        assert exc.code == "some-future-code"
        assert exc.retryable is False


# ----------------------------------------------------------------------
# client resilience: backoff, retry on retryable codes, reconnect
# ----------------------------------------------------------------------
class _ScriptedServer:
    """A UNIX-socket server answering each request line from a script."""

    def __init__(self, sock_path: str, responses: list) -> None:
        self.path = sock_path
        self.responses = list(responses)
        self.requests: list = []
        self._srv = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._srv.bind(sock_path)
        self._srv.listen(4)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while self.responses:
            try:
                conn, _ = self._srv.accept()
            except OSError:
                return
            with conn:
                f = conn.makefile("rb")
                while self.responses:
                    line = f.readline()
                    if not line:
                        break
                    self.requests.append(json.loads(line))
                    action = self.responses.pop(0)
                    if action == "hangup":
                        break  # close without answering
                    conn.sendall(encode_msg(action))

    def close(self) -> None:
        try:
            self._srv.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


class TestClientResilience:
    def test_backoff_is_deterministic_jittered_and_capped(self):
        c = Client("x", client_id="me", backoff_base=0.1, backoff_cap=0.4)
        delays = [c._backoff(i) for i in range(1, 8)]
        assert delays == [Client("x", client_id="me", backoff_base=0.1,
                                 backoff_cap=0.4)._backoff(i)
                          for i in range(1, 8)]
        assert all(0.05 <= d <= 0.4 for d in delays)
        # different identity, different jitter
        other = Client("x", client_id="you", backoff_base=0.1,
                       backoff_cap=0.4)
        assert any(abs(other._backoff(i) - delays[i - 1]) > 1e-9
                   for i in range(1, 8))

    def test_retryable_error_is_retried_terminal_is_not(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        srv = _ScriptedServer(sock, [
            {"ok": False, "id": 1,
             "error": {"code": "queue-full", "message": "later"}},
            {"ok": True, "id": 2, "pong": True},
            {"ok": False, "id": 3,
             "error": {"code": "bad-request", "message": "no"}},
        ])
        try:
            with Client(sock, max_retries=3, backoff_base=0.01,
                        backoff_cap=0.02) as c:
                assert c.ping()  # queue-full absorbed by one retry
                assert c.retries == 1
                with pytest.raises(BadRequestError):
                    c.request({"op": "decompose"})
        finally:
            srv.close()

    def test_connection_loss_reconnects_and_resubmits(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        srv = _ScriptedServer(sock, [
            "hangup",
            {"ok": True, "id": 2, "pong": True},
        ])
        try:
            with Client(sock, max_retries=3, backoff_base=0.01,
                        backoff_cap=0.02) as c:
                assert c.ping()
                assert c.reconnects == 1
            assert len(srv.requests) == 2  # idempotent resubmission
        finally:
            srv.close()

    def test_zero_retries_restores_fail_fast(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        srv = _ScriptedServer(sock, ["hangup"])
        try:
            with Client(sock) as c:
                with pytest.raises(ConnectionError):
                    c.ping()
        finally:
            srv.close()


# ----------------------------------------------------------------------
# warm restart: readiness states, replay, draining refusal
# ----------------------------------------------------------------------
class TestWarmRestart:
    def test_startup_replays_incomplete_entries_byte_identically(
        self, tmp_path, a
    ):
        cfg = service_cfg(tmp_path)

        # run 1: the uninterrupted reference result
        async def reference(svc):
            return await svc.handle(req(a, seed=0), "c")

        ref = run_service(reference, service_cfg(tmp_path / "ref"))

        # simulate a SIGKILL mid-compute: the journal holds the accept,
        # the cache never saw the result
        j = RequestJournal.open(cfg.journal_path)
        j.accept("whatever-fp", req(a, seed=0))
        j.close()

        async def restarted(svc):
            assert svc.state == "starting"
            report = await svc.startup()
            assert svc.state == "ready"
            # the replayed request is now answered from the cache
            r = await svc.handle(req(a, seed=0), "c")
            return report, r, svc.journal.incomplete(), svc.stats()

        report, r, incomplete, stats = run_service(restarted, cfg)
        assert report["replayed"] == 1
        assert stats["counters"]["replays"] == 1
        assert r["served"]["cache"].startswith("hit-")
        assert incomplete == []
        assert json.dumps(r["result"], sort_keys=True) == json.dumps(
            ref["result"], sort_keys=True
        )

    def test_startup_sweeps_cache_orphan_tmp_files(self, tmp_path, a):
        cfg = service_cfg(tmp_path)
        os.makedirs(cfg.cache_dir, exist_ok=True)
        orphan = os.path.join(cfg.cache_dir, "deadbeef.npz.tmp")
        with open(orphan, "w") as f:
            f.write("half-written cache entry")

        async def scenario(svc):
            return await svc.startup()

        report = run_service(scenario, cfg)
        assert report["cache_tmp_swept"] == 1
        assert not os.path.exists(orphan)

    def test_replay_of_an_unservable_entry_is_tombstoned(self, tmp_path):
        cfg = service_cfg(tmp_path)
        j = RequestJournal.open(cfg.journal_path)
        j.accept("gone-fp", {
            "op": "decompose", "k": 2, "seed": 0,
            "matrix": {"path": str(tmp_path / "deleted-since.mtx")},
        })
        j.close()

        async def scenario(svc):
            await svc.startup()
            return svc.journal.incomplete(), svc.stats()

        incomplete, stats = run_service(scenario, cfg)
        assert incomplete == []  # not retained for an infinite replay loop
        assert stats["counters"]["replay_errors"] == 1

    def test_health_op_reports_readiness_state(self, tmp_path):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            before = await svc.handle({"op": "health", "id": 1}, "c")
            await svc.startup()
            after = await svc.handle({"op": "health", "id": 2}, "c")
            return before, after

        before, after = run_service(scenario, cfg)
        assert before["ok"] and before["state"] == "starting"
        assert after["ok"] and after["state"] == "ready"

    def test_draining_refuses_decompose_with_typed_error(self, tmp_path, a):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            await svc.startup()
            drained = await svc.drain(timeout=0.1)
            refused = await svc.handle(req(a, seed=0), "c")
            still_pings = await svc.handle({"op": "ping"}, "c")
            return drained, refused, still_pings

        drained, refused, still_pings = run_service(scenario, cfg)
        assert drained
        assert not refused["ok"]
        assert refused["error"]["code"] == "shutdown-refused"
        assert still_pings["ok"]  # health/ping stay available while draining


# ----------------------------------------------------------------------
# the real thing: SIGKILL a live daemon mid-compute, restart, compare
# ----------------------------------------------------------------------
def _spawn_daemon(state_dir: str, sock: str, faults_spec: str | None = None,
                  trace: str | None = None) -> subprocess.Popen:
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    if faults_spec:
        env["REPRO_FAULTS"] = faults_spec
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--unix", sock, "--workers", "1",
        "--cache-dir", os.path.join(state_dir, "cache"),
        "--journal", os.path.join(state_dir, "journal.ndjson"),
        "--allow-shutdown", "--drain-timeout", "10",
    ]
    if trace:
        argv += ["--trace", trace]
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env,
    )
    ready = proc.stdout.readline()
    assert "listening" in ready, f"daemon failed to start: {ready!r}"
    return proc


def _shm_set() -> set:
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


def _tmp_files(root: str) -> list:
    found = []
    for dirpath, _, names in os.walk(root):
        found.extend(
            os.path.join(dirpath, n) for n in names if n.endswith(".tmp")
        )
    return sorted(found)


class TestSigkillRecovery:
    def test_sigkill_mid_compute_replays_byte_identically(self, tmp_path, a):
        import repro
        from repro.fingerprint import fingerprint
        from repro.partitioner.config import PartitionerConfig

        state = str(tmp_path)
        sock = os.path.join(state, "repro.sock")
        journal = os.path.join(state, "journal.ndjson")
        shm_before = _shm_set()

        # the uninterrupted reference (the daemon's exact config)
        cfg_used = PartitionerConfig(epsilon=0.03).with_(
            n_starts=1, n_workers=1
        )
        golden = repro.decompose(
            a, 4, method="finegrain", config=cfg_used, seed=5
        )
        fp = fingerprint(a, cfg_used, 5, k=4, method="finegrain")

        # daemon 1: the first compute is held open by an injected sleep
        proc = _spawn_daemon(state, sock,
                             faults_spec="serve.compute:sleep2.5@1")
        got: dict = {}

        def rider():
            # this client must ride through the SIGKILL + restart
            with Client(sock, timeout=60.0, max_retries=80,
                        backoff_base=0.05, backoff_cap=0.3) as c:
                r = c.decompose(a, k=4, seed=5)
                got["part"] = r.part
                got["served"] = r.served
                got["reconnects"] = c.reconnects

        t = threading.Thread(target=rider)
        t.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                with open(journal) as f:
                    if fp in f.read():
                        break
            except OSError:
                pass
            time.sleep(0.02)
        else:
            pytest.fail("journal never recorded the accept")
        time.sleep(0.2)  # the request is now held inside serve.compute
        proc.kill()  # SIGKILL: no drain, no tombstone, no cleanup
        proc.wait()
        proc.stdout.close()

        # daemon 2: same state dir, no faults — must replay
        proc = _spawn_daemon(state, sock)
        t.join(timeout=120)
        assert not t.is_alive()
        assert "part" in got, "client never recovered a result"
        assert got["reconnects"] >= 1
        assert np.array_equal(got["part"], golden.part)

        # a fresh request is served from cache, byte-identical, and the
        # daemon acknowledges the replay
        with Client(sock, max_retries=5) as c:
            r = c.decompose(a, k=4, seed=5)
            assert np.array_equal(r.part, golden.part)
            assert r.served["cache"].startswith(("hit-", "deduped"))
            stats = c.stats()
            assert stats["counters"].get("replays", 0) >= 1
            assert c.shutdown()
        proc.wait(timeout=30)
        proc.stdout.close()
        assert proc.returncode == 0

        # nothing leaked: shm segments, journal/cache tmp files
        assert _shm_set() - shm_before == set()
        assert _tmp_files(state) == []

    def test_sigterm_mid_request_seals_the_trace(self, tmp_path, a):
        state = str(tmp_path)
        sock = os.path.join(state, "repro.sock")
        trace = os.path.join(state, "trace.ndjson")
        proc = _spawn_daemon(state, sock,
                             faults_spec="serve.compute:sleep1.5@2",
                             trace=trace)
        with Client(sock, timeout=30.0) as c:
            r = c.decompose(a, k=4, seed=1)
            assert r.part is not None

        def slow_request():
            try:
                with Client(sock, timeout=30.0) as c2:
                    c2.decompose(a, k=4, seed=2)
            except (ServeError, OSError):
                pass  # the daemon is shutting down under us

        t = threading.Thread(target=slow_request)
        t.start()
        time.sleep(0.4)  # request 2 is inside the held compute span
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        proc.stdout.close()
        t.join(timeout=30)
        assert proc.returncode == 0
        # every line parses and the file ends with the shutdown trailer
        lines = [json.loads(s) for s in open(trace).read().splitlines()]
        assert lines, "trace is empty"
        assert lines[-1]["type"] == "shutdown"
        assert any(line["type"] == "request" for line in lines)
