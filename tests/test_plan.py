"""Tests for the communication-plan compiler (plan == simulator, exactly)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_finegrain_model,
    decomposition_from_finegrain,
    decomposition_from_row_partition,
)
from repro.spmv import build_comm_plan, communication_stats, execute_plan
from tests.conftest import sparse_square_matrices


def random_finegrain_dec(a, k, seed):
    model = build_finegrain_model(a)
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, size=model.hypergraph.num_vertices)
    return decomposition_from_finegrain(model, part, k)


class TestPlanConstruction:
    def test_ownership_partitions(self, small_sparse_matrix):
        dec = random_finegrain_dec(small_sparse_matrix, 4, 0)
        plan = build_comm_plan(dec)
        all_nnz = np.concatenate([p.local_nnz for p in plan.processors])
        assert sorted(all_nnz.tolist()) == list(range(dec.nnz))
        all_x = np.concatenate([p.x_owned for p in plan.processors])
        assert sorted(all_x.tolist()) == list(range(dec.m))

    def test_send_recv_mirror(self, small_sparse_matrix):
        dec = random_finegrain_dec(small_sparse_matrix, 4, 1)
        plan = build_comm_plan(dec)
        for p in plan.processors:
            for dst, cols in p.expand_send.items():
                mirror = plan.processors[dst].expand_recv[p.rank]
                assert np.array_equal(cols, mirror)
            for dst, rows in p.fold_send.items():
                mirror = plan.processors[dst].fold_recv[p.rank]
                assert np.array_equal(rows, mirror)

    def test_x_needed_covers_local_columns(self, small_sparse_matrix):
        dec = random_finegrain_dec(small_sparse_matrix, 3, 2)
        plan = build_comm_plan(dec)
        for p in plan.processors:
            needed = set(p.x_needed.tolist())
            local_cols = set(dec.nnz_col[p.local_nnz].tolist())
            assert local_cols <= needed

    def test_per_processor_counters(self, small_sparse_matrix):
        dec = random_finegrain_dec(small_sparse_matrix, 4, 3)
        plan = build_comm_plan(dec)
        stats = plan.stats()
        for p in plan.processors:
            assert p.send_words == int(
                stats.expand_sent[p.rank] + stats.fold_sent[p.rank]
            )
            assert p.recv_words == int(
                stats.expand_recv[p.rank] + stats.fold_recv[p.rank]
            )
            assert p.n_messages == int(
                stats.expand_msgs[p.rank] + stats.fold_msgs[p.rank]
            )


class TestPlanEqualsSimulator:
    @given(sparse_square_matrices(), st.integers(1, 5), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_stats_identical(self, a, k, seed):
        dec = random_finegrain_dec(a, k, seed)
        sim = communication_stats(dec)
        pln = build_comm_plan(dec).stats()
        for field in (
            "expand_sent", "expand_recv", "expand_msgs",
            "fold_sent", "fold_recv", "fold_msgs", "compute",
        ):
            assert np.array_equal(getattr(sim, field), getattr(pln, field)), field

    @given(sparse_square_matrices(), st.integers(1, 4), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_execution_exact(self, a, k, seed):
        a2 = sp.csr_matrix(a)
        a2.eliminate_zeros()
        dec = random_finegrain_dec(a2, k, seed)
        plan = build_comm_plan(dec)
        x = np.random.default_rng(seed).standard_normal(dec.m)
        y = execute_plan(plan, dec, x)
        assert np.allclose(y, a2 @ x)

    def test_rowwise_plan_has_no_fold(self, small_sparse_matrix):
        m = small_sparse_matrix.shape[0]
        dec = decomposition_from_row_partition(
            small_sparse_matrix, np.arange(m) % 4, 4
        )
        plan = build_comm_plan(dec)
        for p in plan.processors:
            assert not p.fold_send and not p.fold_recv

    def test_wrong_x_shape(self, small_sparse_matrix):
        dec = random_finegrain_dec(small_sparse_matrix, 2, 0)
        plan = build_comm_plan(dec)
        with pytest.raises(ValueError, match="wrong shape"):
            execute_plan(plan, dec, np.zeros(3))
