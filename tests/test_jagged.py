"""Tests for the jagged (orthogonal recursive) 2D decomposition."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.models import decompose_2d_jagged, processor_grid
from repro.spmv import communication_stats, simulate_spmv


class TestJagged:
    def test_valid_and_symmetric(self, small_sparse_matrix):
        dec = decompose_2d_jagged(small_sparse_matrix, 4, seed=0)
        assert dec.k == 4
        assert dec.is_symmetric()
        assert dec.nnz == small_sparse_matrix.nnz

    def test_row_stripes_global(self, small_sparse_matrix):
        """All nonzeros of one row live in one processor row (stripe)."""
        k = 4
        dec = decompose_2d_jagged(small_sparse_matrix, k, seed=0)
        r, c = processor_grid(k)
        proc_row = dec.nnz_owner // c
        for i in np.unique(dec.nnz_row):
            sel = dec.nnz_row == i
            assert len(np.unique(proc_row[sel])) == 1

    def test_message_bound(self, small_sparse_matrix):
        k = 8
        dec = decompose_2d_jagged(small_sparse_matrix, k, seed=0)
        stats = communication_stats(dec)
        r, c = processor_grid(k)
        # fold stays within a processor row; expand crosses rows but each
        # x_j is needed only by processors holding column j
        assert stats.max_messages <= 2 * (k - 1)

    def test_numerics(self, small_sparse_matrix):
        dec = decompose_2d_jagged(small_sparse_matrix, 6, seed=0)
        x = np.random.default_rng(1).standard_normal(30)
        assert np.allclose(simulate_spmv(dec, x).y, small_sparse_matrix @ x)

    def test_deterministic(self, small_sparse_matrix):
        d1 = decompose_2d_jagged(small_sparse_matrix, 4, seed=5)
        d2 = decompose_2d_jagged(small_sparse_matrix, 4, seed=5)
        assert np.array_equal(d1.nnz_owner, d2.nnz_owner)

    def test_k1_trivial(self, small_sparse_matrix):
        dec = decompose_2d_jagged(small_sparse_matrix, 1, seed=0)
        assert communication_stats(dec).total_volume == 0

    def test_beats_checkerboard_on_sparse_structure(self):
        """On a structured sparse matrix the volume-minimizing jagged split
        should beat the oblivious checkerboard."""
        from repro.models import decompose_2d_checkerboard

        # hidden block-diagonal structure: a symmetric random permutation
        # interleaves the blocks, so the checkerboard's contiguous stripes
        # cut them while the partitioner re-discovers them
        blocks = [sp.random(40, 40, density=0.2, random_state=i, format="csr")
                  for i in range(4)]
        a = sp.block_diag(blocks, format="csr")
        a = sp.csr_matrix(a + sp.eye(a.shape[0]))
        perm = np.random.default_rng(0).permutation(a.shape[0])
        a = a[perm][:, perm]
        jag = communication_stats(decompose_2d_jagged(a, 4, seed=0))
        chk = communication_stats(decompose_2d_checkerboard(a, 4))
        assert jag.total_volume < chk.total_volume

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            decompose_2d_jagged(sp.csr_matrix((2, 3)), 2)
