"""Tree-parallel recursion, shared worker budget, and shm transport.

The two contracts under test:

1. **Seed-tree determinism** — ``tree_parallel=True`` produces the
   bit-identical partition at any worker count, on any backend, because
   every recursion node's randomness is a pure function of
   ``(root entropy, tree path)`` and never of call order or scheduling.
2. **shm lifecycle** — the engine's process backend ships the hypergraph
   through one shared-memory segment that is guaranteed to be unlinked on
   every exit path, including a crashing start.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest
import scipy.sparse as sp

from tests.conftest import random_hypergraph
from tests.golden import check_golden
from repro._util import as_rng
from repro.core.api import decompose
from repro.hypergraph import Hypergraph
from repro.hypergraph.shm import SharedHypergraph
from repro.partitioner import (
    PartitionerConfig,
    TreeScheduler,
    WorkerBudget,
    partition_hypergraph,
    partition_multistart,
)
from repro.partitioner.engine import _tree_workers
from repro.partitioner.recursive import partition_recursive


def _tree_cfg(workers: int, backend: str, **kw) -> PartitionerConfig:
    # spawn_min_vertices=1 so even tiny test hypergraphs actually ship
    # subtrees to workers instead of short-circuiting inline
    return PartitionerConfig(
        tree_parallel=True,
        n_workers=workers,
        start_backend=backend,
        spawn_min_vertices=1,
        **kw,
    )


# ----------------------------------------------------------------------
# seed-tree determinism: bit-identical at any worker count / backend
# ----------------------------------------------------------------------
SCHEDULES = [(1, "serial"), (2, "thread"), (4, "thread"), (2, "process"), (4, "process")]


@pytest.fixture(scope="module")
def matrix() -> sp.csr_matrix:
    rng = np.random.default_rng(11)
    a = sp.random(50, 50, density=0.12, random_state=rng, format="lil")
    a.setdiag(rng.uniform(0.5, 1.0, 50))
    return sp.csr_matrix(a)


@pytest.mark.parametrize("k", [3, 8, 16])
@pytest.mark.parametrize(
    "method", ["finegrain", "columnnet", "rownet", "graph", "finegrain-rect"]
)
def test_tree_parallel_bit_identical_across_methods(matrix, method, k):
    """Every decompose() method, every schedule: one partition."""
    ref = None
    for workers, backend in SCHEDULES:
        cfg = _tree_cfg(workers, backend)
        res = decompose(matrix, k, method=method, config=cfg, seed=42)
        if ref is None:
            ref = res
        else:
            assert np.array_equal(res.part, ref.part), (method, k, workers, backend)
            assert res.cutsize == ref.cutsize


@pytest.mark.parametrize("k", [3, 8, 16])
@pytest.mark.parametrize("workers,backend", SCHEDULES[1:])
def test_partition_recursive_tree_matches_serial(k, workers, backend):
    """Direct partition_recursive: parallel == serial, and the cut-net
    splitting invariant (sum of bisection cuts == Eq. 3 cutsize) holds."""
    from repro.hypergraph.partition import cutsize_connectivity

    h = random_hypergraph(as_rng(5), 150, 120, weighted=True)
    serial = partition_hypergraph(h, k, _tree_cfg(1, "serial"), seed=9)
    par = partition_hypergraph(h, k, _tree_cfg(workers, backend), seed=9)
    assert np.array_equal(serial.part, par.part)
    assert sum(par.bisection_cuts) == cutsize_connectivity(h, par.part)


def test_tree_parallel_respects_fixed_vertices():
    h = random_hypergraph(as_rng(1), 120, 90)
    fixed = np.full(120, -1, dtype=np.int64)
    fixed[:6] = [0, 1, 2, 3, 0, 1]
    h = Hypergraph(
        h.num_vertices, h.xpins, h.pins,
        vertex_weights=h.vertex_weights, net_costs=h.net_costs, fixed=fixed,
    )
    serial = partition_hypergraph(h, 4, _tree_cfg(1, "serial"), seed=3)
    par = partition_hypergraph(h, 4, _tree_cfg(4, "process"), seed=3)
    assert np.array_equal(serial.part, par.part)
    assert np.array_equal(par.part[:6], fixed[:6])


def test_tree_mode_spawn_knobs_never_change_bits():
    """spawn_depth / spawn_min_vertices are pure scheduling policy."""
    h = random_hypergraph(as_rng(8), 100, 80)
    ref = partition_hypergraph(h, 8, _tree_cfg(1, "serial"), seed=1)
    for depth, minv in [(0, 1), (1, 50), (3, 1), (2, 10**9)]:
        cfg = _tree_cfg(3, "thread", spawn_depth=depth).with_(
            spawn_min_vertices=minv
        )
        res = partition_hypergraph(h, 8, cfg, seed=1)
        assert np.array_equal(res.part, ref.part), (depth, minv)


def test_tree_mode_differs_from_legacy_but_is_self_consistent():
    """tree_parallel=True is its own deterministic universe — repeat runs
    agree; the legacy sequential stream is a different (still pinned)
    universe."""
    h = random_hypergraph(as_rng(4), 100, 80)
    a = partition_hypergraph(h, 8, _tree_cfg(1, "serial"), seed=0)
    b = partition_hypergraph(h, 8, _tree_cfg(1, "serial"), seed=0)
    assert np.array_equal(a.part, b.part)
    legacy = partition_hypergraph(h, 8, seed=0)
    # no bit contract between the modes; quality must stay in family
    assert abs(legacy.cutsize - a.cutsize) <= max(10, legacy.cutsize)


def test_tree_parallel_with_engine_shares_budget():
    """n_starts > 1 + tree_parallel: same bits on serial and process
    engines, and the budget split never exceeds n_workers."""
    h = random_hypergraph(as_rng(6), 150, 130)
    cfg_serial = _tree_cfg(1, "serial").with_(n_starts=3)
    cfg_proc = _tree_cfg(4, "process").with_(n_starts=3)
    rs = partition_multistart(h, 4, cfg_serial, seed=5)
    rp = partition_multistart(h, 4, cfg_proc, seed=5)
    assert np.array_equal(rs.part, rp.part)
    assert rs.cutsize == rp.cutsize


def test_tree_workers_budget_math():
    base = PartitionerConfig(tree_parallel=True)
    # serial engine: the whole budget goes to the tree
    assert _tree_workers(base.with_(n_workers=4, n_starts=3), "serial") == 4
    # parallel engine: starts occupy min(workers, starts) slots
    assert _tree_workers(base.with_(n_workers=4, n_starts=2), "process") == 2
    assert _tree_workers(base.with_(n_workers=4, n_starts=4), "process") == 1
    assert _tree_workers(base.with_(n_workers=8, n_starts=2), "process") == 4
    assert _tree_workers(base.with_(n_workers=2, n_starts=8), "process") == 1
    # legacy recursion never fans out
    assert _tree_workers(
        PartitionerConfig(tree_parallel=False, n_workers=8, n_starts=2), "process"
    ) == 1


# ----------------------------------------------------------------------
# golden pinning: the seed-tree universe must never drift
# ----------------------------------------------------------------------
TREE_GOLDEN_CASES = [
    (nv, nn, hseed, k, seed)
    for nv, nn, hseed in [(60, 50, 0), (200, 160, 2)]
    for k in (2, 8)
    for seed in (0,)
]


@pytest.mark.parametrize("nv,nn,hseed,k,seed", TREE_GOLDEN_CASES)
@pytest.mark.parametrize("workers,backend", [(1, "serial"), (2, "thread"), (4, "process")])
def test_golden_tree_partitions(nv, nn, hseed, k, seed, workers, backend):
    h = random_hypergraph(as_rng(hseed), nv, nn)
    res = partition_hypergraph(h, k, _tree_cfg(workers, backend), seed=seed)
    check_golden(f"tree-{nv}x{nn}-s{hseed}-k{k}-seed{seed}", res.part, res.cutsize)


# ----------------------------------------------------------------------
# scheduler / budget units
# ----------------------------------------------------------------------
def test_worker_budget_slots():
    b = WorkerBudget(2)
    assert b.try_acquire() and b.try_acquire()
    assert not b.try_acquire()
    b.release()
    assert b.try_acquire()
    assert not WorkerBudget(0).try_acquire()


def test_scheduler_declines_below_frontier_and_size():
    cfg = PartitionerConfig(
        tree_parallel=True, n_workers=4, start_backend="thread",
        spawn_depth=2, spawn_min_vertices=100,
    )
    with TreeScheduler(cfg) as sched:
        assert sched.offer(2, 10**6, lambda: None) is None  # too deep
        assert sched.offer(0, 99, lambda: None) is None  # too small
        fut = sched.offer(0, 100, int, "7")
        assert fut is not None and fut.result() == 7


def test_scheduler_serial_backend_is_inert():
    cfg = PartitionerConfig(tree_parallel=True, n_workers=4, start_backend="serial")
    with TreeScheduler(cfg) as sched:
        assert sched.offer(0, 10**6, int, "1") is None


def test_scheduler_survives_task_failure():
    """A crashing subtree task costs wall clock, not the partition."""
    import repro.partitioner.recursive as rec_mod

    h = random_hypergraph(as_rng(2), 150, 120)
    ref = partition_hypergraph(h, 8, _tree_cfg(1, "serial"), seed=4)

    real = rec_mod._solve_subtree
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        raise RuntimeError("injected subtree crash")

    rec_mod._solve_subtree = flaky
    try:
        res = partition_hypergraph(h, 8, _tree_cfg(3, "thread"), seed=4)
    finally:
        rec_mod._solve_subtree = real
    assert calls["n"] > 0, "no subtree was ever offered to the pool"
    assert np.array_equal(res.part, ref.part)


# ----------------------------------------------------------------------
# shared-memory transport
# ----------------------------------------------------------------------
def _segment_gone(meta: dict) -> bool:
    try:
        Hypergraph.from_shm(meta)
    except FileNotFoundError:
        return True
    return False


def test_shm_roundtrip_and_unlink():
    h = random_hypergraph(as_rng(3), 80, 70, weighted=True)
    handle = h.to_shm()
    assert isinstance(handle, SharedHypergraph)
    h2 = Hypergraph.from_shm(handle.meta)
    assert h2 == h
    assert np.array_equal(h2.xnets, h.xnets)
    assert np.array_equal(h2.vnets, h.vnets)
    # attached arrays are read-only views
    with pytest.raises(ValueError):
        h2.pins[0] = 1
    handle.close()
    handle.close()  # idempotent
    assert _segment_gone(handle.meta)


def test_shm_roundtrip_with_fixed():
    h = random_hypergraph(as_rng(9), 40, 30)
    fixed = np.full(40, -1, dtype=np.int64)
    fixed[0] = 2
    h = Hypergraph(40, h.xpins, h.pins, fixed=fixed)
    with h.to_shm() as handle:
        h2 = Hypergraph.from_shm(handle.meta)
        assert np.array_equal(h2.fixed, fixed)


def test_engine_shm_transport_matches_pickle_and_serial():
    h = random_hypergraph(as_rng(0), 200, 170)
    serial = partition_multistart(
        h, 4, PartitionerConfig(n_starts=3, start_backend="serial"), seed=0
    )
    shm = partition_multistart(
        h, 4,
        PartitionerConfig(n_starts=3, n_workers=2, start_backend="process"),
        seed=0,
    )
    pickle_t = partition_multistart(
        h, 4,
        PartitionerConfig(
            n_starts=3, n_workers=2, start_backend="process", shm_transport=False
        ),
        seed=0,
    )
    assert np.array_equal(serial.part, shm.part)
    assert np.array_equal(serial.part, pickle_t.part)


def _crashing_start(k, cfg, seed):
    """Module-level so the process pool can pickle it by reference."""
    raise ValueError("injected start crash")


def test_engine_unlinks_shm_when_a_start_crashes(monkeypatch):
    """Inject a failing start; the segment must not outlive the engine."""
    import repro.partitioner.engine as eng

    h = random_hypergraph(as_rng(1), 150, 120)
    handles = []
    real_to_shm = Hypergraph.to_shm

    def tracking_to_shm(self):
        handle = real_to_shm(self)
        handles.append(handle)
        return handle

    monkeypatch.setattr(Hypergraph, "to_shm", tracking_to_shm)
    monkeypatch.setattr(eng, "_run_start_shm", _crashing_start)
    cfg = PartitionerConfig(n_starts=3, n_workers=2, start_backend="process")
    with pytest.raises(ValueError, match="injected start crash"):
        partition_multistart(h, 4, cfg, seed=0)
    assert handles, "process backend did not use shm transport"
    assert all(_segment_gone(hd.meta) for hd in handles)
    assert not glob.glob("/dev/shm/psm_*")


def test_engine_shm_fallback_when_shm_unavailable(monkeypatch):
    """to_shm raising must degrade to pickle transport, not fail."""

    def broken_to_shm(self):
        raise OSError("no /dev/shm")

    monkeypatch.setattr(Hypergraph, "to_shm", broken_to_shm)
    h = random_hypergraph(as_rng(2), 120, 100)
    cfg = PartitionerConfig(n_starts=2, n_workers=2, start_backend="process")
    serial = partition_multistart(
        h, 4, PartitionerConfig(n_starts=2, start_backend="serial"), seed=1
    )
    res = partition_multistart(h, 4, cfg, seed=1)
    assert np.array_equal(res.part, serial.part)


# ----------------------------------------------------------------------
# config / env knobs
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        PartitionerConfig(spawn_depth=-1)
    with pytest.raises(ValueError):
        PartitionerConfig(spawn_min_vertices=-1)


def test_env_defaults(monkeypatch):
    monkeypatch.setenv("REPRO_TREE_PARALLEL", "1")
    monkeypatch.setenv("REPRO_N_WORKERS", "3")
    monkeypatch.setenv("REPRO_START_BACKEND", "thread")
    cfg = PartitionerConfig()
    assert cfg.tree_parallel and cfg.n_workers == 3
    assert cfg.start_backend == "thread"
    # explicit arguments always win over the environment
    cfg = PartitionerConfig(tree_parallel=False, n_workers=1)
    assert not cfg.tree_parallel and cfg.n_workers == 1


def test_decompose_tree_parallel_override(matrix):
    a = decompose(matrix, 4, method="finegrain", seed=0, tree_parallel=True)
    b = decompose(
        matrix, 4, method="finegrain", seed=0,
        config=PartitionerConfig(tree_parallel=True),
    )
    assert np.array_equal(a.part, b.part)
