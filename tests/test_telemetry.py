"""Tests for the telemetry subsystem: spans, counters, recorders,
exporters, and the end-to-end instrumentation contract (telemetry must
observe the pipeline without changing it)."""

import io
import json
import threading

import numpy as np
import pytest
import scipy.sparse as sp

from repro._util import Timer
from repro.telemetry import (
    NullRecorder,
    SpanRecord,
    TelemetryRecorder,
    get_recorder,
    read_ndjson,
    render_tree,
    set_recorder,
    trace_to_dict,
    use_recorder,
    write_ndjson,
)


@pytest.fixture(autouse=True)
def _restore_default_recorder():
    """Every test starts and ends with the no-op default active."""
    set_recorder(None)
    yield
    set_recorder(None)


def small_matrix(n=60, density=0.08, seed=0):
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=density, random_state=rng, format="lil")
    a.setdiag(1.0)
    return sp.csr_matrix(a)


class TestSpanNesting:
    def test_tree_structure(self):
        rec = TelemetryRecorder()
        with rec.span("a"):
            with rec.span("b"):
                pass
            with rec.span("c"):
                with rec.span("d"):
                    pass
        assert [r.name for r in rec.roots] == ["a"]
        (a,) = rec.roots
        assert [c.name for c in a.children] == ["b", "c"]
        assert [c.name for c in a.children[1].children] == ["d"]

    def test_durations_monotone(self):
        rec = TelemetryRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        outer = rec.roots[0]
        inner = outer.children[0]
        assert outer.t_end is not None and inner.t_end is not None
        assert outer.duration >= inner.duration >= 0.0
        assert outer.self_duration >= 0.0

    def test_exception_marks_and_closes_span(self):
        rec = TelemetryRecorder()
        with pytest.raises(ValueError):
            with rec.span("boom"):
                raise ValueError("x")
        span = rec.roots[0]
        assert span.error == "ValueError"
        assert span.t_end is not None
        # the stack unwound: a new span becomes a fresh root
        with rec.span("after"):
            pass
        assert [r.name for r in rec.roots] == ["boom", "after"]

    def test_attrs_set_late(self):
        rec = TelemetryRecorder()
        with rec.span("s", k=4) as sp_:
            sp_.set(cut=7)
        assert rec.roots[0].attrs == {"k": 4, "cut": 7}

    def test_multiple_roots(self):
        rec = TelemetryRecorder()
        with rec.span("first"):
            pass
        with rec.span("second"):
            pass
        assert [r.name for r in rec.roots] == ["first", "second"]


class TestCounters:
    def test_counters_attach_to_current_span(self):
        rec = TelemetryRecorder()
        with rec.span("outer"):
            rec.add("x", 2)
            with rec.span("inner"):
                rec.add("x", 3)
                rec.add("y")
        outer = rec.roots[0]
        assert outer.counters == {"x": 2}
        assert outer.children[0].counters == {"x": 3, "y": 1}
        assert rec.counter_totals() == {"x": 5, "y": 1}

    def test_orphan_counters(self):
        rec = TelemetryRecorder()
        rec.add("loose", 4)
        rec.gauge("g", 1.5)
        assert rec.counter_totals() == {"loose": 4}
        assert rec.orphan_gauges == {"g": 1.5}

    def test_gauge_last_write_wins(self):
        rec = TelemetryRecorder()
        with rec.span("s"):
            rec.gauge("shrink", 0.5)
            rec.gauge("shrink", 0.4)
        assert rec.roots[0].gauges == {"shrink": 0.4}

    def test_durations_by_name_self_time_partitions_wall_time(self):
        rec = TelemetryRecorder()
        with rec.span("a"):
            with rec.span("b"):
                pass
        by_name = rec.durations_by_name(self_time=True)
        total = rec.roots[0].duration
        assert by_name["a"] + by_name["b"] == pytest.approx(total, abs=1e-6)

    def test_thread_safety(self):
        rec = TelemetryRecorder()
        errors = []

        def work(i):
            try:
                for _ in range(50):
                    with rec.span(f"t{i}"):
                        rec.add("n")
            except Exception as e:  # pragma: no cover
                errors.append(e)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(rec.roots) == 200
        assert rec.counter_totals() == {"n": 200}


class TestNullRecorder:
    def test_noop_surface(self):
        rec = NullRecorder()
        with rec.span("anything", k=1) as sp_:
            sp_.set(a=1).add("c", 2)
            sp_.gauge("g", 0.5)
            assert sp_.duration == 0.0
        rec.add("x")
        rec.gauge("y", 1.0)
        # no state anywhere to assert on — the class has no storage at all
        assert not hasattr(rec, "roots")

    def test_default_recorder_is_null(self):
        assert isinstance(get_recorder(), NullRecorder)
        assert get_recorder().enabled is False

    def test_use_recorder_restores_previous(self):
        base = get_recorder()
        with use_recorder() as rec:
            assert get_recorder() is rec
            assert rec.enabled
        assert get_recorder() is base


class TestTimerShim:
    def test_timer_still_times(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_unnamed_timer_records_nothing(self):
        with use_recorder() as rec:
            with Timer():
                pass
        assert rec.roots == []

    def test_named_timer_records_span(self):
        with use_recorder() as rec:
            with Timer("work", tag=1) as t:
                pass
        assert t.elapsed >= 0.0
        assert [r.name for r in rec.roots] == ["work"]
        assert rec.roots[0].attrs == {"tag": 1}


class TestExporters:
    def _trace(self):
        rec = TelemetryRecorder()
        with rec.span("a", k=4) as sp_:
            sp_.add("pins", 10)
            with rec.span("b"):
                rec.add("pins", 5)
                rec.gauge("shrink", 0.5)
        rec.add("orphan", 1)
        return rec

    def test_render_tree(self):
        rec = self._trace()
        text = render_tree(rec)
        assert "a" in text and "b" in text and "k=4" in text
        assert "pins=10" in text and "shrink=0.5" in text

    def test_render_tree_max_depth(self):
        rec = self._trace()
        text = render_tree(rec, max_depth=0)
        assert "b" not in text.replace("nested", "")
        assert "1 nested span(s)" in text

    def test_ndjson_roundtrip(self):
        rec = self._trace()
        buf = io.StringIO()
        n = write_ndjson(rec, buf)
        lines = buf.getvalue().strip().split("\n")
        assert len(lines) == n == 3  # header + 2 spans
        for line in lines:  # every line parses
            json.loads(line)
        buf.seek(0)
        roots, orphans = read_ndjson(buf)
        assert orphans == {"orphan": 1}
        (a,) = roots
        assert a.name == "a" and a.attrs == {"k": 4}
        assert a.counters == {"pins": 10}
        (b,) = a.children
        assert b.name == "b"
        assert b.counters == {"pins": 5} and b.gauges == {"shrink": 0.5}
        assert a.duration == pytest.approx(rec.roots[0].duration)

    def test_ndjson_file_path(self, tmp_path):
        rec = self._trace()
        path = str(tmp_path / "trace.ndjson")
        write_ndjson(rec, path)
        roots, _ = read_ndjson(path)
        assert roots[0].name == "a"

    def test_trace_to_dict_is_json_ready(self):
        rec = self._trace()
        d = trace_to_dict(rec)
        text = json.dumps(d)  # must not raise
        back = json.loads(text)
        assert back["counters"] == {"pins": 15, "orphan": 1}
        assert set(back["phases"]) == {"a", "b"}
        assert [s["name"] for s in back["spans"]] == ["a", "b"]


class TestPipelineIntegration:
    def test_partition_bit_identical_with_and_without_telemetry(self):
        from repro.core.finegrain import build_finegrain_model
        from repro.partitioner import partition_hypergraph

        a = small_matrix()
        h = build_finegrain_model(a).hypergraph
        base = partition_hypergraph(h, 4, seed=123)
        again = partition_hypergraph(h, 4, seed=123)
        np.testing.assert_array_equal(base.part, again.part)
        with use_recorder():
            traced = partition_hypergraph(h, 4, seed=123)
        np.testing.assert_array_equal(base.part, traced.part)
        assert traced.cutsize == base.cutsize

    def test_partition_trace_covers_all_phases(self):
        from repro.core.finegrain import build_finegrain_model
        from repro.partitioner import partition_hypergraph

        a = small_matrix()
        h = build_finegrain_model(a).hypergraph
        with use_recorder() as rec:
            partition_hypergraph(h, 4, seed=0)
        names = {s.name for root in rec.roots for s, _ in root.walk()}
        for expected in (
            "partition",
            "partition.run",
            "bisection",
            "coarsen",
            "coarsen.level",
            "initial",
            "refine.fm",
            "uncoarsen",
        ):
            assert expected in names, f"missing span {expected!r}"
        totals = rec.counter_totals()
        assert totals.get("fm.passes", 0) > 0
        assert totals.get("coarsen.pins_visited", 0) > 0

    def test_spmv_counters_match_communication_stats(self):
        from repro.core.api import decompose_2d_finegrain
        from repro.spmv import communication_stats

        a = small_matrix()
        dec, _ = decompose_2d_finegrain(a, 4, seed=0)
        with use_recorder() as rec:
            stats = communication_stats(dec)
        totals = rec.counter_totals()
        assert totals["spmv.expand.words"] == stats.expand_volume
        assert totals["spmv.fold.words"] == stats.fold_volume
        assert totals["spmv.expand.msgs"] == int(stats.expand_msgs.sum())
        assert totals["spmv.fold.msgs"] == int(stats.fold_msgs.sum())

    def test_parallel_spmv_planned_counters_match_stats(self):
        from repro.core.api import decompose_2d_finegrain
        from repro.spmv import communication_stats
        from repro.spmv.parallel import parallel_spmv

        a = small_matrix(n=30)
        dec, _ = decompose_2d_finegrain(a, 2, seed=0)
        x = np.random.default_rng(1).standard_normal(dec.n)
        stats = communication_stats(dec)
        with use_recorder() as rec:
            y = parallel_spmv(dec, x)
        np.testing.assert_allclose(y, a @ x, atol=1e-10)
        root = rec.roots[0]
        assert root.name == "spmv.parallel"
        assert root.counters["spmv.expand.words"] == stats.expand_volume
        assert root.counters["spmv.fold.words"] == stats.fold_volume

    def test_bench_runner_profile_breakdown(self):
        from repro.bench.runner import run_instance

        a = small_matrix()
        r = run_instance(a, "tiny", 2, "finegrain2d", n_seeds=1, profile=True)
        assert r.phase_times and r.counters
        assert "refine.fm" in r.phase_times
        assert r.counters.get("fm.passes", 0) > 0
        # un-profiled rows stay lean
        r0 = run_instance(a, "tiny", 2, "finegrain2d", n_seeds=1)
        assert r0.phase_times is None and r0.counters is None


class TestProfileCli:
    def test_profile_command(self, tmp_path, capsys):
        from repro.cli import main

        trace = str(tmp_path / "t.ndjson")
        jout = str(tmp_path / "t.json")
        code = main([
            "profile", "collection:sherman3@0.05", "-k", "4",
            "--trace", trace, "--json", jout,
        ])
        assert code == 0
        out = capsys.readouterr().out
        for phase in ("partition", "coarsen", "initial", "refine.fm",
                      "spmv.simulate", "hot phases", "counters:"):
            assert phase in out
        roots, _ = read_ndjson(trace)
        names = {s.name for root in roots for s, _ in root.walk()}
        assert {"partition", "coarsen", "initial", "refine.fm"} <= names
        assert all(
            s.duration >= 0 for root in roots for s, _ in root.walk()
        )
        flat = json.load(open(jout))
        assert flat["phases"] and flat["counters"]
