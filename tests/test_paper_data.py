"""Tests for the transcribed paper data and the EXPERIMENTS.md writer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.bench.experiments import render_experiments_md
from repro.bench.paper_data import PAPER_OVERALL, PAPER_TABLE2, paper_row
from repro.bench.runner import InstanceResult
from repro.matrix.collection import collection_names


class TestPaperTable2:
    def test_full_grid_transcribed(self):
        """14 matrices x 3 K x 3 models = 126 cell blocks."""
        assert len(PAPER_TABLE2) == 126
        matrices = {r.matrix for r in PAPER_TABLE2}
        assert matrices == set(collection_names())
        assert {r.k for r in PAPER_TABLE2} == {16, 32, 64}

    def test_lookup(self):
        r = paper_row("ken-11", 16, "finegrain2d")
        assert r.tot == 0.14 and r.msgs == 10.79
        with pytest.raises(KeyError):
            paper_row("nope", 16, "graph")

    def test_averages_match_paper_overall(self):
        """Recomputing the overall averages from the transcribed per-instance
        data must land on the paper's own 'overall average' row — a strong
        transcription check."""
        for model, (tot, mx, msgs, _time) in PAPER_OVERALL.items():
            rows = [r for r in PAPER_TABLE2 if r.model == model]
            assert len(rows) == 42
            assert np.mean([r.tot for r in rows]) == pytest.approx(tot, abs=0.011)
            assert np.mean([r.max for r in rows]) == pytest.approx(mx, abs=0.011)
            assert np.mean([r.msgs for r in rows]) == pytest.approx(msgs, abs=0.05)

    def test_headline_claims_hold_in_paper_data(self):
        """The paper's §4 claims must follow from its own Table 2."""
        tot = {
            m: np.mean([r.tot for r in PAPER_TABLE2 if r.model == m])
            for m in ("graph", "hypergraph1d", "finegrain2d")
        }
        impr_g = 100 * (tot["graph"] - tot["finegrain2d"]) / tot["graph"]
        impr_h = 100 * (tot["hypergraph1d"] - tot["finegrain2d"]) / tot["hypergraph1d"]
        assert impr_g == pytest.approx(59, abs=2)
        assert impr_h == pytest.approx(43, abs=2)

    def test_finegrain_wins_every_instance(self):
        """Table 2: 2D never loses on total volume (§4: 'substantially
        better partitions ... at each instance')."""
        by = {(r.matrix, r.k, r.model): r for r in PAPER_TABLE2}
        for (matrix, k, model), r in by.items():
            if model != "finegrain2d":
                continue
            assert r.tot <= by[(matrix, k, "graph")].tot
            assert r.tot <= by[(matrix, k, "hypergraph1d")].tot

    def test_message_bounds_in_paper_data(self):
        for r in PAPER_TABLE2:
            bound = 2 * (r.k - 1) if r.model == "finegrain2d" else r.k - 1
            assert r.msgs <= bound + 1e-9


class TestExperimentsWriter:
    def make_results(self):
        out = []
        for model, tot in [("graph", 0.5), ("hypergraph1d", 0.4), ("finegrain2d", 0.2)]:
            out.append(
                InstanceResult("sherman3", 16, model, 2, tot, tot / 4,
                               5.0, 0.5 if model == "graph" else 1.5, 0.01, 100)
            )
        return out

    def test_renders_measured_and_paper(self):
        a = sp.eye(10, format="csr")
        text = render_experiments_md(
            self.make_results(), {"sherman3": a}, scale=0.1, n_seeds=2
        )
        assert "# EXPERIMENTS" in text
        assert "0.20 (0.25)" in text  # measured (paper) for finegrain tot
        assert "Table 1" in text and "Table 2" in text
        assert "headline claims" in text

    def test_handles_unknown_matrix(self):
        a = sp.eye(4, format="csr")
        results = [InstanceResult("custom", 16, "graph", 1, 0.3, 0.1, 4.0, 0.2, 0.0, 9)]
        text = render_experiments_md(results, {"custom": a}, 0.5, 1)
        assert "custom" in text
