"""Tests for the FM gain-bucket priority structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioner.gainbucket import GainBucket


class TestBasics:
    def test_insert_and_best(self):
        b = GainBucket(5, 10)
        b.insert(0, 3)
        b.insert(1, -2)
        b.insert(2, 7)
        assert b.best() == 2
        assert b.max_gain() == 7
        assert len(b) == 3

    def test_pop_best_removes(self):
        b = GainBucket(3, 5)
        b.insert(0, 1)
        b.insert(1, 5)
        assert b.pop_best() == 1
        assert b.best() == 0
        assert len(b) == 1

    def test_remove_middle_of_list(self):
        b = GainBucket(4, 5)
        for v in (0, 1, 2):
            b.insert(v, 2)
        b.remove(1)
        got = {b.pop_best(), b.pop_best()}
        assert got == {0, 2}
        assert b.best() is None

    def test_adjust_moves_bucket(self):
        b = GainBucket(2, 10)
        b.insert(0, 1)
        b.insert(1, 2)
        b.adjust(0, 5)
        assert b.best() == 0
        b.adjust(0, -10)
        assert b.best() == 1

    def test_feasibility_filter(self):
        b = GainBucket(4, 5)
        b.insert(0, 5)
        b.insert(1, 3)
        b.insert(2, 1)
        assert b.best(lambda v: v != 0) == 1
        assert b.pop_best(lambda v: v == 2) == 2

    def test_best_empty(self):
        b = GainBucket(3, 5)
        assert b.best() is None
        assert b.pop_best() is None
        assert b.max_gain() is None

    def test_contains(self):
        b = GainBucket(2, 2)
        b.insert(0, 0)
        assert b.contains(0)
        assert not b.contains(1)

    def test_double_insert_rejected(self):
        b = GainBucket(2, 2)
        b.insert(0, 0)
        with pytest.raises(ValueError, match="already"):
            b.insert(0, 1)

    def test_remove_absent_rejected(self):
        b = GainBucket(2, 2)
        with pytest.raises(ValueError, match="not in bucket"):
            b.remove(1)

    def test_gain_out_of_range_rejected(self):
        b = GainBucket(2, 2)
        with pytest.raises(ValueError, match="outside bucket range"):
            b.insert(0, 3)

    def test_negative_max_gain_rejected(self):
        with pytest.raises(ValueError):
            GainBucket(1, -1)


class TestAgainstReference:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["ins", "pop", "adj"]), st.integers(0, 19),
                      st.integers(-8, 8)),
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_dict_reference(self, ops):
        """Every op sequence behaves like a dict-based reference model."""
        n, mg = 20, 30
        b = GainBucket(n, mg)
        ref: dict[int, int] = {}
        for op, v, g in ops:
            if op == "ins" and v not in ref:
                b.insert(v, g)
                ref[v] = g
            elif op == "pop" and ref:
                got = b.pop_best()
                best_gain = max(ref.values())
                assert ref[got] == best_gain
                del ref[got]
            elif op == "adj" and v in ref:
                if abs(ref[v] + g) <= mg:
                    b.adjust(v, g)
                    ref[v] += g
        assert len(b) == len(ref)
        if ref:
            assert b.max_gain() == max(ref.values())
