"""Tests for the command-line interface."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cli import load_matrix_arg, main
from repro.matrix.io import write_matrix_market


@pytest.fixture
def mtx_file(tmp_path, small_sparse_matrix):
    p = tmp_path / "m.mtx"
    write_matrix_market(small_sparse_matrix, p)
    return str(p)


class TestLoadMatrixArg:
    def test_from_file(self, mtx_file, small_sparse_matrix):
        a = load_matrix_arg(mtx_file)
        assert abs(a - small_sparse_matrix).max() < 1e-14

    def test_from_collection(self):
        a = load_matrix_arg("collection:sherman3@0.05")
        assert a.shape[0] > 0

    def test_collection_default_scale(self):
        a = load_matrix_arg("collection:bcspwr10@0.02")
        assert a.shape[0] == 106


class TestCommands:
    def test_info(self, mtx_file, capsys):
        assert main(["info", mtx_file]) == 0
        out = capsys.readouterr().out
        assert "30" in out

    @pytest.mark.parametrize(
        "model", ["finegrain2d", "hypergraph1d", "rownet1d", "graph",
                  "checkerboard", "jagged"]
    )
    def test_partition_models(self, mtx_file, capsys, model):
        assert main(["partition", mtx_file, "-k", "4", "--model", model]) == 0
        out = capsys.readouterr().out
        assert "K=4" in out
        assert "scaled:" in out

    def test_partition_then_spmv_roundtrip(self, mtx_file, tmp_path, capsys):
        dec_file = str(tmp_path / "dec.npz")
        assert main([
            "partition", mtx_file, "-k", "4", "--output", dec_file,
        ]) == 0
        assert main(["spmv", mtx_file, dec_file]) == 0
        out = capsys.readouterr().out
        assert "matches serial product: True" in out

    def test_spmv_exit_code_reflects_verification(self, mtx_file, tmp_path):
        # corrupt decomposition: mismatched owners still produce a valid
        # simulation (ownership is arbitrary), so verification passes; this
        # asserts the happy path exit code only
        dec_file = str(tmp_path / "dec.npz")
        main(["partition", mtx_file, "-k", "2", "--output", dec_file])
        assert main(["spmv", mtx_file, dec_file, "--seed", "5"]) == 0
