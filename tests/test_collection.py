"""Tests for the synthesized test-matrix collection (Table 1 fidelity)."""

import numpy as np
import pytest

from repro.matrix import (
    COLLECTION,
    collection_names,
    load_collection_matrix,
    matrix_stats,
    paper_table1,
)


class TestRegistry:
    def test_fourteen_matrices_in_paper_order(self):
        names = collection_names()
        assert len(names) == 14
        assert names[0] == "sherman3"
        assert names[-1] == "finan512"
        # Table 1 is ordered by increasing nonzeros
        nnzs = [COLLECTION[n].paper.nnz for n in names]
        assert nnzs == sorted(nnzs)

    def test_paper_table1_stats(self):
        stats = {s.name: s for s in paper_table1()}
        assert stats["ken-11"].rows == 14694
        assert stats["ken-11"].nnz == 82454
        assert stats["finan512"].max_per_rowcol == 1449
        assert stats["sherman3"].avg_per_rowcol == pytest.approx(4.00)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown collection matrix"):
            load_collection_matrix("nosuch")

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            load_collection_matrix("sherman3", scale=0)
        with pytest.raises(ValueError, match="scale"):
            load_collection_matrix("sherman3", scale=1.5)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["sherman3", "ken-11", "pltexpA4-6"])
    def test_same_args_same_matrix(self, name):
        a = load_collection_matrix(name, scale=0.2, seed=3)
        b = load_collection_matrix(name, scale=0.2, seed=3)
        assert (a != b).nnz == 0

    def test_different_seeds_differ(self):
        a = load_collection_matrix("cq9", scale=0.2, seed=0)
        b = load_collection_matrix("cq9", scale=0.2, seed=1)
        assert (a != b).nnz > 0

    def test_names_decorrelated(self):
        a = load_collection_matrix("cre-b", scale=0.2, seed=0)
        b = load_collection_matrix("cre-d", scale=0.2, seed=0)
        assert a.shape != b.shape or (a != b).nnz > 0


class TestFidelity:
    """Generated matrices must sit near the paper's Table 1 statistics."""

    @pytest.mark.parametrize("name", collection_names())
    def test_full_scale_stats_close(self, name):
        a = load_collection_matrix(name, scale=1.0, seed=0)
        s = matrix_stats(a, name)
        p = COLLECTION[name].paper
        assert s.rows == pytest.approx(p.rows, rel=0.02)
        assert s.nnz == pytest.approx(p.nnz, rel=0.15)
        assert s.avg_per_rowcol == pytest.approx(p.avg_per_rowcol, rel=0.15)
        assert s.min_per_rowcol >= 1
        # max degree within a factor 2 band (structure class, not identity)
        assert p.max_per_rowcol / 2.5 <= s.max_per_rowcol <= p.max_per_rowcol * 1.2

    @pytest.mark.parametrize("name", ["sherman3", "ken-11", "vibrobox"])
    def test_scaled_preserves_density(self, name):
        full = matrix_stats(load_collection_matrix(name, scale=1.0, seed=0))
        small = matrix_stats(load_collection_matrix(name, scale=0.25, seed=0))
        assert small.rows < full.rows
        assert small.avg_per_rowcol == pytest.approx(
            full.avg_per_rowcol, rel=0.35
        )
