"""Tests for the Figure-1 dependency view and partition rendering."""

import numpy as np
import pytest

from repro.core import build_finegrain_model, decomposition_from_finegrain
from repro.core.render import render_dependency_view, render_partitioned_matrix


class TestDependencyView:
    def test_figure1_content(self, paper_figure1_matrix):
        model = build_finegrain_model(paper_figure1_matrix)
        text = render_dependency_view(model, row=1, col=3)
        assert "column-net n_3" in text
        assert "row-net m_1" in text
        assert "3 pins" in text
        assert "4 pins" in text
        # the fold equation of Figure 1: y_1 = y_1^0 + y_1^1 + y_1^2 + y_1^3
        assert "fold: y_1 = y_1^0 + y_1^1 + y_1^2 + y_1^3" in text

    def test_dummy_marked(self, paper_figure1_matrix):
        model = build_finegrain_model(paper_figure1_matrix)
        # column 4 has only the off-diagonal (4,3): its diagonal is a dummy
        text = render_dependency_view(model, row=4, col=4)
        assert "(dummy)" in text

    def test_out_of_range(self, paper_figure1_matrix):
        model = build_finegrain_model(paper_figure1_matrix)
        with pytest.raises(ValueError):
            render_dependency_view(model, row=99, col=0)


class TestPartitionedMatrix:
    def test_render_grid(self, paper_figure1_matrix):
        model = build_finegrain_model(paper_figure1_matrix)
        part = np.zeros(model.hypergraph.num_vertices, dtype=np.int64)
        part[0] = 1
        dec = decomposition_from_finegrain(model, part, 2)
        text = render_partitioned_matrix(dec)
        lines = text.splitlines()
        assert len(lines) == 5 + 2  # 5 matrix rows + 2 legend lines
        assert set("".join(lines[:5])) <= set(".01")
        assert lines[5].startswith("x owner:")

    def test_too_large_rejected(self, small_sparse_matrix):
        model = build_finegrain_model(small_sparse_matrix)
        part = np.zeros(model.hypergraph.num_vertices, dtype=np.int64)
        dec = decomposition_from_finegrain(model, part, 1)
        with pytest.raises(ValueError, match="too large"):
            render_partitioned_matrix(dec, max_size=10)
