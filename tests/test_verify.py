"""Invariant oracles, decompose(verify=...), the verify CLI, and replay.

The oracles must do two jobs: pass on everything the partitioner actually
produces (the e2e equivalence sweep) and *fail loudly* on deliberately
corrupted inputs (every corruption test below tampers one thing and
asserts the report names a failing check).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
import scipy.sparse as sp

from tests.conftest import random_hypergraph
from repro._util import as_rng
from repro.cli import main as cli_main
from repro.core.api import decompose
from repro.core.finegrain import build_finegrain_model
from repro.matrix.io import write_matrix_market
from repro.spmv import communication_stats
from repro.verify import (
    VerificationError,
    check_all,
    check_decomposition,
    check_partition,
    oracle_volume,
    verify_decompose,
)
from repro.verify.replay import (
    ReplayRun,
    _first_divergence,
    replay_decompose,
    write_replay_report,
)

ALL_METHODS = ["finegrain", "finegrain-rect", "columnnet", "rownet", "graph"]


@pytest.fixture(scope="module")
def matrix() -> sp.csr_matrix:
    rng = np.random.default_rng(7)
    a = sp.random(40, 40, density=0.1, random_state=rng, format="lil")
    a.setdiag(rng.uniform(0.5, 1.0, 40))
    return sp.csr_matrix(a)


# ----------------------------------------------------------------------
# e2e equivalence: every method passes its own oracle audit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ALL_METHODS)
def test_verify_decompose_passes_every_method(matrix, method):
    res = decompose(matrix, 4, method=method, seed=0)
    report = verify_decompose(matrix, res)
    assert report.passed, report.summary()
    # the Eq. 3 equivalence is the paper's theorem: it must be among the
    # checks that actually ran, not silently skipped
    assert any(c.name == "volume.equals_cutsize" for c in report.checks)


@pytest.mark.parametrize("method", ["finegrain", "finegrain-rect"])
def test_eq3_cutsize_equals_simulated_volume(matrix, method):
    """Eq. 3 == expand+fold volume, via oracle AND simulator independently."""
    res = decompose(matrix, 4, method=method, seed=1)
    vol = oracle_volume(res.decomposition)
    stats = communication_stats(res.decomposition)
    assert vol["total"] == stats.total_volume == res.cutsize


def test_verify_decompose_edge_cases():
    """Empty rows, empty columns and zero diagonals survive every model."""
    rows = [0, 0, 1, 2, 4, 4, 5]
    cols = [1, 2, 0, 4, 0, 2, 3]
    a = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(6, 6))
    for method in ALL_METHODS:
        res = decompose(a, 2, method=method, seed=0)
        report = verify_decompose(a, res)
        assert report.passed, f"{method}: {report.summary()}"


def test_verify_decompose_rectangular():
    a = sp.random(20, 31, density=0.15, random_state=3, format="csr")
    res = decompose(a, 3, method="finegrain-rect", seed=0)
    report = verify_decompose(a, res)
    assert report.passed, report.summary()


def test_verify_decompose_unknown_method(matrix):
    res = decompose(matrix, 4, method="finegrain", seed=0)
    res.method = "quantum"
    report = verify_decompose(matrix, res)
    assert not report.passed
    assert any(c.name == "method.known" for c in report.failures)


# ----------------------------------------------------------------------
# corruption detection: each tamper must trip a named check
# ----------------------------------------------------------------------
def _finegrain_setup(matrix, k=4, seed=0):
    res = decompose(matrix, k, method="finegrain", seed=seed)
    model = build_finegrain_model(matrix, consistency=True)
    return model, res


def test_check_partition_detects_out_of_range(matrix):
    model, res = _finegrain_setup(matrix)
    bad = res.part.copy()
    bad[0] = 99
    report = check_partition(model.hypergraph, bad, res.k)
    assert not report.passed
    assert any(c.name == "partition.valid" for c in report.failures)


def test_check_partition_detects_wrong_reported_cutsize(matrix):
    model, res = _finegrain_setup(matrix)
    report = check_partition(
        model.hypergraph, res.part, res.k, expected_cutsize=res.cutsize + 1
    )
    assert any(c.name == "partition.cutsize" for c in report.failures)


def test_check_partition_detects_imbalance_when_strict(matrix):
    model, res = _finegrain_setup(matrix)
    # cram everything into part 0: violates Eq. 1 at any sane epsilon
    bad = np.zeros_like(res.part)
    report = check_partition(
        model.hypergraph, bad, res.k, strict_balance=True, epsilon=0.03
    )
    assert any(c.name == "partition.balance" for c in report.failures)


def test_check_all_detects_moved_vertex(matrix):
    """Moving one vertex breaks the cutsize==volume seam somewhere."""
    model, res = _finegrain_setup(matrix)
    bad = res.part.copy()
    bad[0] = (bad[0] + 1) % res.k
    report = check_all(
        model.hypergraph,
        bad,
        res.k,
        model=model,
        dec=res.decomposition,
        expected_cutsize=res.cutsize,
        cut_equals_volume=True,
    )
    assert not report.passed


def test_check_decomposition_detects_tampered_owner(matrix):
    import dataclasses

    _, res = _finegrain_setup(matrix)
    owner = res.decomposition.nnz_owner.copy()
    owner[:3] = (owner[:3] + 1) % res.decomposition.k
    dec = dataclasses.replace(res.decomposition, nnz_owner=owner)
    report = check_all(
        build_finegrain_model(matrix, consistency=True).hypergraph,
        res.part,
        res.k,
        dec=dec,
        expected_cutsize=res.cutsize,
        cut_equals_volume=True,
    )
    assert not report.passed
    assert any(c.name == "volume.equals_cutsize" for c in report.failures)


def test_report_raise_if_failed(matrix):
    model, res = _finegrain_setup(matrix)
    bad = res.part.copy()
    bad[0] = -5
    report = check_partition(model.hypergraph, bad, res.k)
    with pytest.raises(VerificationError, match="partition.valid"):
        report.raise_if_failed()
    # a passing report must not raise
    check_partition(model.hypergraph, res.part, res.k).raise_if_failed()


def test_report_to_dict_and_str(matrix):
    model, res = _finegrain_setup(matrix)
    report = check_partition(model.hypergraph, res.part, res.k)
    doc = report.to_dict()
    assert doc["passed"] is True
    assert len(doc["checks"]) == len(report.checks)
    assert "[ok" in str(report.checks[0])


# ----------------------------------------------------------------------
# decompose(verify=...) wiring
# ----------------------------------------------------------------------
def test_decompose_verify_true_attaches_report(matrix):
    res = decompose(matrix, 4, method="finegrain", seed=0, verify=True)
    assert res.verification is not None and res.verification.passed


def test_decompose_verify_default_off(matrix):
    res = decompose(matrix, 4, method="finegrain", seed=0)
    assert res.verification is None


def test_decompose_verify_env_default(matrix, monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "1")
    res = decompose(matrix, 4, method="columnnet", seed=0)
    assert res.verification is not None and res.verification.passed
    # explicit argument wins over the environment
    res = decompose(matrix, 4, method="columnnet", seed=0, verify=False)
    assert res.verification is None


# ----------------------------------------------------------------------
# CLI: partition --verify, the verify command, tampered files
# ----------------------------------------------------------------------
@pytest.fixture
def mtx_file(tmp_path, matrix):
    p = tmp_path / "m.mtx"
    write_matrix_market(matrix, p)
    return str(p)


def test_cli_partition_verify_and_verify_command(mtx_file, tmp_path, capsys):
    out_npz = str(tmp_path / "dec.npz")
    assert cli_main([
        "partition", mtx_file, "-k", "4", "--verify", "--output", out_npz,
    ]) == 0
    assert "checks passed" in capsys.readouterr().out
    data = np.load(out_npz)
    assert str(data["method"]) == "finegrain"
    assert int(data["n"]) == 40 and int(data["m"]) == 40
    assert cli_main(["verify", mtx_file, out_npz]) == 0
    assert "checks passed" in capsys.readouterr().out


def test_cli_verify_detects_tampered_partition(mtx_file, tmp_path, capsys):
    out_npz = str(tmp_path / "dec.npz")
    assert cli_main(["partition", mtx_file, "-k", "4", "--output", out_npz]) == 0
    data = dict(np.load(out_npz))
    owner = data["nnz_owner"].copy()
    owner[:4] = (owner[:4] + 1) % int(data["k"])
    data["nnz_owner"] = owner
    bad_npz = str(tmp_path / "bad.npz")
    np.savez(bad_npz, **data)
    assert cli_main(["verify", mtx_file, bad_npz]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_verify_ownership_only_file(mtx_file, tmp_path, capsys):
    """Files from non-partitioner models (no part array) still audit."""
    out_npz = str(tmp_path / "cb.npz")
    assert cli_main([
        "partition", mtx_file, "-k", "4", "--model", "checkerboard",
        "--verify", "--output", out_npz,
    ]) == 0
    assert cli_main(["verify", mtx_file, out_npz]) == 0


def test_cli_spmv_rectangular_roundtrip(tmp_path, capsys):
    """Regression: spmv used to rebuild the decomposition without n and
    size the input vector by rows — both wrong for rectangular matrices."""
    a = sp.random(18, 27, density=0.2, random_state=5, format="csr")
    mtx = str(tmp_path / "rect.mtx")
    write_matrix_market(a, mtx)
    res = decompose(a, 3, method="finegrain-rect", seed=0)
    dec = res.decomposition
    npz = str(tmp_path / "rect.npz")
    np.savez(
        npz,
        k=dec.k, m=dec.m, n=dec.n,
        nnz_owner=dec.nnz_owner, x_owner=dec.x_owner, y_owner=dec.y_owner,
        part=res.part, cutsize=res.cutsize, method=res.method,
    )
    assert cli_main(["spmv", mtx, npz]) == 0
    assert "matches serial product: True" in capsys.readouterr().out
    assert cli_main(["verify", mtx, npz]) == 0


# ----------------------------------------------------------------------
# differential replay
# ----------------------------------------------------------------------
def test_replay_small_grid_bit_identical(matrix):
    from repro.verify.replay import ReplayVariant

    variants = [
        ReplayVariant("serial", "serial", False, False),
        ReplayVariant("thread", "thread", False, False),
        ReplayVariant("serial+tree", "serial", False, True),
        ReplayVariant("thread+tree", "thread", False, True),
    ]
    rep = replay_decompose(
        matrix, 4, seed=0, n_starts=2, n_workers=2, variants=variants,
        matrix_label="m40",
    )
    assert rep.passed, rep.summary()
    assert len(rep.runs) == 4
    # the two universes are allowed (and expected) to differ from each other
    shas = {r.universe: r.part_sha for r in rep.runs}
    assert set(shas) == {"legacy", "tree"}


def test_replay_detects_divergence_and_reports_first_stage():
    ref = ReplayRun("serial", "serial", False, False, "legacy",
                    cutsize=10, part_sha="aaa", bisection_cuts=[4, 3, 3])
    same = ReplayRun("thread", "thread", False, False, "legacy",
                     cutsize=10, part_sha="aaa", bisection_cuts=[4, 3, 3])
    bad_rng = ReplayRun("process", "process", False, False, "legacy",
                        cutsize=10, part_sha="bbb", bisection_cuts=[4, 9, 3])
    bad_part = ReplayRun("shm", "process", True, False, "legacy",
                         cutsize=10, part_sha="bbb", bisection_cuts=[4, 3, 3])
    assert _first_divergence(same, ref) is None
    d = _first_divergence(bad_rng, ref)
    assert d.stage == "bisection_cuts" and "bisection 1" in d.detail
    assert _first_divergence(bad_part, ref).stage == "part"


def test_replay_records_variant_errors(matrix, monkeypatch):
    """A variant that cannot run becomes an error divergence, not a crash."""
    import repro.core.api as api_mod

    real = api_mod.decompose
    from repro.verify.replay import ReplayVariant

    def flaky(a, k, method="finegrain", config=None, **kw):
        if config is not None and config.start_backend == "thread":
            raise RuntimeError("injected variant failure")
        return real(a, k, method=method, config=config, **kw)

    monkeypatch.setattr(api_mod, "decompose", flaky)
    rep = replay_decompose(
        matrix, 2, seed=0, n_starts=2, n_workers=2,
        variants=[
            ReplayVariant("serial", "serial", False, False),
            ReplayVariant("thread", "thread", False, False),
        ],
    )
    assert not rep.passed
    assert any(d.stage == "error" for d in rep.divergences)
    assert "DIVERGENCE" in rep.summary()


def test_write_replay_report(tmp_path, matrix):
    from repro.verify.replay import ReplayVariant

    rep = replay_decompose(
        matrix, 2, seed=0, n_starts=1, n_workers=1,
        variants=[ReplayVariant("serial", "serial", False, False)],
    )
    path = str(tmp_path / "replay.json")
    write_replay_report(path, [rep])
    with open(path) as f:
        doc = json.load(f)
    assert doc["passed"] is True
    assert doc["reports"][0]["runs"][0]["label"] == "serial"


# ----------------------------------------------------------------------
# oracles on raw hypergraphs (no matrix in sight)
# ----------------------------------------------------------------------
def test_check_partition_on_plain_hypergraph():
    h = random_hypergraph(as_rng(0), 60, 50, weighted=True)
    from repro.partitioner import partition_hypergraph

    res = partition_hypergraph(h, 4, seed=0)
    report = check_partition(h, res.part, 4, expected_cutsize=res.cutsize)
    assert report.passed, report.summary()
