"""Tests for the direct K-way greedy refinement pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import as_rng
from repro.hypergraph import cutsize_connectivity, hypergraph_from_netlists, imbalance
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.kway import kway_refine
from tests.conftest import hypergraphs, random_hypergraph


class TestKwayRefine:
    def test_never_worse(self):
        cfg = PartitionerConfig(epsilon=0.10)
        for seed in range(8):
            h = random_hypergraph(as_rng(seed), 40, 35)
            k = 4
            part = as_rng(seed + 50).integers(0, k, size=40)
            before = cutsize_connectivity(h, part)
            after_part = kway_refine(h, part, k, cfg, as_rng(seed + 99))
            assert cutsize_connectivity(h, after_part) <= before

    def test_preserves_balance_feasibility(self):
        cfg = PartitionerConfig(epsilon=0.05)
        h = hypergraph_from_netlists(40, [[i, (i + 1) % 40] for i in range(40)])
        k = 4
        part = np.repeat(np.arange(k), 10)
        new = kway_refine(h, part, k, cfg, as_rng(0))
        assert imbalance(h, new, k) <= 0.05 + 1e-9

    def test_fixes_obvious_misplacement(self):
        # 4 cliques perfectly partitioned except one vertex
        nets = [list(range(b * 5, b * 5 + 5)) for b in range(4)]
        h = hypergraph_from_netlists(20, nets)
        part = np.repeat(np.arange(4), 5)
        part[0] = 1  # misplace vertex 0
        cfg = PartitionerConfig(epsilon=0.30)
        new = kway_refine(h, part, 4, cfg, as_rng(1))
        assert cutsize_connectivity(h, new) == 0

    def test_respects_fixed(self):
        h = random_hypergraph(as_rng(2), 20, 15)
        part = as_rng(3).integers(0, 3, size=20)
        fixed = np.full(20, -1, dtype=np.int64)
        fixed[:4] = part[:4]
        cfg = PartitionerConfig(epsilon=0.5)
        new = kway_refine(h, part, 3, cfg, as_rng(4), fixed=fixed)
        assert np.array_equal(new[:4], part[:4])

    def test_k1_noop(self):
        h = random_hypergraph(as_rng(5), 10, 8)
        part = np.zeros(10, dtype=np.int64)
        new = kway_refine(h, part, 1, PartitionerConfig(), as_rng(6))
        assert np.array_equal(new, part)

    @given(hypergraphs(weighted=True), st.integers(2, 4), st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_property_never_worse(self, h, k, seed):
        rng = as_rng(seed)
        part = rng.integers(0, k, size=h.num_vertices)
        cfg = PartitionerConfig(epsilon=1.0)  # no balance restriction
        new = kway_refine(h, part, k, cfg, rng)
        assert cutsize_connectivity(h, new) <= cutsize_connectivity(h, part)
