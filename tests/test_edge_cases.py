"""Edge cases and failure injection across the stack.

Degenerate inputs (empty matrices, single rows, K larger than the work,
all-zero weights) and adversarial decompositions (owners outside the
holder sets) — places where silent breakage would otherwise hide.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    Hypergraph,
    decompose_2d_finegrain,
    partition_hypergraph,
    simulate_spmv,
)
from repro.core import build_finegrain_model, decomposition_from_finegrain
from repro.core.decomposition import Decomposition
from repro.hypergraph import hypergraph_from_netlists
from repro.models import build_columnnet_model, decompose_2d_checkerboard
from repro.partitioner import PartitionerConfig
from repro.spmv import communication_stats


class TestDegenerateMatrices:
    def test_single_entry_matrix(self):
        a = sp.csr_matrix(([3.0], ([0], [0])), shape=(1, 1))
        dec, info = decompose_2d_finegrain(a, 1, seed=0)
        assert communication_stats(dec).total_volume == 0
        assert np.allclose(simulate_spmv(dec, np.array([2.0])).y, [6.0])

    def test_diagonal_matrix_never_communicates(self):
        a = sp.diags(np.arange(1.0, 21.0)).tocsr()
        dec, info = decompose_2d_finegrain(a, 4, seed=0)
        # every row/column net has a single pin: nothing can be cut
        assert info.cutsize == 0
        assert communication_stats(dec).total_volume == 0

    def test_dense_row_matrix(self):
        # one row holds everything: balance forces splitting it (2D can!)
        row = np.zeros(20, dtype=int)
        cols = np.arange(20)
        a = sp.csr_matrix((np.ones(20), (row, cols)), shape=(20, 20))
        dec, info = decompose_2d_finegrain(a, 4, seed=0)
        assert dec.load_imbalance() <= 0.30
        x = np.random.default_rng(0).standard_normal(20)
        assert np.allclose(simulate_spmv(dec, x).y, a @ x)

    def test_k_exceeds_nonzeros(self):
        a = sp.eye(3, format="csr")
        dec, info = decompose_2d_finegrain(a, 8, seed=0)
        assert dec.k == 8
        x = np.ones(3)
        assert np.allclose(simulate_spmv(dec, x).y, a @ x)

    def test_empty_rows_and_columns(self):
        # rows 1 and 3 empty; fine-grain adds dummies for them
        a = sp.csr_matrix(
            (np.ones(3), ([0, 2, 4], [0, 2, 4])), shape=(5, 5)
        )
        model = build_finegrain_model(a)
        assert model.n_dummy == 2
        dec, _ = decompose_2d_finegrain(a, 2, seed=0)
        x = np.arange(5.0)
        assert np.allclose(simulate_spmv(dec, x).y, a @ x)


class TestAdversarialDecompositions:
    def test_owner_outside_holder_set_costs_full_set(self):
        """If x_j lives on a processor with no nonzero in column j, the
        expand must pay |holders| words, not |holders| - 1."""
        a = sp.csr_matrix((np.ones(2), ([0, 1], [0, 0])), shape=(2, 2))
        dec = Decomposition(
            k=3,
            m=2,
            nnz_row=np.array([0, 1]),
            nnz_col=np.array([0, 0]),
            nnz_val=np.ones(2),
            nnz_owner=np.array([0, 1]),  # column 0 held by ranks 0 and 1
            x_owner=np.array([2, 2]),    # but owned by rank 2
            y_owner=np.array([2, 2]),
        )
        stats = communication_stats(dec)
        assert stats.expand_volume == 2  # both holders receive x_0
        x = np.array([1.0, 5.0])
        assert np.allclose(simulate_spmv(dec, x).y, a @ x)

    def test_wildly_unbalanced_decomposition_still_exact(self):
        rng = np.random.default_rng(0)
        a = sp.random(40, 40, density=0.2, random_state=rng, format="csr")
        model = build_finegrain_model(a)
        part = np.zeros(model.hypergraph.num_vertices, dtype=np.int64)
        part[:3] = 1  # nearly everything on rank 0
        dec = decomposition_from_finegrain(model, part, 4)
        x = rng.standard_normal(40)
        assert np.allclose(simulate_spmv(dec, x).y, a @ x)


class TestPartitionerDegenerate:
    def test_hypergraph_with_no_nets(self):
        h = hypergraph_from_netlists(10, [])
        res = partition_hypergraph(h, 4, seed=0)
        assert res.cutsize == 0
        assert res.imbalance <= 0.30

    def test_all_vertices_in_one_net(self):
        h = hypergraph_from_netlists(12, [list(range(12))])
        res = partition_hypergraph(h, 3, seed=0)
        assert res.cutsize == 2  # lambda - 1 = 3 - 1, unavoidable

    def test_single_vertex(self):
        h = hypergraph_from_netlists(1, [[0]])
        res = partition_hypergraph(h, 2, seed=0)
        assert res.cutsize == 0

    def test_zero_weight_everything(self):
        h = hypergraph_from_netlists(
            4, [[0, 1], [2, 3]], vertex_weights=[0, 0, 0, 0]
        )
        res = partition_hypergraph(h, 2, seed=0)
        assert res.imbalance == 0.0

    def test_duplicate_heavy_nets(self):
        nets = [[0, 1, 2]] * 5 + [[3, 4, 5]] * 5
        h = hypergraph_from_netlists(6, nets)
        res = partition_hypergraph(h, 2, seed=0)
        assert res.cutsize == 0


class TestModelDegenerate:
    def test_columnnet_on_diagonal_matrix(self):
        a = sp.eye(6, format="csr")
        model = build_columnnet_model(a)
        assert model.hypergraph.net_sizes().tolist() == [1] * 6

    def test_checkerboard_k1(self):
        a = sp.eye(5, format="csr")
        dec = decompose_2d_checkerboard(a, 1)
        assert communication_stats(dec).total_volume == 0

    def test_finegrain_k_one_no_cut(self, small_sparse_matrix):
        dec, info = decompose_2d_finegrain(small_sparse_matrix, 1, seed=0)
        assert info.cutsize == 0
