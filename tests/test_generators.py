"""Tests for the structural matrix generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrix import (
    banded_fem_matrix,
    block_arrow_matrix,
    geometric_graph_matrix,
    matrix_stats,
    skewed_lp_matrix,
    staircase_matrix,
    stencil_3d,
)


def degrees(a):
    a = sp.csr_matrix(a)
    return np.diff(a.indptr), np.bincount(a.indices, minlength=a.shape[1])


class TestCommonProperties:
    GENERATORS = [
        lambda s: stencil_3d(5, 4, 3, keep_prob=0.7, seed=s),
        lambda s: geometric_graph_matrix(200, avg_degree=4.0, seed=s),
        lambda s: skewed_lp_matrix(150, 900, max_degree=40, seed=s),
        lambda s: staircase_matrix(6, 30, avg_row_nnz=6.0, seed=s),
        lambda s: block_arrow_matrix(5, 20, 4, seed=s),
        lambda s: banded_fem_matrix(120, 20, avg_degree=12.0, seed=s),
    ]

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_deterministic(self, gen):
        a, b = gen(7), gen(7)
        assert (a != b).nnz == 0

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_seeds_differ(self, gen):
        assert (gen(1) != gen(2)).nnz > 0

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_square_positive_no_empty(self, gen):
        a = gen(3)
        assert a.shape[0] == a.shape[1]
        assert np.all(a.data > 0)
        rd, cd = degrees(a)
        assert rd.min() >= 1, "empty row"
        assert cd.min() >= 1, "empty column"


class TestStencil3d:
    def test_full_stencil_structure(self):
        a = stencil_3d(3, 3, 3, keep_prob=1.0, seed=0)
        assert a.shape == (27, 27)
        rd, _ = degrees(a)
        assert rd.max() == 7  # interior point: 6 neighbours + diagonal
        assert rd.min() == 4  # corner: 3 neighbours + diagonal
        # symmetric pattern
        assert ((a != 0) != (a != 0).T).nnz == 0

    def test_keep_prob_thins(self):
        full = stencil_3d(6, 6, 6, keep_prob=1.0, seed=1)
        thin = stencil_3d(6, 6, 6, keep_prob=0.4, seed=1)
        assert thin.nnz < full.nnz

    def test_validation(self):
        with pytest.raises(ValueError):
            stencil_3d(0, 2, 2)


class TestGeometric:
    def test_avg_degree_close(self):
        a = geometric_graph_matrix(3000, avg_degree=4.0, seed=0)
        s = matrix_stats(a)
        assert 3.5 < s.avg_per_rowcol < 5.6  # includes diagonal

    def test_max_degree_capped(self):
        a = geometric_graph_matrix(2000, avg_degree=6.0, max_degree=9, seed=0)
        rd, cd = degrees(a)
        assert rd.max() <= 10  # 9 neighbours + diagonal

    def test_symmetric(self):
        a = geometric_graph_matrix(300, seed=2)
        assert ((a != 0) != (a != 0).T).nnz == 0


class TestSkewedLP:
    def test_nnz_near_target(self):
        # nnz is a calibration target: tiny overshoot can come from the
        # protected dense entries and the empty-row/col diagonal patching
        a = skewed_lp_matrix(1000, 8000, max_degree=200, seed=0)
        assert 0.85 * 8000 < a.nnz <= 1.05 * 8000

    def test_max_degree_pinned(self):
        # max_degree is likewise a soft target: the pinned vertices realize
        # close to it, plus a few passive picks on top
        a = skewed_lp_matrix(1000, 10000, max_degree=150, min_degree=1, seed=1)
        rd, cd = degrees(a)
        assert max(rd.max(), cd.max()) >= 0.7 * 150
        assert max(rd.max(), cd.max()) <= 1.3 * 150

    def test_validation(self):
        with pytest.raises(ValueError, match="max_degree"):
            skewed_lp_matrix(10, 50, max_degree=10)


class TestStaircase:
    def test_block_bidiagonal_structure(self):
        a = staircase_matrix(5, 40, avg_row_nnz=8.0, coupling=0.4, seed=0)
        coo = a.tocoo()
        stage_r = coo.row // 40
        stage_c = coo.col // 40
        assert np.all((stage_c == stage_r) | (stage_c == stage_r + 1))

    def test_min_row_nnz(self):
        a = staircase_matrix(4, 50, avg_row_nnz=9.0, min_row_nnz=4, seed=1)
        rd, _ = degrees(a)
        # dedupe can shave a little off; generous lower bound
        assert rd.min() >= 2

    def test_col_skew_creates_dense_columns(self):
        flat = staircase_matrix(4, 100, avg_row_nnz=10, col_skew=1.0, seed=2)
        skew = staircase_matrix(4, 100, avg_row_nnz=10, col_skew=2.5, seed=2)
        _, cd_flat = degrees(flat)
        _, cd_skew = degrees(skew)
        assert cd_skew.max() > cd_flat.max()


class TestBlockArrow:
    def test_shape(self):
        a = block_arrow_matrix(4, 25, 6, seed=0)
        assert a.shape == (106, 106)

    def test_border_rows_are_dense(self):
        a = block_arrow_matrix(
            8, 30, 4, intra_degree=4.0,
            border_degree_min=50, border_degree_max=100, seed=1,
        )
        rd, _ = degrees(a)
        core = 8 * 30
        assert rd[core:].min() >= 40  # border rows clearly denser
        assert np.median(rd[:core]) <= 12

    def test_offborder_blocks_disjoint(self):
        a = block_arrow_matrix(3, 10, 0, intra_degree=5.0, seed=2)
        coo = a.tocoo()
        assert np.all((coo.row // 10) == (coo.col // 10))


class TestBandedFem:
    def test_bandwidth_respected(self):
        a = banded_fem_matrix(300, bandwidth=15, avg_degree=10, seed=0)
        coo = a.tocoo()
        assert np.abs(coo.row - coo.col).max() <= 15

    def test_degree_bounds(self):
        a = banded_fem_matrix(
            500, bandwidth=100, avg_degree=20, min_degree=9, max_degree=60, seed=1
        )
        s = matrix_stats(a)
        assert 10 <= s.avg_per_rowcol <= 30
