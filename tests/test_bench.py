"""Tests for the experiment harness (runner, tables, summary, CLI)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.bench import (
    InstanceResult,
    format_table1,
    format_table2,
    run_instance,
    run_table2,
    summarize_table2,
)
from repro.bench.runner import model_averages
from repro.matrix import load_collection_matrix, paper_table1
from repro.partitioner import PartitionerConfig


@pytest.fixture(scope="module")
def tiny_matrix():
    rng = np.random.default_rng(0)
    a = sp.random(80, 80, density=0.06, random_state=rng, format="lil")
    a.setdiag(1.0)
    return sp.csr_matrix(a)


@pytest.fixture(scope="module")
def tiny_results(tiny_matrix):
    return run_table2(
        {"tiny": tiny_matrix}, ks=(4,), n_seeds=2,
        config=PartitionerConfig(), base_seed=0,
    )


class TestRunner:
    def test_run_instance_fields(self, tiny_matrix):
        r = run_instance(tiny_matrix, "tiny", 4, "finegrain2d", n_seeds=2)
        assert r.matrix == "tiny" and r.k == 4
        assert r.tot > 0 and r.max > 0
        assert r.time > 0
        assert r.n_seeds == 2

    def test_unknown_model(self, tiny_matrix):
        with pytest.raises(KeyError, match="unknown model"):
            run_instance(tiny_matrix, "tiny", 2, "bogus")

    def test_table2_covers_grid(self, tiny_results):
        assert len(tiny_results) == 3  # 1 matrix x 1 K x 3 models
        assert {r.model for r in tiny_results} == {
            "graph", "hypergraph1d", "finegrain2d",
        }

    def test_averages(self, tiny_results):
        avgs = model_averages(tiny_results, ks=(4,))
        # per-K rows plus overall per model
        assert len(avgs) == 6
        overall = [a for a in avgs if a.k == 0]
        assert len(overall) == 3


class TestFormatters:
    def test_table1_with_paper_columns(self):
        a = load_collection_matrix("sherman3", scale=0.1, seed=0)
        text = format_table1({"sherman3": a}, paper_table1())
        assert "sherman3" in text
        assert "(paper)" in text
        assert "20033" in text  # the paper's nnz appears

    def test_table2_layout(self, tiny_results):
        text = format_table2(tiny_results)
        assert "Standard Graph Model" in text
        assert "2D Fine-Grain HG Model" in text
        assert "Averages" in text
        assert "(" in text  # normalized times present

    def test_table2_handles_missing_models(self, tiny_results):
        only_fg = [r for r in tiny_results if r.model == "finegrain2d"]
        text = format_table2(only_fg)
        assert "Fine-Grain" in text


class TestSummary:
    def test_math(self):
        mk = lambda model, tot, msgs, time: InstanceResult(
            "m", 16, model, 1, tot, tot / 4, msgs, time, 0.0, 0.0
        )
        results = [
            mk("graph", 2.0, 10, 1.0),
            mk("hypergraph1d", 1.0, 10, 3.0),
            mk("finegrain2d", 0.5, 16, 7.0),
        ]
        s = summarize_table2(results)
        assert s.improvement_vs_graph == pytest.approx(75.0)
        assert s.improvement_vs_hypergraph1d == pytest.approx(50.0)
        assert s.msg_bound_ok == 1.0
        assert s.time_ratio_vs_graph["finegrain2d"] == pytest.approx(7.0)
        assert s.finegrain_win_rate == 1.0
        assert "43%" in s.report()

    def test_bound_violation_detected(self):
        bad = InstanceResult("m", 4, "graph", 1, 1.0, 0.5, 99.0, 1.0, 0.0, 0.0)
        s = summarize_table2([bad])
        assert s.msg_bound_ok == 0.0

    def test_on_real_run(self, tiny_results):
        s = summarize_table2(tiny_results)
        assert s.msg_bound_ok == 1.0
        assert np.isfinite(s.improvement_vs_graph)


class TestCli:
    def test_table1_command(self, capsys):
        from repro.bench.__main__ import main

        rc = main(["table1", "--scale", "0.05", "--matrices", "sherman3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sherman3" in out

    def test_unknown_matrix_rejected(self, capsys):
        from repro.bench.__main__ import main

        assert main(["table1", "--matrices", "nope"]) == 2

    def test_summary_command(self, capsys):
        from repro.bench.__main__ import main

        rc = main([
            "summary", "--scale", "0.03", "--seeds", "1",
            "--matrices", "sherman3", "--ks", "4",
        ])
        assert rc == 0
        assert "improvement" in capsys.readouterr().out
