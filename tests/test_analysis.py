"""Tests for the decomposition analysis/reporting package."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_decomposition,
    communication_matrix,
    render_report,
)
from repro.core import build_finegrain_model, decomposition_from_finegrain
from repro.spmv import communication_stats


def make_dec(a, k, seed=0):
    model = build_finegrain_model(a)
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, size=model.hypergraph.num_vertices)
    return decomposition_from_finegrain(model, part, k)


class TestCommunicationMatrix:
    def test_row_sums_are_send_volumes(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 4)
        cm = communication_matrix(dec)
        stats = communication_stats(dec)
        sends = stats.expand_sent + stats.fold_sent
        assert np.array_equal(cm.sum(axis=1), sends)
        recvs = stats.expand_recv + stats.fold_recv
        assert np.array_equal(cm.sum(axis=0), recvs)

    def test_zero_diagonal(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 4, seed=1)
        cm = communication_matrix(dec)
        assert np.all(np.diag(cm) == 0)

    def test_internal_decomposition_silent(self, small_sparse_matrix):
        model = build_finegrain_model(small_sparse_matrix)
        part = np.zeros(model.hypergraph.num_vertices, dtype=np.int64)
        dec = decomposition_from_finegrain(model, part, 2)
        assert communication_matrix(dec).sum() == 0


class TestReport:
    def test_fields_consistent(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 4, seed=2)
        rep = analyze_decomposition(dec)
        assert rep.active_pairs == np.count_nonzero(rep.comm_matrix)
        assert 0 <= rep.pair_density <= 1
        assert 0 <= rep.send_concentration <= 1
        assert rep.compute_profile.sum() == dec.nnz

    def test_concentration_extremes(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 4, seed=3)
        rep = analyze_decomposition(dec)
        # balanced random decomposition: concentration should be mild
        assert rep.send_concentration < 0.8

    def test_render(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 4, seed=4)
        text = render_report(analyze_decomposition(dec))
        assert "communication matrix" in text
        assert "rank |" in text
        assert text.count("\n") > 8

    def test_render_suppresses_large_matrix(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 8, seed=5)
        text = render_report(analyze_decomposition(dec), max_matrix=4)
        assert "communication matrix" not in text


class TestCliAnalyze:
    def test_analyze_command(self, capsys):
        from repro.cli import main

        rc = main(["analyze", "collection:sherman3@0.05", "-k", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "communication matrix" in out
