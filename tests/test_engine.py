"""Multi-start engine, unified decompose() API, and determinism goldens.

The golden partitions in ``tests/data/golden_parts.json`` were recorded
before the vectorized kernels and the engine landed; replaying them pins
the bit-identity contract (``n_starts=1`` at a fixed seed must reproduce
the pre-vectorization partitions exactly).  Golden loading/regeneration
lives in :mod:`tests.golden` (``REPRO_REGEN_GOLDENS=1`` re-records).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from tests.conftest import random_hypergraph
from tests.golden import check_golden
from repro._util import as_rng
from repro.core.api import (
    decompose,
    decompose_1d_columnnet,
    decompose_2d_finegrain,
)
from repro.matrix.collection import load_collection_matrix
from repro.partitioner import (
    PartitionerConfig,
    StartStat,
    partition_hypergraph,
    partition_multistart,
)
from repro.spmv import communication_stats

# ----------------------------------------------------------------------
# determinism goldens: n_starts=1 must stay bit-identical to pre-PR
# ----------------------------------------------------------------------
HG_CASES = [
    (nv, nn, hseed, k, seed)
    for nv, nn, hseed in [(60, 50, 0), (120, 90, 1), (200, 160, 2)]
    for k in (2, 4, 8)
    for seed in (0, 123)
]


# the goldens pin the LEGACY sequential stream, so the recursion mode is
# forced off explicitly — these must replay bit-for-bit even when the
# suite runs under REPRO_TREE_PARALLEL=1 (tree mode has its own goldens
# in tests/test_treeparallel.py)
_LEGACY = PartitionerConfig(tree_parallel=False)


@pytest.mark.parametrize("nv,nn,hseed,k,seed", HG_CASES)
def test_golden_hypergraph_partitions(nv, nn, hseed, k, seed):
    h = random_hypergraph(as_rng(hseed), nv, nn)
    res = partition_hypergraph(h, k, config=_LEGACY, seed=seed)
    check_golden(f"hg-{nv}x{nn}-s{hseed}-k{k}-seed{seed}", res.part, res.cutsize)


@pytest.mark.parametrize(
    "label,cfg",
    [
        ("hcm", PartitionerConfig(matching="hcm", tree_parallel=False)),
        ("none", PartitionerConfig(matching="none", tree_parallel=False)),
        ("kway", PartitionerConfig(kway_refine=True, tree_parallel=False)),
        ("nruns3", PartitionerConfig(n_runs=3, tree_parallel=False)),
    ],
)
def test_golden_config_variants(label, cfg):
    h = random_hypergraph(as_rng(3), 150, 120, weighted=True)
    res = partition_hypergraph(h, 4, config=cfg, seed=7)
    check_golden(f"hg-150x120-{label}-k4-seed7", res.part, res.cutsize)


MATRIX_METHODS = {
    "finegrain": "finegrain",
    "rect": "finegrain-rect",
    "columnnet": "columnnet",
    "rownet": "rownet",
    "graph": "graph",
}


@pytest.mark.parametrize("name", ["sherman3", "bcspwr10"])
@pytest.mark.parametrize("label", sorted(MATRIX_METHODS))
def test_golden_matrix_decompositions(name, label):
    """Every decompose() method replays its pre-PR partition bit for bit."""
    a = load_collection_matrix(name, scale=0.25)
    res = decompose(a, 8, method=MATRIX_METHODS[label], config=_LEGACY, seed=0)
    check_golden(f"{name}-{label}-k8-seed0", res.part, res.cutsize)


# ----------------------------------------------------------------------
# multi-start engine
# ----------------------------------------------------------------------
def test_n_starts_1_is_bit_identical_passthrough():
    h = random_hypergraph(as_rng(2), 200, 160)
    direct = partition_hypergraph(h, 4, seed=9)
    engine = partition_multistart(h, 4, PartitionerConfig(n_starts=1), seed=9)
    assert engine.cutsize == direct.cutsize
    assert np.array_equal(engine.part, direct.part)
    assert engine.start_stats == []


@pytest.mark.parametrize("hseed,nv,nn", [(0, 60, 50), (1, 120, 90), (2, 200, 160)])
def test_multistart_never_worse_than_single(hseed, nv, nn):
    """Start 0 replays the single-start stream, so best-of-N <= single."""
    h = random_hypergraph(as_rng(hseed), nv, nn)
    single = partition_hypergraph(h, 4, seed=hseed)
    multi = partition_multistart(h, 4, PartitionerConfig(n_starts=4), seed=hseed)
    assert multi.start_stats[0].cutsize == single.cutsize
    assert multi.start_stats[0].seed == -1
    assert multi.cutsize <= single.cutsize
    assert multi.cutsize == min(s.cutsize for s in multi.start_stats)
    assert len(multi.start_stats) == 4
    assert all(isinstance(s, StartStat) for s in multi.start_stats)


def test_multistart_deterministic_repeat():
    h = random_hypergraph(as_rng(1), 120, 90)
    cfg = PartitionerConfig(n_starts=3)
    a = partition_multistart(h, 4, cfg, seed=5)
    b = partition_multistart(h, 4, cfg, seed=5)
    assert a.cutsize == b.cutsize
    assert np.array_equal(a.part, b.part)
    assert [s.seed for s in a.start_stats] == [s.seed for s in b.start_stats]


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_backends_match_serial(backend):
    h = random_hypergraph(as_rng(2), 200, 160)
    serial = partition_multistart(
        h, 4, PartitionerConfig(n_starts=4, start_backend="serial"), seed=5
    )
    par = partition_multistart(
        h, 4,
        PartitionerConfig(n_starts=4, n_workers=2, start_backend=backend),
        seed=5,
    )
    assert par.cutsize == serial.cutsize
    assert np.array_equal(par.part, serial.part)


def test_early_stop_cut_stops_early():
    # serial backend pinned: under a parallel backend early stop still
    # lets already-launched starts finish, so the stat count can exceed 1
    h = random_hypergraph(as_rng(1), 120, 90)
    cfg = PartitionerConfig(
        n_starts=8, early_stop_cut=10**9, start_backend="serial", n_workers=1
    )
    res = partition_multistart(h, 4, cfg, seed=0)
    assert len(res.start_stats) == 1  # first start already hits the target


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_starts": 0},
        {"n_workers": 0},
        {"start_backend": "mpi"},
        {"early_stop_cut": -1},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        PartitionerConfig(**kwargs)


def test_engine_runtime_and_stat_fields():
    h = random_hypergraph(as_rng(0), 60, 50)
    res = partition_multistart(h, 2, PartitionerConfig(n_starts=2), seed=0)
    assert res.runtime > 0
    for s in res.start_stats:
        assert s.runtime >= 0
        assert s.imbalance >= 0
        assert s.start in (0, 1)


# ----------------------------------------------------------------------
# unified decompose() dispatcher
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_matrix():
    import scipy.sparse as sp

    return sp.random(80, 80, density=0.08, format="csr", random_state=7)


@pytest.mark.parametrize(
    "method", ["finegrain", "columnnet", "rownet", "graph", "finegrain-rect"]
)
def test_decompose_round_trips_every_method(small_matrix, method):
    res = decompose(small_matrix, 4, method=method, seed=0)
    assert res.method == method
    assert res.k == 4
    assert res.cutsize >= 0
    assert res.decomposition.k == 4
    assert res.runtime > 0
    stats = communication_stats(res.decomposition)
    if method in ("finegrain", "finegrain-rect"):
        # the paper's theorem: volume == connectivity-1 cutsize, exactly
        assert stats.total_volume == res.cutsize
    assert "method=" in res.summary()


def test_decompose_matches_wrapper(small_matrix):
    dec, info = decompose_2d_finegrain(small_matrix, 4, seed=3)
    res = decompose(small_matrix, 4, method="finegrain", seed=3)
    assert res.cutsize == info.cutsize
    assert np.array_equal(res.part, info.part)
    assert np.array_equal(res.decomposition.nnz_owner, dec.nnz_owner)


def test_decompose_unknown_method(small_matrix):
    with pytest.raises(KeyError, match="unknown method"):
        decompose(small_matrix, 4, method="quantum")


def test_decompose_engine_overrides(small_matrix):
    single = decompose(small_matrix, 4, method="columnnet", seed=1)
    multi = decompose(
        small_matrix, 4, method="columnnet", seed=1, n_starts=3
    )
    assert len(multi.start_stats) == 3
    assert multi.cutsize <= single.cutsize
    assert single.start_stats == []


def test_seed_normalization_int_vs_generator(small_matrix):
    by_int = decompose(small_matrix, 4, method="finegrain", seed=11)
    by_gen = decompose(
        small_matrix, 4, method="finegrain", seed=np.random.default_rng(11)
    )
    assert by_int.cutsize == by_gen.cutsize
    assert np.array_equal(by_int.part, by_gen.part)


# ----------------------------------------------------------------------
# derived-view cache: pickling and read-only safety
# ----------------------------------------------------------------------
def test_hypergraph_pickle_drops_view_cache():
    h = random_hypergraph(as_rng(4), 60, 50)
    h.net_of_pin()  # populate the cache
    h.max_incident_cost()
    h2 = pickle.loads(pickle.dumps(h))
    assert h2._views == {}
    assert np.array_equal(h2.net_of_pin(), h.net_of_pin())
    assert h2.max_incident_cost() == h.max_incident_cost()
    # a partition of the round-tripped hypergraph is identical
    a = partition_hypergraph(h, 2, seed=0)
    b = partition_hypergraph(h2, 2, seed=0)
    assert np.array_equal(a.part, b.part)


def test_view_cache_is_shared_and_stable():
    h = random_hypergraph(as_rng(4), 60, 50)
    before = h.net_of_pin()
    partition_multistart(h, 2, PartitionerConfig(n_starts=2), seed=0)
    after = h.net_of_pin()
    assert before is after  # cache entry survives and is not rebuilt
    assert np.array_equal(after, np.repeat(np.arange(h.num_nets), np.diff(h.xpins)))
