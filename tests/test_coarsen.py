"""Tests for the coarsening phase of the hypergraph partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import as_rng
from repro.hypergraph import (
    cutsize_connectivity,
    hypergraph_from_netlists,
    validate_hypergraph,
)
from repro.partitioner.coarsen import (
    build_coarse,
    coarsen,
    match_vertices,
)
from repro.partitioner.config import PartitionerConfig
from tests.conftest import hypergraphs, random_hypergraph


class TestMatching:
    @pytest.mark.parametrize("scheme", ["hcm", "hcc"])
    def test_cmap_is_valid(self, scheme):
        h = random_hypergraph(as_rng(0), 40, 30)
        cmap, nc, cfix = match_vertices(h, as_rng(1), scheme=scheme)
        assert len(cmap) == 40
        assert cmap.min() >= 0 and cmap.max() < nc
        # every cluster id in [0, nc) is used
        assert len(np.unique(cmap)) == nc

    def test_hcm_pairs_only(self):
        h = random_hypergraph(as_rng(2), 30, 25)
        cmap, nc, _ = match_vertices(h, as_rng(3), scheme="hcm")
        sizes = np.bincount(cmap)
        assert sizes.max() <= 2

    def test_weight_cap_respected(self):
        h = hypergraph_from_netlists(
            4, [[0, 1, 2, 3]], vertex_weights=[5, 5, 5, 5]
        )
        cmap, nc, _ = match_vertices(h, as_rng(0), max_cluster_weight=5)
        # nobody can merge: every vertex is its own cluster
        assert nc == 4

    def test_connected_vertices_cluster(self):
        # two disjoint cliques must never mix
        h = hypergraph_from_netlists(6, [[0, 1, 2], [3, 4, 5]])
        cmap, nc, _ = match_vertices(h, as_rng(0), scheme="hcc")
        left = {int(cmap[v]) for v in (0, 1, 2)}
        right = {int(cmap[v]) for v in (3, 4, 5)}
        assert left.isdisjoint(right)

    def test_fixed_never_mix(self):
        h = hypergraph_from_netlists(4, [[0, 1], [2, 3], [0, 2]])
        fixed = np.array([0, -1, 1, -1])
        for seed in range(8):
            cmap, nc, cfix = match_vertices(
                h, as_rng(seed), scheme="hcc", fixed=fixed
            )
            assert cmap[0] != cmap[2]
            assert cfix[cmap[0]] == 0
            assert cfix[cmap[2]] == 1


class TestBuildCoarse:
    def test_weights_preserved(self):
        h = random_hypergraph(as_rng(4), 30, 20, weighted=True)
        cmap, nc, _ = match_vertices(h, as_rng(5))
        hc = build_coarse(h, cmap, nc)
        assert hc.total_vertex_weight() == h.total_vertex_weight()

    def test_structure_valid(self):
        h = random_hypergraph(as_rng(6), 50, 40)
        cmap, nc, _ = match_vertices(h, as_rng(7))
        hc = build_coarse(h, cmap, nc)
        validate_hypergraph(hc)

    def test_single_pin_nets_dropped(self):
        h = hypergraph_from_netlists(4, [[0, 1], [2], [2, 3]])
        cmap = np.array([0, 0, 1, 2])
        hc = build_coarse(h, cmap, 3)
        # net [0,1] collapses to single coarse pin -> dropped; net [2] dropped
        assert hc.num_nets == 1
        assert hc.pins_of(0).tolist() == [1, 2]

    def test_identical_nets_merged_costs_summed(self):
        h = hypergraph_from_netlists(
            4, [[0, 1], [0, 1], [2, 3]], net_costs=[2, 3, 1]
        )
        cmap = np.arange(4)
        hc = build_coarse(h, cmap, 4)
        assert hc.num_nets == 2
        costs = sorted(hc.net_costs.tolist())
        assert costs == [1, 5]

    def test_duplicate_pins_deduped(self):
        h = hypergraph_from_netlists(4, [[0, 1, 2, 3]])
        cmap = np.array([0, 0, 1, 1])
        hc = build_coarse(h, cmap, 2)
        assert hc.pins_of(0).tolist() == [0, 1]

    @given(hypergraphs(weighted=True), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_property_projected_cutsize_equal(self, h, seed):
        """Cutsize of a coarse partition equals the cutsize of its
        projection to the fine hypergraph (cutsize preservation)."""
        rng = as_rng(seed)
        cmap, nc, _ = match_vertices(h, rng)
        hc = build_coarse(h, cmap, nc)
        coarse_part = rng.integers(0, 3, size=nc)
        fine_part = coarse_part[cmap]
        assert cutsize_connectivity(hc, coarse_part) == cutsize_connectivity(
            h, fine_part
        )


class TestCoarsenDriver:
    def test_hierarchy_shrinks(self):
        h = random_hypergraph(as_rng(8), 300, 220)
        cfg = PartitionerConfig(coarsen_to=40)
        levels, coarsest, _ = coarsen(h, cfg, as_rng(9))
        assert coarsest.num_vertices < 300
        sizes = [lvl.fine.num_vertices for lvl in levels] + [coarsest.num_vertices]
        assert sizes == sorted(sizes, reverse=True)

    def test_matching_none_skips(self):
        h = random_hypergraph(as_rng(10), 100, 60)
        cfg = PartitionerConfig(matching="none")
        levels, coarsest, _ = coarsen(h, cfg, as_rng(11))
        assert levels == []
        assert coarsest is h

    def test_weight_conserved_through_hierarchy(self):
        h = random_hypergraph(as_rng(12), 200, 150, weighted=True)
        cfg = PartitionerConfig(coarsen_to=30)
        _, coarsest, _ = coarsen(h, cfg, as_rng(13))
        assert coarsest.total_vertex_weight() == h.total_vertex_weight()

    def test_fixed_propagates(self):
        h = random_hypergraph(as_rng(14), 120, 90)
        fixed = np.full(120, -1, dtype=np.int64)
        fixed[:10] = 0
        fixed[10:20] = 1
        cfg = PartitionerConfig(coarsen_to=20)
        levels, coarsest, cfixed = coarsen(h, cfg, as_rng(15), fixed=fixed)
        assert cfixed is not None
        # both sides survive
        assert (cfixed == 0).any() and (cfixed == 1).any()
