"""Tests for FM bisection refinement (invariant 6 of DESIGN.md)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import as_rng
from repro.hypergraph import cutsize_connectivity, hypergraph_from_netlists
from repro.hypergraph.partition import compute_part_weights
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.refine import FMCore, fm_refine_bisection
from tests.conftest import hypergraphs, random_hypergraph


def excess(h, part, maxw):
    w = compute_part_weights(h, part, 2)
    return max(0, int(w[0]) - maxw[0]) + max(0, int(w[1]) - maxw[1])


class TestFMCore:
    def test_cut_matches_metric(self):
        h = random_hypergraph(as_rng(0), 20, 15)
        part = as_rng(1).integers(0, 2, size=20)
        core = FMCore(h, part)
        assert core.cut() == cutsize_connectivity(h, part)

    def test_gains_match_definition(self):
        h = random_hypergraph(as_rng(2), 15, 12)
        part = as_rng(3).integers(0, 2, size=15)
        core = FMCore(h, part)
        core.compute_all_gains()
        base = cutsize_connectivity(h, part)
        for v in range(15):
            moved = part.copy()
            moved[v] ^= 1
            expected = base - cutsize_connectivity(h, moved)
            assert core.gain[v] == expected, f"vertex {v}"

    def test_apply_move_updates_incrementally(self):
        h = random_hypergraph(as_rng(4), 15, 12)
        part = as_rng(5).integers(0, 2, size=15)
        core = FMCore(h, part)
        core.compute_all_gains()
        rng = as_rng(6)
        cut = core.cut()
        for _ in range(10):
            v = int(rng.integers(15))
            g = core.gain[v]
            core.apply_move(v)
            cut -= g
            assert core.cut() == cut
            # gains of free vertices must match a fresh recomputation
            got = list(core.gain)
            core.compute_all_gains()
            assert got == core.gain

    def test_undo_restores_state(self):
        h = random_hypergraph(as_rng(7), 12, 10)
        part = as_rng(8).integers(0, 2, size=12)
        core = FMCore(h, part)
        core.compute_all_gains()
        before_pc = [list(core.pc[0]), list(core.pc[1])]
        before_W = list(core.W)
        core.apply_move(3)
        core.undo_move(3)
        assert core.part[3] == part[3]
        assert [list(core.pc[0]), list(core.pc[1])] == before_pc
        assert core.W == before_W


class TestRefinement:
    def test_never_worse(self):
        rng = as_rng(10)
        cfg = PartitionerConfig()
        for seed in range(10):
            h = random_hypergraph(as_rng(seed), 40, 35)
            part = as_rng(seed + 100).integers(0, 2, size=40)
            maxw = (25, 25)
            before = cutsize_connectivity(h, part)
            exc_before = excess(h, part, maxw)
            new, cut = fm_refine_bisection(h, part, maxw, cfg, rng)
            assert cutsize_connectivity(h, new) == cut
            exc_after = excess(h, new, maxw)
            assert exc_after <= exc_before
            if exc_after == exc_before:
                assert cut <= before

    def test_finds_obvious_improvement(self):
        # two cliques wired internally; a swapped pair should be repaired.
        # One unit of balance slack is required: FM realizes the swap as two
        # sequential moves through a (5, 3) intermediate state.
        nets = [[0, 1, 2, 3], [4, 5, 6, 7]]
        h = hypergraph_from_netlists(8, nets)
        part = np.array([0, 0, 0, 1, 1, 1, 1, 0])  # 3 and 7 swapped
        cfg = PartitionerConfig()
        new, cut = fm_refine_bisection(h, part, (5, 5), cfg, as_rng(0))
        assert cut == 0
        assert excess(h, new, (5, 5)) == 0
        assert len(set(new[:4].tolist())) == 1
        assert len(set(new[4:].tolist())) == 1

    def test_fixed_vertices_never_move(self):
        h = random_hypergraph(as_rng(11), 30, 25)
        part = as_rng(12).integers(0, 2, size=30)
        fixed = np.full(30, -1, dtype=np.int64)
        fixed[:5] = part[:5]
        cfg = PartitionerConfig()
        new, _ = fm_refine_bisection(h, part, (20, 20), cfg, as_rng(13), fixed=fixed)
        assert np.array_equal(new[:5], part[:5])

    def test_rebalances_infeasible_input(self):
        h = hypergraph_from_netlists(10, [[i, (i + 1) % 10] for i in range(10)])
        part = np.zeros(10, dtype=np.int64)  # everything on side 0
        cfg = PartitionerConfig()
        maxw = (6, 6)
        new, _ = fm_refine_bisection(h, part, maxw, cfg, as_rng(0))
        assert excess(h, new, maxw) == 0

    def test_boundary_mode_consistent(self):
        """Boundary-seeded FM must still report the true cutsize."""
        h = random_hypergraph(as_rng(20), 60, 50)
        part = as_rng(21).integers(0, 2, size=60)
        cfg = PartitionerConfig(fm_boundary_threshold=10)  # force boundary mode
        new, cut = fm_refine_bisection(h, part, (40, 40), cfg, as_rng(22))
        assert cutsize_connectivity(h, new) == cut

    @given(hypergraphs(weighted=True), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_property_reported_cut_is_true_cut(self, h, seed):
        rng = as_rng(seed)
        part = rng.integers(0, 2, size=h.num_vertices)
        total = h.total_vertex_weight()
        maxw = (total, total)  # no balance constraint: pure cut descent
        cfg = PartitionerConfig(fm_passes=2)
        new, cut = fm_refine_bisection(h, part, maxw, cfg, rng)
        assert cutsize_connectivity(h, new) == cut
        assert cut <= cutsize_connectivity(h, part)
