"""Tests for recursive bisection with cut-net splitting (invariant 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import as_rng
from repro.hypergraph import cutsize_connectivity, hypergraph_from_netlists
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.recursive import (
    bisection_epsilon,
    extract_side,
    partition_recursive,
)
from tests.conftest import hypergraphs, random_hypergraph


class TestBisectionEpsilon:
    def test_compounds_to_eps(self):
        for k in (2, 4, 8, 16, 64):
            eps_b = bisection_epsilon(0.03, k)
            levels = int(np.ceil(np.log2(k)))
            assert (1 + eps_b) ** levels == pytest.approx(1.03)

    def test_k2_is_identity(self):
        assert bisection_epsilon(0.1, 2) == pytest.approx(0.1)


class TestExtractSide:
    def test_basic_split(self):
        h = hypergraph_from_netlists(4, [[0, 1], [1, 2, 3], [2, 3]])
        part01 = np.array([0, 0, 1, 1])
        sub0, ids0, _ = extract_side(h, part01, 0)
        sub1, ids1, _ = extract_side(h, part01, 1)
        assert ids0.tolist() == [0, 1]
        assert ids1.tolist() == [2, 3]
        # side 0 keeps net [0,1]; the cut net [1,2,3] leaves only pin 1 -> dropped
        assert sub0.num_nets == 1
        # side 1 keeps the cut net's pins {2,3} and net [2,3]
        assert sub1.num_nets == 2

    def test_cut_net_splitting_preserves_pins(self):
        h = hypergraph_from_netlists(6, [[0, 1, 2, 3, 4, 5]], net_costs=[7])
        part01 = np.array([0, 0, 0, 1, 1, 1])
        sub0, _, _ = extract_side(h, part01, 0)
        sub1, _, _ = extract_side(h, part01, 1)
        assert sub0.num_nets == 1 and sub0.pins_of(0).tolist() == [0, 1, 2]
        assert sub1.num_nets == 1 and sub1.pins_of(0).tolist() == [0, 1, 2]
        assert sub0.net_costs.tolist() == [7]

    def test_weights_and_fixed_carried(self):
        h = hypergraph_from_netlists(
            4, [[0, 1, 2, 3]], vertex_weights=[1, 2, 3, 4]
        )
        fixed = np.array([0, -1, 2, -1])
        part01 = np.array([0, 1, 0, 1])
        sub0, ids0, f0 = extract_side(h, part01, 0, fixed)
        assert sub0.vertex_weights.tolist() == [1, 3]
        assert f0.tolist() == [0, 2]


class TestPartitionRecursive:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 8])
    def test_valid_partition_any_k(self, k):
        h = random_hypergraph(as_rng(20 + k), 60, 45)
        cfg = PartitionerConfig()
        part, cuts = partition_recursive(h, k, cfg, as_rng(k))
        assert part.min() >= 0 and part.max() < k
        if k > 1:
            assert len(np.unique(part)) == k

    @pytest.mark.parametrize("k", [2, 3, 4, 6, 8, 16])
    def test_invariant_sum_of_cuts_is_cutsize(self, k):
        """The core cut-net-splitting theorem: bisection cuts sum to Eq. 3."""
        h = random_hypergraph(as_rng(k), 80, 70, weighted=False)
        cfg = PartitionerConfig()
        part, cuts = partition_recursive(h, k, cfg, as_rng(k + 1))
        assert sum(cuts) == cutsize_connectivity(h, part)

    def test_invariant_with_costs(self):
        h = random_hypergraph(as_rng(33), 70, 55, weighted=True)
        cfg = PartitionerConfig()
        part, cuts = partition_recursive(h, 4, cfg, as_rng(34))
        assert sum(cuts) == cutsize_connectivity(h, part)

    @given(hypergraphs(max_vertices=10, max_nets=8), st.integers(2, 4),
           st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_sum_of_cuts(self, h, k, seed):
        cfg = PartitionerConfig(n_initial_starts=2, fm_passes=1)
        part, cuts = partition_recursive(h, k, cfg, as_rng(seed))
        assert sum(cuts) == cutsize_connectivity(h, part)

    def test_balance_within_epsilon(self):
        h = hypergraph_from_netlists(64, [[i, (i + 1) % 64] for i in range(64)])
        cfg = PartitionerConfig(epsilon=0.03)
        for k in (2, 4, 8):
            part, _ = partition_recursive(h, k, cfg, as_rng(k))
            w = np.bincount(part, minlength=k)
            assert w.max() <= np.ceil(64 / k * 1.04)

    def test_fixed_respected(self):
        h = random_hypergraph(as_rng(40), 40, 30)
        fixed = np.full(40, -1, dtype=np.int64)
        fixed[0], fixed[1], fixed[2] = 0, 2, 3
        cfg = PartitionerConfig()
        part, _ = partition_recursive(h, 4, cfg, as_rng(41), fixed=fixed)
        assert part[0] == 0 and part[1] == 2 and part[2] == 3

    def test_k1_trivial(self):
        h = random_hypergraph(as_rng(42), 10, 5)
        part, cuts = partition_recursive(h, 1, PartitionerConfig(), as_rng(0))
        assert part.tolist() == [0] * 10
        assert cuts == []

    def test_invalid_k(self):
        h = random_hypergraph(as_rng(43), 5, 3)
        with pytest.raises(ValueError):
            partition_recursive(h, 0, PartitionerConfig(), as_rng(0))
