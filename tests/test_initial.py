"""Tests for initial bisection constructors."""

import numpy as np
import pytest

from repro._util import as_rng
from repro.hypergraph import hypergraph_from_netlists
from repro.hypergraph.partition import compute_part_weights, cutsize_connectivity
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.initial import ghg_bisection, initial_bisection, random_bisection
from tests.conftest import random_hypergraph


def weights(h, part):
    return compute_part_weights(h, part, 2)


class TestRandomBisection:
    def test_reaches_target(self):
        h = random_hypergraph(as_rng(0), 50, 30)
        part = random_bisection(h, target0=25, max0=27, rng=as_rng(1))
        w = weights(h, part)
        assert 23 <= w[0] <= 27

    def test_respects_fixed(self):
        h = random_hypergraph(as_rng(2), 20, 15)
        fixed = np.full(20, -1, dtype=np.int64)
        fixed[0] = 1
        fixed[1] = 0
        part = random_bisection(h, 10, 12, as_rng(3), fixed=fixed)
        assert part[0] == 1 and part[1] == 0

    def test_unit_weight_exact(self):
        h = hypergraph_from_netlists(10, [[0, 1]])
        part = random_bisection(h, 5, 5, as_rng(4))
        assert weights(h, part).tolist() == [5, 5]


class TestGHG:
    def test_reaches_target(self):
        h = random_hypergraph(as_rng(5), 60, 45)
        part = ghg_bisection(h, target0=30, max0=33, rng=as_rng(6))
        w = weights(h, part)
        assert 28 <= w[0] <= 33

    def test_grows_connected_region(self):
        # a long path of 2-pin nets: GHG should produce ~1 cut net
        n = 24
        h = hypergraph_from_netlists(n, [[i, i + 1] for i in range(n - 1)])
        cuts = []
        for seed in range(5):
            part = ghg_bisection(h, n // 2, n // 2 + 1, as_rng(seed))
            cuts.append(cutsize_connectivity(h, part))
        assert min(cuts) <= 2  # near-contiguous growth

    def test_respects_fixed(self):
        h = random_hypergraph(as_rng(7), 20, 15)
        fixed = np.full(20, -1, dtype=np.int64)
        fixed[3] = 1
        part = ghg_bisection(h, 10, 12, as_rng(8), fixed=fixed)
        assert part[3] == 1

    def test_different_seeds_differ(self):
        h = random_hypergraph(as_rng(9), 40, 30)
        parts = {ghg_bisection(h, 20, 22, as_rng(s)).tobytes() for s in range(6)}
        assert len(parts) > 1


class TestInitialBisection:
    def test_feasible_and_better_than_single(self):
        h = random_hypergraph(as_rng(10), 50, 45)
        cfg = PartitionerConfig(n_initial_starts=6)
        part = initial_bisection(h, (25, 25), (27, 27), cfg, as_rng(11))
        w = weights(h, part)
        assert w[0] <= 27 and w[1] <= 27

    def test_single_start(self):
        h = random_hypergraph(as_rng(12), 30, 20)
        cfg = PartitionerConfig(n_initial_starts=1)
        part = initial_bisection(h, (15, 15), (17, 17), cfg, as_rng(13))
        assert len(part) == 30
