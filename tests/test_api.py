"""End-to-end tests of the one-call decomposition API (invariants 1, 7, 8)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    decompose_1d_columnnet,
    decompose_1d_graph,
    decompose_1d_rownet,
    decompose_2d_finegrain,
    simulate_spmv,
)
from repro.spmv import communication_stats


@pytest.fixture(scope="module")
def test_matrix():
    rng = np.random.default_rng(0)
    a = sp.random(120, 120, density=0.05, random_state=rng, format="lil")
    a.setdiag(rng.uniform(0.5, 1.0, 120))
    return sp.csr_matrix(a)


ALL_APIS = [
    decompose_2d_finegrain,
    decompose_1d_columnnet,
    decompose_1d_rownet,
    decompose_1d_graph,
]


class TestAllModels:
    @pytest.mark.parametrize("fn", ALL_APIS)
    def test_valid_symmetric_decomposition(self, fn, test_matrix):
        dec, info = fn(test_matrix, 4, seed=0)
        assert dec.k == 4
        assert dec.is_symmetric()
        assert dec.nnz == test_matrix.nnz
        assert info.imbalance <= 0.06  # eps=0.03 plus integer rounding slack

    @pytest.mark.parametrize("fn", ALL_APIS)
    def test_numerics(self, fn, test_matrix):
        dec, _ = fn(test_matrix, 4, seed=1)
        x = np.random.default_rng(2).standard_normal(120)
        res = simulate_spmv(dec, x)
        assert np.allclose(res.y, test_matrix @ x)

    @pytest.mark.parametrize("fn", ALL_APIS)
    def test_deterministic(self, fn, test_matrix):
        d1, _ = fn(test_matrix, 4, seed=7)
        d2, _ = fn(test_matrix, 4, seed=7)
        assert np.array_equal(d1.nnz_owner, d2.nnz_owner)
        assert np.array_equal(d1.x_owner, d2.x_owner)


class TestExactness:
    def test_finegrain_cutsize_equals_volume(self, test_matrix):
        """The headline theorem on an *optimized* partition."""
        dec, info = decompose_2d_finegrain(test_matrix, 8, seed=0)
        stats = communication_stats(dec)
        assert stats.total_volume == info.cutsize

    def test_columnnet_cutsize_equals_volume(self, test_matrix):
        dec, info = decompose_1d_columnnet(test_matrix, 8, seed=0)
        stats = communication_stats(dec)
        assert stats.total_volume == info.cutsize
        assert stats.fold_volume == 0

    def test_rownet_cutsize_equals_volume(self, test_matrix):
        dec, info = decompose_1d_rownet(test_matrix, 8, seed=0)
        stats = communication_stats(dec)
        assert stats.total_volume == info.cutsize
        assert stats.expand_volume == 0

    def test_graph_model_cut_only_approximates(self, test_matrix):
        """The graph model's known flaw: edge cut >= true volume typically,
        and in general differs from it."""
        dec, info = decompose_1d_graph(test_matrix, 8, seed=0)
        stats = communication_stats(dec)
        # measured volume is a real quantity; edge cut an approximation.
        # no exact equality is expected, both are positive here.
        assert stats.total_volume > 0
        assert info.edge_cut > 0


class TestMessageBounds:
    def test_bounds_hold(self, test_matrix):
        k = 8
        for fn, bound in [
            (decompose_1d_graph, k - 1),
            (decompose_1d_columnnet, k - 1),
            (decompose_1d_rownet, k - 1),
            (decompose_2d_finegrain, 2 * (k - 1)),
        ]:
            dec, _ = fn(test_matrix, k, seed=0)
            stats = communication_stats(dec)
            assert stats.max_messages <= bound, fn.__name__
