"""Hypothesis property tests: model invariants on random inputs.

Each property pins a contract the rest of the suite only samples:

* the §3 consistency condition holds for every fine-grain model built
  with ``consistency=True``, whatever the sparsity pattern;
* the PaToH and hMeTiS writers/readers are exact inverses, including
  empty nets, zero weights and weighted variants;
* shared-memory transport round-trips every array slot bit for bit;
* the vectorized partition metrics agree with the obviously-correct
  pure-Python oracles of :mod:`repro.verify.oracles` on arbitrary
  (hypergraph, partition) pairs.
"""

from __future__ import annotations

import io as _io

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import hypergraphs, partitions_of, sparse_square_matrices
from repro.core.finegrain import build_finegrain_model
from repro.hypergraph.io import read_hmetis, read_patoh, write_hmetis, write_patoh
from repro.hypergraph.partition import (
    compute_part_weights,
    cutsize_connectivity,
    cutsize_cutnet,
    net_connectivities,
    net_connectivity_sets,
)
from repro.verify.oracles import (
    oracle_connectivity_sets,
    oracle_consistency,
    oracle_cutsize_connectivity,
    oracle_cutsize_cutnet,
    oracle_net_connectivities,
    oracle_part_weights,
)


# ----------------------------------------------------------------------
# consistency condition (§3) on arbitrary sparse matrices
# ----------------------------------------------------------------------
@given(a=sparse_square_matrices(max_n=14))
def test_finegrain_consistency_condition_always_holds(a):
    """Every diagonal — real or dummy — is pinned in both of its nets."""
    model = build_finegrain_model(a, consistency=True)
    assert oracle_consistency(model) == []


@given(a=sparse_square_matrices(max_n=12), data=st.data())
def test_finegrain_decode_agrees_on_both_nets(a, data):
    """With consistency pins, the x- and y-vector decode coincide by
    construction for *any* partition of the vertices."""
    model = build_finegrain_model(a, consistency=True)
    nv = model.hypergraph.num_vertices
    part = data.draw(partitions_of(nv, 3))
    assert oracle_consistency(model, part) == []


# ----------------------------------------------------------------------
# file-format round-trips (empty nets included)
# ----------------------------------------------------------------------
def _assert_same_hypergraph(h2, h):
    assert h2.num_vertices == h.num_vertices
    assert h2.num_nets == h.num_nets
    assert np.array_equal(h2.xpins, h.xpins)
    assert np.array_equal(h2.pins, h.pins)
    assert np.array_equal(h2.vertex_weights, h.vertex_weights)
    assert np.array_equal(h2.net_costs, h.net_costs)


@given(h=hypergraphs(weighted=False, min_net_size=0))
def test_patoh_roundtrip_unweighted(h):
    buf = _io.StringIO()
    write_patoh(h, buf)
    buf.seek(0)
    _assert_same_hypergraph(read_patoh(buf), h)


@given(h=hypergraphs(weighted=True, min_net_size=0), base=st.sampled_from([0, 1]))
def test_patoh_roundtrip_weighted(h, base):
    buf = _io.StringIO()
    write_patoh(h, buf, base=base)
    buf.seek(0)
    _assert_same_hypergraph(read_patoh(buf), h)


@given(h=hypergraphs(weighted=False, min_net_size=0))
def test_hmetis_roundtrip_unweighted(h):
    buf = _io.StringIO()
    write_hmetis(h, buf)
    buf.seek(0)
    _assert_same_hypergraph(read_hmetis(buf), h)


@given(h=hypergraphs(weighted=True, min_net_size=0))
def test_hmetis_roundtrip_weighted(h):
    buf = _io.StringIO()
    write_hmetis(h, buf)
    buf.seek(0)
    _assert_same_hypergraph(read_hmetis(buf), h)


# ----------------------------------------------------------------------
# shared-memory transport round-trip
# ----------------------------------------------------------------------
@settings(max_examples=15)  # each example creates a real shm segment
@given(h=hypergraphs(weighted=True), data=st.data())
def test_shm_roundtrip_every_slot(h, data):
    if data.draw(st.booleans()):
        from repro.hypergraph import Hypergraph

        fixed = np.asarray(
            data.draw(
                st.lists(
                    st.integers(-1, 2),
                    min_size=h.num_vertices,
                    max_size=h.num_vertices,
                )
            ),
            dtype=np.int64,
        )
        h = Hypergraph(
            h.num_vertices, h.xpins, h.pins,
            vertex_weights=h.vertex_weights, net_costs=h.net_costs, fixed=fixed,
        )
    with h.to_shm() as handle:
        h2 = type(h).from_shm(handle.meta)
        for slot in (
            "xpins", "pins", "xnets", "vnets",
            "vertex_weights", "net_costs", "fixed",
        ):
            a, b = getattr(h, slot), getattr(h2, slot)
            if a is None:
                assert b is None, slot
            else:
                assert np.array_equal(a, b), slot
                assert getattr(a, "dtype", None) == getattr(b, "dtype", None), slot


# ----------------------------------------------------------------------
# vectorized metrics == pure-Python oracles
# ----------------------------------------------------------------------
@given(h=hypergraphs(weighted=True), data=st.data())
def test_vectorized_metrics_match_oracles(h, data):
    k = data.draw(st.integers(min_value=1, max_value=4))
    part = data.draw(partitions_of(h.num_vertices, k))
    assert list(compute_part_weights(h, part, k)) == oracle_part_weights(h, part, k)
    vec_sets = [set(s) for s in net_connectivity_sets(h, part)]
    assert vec_sets == oracle_connectivity_sets(h, part)
    assert list(net_connectivities(h, part)) == oracle_net_connectivities(h, part)
    assert cutsize_connectivity(h, part) == oracle_cutsize_connectivity(h, part)
    assert cutsize_cutnet(h, part) == oracle_cutsize_cutnet(h, part)


# ----------------------------------------------------------------------
# the exact solver is a hard quality floor under the multilevel heuristic
# ----------------------------------------------------------------------
def _bisection_key(h, part, epsilon: float) -> tuple[int, int]:
    """The lexicographic (excess, cut) key the whole partitioner ranks by,
    measured against the pipeline's own k=2 weight bounds."""
    from repro.exact import bisection_bounds

    _, maxw = bisection_bounds(h, epsilon)
    w = compute_part_weights(h, part, 2)
    excess = int(max(0, int(w[0]) - maxw[0]) + max(0, int(w[1]) - maxw[1]))
    return (excess, int(cutsize_connectivity(h, part)))


@given(h=hypergraphs(max_vertices=12, max_nets=10), seed=st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_multilevel_never_beats_exact(h, seed):
    """On any small hypergraph the multilevel cut is >= the certified
    optimum — in the lexicographic (excess, cut) order, so an infeasible
    heuristic result cannot masquerade as a win via a smaller raw cut."""
    from repro.exact import exact_bisection
    from repro.partitioner import PartitionerConfig, partition_hypergraph

    exact = exact_bisection(h, 0.1)
    assert exact.proven
    res = partition_hypergraph(h, 2, PartitionerConfig(epsilon=0.1), seed=seed)
    assert _bisection_key(h, res.part, 0.1) >= (exact.excess, exact.cutsize)


@given(h=hypergraphs(max_vertices=12, max_nets=10), seed=st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_exact_initial_lands_on_the_optimum(h, seed):
    """With initial_method="exact" unbudgeted, instances small enough to
    skip coarsening must come out of the whole pipeline exactly optimal:
    the initial bisection is certified and no later stage may worsen it."""
    from repro.exact import exact_bisection
    from repro.partitioner import PartitionerConfig, partition_hypergraph

    exact = exact_bisection(h, 0.1)
    assert exact.proven
    cfg = PartitionerConfig(
        epsilon=0.1,
        initial_method="exact",
        exact_initial_vertices=64,
        exact_initial_nodes=50_000_000,
    )
    res = partition_hypergraph(h, 2, cfg, seed=seed)
    assert _bisection_key(h, res.part, 0.1) == (exact.excess, exact.cutsize)


def test_known_optimal_fixtures_floor_the_heuristic():
    """The committed known-optimal fixtures, replayed as properties under
    the bounded "repro" profile: the heuristic may match but never beat
    any certified optimum, and exact-initial always lands on it."""
    from repro.partitioner import PartitionerConfig, partition_hypergraph
    from tests.optimal_fixtures import EPSILON, OPTIMA, fixture_hypergraphs

    cfg = PartitionerConfig(epsilon=EPSILON)
    for key, _mname, _model, h in fixture_hypergraphs():
        gold = OPTIMA[key]
        res = partition_hypergraph(h, 2, cfg, seed=0)
        assert _bisection_key(h, res.part, EPSILON) >= (
            gold["excess"],
            gold["cut"],
        ), key
