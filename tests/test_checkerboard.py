"""Tests for the cartesian checkerboard 2D baseline."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import balanced_stripes, decompose_2d_checkerboard, processor_grid
from repro.spmv import communication_stats, simulate_spmv
from tests.conftest import sparse_square_matrices


class TestProcessorGrid:
    @pytest.mark.parametrize(
        "k,expected", [(1, (1, 1)), (4, (2, 2)), (16, (4, 4)), (6, (2, 3)),
                       (12, (3, 4)), (7, (1, 7))]
    )
    def test_most_square(self, k, expected):
        assert processor_grid(k) == expected

    def test_product_is_k(self):
        for k in range(1, 65):
            r, c = processor_grid(k)
            assert r * c == k and r <= c

    def test_invalid(self):
        with pytest.raises(ValueError):
            processor_grid(0)


class TestBalancedStripes:
    def test_uniform_counts(self):
        stripes = balanced_stripes(np.ones(12), 3)
        assert stripes.tolist() == [0] * 4 + [1] * 4 + [2] * 4

    def test_weighted_counts(self):
        # one heavy index absorbs a whole stripe
        stripes = balanced_stripes(np.array([10, 1, 1, 1, 1, 1, 1, 1, 1, 1]), 2)
        assert stripes[0] == 0
        assert stripes[-1] == 1
        # contiguous & monotone
        assert np.all(np.diff(stripes) >= 0)

    def test_single_part(self):
        assert balanced_stripes(np.ones(5), 1).tolist() == [0] * 5

    def test_zero_total(self):
        assert balanced_stripes(np.zeros(4), 2).tolist() == [0] * 4


class TestCheckerboard:
    def test_owner_structure(self, small_sparse_matrix):
        k = 4
        dec = decompose_2d_checkerboard(small_sparse_matrix, k)
        assert dec.k == k
        assert dec.is_symmetric()
        # nonzeros of one row stay within one processor row
        r, c = processor_grid(k)
        proc_row = dec.nnz_owner // c
        for i in np.unique(dec.nnz_row):
            sel = dec.nnz_row == i
            assert len(np.unique(proc_row[sel])) == 1

    def test_message_bound(self, small_sparse_matrix):
        """At most (R-1) + (C-1) distinct communication partners."""
        k = 16
        dec = decompose_2d_checkerboard(small_sparse_matrix, k)
        stats = communication_stats(dec)
        r, c = processor_grid(k)
        assert stats.max_messages <= (r - 1) + (c - 1)

    def test_numerics(self, small_sparse_matrix):
        dec = decompose_2d_checkerboard(small_sparse_matrix, 6)
        x = np.random.default_rng(0).standard_normal(30)
        assert np.allclose(simulate_spmv(dec, x).y, small_sparse_matrix @ x)

    def test_deterministic(self, small_sparse_matrix):
        d1 = decompose_2d_checkerboard(small_sparse_matrix, 4)
        d2 = decompose_2d_checkerboard(small_sparse_matrix, 4)
        assert np.array_equal(d1.nnz_owner, d2.nnz_owner)

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            decompose_2d_checkerboard(sp.csr_matrix((2, 3)), 2)

    @given(sparse_square_matrices(), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_property_valid_and_exact(self, a, k):
        a2 = sp.csr_matrix(a)
        a2.eliminate_zeros()
        dec = decompose_2d_checkerboard(a2, k)
        assert dec.nnz == a2.nnz
        x = np.ones(a2.shape[0])
        assert np.allclose(simulate_spmv(dec, x).y, a2 @ x)
