"""Golden-partition registry shared by the determinism suites.

``tests/data/golden_parts.json`` pins partitions (cutsize + sha256 of the
int64 part array) recorded before the vectorized kernels and the engine
landed; replaying them is the bit-identity contract of the repo.  Both
determinism universes live in the same file — ``hg-*`` / matrix keys pin
the legacy sequential stream, ``tree-*`` keys pin the seed-tree recursion.

Regenerating goldens
--------------------
After an *intentional* algorithm change, re-record every golden the suite
touches with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests -q

In regen mode :func:`check_golden` records instead of asserting, and the
merged registry is written back to ``golden_parts.json`` at interpreter
exit.  Review the diff before committing — a golden change is a behavior
change and the commit message should say why the bits moved.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os

import numpy as np

__all__ = ["GOLDEN_PATH", "GOLDEN", "part_sig", "check_golden"]

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_parts.json")

_REGEN = os.environ.get("REPRO_REGEN_GOLDENS", "").strip().lower() not in (
    "", "0", "false", "no", "off",
)


def _load() -> dict:
    if not os.path.exists(GOLDEN_PATH):
        return {}
    with open(GOLDEN_PATH) as f:
        return json.load(f)


GOLDEN = _load()
_UPDATES: dict[str, dict] = {}


def part_sig(part: np.ndarray) -> str:
    """Canonical partition signature: sha256 of the int64 part bytes."""
    return hashlib.sha256(np.asarray(part, dtype=np.int64).tobytes()).hexdigest()


def check_golden(key: str, part: np.ndarray, cutsize: int) -> None:
    """Assert *part*/*cutsize* match the pinned golden entry *key*.

    Under ``REPRO_REGEN_GOLDENS=1`` the entry is recorded instead and
    flushed back to :data:`GOLDEN_PATH` at exit.
    """
    if _REGEN:
        _UPDATES[key] = {"cutsize": int(cutsize), "sha256": part_sig(part)}
        return
    assert key in GOLDEN, (
        f"no golden entry {key!r}; record it with "
        f"REPRO_REGEN_GOLDENS=1 (see tests/golden.py)"
    )
    gold = GOLDEN[key]
    assert int(cutsize) == gold["cutsize"], (
        f"{key}: cutsize {cutsize} != golden {gold['cutsize']}"
    )
    assert part_sig(part) == gold["sha256"], (
        f"{key}: partition drifted from its golden sha256"
    )


def _flush() -> None:
    if not _UPDATES:
        return
    merged = {**GOLDEN, **_UPDATES}
    with open(GOLDEN_PATH, "w") as f:
        json.dump({k: merged[k] for k in sorted(merged)}, f, indent=2)
        f.write("\n")
    print(f"golden: wrote {len(_UPDATES)} entries to {GOLDEN_PATH}")


if _REGEN:
    atexit.register(_flush)
