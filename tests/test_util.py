"""Unit tests for repro._util."""

import numpy as np
import pytest

from repro._util import (
    Timer,
    as_rng,
    check_in_range,
    check_positive,
    ensure_int_array,
    prefix_from_counts,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_rng(7).integers(1 << 30) == as_rng(7).integers(1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g


class TestChecks:
    def test_check_positive_accepts(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", bad)

    def test_check_in_range(self):
        check_in_range("e", 0.5, 0, 1)
        with pytest.raises(ValueError):
            check_in_range("e", 1.5, 0, 1)


class TestEnsureIntArray:
    def test_list_to_int64(self):
        arr = ensure_int_array([1, 2, 3])
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 2, 3]

    def test_integral_floats_accepted(self):
        assert ensure_int_array(np.array([1.0, 2.0])).tolist() == [1, 2]

    def test_fractional_floats_rejected(self):
        with pytest.raises(TypeError, match="must contain integers"):
            ensure_int_array(np.array([1.5]))

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError):
            ensure_int_array(np.array(["a"]))

    def test_contiguous(self):
        arr = ensure_int_array(np.arange(10)[::2])
        assert arr.flags["C_CONTIGUOUS"]


class TestPrefixFromCounts:
    def test_basic(self):
        assert prefix_from_counts([2, 0, 3]).tolist() == [0, 2, 2, 5]

    def test_empty(self):
        assert prefix_from_counts([]).tolist() == [0]


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0
