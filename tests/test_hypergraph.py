"""Unit and property tests for the hypergraph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.hypergraph import (
    Hypergraph,
    hypergraph_from_csr,
    hypergraph_from_netlists,
    validate_hypergraph,
)
from tests.conftest import hypergraphs


class TestConstruction:
    def test_basic_counts(self, tiny_hypergraph):
        h = tiny_hypergraph
        assert h.num_vertices == 4
        assert h.num_nets == 3
        assert h.num_pins == 7

    def test_pins_of(self, tiny_hypergraph):
        assert tiny_hypergraph.pins_of(1).tolist() == [1, 2, 3]

    def test_nets_of(self, tiny_hypergraph):
        assert sorted(tiny_hypergraph.nets_of(1).tolist()) == [0, 1]
        assert sorted(tiny_hypergraph.nets_of(3).tolist()) == [1, 2]

    def test_net_sizes_and_degrees(self, tiny_hypergraph):
        assert tiny_hypergraph.net_sizes().tolist() == [2, 3, 2]
        assert tiny_hypergraph.vertex_degrees().tolist() == [1, 2, 2, 2]
        assert tiny_hypergraph.net_size(1) == 3
        assert tiny_hypergraph.vertex_degree(0) == 1

    def test_default_weights_and_costs(self, tiny_hypergraph):
        assert tiny_hypergraph.vertex_weights.tolist() == [1, 1, 1, 1]
        assert tiny_hypergraph.net_costs.tolist() == [1, 1, 1]
        assert tiny_hypergraph.total_vertex_weight() == 4

    def test_custom_weights(self):
        h = hypergraph_from_netlists(
            3, [[0, 1]], vertex_weights=[2, 0, 5], net_costs=[7]
        )
        assert h.total_vertex_weight() == 7
        assert h.net_costs.tolist() == [7]

    def test_iter_nets(self, tiny_hypergraph):
        assert [n.tolist() for n in tiny_hypergraph.iter_nets()] == [
            [0, 1], [1, 2, 3], [2, 3],
        ]

    def test_empty_hypergraph(self):
        h = hypergraph_from_netlists(0, [])
        assert h.num_vertices == 0
        assert h.num_nets == 0
        assert h.num_pins == 0

    def test_vertices_without_nets(self):
        h = hypergraph_from_netlists(5, [[0, 1]])
        assert h.vertex_degree(4) == 0

    def test_equality(self, tiny_hypergraph):
        other = hypergraph_from_netlists(4, [[0, 1], [1, 2, 3], [2, 3]])
        assert tiny_hypergraph == other
        different = hypergraph_from_netlists(4, [[0, 1], [1, 2, 3], [1, 3]])
        assert tiny_hypergraph != different

    def test_fixed_carried(self):
        h = hypergraph_from_netlists(3, [[0, 1, 2]], fixed=[-1, 0, 1])
        assert h.fixed.tolist() == [-1, 0, 1]


class TestValidation:
    def test_pin_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            hypergraph_from_netlists(2, [[0, 5]])

    def test_duplicate_pins_rejected(self):
        with pytest.raises(ValueError, match="duplicate pins"):
            hypergraph_from_netlists(3, [[0, 1, 1]])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            hypergraph_from_netlists(2, [[0, 1]], vertex_weights=[1, -1])

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            hypergraph_from_netlists(2, [[0, 1]], net_costs=[-2])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            hypergraph_from_netlists(2, [[0, 1]], vertex_weights=[1])

    def test_bad_xpins(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [0, 2, 1], [0, 1])

    def test_xpins_must_match_pins(self):
        with pytest.raises(ValueError, match="xpins"):
            Hypergraph(2, [0, 3], [0, 1])


class TestDualConsistency:
    def test_transpose_matches(self, tiny_hypergraph):
        validate_hypergraph(tiny_hypergraph)

    @given(hypergraphs())
    @settings(max_examples=60, deadline=None)
    def test_property_dual_consistency(self, h):
        validate_hypergraph(h)

    @given(hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_property_pin_count_symmetry(self, h):
        assert int(h.net_sizes().sum()) == int(h.vertex_degrees().sum()) == h.num_pins


class TestCsrConstructor:
    def test_matches_netlists(self, tiny_hypergraph):
        h2 = hypergraph_from_csr(
            4, tiny_hypergraph.xpins, tiny_hypergraph.pins
        )
        assert h2 == tiny_hypergraph
