"""Known-optimal fixture registry: certified cuts for tiny instances.

``tests/data/optimal/optimal_cuts.json`` pins the **certified optimal**
bipartition quality key ``(excess, cut)`` of every hypergraph model of a
family of tiny deterministic matrices — the branch-and-bound solver of
:mod:`repro.exact` proves each entry (``proven=True``) and the suite in
``tests/test_optimal_fixtures.py`` re-certifies it on every run for both
paper objectives.  Unlike the golden registry (``tests/golden.py``),
which pins *whatever the heuristic currently produces*, these entries
pin what is mathematically optimal — the hardest correctness bar the
partitioner has: no heuristic change may ever dip below them, and on
instances this small the multilevel pipeline is expected to land exactly
on them.

Regenerating
------------
Entries only change when the instance family or the balance definition
changes — never with heuristic tweaks.  Re-record with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_optimal_fixtures.py -q

or directly (writes unconditionally)::

    PYTHONPATH=src python -m tests.optimal_fixtures
"""

from __future__ import annotations

import atexit
import json
import os

import numpy as np
import scipy.sparse as sp

from repro.core.finegrain import build_finegrain_model
from repro.exact import exact_bisection
from repro.models.onedim import build_columnnet_model, build_rownet_model

__all__ = [
    "OPTIMAL_PATH",
    "EPSILON",
    "fixture_matrices",
    "fixture_hypergraphs",
    "certify",
    "check_optimal",
    "regenerate",
]

OPTIMAL_PATH = os.path.join(
    os.path.dirname(__file__), "data", "optimal", "optimal_cuts.json"
)

#: balance tolerance every fixture is certified under (the pipeline default)
EPSILON = 0.03

#: generous per-entry certification budget; every committed fixture
#: certifies in far fewer nodes (the registry records the actual count)
CERTIFY_NODES = 2_000_000

_REGEN = os.environ.get("REPRO_REGEN_GOLDENS", "").strip().lower() not in (
    "", "0", "false", "no", "off",
)


def fixture_matrices() -> dict[str, sp.csr_matrix]:
    """The deterministic tiny-matrix family, name -> CSR matrix.

    Structured patterns (chain, arrow, block) pin the shapes whose optima
    are easy to reason about by hand; the seeded random ones cover
    irregular sparsity.  Small enough that every model's hypergraph is
    certified by the branch-and-bound solver in well under a second.
    """
    mats: dict[str, sp.csr_matrix] = {}

    n = 6  # tridiagonal chain: the textbook minimal-cut instance
    diag = np.ones(n)
    mats["tri6"] = sp.csr_matrix(
        sp.diags([diag[:-1], diag, diag[:-1]], [-1, 0, 1])
    )

    n = 7  # arrow: dense first row/column + diagonal (a hub vertex)
    arrow = sp.lil_matrix((n, n))
    arrow[0, :] = 1.0
    arrow[:, 0] = 1.0
    arrow.setdiag(1.0)
    mats["arrow7"] = sp.csr_matrix(arrow)

    # two dense 3x3 blocks joined by one coupling entry: optimum cuts
    # only the coupler
    block = sp.block_diag((np.ones((3, 3)), np.ones((3, 3)))).tolil()
    block[2, 3] = 1.0
    mats["block2x3"] = sp.csr_matrix(block)

    for name, (n, dens, seed) in {
        "rand5": (5, 0.45, 11),
        "rand6": (6, 0.35, 23),
    }.items():
        a = sp.random(n, n, density=dens, format="csr", random_state=seed)
        a.data[:] = 1.0
        mats[name] = sp.csr_matrix(a)

    # one rectangular reduction instance (finegrain-rect only: the 1D and
    # consistent models require square matrices)
    r = sp.random(4, 6, density=0.5, format="csr", random_state=37)
    r.data[:] = 1.0
    mats["rect4x6"] = sp.csr_matrix(r)

    for a in mats.values():
        a.eliminate_zeros()
        a.sort_indices()
    return mats


def _models_for(a: sp.csr_matrix):
    """(model name, hypergraph) pairs applicable to *a*.

    Mirrors :func:`repro.verify.oracles.verify_decompose`'s model mapping,
    including ``graph`` -> the column-net hypergraph (the true volume
    measure of any row partition, which the graph model's edge cut is not).
    """
    square = a.shape[0] == a.shape[1]
    yield "finegrain-rect", build_finegrain_model(a, consistency=False).hypergraph
    if not square:
        return
    yield "finegrain", build_finegrain_model(a, consistency=True).hypergraph
    yield "columnnet", build_columnnet_model(a, consistency=True).hypergraph
    yield "rownet", build_rownet_model(a, consistency=True).hypergraph
    yield "graph", build_columnnet_model(a, consistency=True).hypergraph


def fixture_hypergraphs():
    """Every fixture instance: ``(key, matrix_name, model, hypergraph)``."""
    for mname, a in fixture_matrices().items():
        for model, h in _models_for(a):
            yield f"{mname}:{model}", mname, model, h


def _load() -> dict:
    if not os.path.exists(OPTIMAL_PATH):
        return {}
    with open(OPTIMAL_PATH) as f:
        return json.load(f)


OPTIMA = _load()
_UPDATES: dict[str, dict] = {}


def certify(h, objective: str = "connectivity"):
    """Run the exact solver to certification on a fixture hypergraph."""
    res = exact_bisection(h, EPSILON, objective, max_nodes=CERTIFY_NODES)
    assert res.proven, (
        f"fixture instance did not certify within {CERTIFY_NODES} nodes "
        f"({h!r}) — shrink the instance"
    )
    return res


def check_optimal(key: str, h) -> dict:
    """Assert the exact solver re-certifies the recorded optimum for *key*
    (both objectives); under ``REPRO_REGEN_GOLDENS=1`` record instead.

    Returns the registry entry, freshly computed in regen mode.
    """
    res = certify(h, "connectivity")
    res_cn = certify(h, "cutnet")
    # at k=2 the two paper objectives are numerically identical
    assert (res_cn.excess, res_cn.cutsize) == (res.excess, res.cutsize), key
    entry = {
        "vertices": h.num_vertices,
        "nets": h.num_nets,
        "pins": h.num_pins,
        "excess": res.excess,
        "cut": res.cutsize,
        "nodes": res.nodes,
    }
    if _REGEN:
        _UPDATES[key] = entry
        return entry
    assert key in OPTIMA, (
        f"no optimal fixture {key!r}; record it with REPRO_REGEN_GOLDENS=1 "
        f"(see tests/optimal_fixtures.py)"
    )
    gold = OPTIMA[key]
    assert (res.excess, res.cutsize) == (gold["excess"], gold["cut"]), (
        f"{key}: certified optimum (excess={res.excess}, cut={res.cutsize}) "
        f"!= recorded ({gold['excess']}, {gold['cut']})"
    )
    return gold


def _flush() -> None:
    if not _UPDATES:
        return
    merged = {**OPTIMA, **_UPDATES}
    os.makedirs(os.path.dirname(OPTIMAL_PATH), exist_ok=True)
    with open(OPTIMAL_PATH, "w") as f:
        json.dump({k: merged[k] for k in sorted(merged)}, f, indent=2)
        f.write("\n")
    print(f"optimal: wrote {len(_UPDATES)} entries to {OPTIMAL_PATH}")


if _REGEN:
    atexit.register(_flush)


def regenerate() -> dict:
    """Recompute and write the whole registry (no env var needed)."""
    doc = {}
    for key, _mname, _model, h in fixture_hypergraphs():
        res = certify(h, "connectivity")
        doc[key] = {
            "vertices": h.num_vertices,
            "nets": h.num_nets,
            "pins": h.num_pins,
            "excess": res.excess,
            "cut": res.cutsize,
            "nodes": res.nodes,
        }
        print(f"{key:<28} cut={res.cutsize} excess={res.excess} nodes={res.nodes}")
    os.makedirs(os.path.dirname(OPTIMAL_PATH), exist_ok=True)
    with open(OPTIMAL_PATH, "w") as f:
        json.dump({k: doc[k] for k in sorted(doc)}, f, indent=2)
        f.write("\n")
    print(f"optimal: wrote {len(doc)} entries to {OPTIMAL_PATH}")
    return doc


if __name__ == "__main__":
    regenerate()
