"""Tests for K-way partition refinement and the 1D-seeded fine-grain mode."""

import numpy as np
import pytest

from repro._util import as_rng
from repro.core.api import decompose_1d_columnnet, decompose_2d_finegrain
from repro.hypergraph import cutsize_connectivity, hypergraph_from_netlists, imbalance
from repro.matrix import load_collection_matrix
from repro.partitioner import PartitionerConfig
from repro.partitioner.refine_kway import pairwise_refine, refine_partition
from repro.spmv import communication_stats
from tests.conftest import random_hypergraph


class TestRefinePartition:
    def test_never_worse(self):
        cfg = PartitionerConfig(epsilon=0.2)
        for seed in range(6):
            h = random_hypergraph(as_rng(seed), 60, 50)
            part = as_rng(seed + 100).integers(0, 4, size=60)
            before = cutsize_connectivity(h, part)
            new = refine_partition(h, part, 4, config=cfg, seed=seed)
            assert cutsize_connectivity(h, new) <= before

    def test_repairs_scrambled_planted_partition(self):
        from repro.hypergraph.generators import planted_partition_hypergraph

        h, planted, cut = planted_partition_hypergraph(4, 20, 12, 4, 4, seed=0)
        scrambled = planted.copy()
        rng = as_rng(1)
        swap = rng.choice(len(scrambled), size=8, replace=False)
        scrambled[swap] = rng.integers(0, 4, size=8)
        cfg = PartitionerConfig(epsilon=0.25)
        new = refine_partition(h, scrambled, 4, config=cfg, seed=2, sweeps=4)
        assert cutsize_connectivity(h, new) <= cut + 4

    def test_k1_noop(self):
        h = random_hypergraph(as_rng(5), 10, 8)
        part = np.zeros(10, dtype=np.int64)
        assert np.array_equal(refine_partition(h, part, 1, seed=0), part)

    def test_respects_fixed(self):
        nets = [[0, 1, 2], [3, 4, 5], [2, 3]]
        fixed = np.array([0, -1, -1, -1, -1, 1])
        h = hypergraph_from_netlists(6, nets, fixed=fixed)
        part = np.array([0, 0, 1, 1, 1, 1])
        cfg = PartitionerConfig(epsilon=0.5)
        new = refine_partition(h, part, 2, config=cfg, seed=0)
        assert new[0] == 0 and new[5] == 1


class TestPairwiseRefine:
    def test_balance_bound_respected(self):
        h = random_hypergraph(as_rng(10), 40, 30)
        part = as_rng(11).integers(0, 4, size=40)
        cfg = PartitionerConfig(epsilon=0.25)
        new = pairwise_refine(h, part, 4, cfg, as_rng(12))
        assert imbalance(h, new, 4) <= 0.30  # eps plus integer slack

    def test_global_delta_matches(self):
        """A pairwise sweep's improvement shows up 1:1 in the global Eq. 3."""
        for seed in range(5):
            h = random_hypergraph(as_rng(seed + 20), 50, 45)
            part = as_rng(seed + 40).integers(0, 3, size=50)
            cfg = PartitionerConfig(epsilon=0.5)
            new = pairwise_refine(h, part, 3, cfg, as_rng(seed))
            assert cutsize_connectivity(h, new) <= cutsize_connectivity(h, part)


class TestSeeded2D:
    @pytest.mark.slow
    def test_seeded_never_loses_to_1d(self):
        """seed_1d guarantees 2D volume <= 1D volume on the same seed."""
        a = load_collection_matrix("vibrobox", scale=0.05, seed=0)
        _, i1 = decompose_1d_columnnet(a, 8, seed=0)
        dec, i2 = decompose_2d_finegrain(a, 8, seed=0, seed_1d=True)
        stats = communication_stats(dec)
        assert stats.total_volume == i2.cutsize
        assert i2.cutsize <= i1.cutsize

    def test_seeded_valid_on_small_matrix(self, small_sparse_matrix):
        dec, info = decompose_2d_finegrain(
            small_sparse_matrix, 4, seed=0, seed_1d=True
        )
        assert dec.is_symmetric()
        stats = communication_stats(dec)
        assert stats.total_volume == info.cutsize
