"""Tests for the distributed iterative solvers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import build_finegrain_model, decomposition_from_finegrain
from repro.solvers import conjugate_gradient, jacobi, power_iteration


def spd_matrix(n=60, seed=0):
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=0.08, random_state=rng, format="csr")
    a = a + a.T
    return sp.csr_matrix(a + sp.diags(np.abs(a).sum(axis=1).A1 + 1.0))


def decompose(a, k=4, seed=0):
    model = build_finegrain_model(a)
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, size=model.hypergraph.num_vertices)
    return decomposition_from_finegrain(model, part, k)


@pytest.fixture(scope="module")
def system():
    a = spd_matrix()
    dec = decompose(a)
    b = np.random.default_rng(1).standard_normal(60)
    return a, dec, b


class TestConjugateGradient:
    def test_solves_spd_system(self, system):
        a, dec, b = system
        res = conjugate_gradient(dec, b, tol=1e-10)
        assert res.converged
        assert np.allclose(a @ res.x, b, atol=1e-6)

    def test_costs_reported(self, system):
        a, dec, b = system
        res = conjugate_gradient(dec, b)
        assert res.spmv_words_per_iteration > 0
        assert res.spmv_messages_per_iteration > 0
        assert res.reduction_words_per_iteration == 2 * (dec.k - 1) * 2
        assert res.total_words == res.iterations * (
            res.spmv_words_per_iteration + res.reduction_words_per_iteration
        )

    def test_warm_start(self, system):
        a, dec, b = system
        exact = conjugate_gradient(dec, b, tol=1e-12)
        warm = conjugate_gradient(dec, b, tol=1e-12, x0=exact.x)
        assert warm.iterations <= 1

    def test_iteration_budget(self, system):
        a, dec, b = system
        res = conjugate_gradient(dec, b, tol=1e-14, maxiter=2)
        assert res.iterations <= 2
        assert not res.converged or res.residual < 1e-10

    def test_wrong_shape(self, system):
        _, dec, _ = system
        with pytest.raises(ValueError, match="wrong shape"):
            conjugate_gradient(dec, np.zeros(3))


class TestJacobi:
    def test_solves_diagonally_dominant(self, system):
        a, dec, b = system
        res = jacobi(dec, b, tol=1e-10, maxiter=5000)
        assert res.converged
        assert np.allclose(a @ res.x, b, atol=1e-6)

    def test_zero_diagonal_rejected(self):
        a = sp.csr_matrix((np.ones(2), ([0, 1], [1, 0])), shape=(2, 2))
        dec = decompose(a, k=2)
        with pytest.raises(ValueError, match="nonzero diagonal"):
            jacobi(dec, np.ones(2))


class TestPowerIteration:
    def test_finds_dominant_eigenpair(self, system):
        a, dec, _ = system
        res = power_iteration(dec, tol=1e-12, maxiter=3000)
        assert res.converged
        # compare against dense eigenvalues
        w = np.linalg.eigvalsh(a.toarray())
        assert res.eigenvalue == pytest.approx(w[-1], rel=1e-5)
        assert np.allclose(a @ res.x, res.eigenvalue * res.x, atol=1e-4)

    def test_deterministic(self, system):
        _, dec, _ = system
        r1 = power_iteration(dec, seed=3, maxiter=50)
        r2 = power_iteration(dec, seed=3, maxiter=50)
        assert np.array_equal(r1.x, r2.x)
