"""Tests for the alpha-beta machine cost model."""

import numpy as np
import pytest

from repro.core import decomposition_from_row_partition
from repro.spmv import MachineModel, communication_stats, estimate_parallel_time


def stats_for(a, k=4):
    m = a.shape[0]
    part = np.arange(m) % k
    return communication_stats(decomposition_from_row_partition(a, part, k))


class TestMachineModel:
    def test_defaults_valid(self):
        m = MachineModel()
        assert m.alpha > m.beta

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(alpha=-1)


class TestEstimate:
    def test_positive_and_monotone(self, small_sparse_matrix):
        s = stats_for(small_sparse_matrix)
        base = estimate_parallel_time(s)
        assert base > 0
        slower_net = estimate_parallel_time(s, MachineModel(alpha=1e-3))
        assert slower_net > base

    def test_no_comm_means_compute_only(self, small_sparse_matrix):
        a = small_sparse_matrix
        m = a.shape[0]
        part = np.zeros(m, dtype=np.int64)  # everything on one processor
        s = communication_stats(decomposition_from_row_partition(a, part, 2))
        mm = MachineModel(t_flop=1e-6, alpha=1.0, beta=1.0)
        assert estimate_parallel_time(s, mm) == pytest.approx(2 * a.nnz * 1e-6)

    def test_free_machine(self, small_sparse_matrix):
        s = stats_for(small_sparse_matrix)
        assert estimate_parallel_time(s, MachineModel(0.0, 0.0, 0.0)) == 0.0
