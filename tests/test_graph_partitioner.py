"""Tests for the multilevel graph partitioner (MeTiS analogue)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro._util import as_rng
from repro.graph import Graph, edge_cut, graph_from_sparse, partition_graph
from repro.graph.partitioner import (
    contract,
    fm_refine_graph,
    ggg_bisection,
    heavy_edge_matching,
    multilevel_graph_bisect,
)
from repro.partitioner.config import PartitionerConfig


def grid_graph(nx: int, ny: int) -> Graph:
    """nx x ny 4-neighbour grid."""
    n = nx * ny
    rows, cols = [], []
    for x in range(nx):
        for y in range(ny):
            v = x * ny + y
            if x + 1 < nx:
                rows += [v, v + ny]
                cols += [v + ny, v]
            if y + 1 < ny:
                rows += [v, v + 1]
                cols += [v + 1, v]
    a = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
    return graph_from_sparse(a)


def random_graph(n: int, p: float, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=p, random_state=rng, format="csr")
    a = a + a.T
    a.data[:] = np.ceil(a.data * 3)
    return graph_from_sparse(a)


class TestCoarsening:
    def test_hem_valid_cmap(self):
        g = random_graph(50, 0.1, 0)
        cmap, nc = heavy_edge_matching(g, as_rng(1), max_cluster_weight=10)
        assert len(np.unique(cmap)) == nc
        assert np.bincount(cmap).max() <= 2

    def test_contract_preserves_weight(self):
        g = random_graph(40, 0.15, 2)
        cmap, nc = heavy_edge_matching(g, as_rng(3), max_cluster_weight=100)
        cg = contract(g, cmap, nc)
        assert cg.total_vertex_weight() == g.total_vertex_weight()
        assert cg.num_vertices == nc

    def test_contract_preserves_cut(self):
        """Edge cut of a coarse partition equals that of its projection."""
        g = random_graph(40, 0.15, 4)
        cmap, nc = heavy_edge_matching(g, as_rng(5), max_cluster_weight=100)
        cg = contract(g, cmap, nc)
        rng = as_rng(6)
        coarse_part = rng.integers(0, 3, size=nc)
        assert edge_cut(cg, coarse_part) == edge_cut(g, coarse_part[cmap])

    def test_contract_merges_parallel_edges(self):
        # triangle contracted to 2 vertices: edges (0-1),(0-2),(1-2) with
        # cmap [0,0,1] -> single coarse edge of weight 2
        a = sp.csr_matrix(
            (np.ones(6), ([0, 1, 0, 2, 1, 2], [1, 0, 2, 0, 2, 1])), shape=(3, 3)
        )
        g = graph_from_sparse(a)
        cg = contract(g, np.array([0, 0, 1]), 2)
        assert cg.num_edges == 1
        assert cg.adjwgt.tolist() == [2, 2]


class TestRefinement:
    def test_never_worse(self):
        cfg = PartitionerConfig()
        for seed in range(6):
            g = random_graph(40, 0.12, seed)
            part = as_rng(seed + 10).integers(0, 2, size=40)
            before = edge_cut(g, part)
            new, cut = fm_refine_graph(
                g, part, (g.total_vertex_weight(),) * 2, cfg, as_rng(seed)
            )
            assert edge_cut(g, new) == cut <= before

    def test_repairs_swapped_pair(self):
        g = grid_graph(4, 4)
        part = np.array([0] * 8 + [1] * 8)
        part[0], part[8] = 1, 0  # swap across the natural split
        cfg = PartitionerConfig()
        new, cut = fm_refine_graph(g, part, (9, 9), cfg, as_rng(0))
        assert cut <= edge_cut(g, np.array([0] * 8 + [1] * 8))


class TestBisection:
    def test_grid_bisection_near_optimal(self):
        g = grid_graph(8, 8)
        cfg = PartitionerConfig()
        part, cut = multilevel_graph_bisect(g, (32, 32), 0.03, cfg, as_rng(0))
        # optimal straight cut = 8
        assert cut <= 12
        w0 = int(g.vwgt[part == 0].sum())
        assert 30 <= w0 <= 34

    def test_ggg_contiguous_on_path(self):
        g = grid_graph(1, 20)
        part = ggg_bisection(g, 10, 11, as_rng(3))
        assert edge_cut(g, part) <= 2


class TestPartitionGraph:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_valid_partition(self, k):
        g = random_graph(60, 0.1, 7)
        res = partition_graph(g, k, seed=0)
        assert res.part.min() >= 0 and res.part.max() < k
        assert res.edge_cut == edge_cut(g, res.part)

    def test_balance(self):
        g = grid_graph(8, 8)
        res = partition_graph(g, 4, config=PartitionerConfig(epsilon=0.03), seed=1)
        assert res.imbalance <= 0.05

    def test_deterministic(self):
        g = random_graph(50, 0.1, 8)
        r1 = partition_graph(g, 4, seed=99)
        r2 = partition_graph(g, 4, seed=99)
        assert np.array_equal(r1.part, r2.part)

    def test_quality_on_clustered_graph(self):
        # 4 dense cliques, sparse links: K=4 should cut only links
        blocks = []
        n, b = 32, 8
        rows, cols = [], []
        for blk in range(4):
            base = blk * b
            for i in range(b):
                for j in range(i + 1, b):
                    rows += [base + i, base + j]
                    cols += [base + j, base + i]
        for blk in range(3):
            u, v = blk * b, (blk + 1) * b
            rows += [u, v]
            cols += [v, u]
        a = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
        g = graph_from_sparse(a)
        res = partition_graph(g, 4, seed=0)
        assert res.edge_cut <= 6  # ideal 3

    def test_k1(self):
        g = random_graph(10, 0.2, 9)
        res = partition_graph(g, 1, seed=0)
        assert res.edge_cut == 0
        assert res.part.tolist() == [0] * 10

    def test_invalid_k(self):
        g = random_graph(5, 0.3, 10)
        with pytest.raises(ValueError):
            partition_graph(g, 0)

    def test_summary(self):
        g = random_graph(20, 0.2, 11)
        assert "edgecut=" in partition_graph(g, 2, seed=0).summary()
