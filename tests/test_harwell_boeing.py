"""Tests for the Harwell–Boeing reader/writer."""

import io

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings

from repro.matrix.harwell_boeing import read_harwell_boeing, write_harwell_boeing
from tests.conftest import sparse_square_matrices


def roundtrip(a):
    buf = io.StringIO()
    write_harwell_boeing(a, buf)
    buf.seek(0)
    return read_harwell_boeing(buf)


class TestRoundtrip:
    def test_small(self, small_sparse_matrix):
        b = roundtrip(small_sparse_matrix)
        assert abs(b - small_sparse_matrix).max() < 1e-10

    def test_rectangular(self):
        a = sp.random(5, 9, density=0.4, random_state=0, format="csr")
        b = roundtrip(a)
        assert b.shape == (5, 9)
        assert abs(b - a).max() < 1e-10

    def test_file_path(self, tmp_path, small_sparse_matrix):
        p = tmp_path / "m.rua"
        write_harwell_boeing(small_sparse_matrix, p)
        assert abs(read_harwell_boeing(p) - small_sparse_matrix).max() < 1e-10

    @given(sparse_square_matrices(max_n=10))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, a):
        b = roundtrip(a)
        assert abs(b - a).max() < 1e-9 if a.nnz else b.nnz == 0


class TestReadFormats:
    def hand_file(self, mxtype="RUA", vals=True):
        """A hand-written 3x3 HB file: entries (1,1)=1.0 (3,1)=2.0 (2,2)=3.0."""
        lines = [
            f"{'hand-written test matrix':<72}{'TEST':<8}",
            f"{3:>14}{1:>14}{1:>14}{1:>14}{0:>14}",
            f"{mxtype:<14}{3:>14}{3:>14}{3:>14}{0:>14}",
            f"{'(4I8)':<16}{'(4I8)':<16}{'(3E20.12)':<20}",
            "       1       3       4       4",
            "       1       3       2",
        ]
        if vals:
            lines.append(
                "  1.000000000000E+00  2.000000000000E+00  3.000000000000E+00"
            )
        return io.StringIO("\n".join(lines) + "\n")

    def test_hand_rua(self):
        a = read_harwell_boeing(self.hand_file()).toarray()
        assert a[0, 0] == 1.0 and a[2, 0] == 2.0 and a[1, 1] == 3.0
        assert np.count_nonzero(a) == 3

    def test_symmetric_expansion(self):
        a = read_harwell_boeing(self.hand_file(mxtype="RSA")).toarray()
        # (3,1) mirrors to (1,3)
        assert a[0, 2] == 2.0 and a[2, 0] == 2.0

    def test_pattern_type(self):
        f = self.hand_file(mxtype="PUA", vals=False)
        # pattern files have no value cards
        text = f.getvalue().splitlines()
        text[1] = f"{2:>14}{1:>14}{1:>14}{0:>14}{0:>14}"
        a = read_harwell_boeing(io.StringIO("\n".join(text) + "\n"))
        assert a.nnz == 3
        assert set(a.data.tolist()) == {1.0}

    def test_fortran_d_exponent(self):
        f = self.hand_file()
        text = f.getvalue().replace("E+00", "D+00")
        a = read_harwell_boeing(io.StringIO(text))
        assert a[0, 0] == 1.0

    def test_unassembled_rejected(self):
        f = self.hand_file(mxtype="RUE")
        with pytest.raises(ValueError, match="assembled"):
            read_harwell_boeing(f)

    def test_complex_rejected(self):
        f = self.hand_file(mxtype="CUA")
        with pytest.raises(ValueError, match="value type"):
            read_harwell_boeing(f)

    def test_truncated(self):
        with pytest.raises(ValueError, match="truncated"):
            read_harwell_boeing(io.StringIO("only\ntwo\n"))
