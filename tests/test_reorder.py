"""Tests for matrix reordering (RCM, permutations, block order)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrix.generators import banded_fem_matrix, geometric_graph_matrix
from repro.matrix.reorder import (
    apply_symmetric_permutation,
    bandwidth,
    partition_block_order,
    profile,
    random_symmetric_permutation,
    reverse_cuthill_mckee,
)


class TestMetrics:
    def test_bandwidth(self):
        a = sp.csr_matrix(np.array([[1, 0, 1], [0, 1, 0], [0, 0, 1]], dtype=float))
        assert bandwidth(a) == 2

    def test_bandwidth_empty(self):
        assert bandwidth(sp.csr_matrix((3, 3))) == 0

    def test_profile(self):
        a = sp.csr_matrix(np.array([[1, 0, 0], [1, 1, 0], [1, 0, 1]], dtype=float))
        # rows reach left by 0, 1, 2
        assert profile(a) == 3


class TestRCM:
    def test_is_permutation(self):
        a = geometric_graph_matrix(100, avg_degree=4, seed=0)
        perm = reverse_cuthill_mckee(a)
        assert sorted(perm.tolist()) == list(range(100))

    def test_reduces_bandwidth_of_scrambled_band(self):
        banded = banded_fem_matrix(200, bandwidth=8, avg_degree=6, seed=0)
        scramble = random_symmetric_permutation(200, seed=1)
        scrambled = apply_symmetric_permutation(banded, scramble)
        assert bandwidth(scrambled) > bandwidth(banded)
        perm = reverse_cuthill_mckee(scrambled)
        restored = apply_symmetric_permutation(scrambled, perm)
        assert bandwidth(restored) < bandwidth(scrambled) / 3

    def test_disconnected_components(self):
        a = sp.block_diag(
            [sp.eye(3) + sp.diags([[1, 1]], offsets=[1], shape=(3, 3)),
             sp.eye(4)],
            format="csr",
        )
        perm = reverse_cuthill_mckee(a)
        assert sorted(perm.tolist()) == list(range(7))

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            reverse_cuthill_mckee(sp.csr_matrix((2, 3)))


class TestPermutations:
    def test_random_symmetric_deterministic(self):
        assert np.array_equal(
            random_symmetric_permutation(10, seed=3),
            random_symmetric_permutation(10, seed=3),
        )

    def test_apply_preserves_values(self, small_sparse_matrix):
        perm = random_symmetric_permutation(30, seed=0)
        b = apply_symmetric_permutation(small_sparse_matrix, perm)
        assert b.nnz == small_sparse_matrix.nnz
        # spectral fingerprint invariant under symmetric permutation
        assert np.isclose(b.diagonal().sum(), small_sparse_matrix.diagonal().sum())

    def test_partition_block_order_groups(self):
        part = np.array([2, 0, 1, 0, 2, 1])
        perm = partition_block_order(part, 3)
        assert part[perm].tolist() == [0, 0, 1, 1, 2, 2]

    def test_partition_block_order_validates(self):
        with pytest.raises(ValueError):
            partition_block_order(np.array([0, 5]), 2)

    def test_apply_validates_length(self, small_sparse_matrix):
        with pytest.raises(ValueError):
            apply_symmetric_permutation(small_sparse_matrix, np.arange(5))
