"""The partitioning service (:mod:`repro.serve`): cache, scheduling,
protocol, transport.

The contract under test: a response is a pure function of the request
fingerprint — whether it was computed, answered from either cache tier,
or shared with a deduplicated waiter, the canonical result document is
byte-identical; and concurrent requests never perturb each other's bits
(the reentrancy refactor's regression tests live here too).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
import scipy.sparse as sp

from repro.serve.cache import CacheEntry, PartitionCache
from repro.serve.protocol import (
    ProtocolError,
    canonical_result_bytes,
    decode_msg,
    encode_msg,
    inline_matrix,
    matrix_from_inline,
    parse_decompose,
    part_from_b64,
    part_to_b64,
)
from repro.serve.service import PartitionService, ServeConfig


def entry(fp: str, n: int = 100, meta: dict | None = None) -> CacheEntry:
    return CacheEntry(
        fingerprint=fp,
        part=np.arange(n, dtype=np.int64),
        meta=meta if meta is not None else {"k": 4},
    )


@pytest.fixture
def a():
    return sp.random(60, 60, density=0.08, format="csr", random_state=0)


def service_cfg(tmp_path, **kw) -> ServeConfig:
    kw.setdefault("port", None)
    kw.setdefault("cache_dir", str(tmp_path / "cache"))
    return ServeConfig(**kw)


def req(a, seed=0, k=4, **kw) -> dict:
    return {
        "op": "decompose",
        "matrix": {"inline": inline_matrix(a)},
        "k": k,
        "seed": seed,
        **kw,
    }


def run_service(coro_fn, cfg: ServeConfig):
    """Run an async scenario against a fresh service, then tear it down."""
    service = PartitionService(cfg)
    try:
        return asyncio.run(coro_fn(service))
    finally:
        service.close()


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_message_round_trip(self):
        obj = {"op": "ping", "id": 3, "nested": {"x": [1, 2]}}
        assert decode_msg(encode_msg(obj)) == obj

    def test_part_round_trip(self):
        part = np.array([0, 3, 1, 2], dtype=np.int64)
        assert np.array_equal(part_from_b64(part_to_b64(part)), part)

    def test_inline_matrix_round_trip(self):
        a = sp.random(12, 9, density=0.3, format="csr", random_state=1)
        b = matrix_from_inline(inline_matrix(a))
        assert (a != b).nnz == 0
        assert b.shape == a.shape

    def test_inline_matrix_plain_coo(self):
        b = matrix_from_inline(
            {"shape": [2, 2], "coo": [[0, 0, 2.0], [1, 1, 3.0]]}
        )
        assert b.toarray().tolist() == [[2.0, 0.0], [0.0, 3.0]]

    def test_inline_matrix_rejects_bad_indices(self):
        with pytest.raises(ProtocolError, match="out of range"):
            matrix_from_inline({"shape": [2, 2], "coo": [[5, 0, 1.0]]})

    def test_parse_rejects_bad_requests(self):
        with pytest.raises(ProtocolError, match="matrix"):
            parse_decompose({"op": "decompose"})
        with pytest.raises(ProtocolError, match="'k'"):
            parse_decompose({"op": "decompose", "matrix": {"path": "x"}})
        with pytest.raises(ProtocolError, match="method"):
            parse_decompose(
                {"op": "decompose", "matrix": {"path": "x"}, "k": 2,
                 "method": "nope"}
            )

    def test_fingerprint_lookup_needs_no_k(self):
        fields = parse_decompose(
            {"op": "decompose", "matrix": {"fingerprint": "ab"}}
        )
        assert "k" not in fields


# ----------------------------------------------------------------------
# the two-tier cache
# ----------------------------------------------------------------------
class TestCacheMemoryTier:
    def test_lru_eviction_order_under_byte_budget(self):
        one = entry("a").nbytes
        cache = PartitionCache(mem_bytes=3 * one, disk_dir=None)
        for fp in ("a", "b", "c"):
            cache.put(entry(fp))
        cache.get("a")  # refresh: "b" is now least recently used
        cache.put(entry("d"))
        assert cache.get("b") is None
        got = cache.get("a")
        assert got is not None and got[1] == "memory"
        assert cache.get("c") is not None and cache.get("d") is not None
        assert cache.stats()["mem_evictions"] == 1

    def test_oversized_entry_skips_memory_tier(self, tmp_path):
        cache = PartitionCache(mem_bytes=64, disk_dir=str(tmp_path))
        cache.put(entry("big", n=10_000))
        assert cache.stats()["mem_entries"] == 0
        got = cache.get("big")  # still served, from disk
        assert got is not None and got[1] == "disk"

    def test_replacement_does_not_leak_budget(self):
        cache = PartitionCache(mem_bytes=10 * entry("x").nbytes)
        for _ in range(50):
            cache.put(entry("x"))
        assert cache.stats()["mem_bytes_used"] == entry("x").nbytes


class TestCacheDiskTier:
    def test_disk_round_trip_across_instances(self, tmp_path):
        meta = {"k": 4, "cutsize": 17, "method": "finegrain"}
        PartitionCache(disk_dir=str(tmp_path)).put(entry("fp1", meta=meta))
        fresh = PartitionCache(disk_dir=str(tmp_path))  # a daemon restart
        got = fresh.get("fp1")
        assert got is not None
        e, tier = got
        assert tier == "disk"
        assert np.array_equal(e.part, entry("fp1").part)
        assert e.meta == meta
        # the disk hit was promoted: next lookup is a memory hit
        assert fresh.get("fp1")[1] == "memory"

    def test_corrupt_entry_detected_deleted_recomputed(self, tmp_path):
        cache = PartitionCache(mem_bytes=0, disk_dir=str(tmp_path))
        cache.put(entry("fp1"))
        path = cache._disk_path("fp1")
        with open(path, "r+b") as f:  # flip bytes inside the npz payload
            f.seek(os.path.getsize(path) // 2)
            f.write(b"\xff\xff\xff\xff\xff\xff\xff\xff")
        assert cache.get("fp1") is None
        assert not os.path.exists(path)  # deleted, will be recomputed
        assert cache.stats()["corrupt_entries"] == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = PartitionCache(mem_bytes=0, disk_dir=str(tmp_path))
        cache.put(entry("fp1"))
        path = cache._disk_path("fp1")
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) // 3)
        assert cache.get("fp1") is None
        assert cache.stats()["corrupt_entries"] == 1

    def test_wrong_fingerprint_under_right_name_is_corrupt(self, tmp_path):
        cache = PartitionCache(mem_bytes=0, disk_dir=str(tmp_path))
        cache.put(entry("fp1"))
        os.replace(cache._disk_path("fp1"), cache._disk_path("fp2"))
        assert cache.get("fp2") is None
        assert cache.stats()["corrupt_entries"] == 1

    def test_disk_eviction_lru_by_mtime(self, tmp_path):
        one_file = None
        cache = PartitionCache(mem_bytes=0, disk_dir=str(tmp_path))
        cache.put(entry("a"))
        one_file = os.path.getsize(cache._disk_path("a"))
        cache.disk_bytes = int(2.5 * one_file)
        now = time.time()
        os.utime(cache._disk_path("a"), (now - 100, now - 100))
        cache.put(entry("b"))
        os.utime(cache._disk_path("b"), (now - 50, now - 50))
        cache.put(entry("c"))  # budget fits 2: oldest ("a") evicted
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.get("c") is not None
        assert cache.stats()["disk_evictions"] == 1

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        cache = PartitionCache(disk_dir=str(tmp_path))
        cache.put(entry("fp1"))
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]


# ----------------------------------------------------------------------
# the service: cache hits, dedup, admission, deadline
# ----------------------------------------------------------------------
class TestServiceCaching:
    def test_repeat_request_hits_cache_byte_identically(self, tmp_path, a):
        trace = tmp_path / "trace.ndjson"
        cfg = service_cfg(tmp_path, trace_path=str(trace))

        async def scenario(svc):
            r1 = await svc.handle(req(a, seed=0), "c1")
            r2 = await svc.handle(req(a, seed=0), "c2")
            return r1, r2, svc.stats()

        r1, r2, stats = run_service(scenario, cfg)
        assert r1["served"]["cache"] == "computed"
        assert r2["served"]["cache"] == "hit-memory"
        # the canonical result document is byte-identical
        assert canonical_result_bytes(r1["result"]) == canonical_result_bytes(
            r2["result"]
        )
        assert stats["counters"]["hits_memory"] == 1
        assert stats["counters"]["computed"] == 1
        # the cache hit never touched the engine: no compute span; the
        # trace ends with the shutdown trailer close() seals it with
        lines = [json.loads(s) for s in trace.read_text().splitlines()]
        assert [ln["type"] for ln in lines] == ["request", "request", "shutdown"]
        assert "serve.compute" in lines[0]["telemetry"]["phases"]
        assert "serve.compute" not in lines[1]["telemetry"]["phases"]

    def test_fingerprint_only_lookup(self, tmp_path, a):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            r1 = await svc.handle(req(a, seed=0), "c")
            fp = r1["result"]["fingerprint"]
            r2 = await svc.handle(
                {"op": "decompose", "matrix": {"fingerprint": fp}}, "c"
            )
            r3 = await svc.handle(
                {"op": "decompose", "matrix": {"fingerprint": "0" * 64}}, "c"
            )
            return r1, r2, r3

        r1, r2, r3 = run_service(scenario, cfg)
        assert canonical_result_bytes(r1["result"]) == canonical_result_bytes(
            r2["result"]
        )
        assert r3["ok"] is False
        assert r3["error"]["code"] == "unknown-fingerprint"

    def test_daemon_restart_serves_from_disk_tier(self, tmp_path, a):
        cfg = service_cfg(tmp_path)

        async def first(svc):
            return await svc.handle(req(a, seed=0), "c")

        async def second(svc):
            return await svc.handle(req(a, seed=0), "c")

        r1 = run_service(first, cfg)
        r2 = run_service(second, service_cfg(tmp_path))  # fresh process state
        assert r2["served"]["cache"] == "hit-disk"
        assert canonical_result_bytes(r1["result"]) == canonical_result_bytes(
            r2["result"]
        )

    def test_unseeded_requests_are_never_cached(self, tmp_path, a):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            r1 = await svc.handle(req(a, seed=None), "c")
            r2 = await svc.handle(req(a, seed=None), "c")
            return r1, r2, svc.stats()

        r1, r2, stats = run_service(scenario, cfg)
        assert r1["served"]["cache"] == "computed"
        assert r2["served"]["cache"] == "computed"
        assert stats["counters"]["uncacheable"] == 2
        assert stats["cache"]["puts"] == 0

    def test_degraded_results_are_not_cached(self, tmp_path, a):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            r1 = await svc.handle(
                req(a, seed=0, n_starts=4, deadline=1e-4), "c"
            )
            r2 = await svc.handle(
                req(a, seed=0, n_starts=4, deadline=60.0), "c"
            )
            return r1, r2, svc.stats()

        r1, r2, stats = run_service(scenario, cfg)
        assert r1["result"]["degraded"] is True
        assert r1["served"]["cache"] == "degraded"
        # the repeat was recomputed (and cached), not answered degraded
        assert r2["served"]["cache"] == "computed"
        assert r2["result"]["degraded"] is False
        assert stats["counters"]["degraded"] == 1

    def test_want_part_false_strips_the_vector(self, tmp_path, a):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            return await svc.handle(req(a, seed=0, want_part=False), "c")

        r = run_service(scenario, cfg)
        assert "part_b64" not in r["result"]
        assert r["result"]["cutsize"] >= 0


class TestServiceScheduling:
    def test_inflight_dedup_shares_one_computation(self, tmp_path, a):
        cfg = service_cfg(tmp_path, n_workers=2)

        async def scenario(svc):
            responses = await asyncio.gather(
                *(svc.handle(req(a, seed=5), f"c{i}") for i in range(4))
            )
            return responses, svc.stats()

        responses, stats = run_service(scenario, cfg)
        tiers = sorted(r["served"]["cache"] for r in responses)
        assert stats["counters"]["computed"] == 1
        assert stats["counters"]["deduped"] == 3
        assert tiers.count("deduped") == 3
        blobs = {canonical_result_bytes(r["result"]) for r in responses}
        assert len(blobs) == 1  # all waiters got the byte-identical doc

    def test_queue_full_and_client_busy_refusals(self, tmp_path, a):
        cfg = service_cfg(
            tmp_path, n_workers=1, queue_limit=1, per_client_limit=1
        )

        async def scenario(svc):
            # distinct seeds: no dedup — all three want a compute slot
            t1 = asyncio.ensure_future(svc.handle(req(a, seed=1), "c1"))
            await asyncio.sleep(0)  # c1 occupies the only slot
            t2 = asyncio.ensure_future(svc.handle(req(a, seed=2), "c2"))
            await asyncio.sleep(0)  # c2 queues (global queue now full)
            r3 = await svc.handle(req(a, seed=3), "c3")  # refused
            r4 = await svc.handle(req(a, seed=4), "c2")  # c2 over its limit
            return await t1, await t2, r3, r4

        r1, r2, r3, r4 = run_service(scenario, cfg)
        assert r1["ok"] and r2["ok"]
        assert r3["error"]["code"] == "queue-full"
        assert r4["error"]["code"] == "client-busy"

    def test_fair_admission_round_robins_clients(self, tmp_path):
        from repro.serve.service import FairAdmission

        async def scenario():
            adm = FairAdmission(1, queue_limit=16, per_client_limit=8)
            order: list[str] = []
            await adm.acquire("holder")  # occupy the only slot

            async def one(client):
                await adm.acquire(client)
                order.append(client)
                await asyncio.sleep(0)
                adm.release(client)

            # "hog" floods the queue first; "meek" arrives with one request
            tasks = [asyncio.ensure_future(one("hog")) for _ in range(3)]
            await asyncio.sleep(0)  # hogs queue; ring = [hog]
            tasks.append(asyncio.ensure_future(one("meek")))
            await asyncio.sleep(0)  # meek queues; ring = [hog, meek]
            adm.release("holder")
            await asyncio.gather(*tasks)
            return order

        order = asyncio.run(scenario())
        # ring order alternates: meek is served second, not behind the
        # whole hog backlog
        assert order == ["hog", "meek", "hog", "hog"]

    def test_concurrent_distinct_requests_match_serial_goldens(
        self, tmp_path
    ):
        # the reentrancy regression: two different requests in flight at
        # once must produce exactly the bits of their serial runs
        import repro

        mats = {
            seed: sp.random(50, 50, density=0.1, format="csr", random_state=seed)
            for seed in (1, 2)
        }
        goldens = {
            seed: repro.decompose(m, 4, method="finegrain", seed=seed).part
            for seed, m in mats.items()
        }
        cfg = service_cfg(tmp_path, n_workers=2)

        async def scenario(svc):
            return await asyncio.gather(
                *(svc.handle(req(m, seed=seed), f"c{seed}")
                  for seed, m in mats.items())
            )

        responses = run_service(scenario, cfg)
        for (seed, _), r in zip(mats.items(), responses):
            assert np.array_equal(part_from_b64(r["result"]), goldens[seed])


class TestServiceOps:
    def test_ping_stats_and_unknown_op(self, tmp_path):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            return (
                await svc.handle({"op": "ping", "id": 1}, "c"),
                await svc.handle({"op": "stats"}, "c"),
                await svc.handle({"op": "frobnicate"}, "c"),
            )

        ping, stats, bad = run_service(scenario, cfg)
        assert ping == {"id": 1, "ok": True, "pong": True}
        assert stats["stats"]["workers"] == 2
        assert bad["error"]["code"] == "bad-request"

    def test_shutdown_requires_opt_in(self, tmp_path):
        async def refused(svc):
            return await svc.handle({"op": "shutdown"}, "c")

        r = run_service(refused, service_cfg(tmp_path))
        assert r["error"]["code"] == "shutdown-refused"

        async def honoured(svc):
            r = await svc.handle({"op": "shutdown"}, "c")
            return r, svc.shutdown_event.is_set()

        r, is_set = run_service(
            honoured, service_cfg(tmp_path, allow_shutdown=True)
        )
        assert r["ok"] and is_set

    def test_errors_are_responses_not_exceptions(self, tmp_path):
        cfg = service_cfg(tmp_path)

        async def scenario(svc):
            return await svc.handle(
                {"op": "decompose", "matrix": {"path": "/does/not/exist"},
                 "k": 4}, "c"
            )

        r = run_service(scenario, cfg)
        assert r["ok"] is False
        assert r["error"]["code"] == "bad-request"


# ----------------------------------------------------------------------
# the wire: a real daemon on a UNIX socket
# ----------------------------------------------------------------------
class TestEndToEnd:
    @pytest.fixture
    def daemon(self, tmp_path):
        from repro.serve import ServeConfig as SC, run_server

        sock = str(tmp_path / "repro.sock")
        cfg = SC(
            port=None, unix_path=sock, n_workers=2, allow_shutdown=True,
            cache_dir=str(tmp_path / "cache"),
        )
        thread = threading.Thread(
            target=run_server, args=(cfg, False), daemon=True
        )
        thread.start()
        deadline = time.monotonic() + 10
        while not os.path.exists(sock):
            assert time.monotonic() < deadline, "daemon never bound"
            time.sleep(0.02)
        yield sock
        from repro.serve.client import Client

        if thread.is_alive():
            try:
                with Client(sock) as c:
                    c.shutdown()
            except OSError:
                pass
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_client_round_trip_and_cache_hit(self, daemon, a):
        from repro.serve.client import Client

        with Client(daemon) as c:
            assert c.ping()
            r1 = c.decompose(a, k=4, seed=0)
            r2 = c.decompose(a, k=4, seed=0)
            assert r1.served["cache"] == "computed"
            assert r2.served["cache"] == "hit-memory"
            assert np.array_equal(r1.part, r2.part)
            assert json.dumps(r1.raw, sort_keys=True) == json.dumps(
                r2.raw, sort_keys=True
            )
            stats = c.stats()
            assert stats["counters"]["hits_memory"] == 1

    def test_error_codes_reach_the_client(self, daemon):
        from repro.serve.client import Client, ServeError

        with Client(daemon) as c:
            with pytest.raises(ServeError) as exc:
                c.decompose("fingerprint:" + "0" * 64)
            assert exc.value.code == "unknown-fingerprint"

    def test_concurrent_clients_share_the_cache(self, daemon, a):
        from repro.serve.client import Client

        parts = []

        def one(name):
            with Client(daemon, client_id=name) as c:
                parts.append(c.decompose(a, k=4, seed=9).part.tobytes())

        threads = [
            threading.Thread(target=one, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(parts)) == 1


# ----------------------------------------------------------------------
# reentrancy: concurrent decompose() calls in one process
# ----------------------------------------------------------------------
class TestConcurrentDecompose:
    def test_threads_with_scoped_recorders_match_serial_goldens(self):
        import repro
        from repro.telemetry import TelemetryRecorder, scoped_recorder

        cases = [
            (sp.random(40, 40, density=0.12, format="csr", random_state=s), s)
            for s in (1, 2, 3)
        ]
        goldens = [
            repro.decompose(m, 4, method="finegrain", seed=s).part
            for m, s in cases
        ]

        def one(case):
            m, s = case
            with scoped_recorder(TelemetryRecorder()) as rec:
                res = repro.decompose(m, 4, method="finegrain", seed=s)
            # the scoped recorder saw this request's engine spans
            assert rec.roots or rec.orphan_counters
            return res.part

        with ThreadPoolExecutor(max_workers=3) as pool:
            parts = list(pool.map(one, cases))
        for part, golden in zip(parts, goldens):
            assert np.array_equal(part, golden)

    def test_scoped_recorders_do_not_cross_threads(self):
        from repro.telemetry import (
            TelemetryRecorder,
            get_recorder,
            scoped_recorder,
        )

        seen = {}

        def probe(name):
            with scoped_recorder(TelemetryRecorder()) as rec:
                time.sleep(0.01)
                seen[name] = get_recorder() is rec

        threads = [
            threading.Thread(target=probe, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(seen.values()) and len(seen) == 4
