"""Tests for decomposition objects and the §3 decode rule."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    build_finegrain_model,
    decomposition_from_finegrain,
    decomposition_from_row_partition,
)
from repro.core.decomposition import decomposition_from_col_partition


class TestFromFinegrain:
    def test_decode_rule(self, paper_figure1_matrix):
        """x_j and y_j follow part[v_jj] (the paper's decode)."""
        model = build_finegrain_model(paper_figure1_matrix)
        rng = np.random.default_rng(0)
        part = rng.integers(0, 3, size=model.hypergraph.num_vertices)
        dec = decomposition_from_finegrain(model, part, 3)
        for j in range(model.m):
            assert dec.x_owner[j] == part[model.diag_vertex[j]]
            assert dec.y_owner[j] == part[model.diag_vertex[j]]
        assert dec.is_symmetric()

    def test_nonzero_owners_follow_partition(self, paper_figure1_matrix):
        model = build_finegrain_model(paper_figure1_matrix)
        part = np.arange(model.hypergraph.num_vertices) % 2
        dec = decomposition_from_finegrain(model, part, 2)
        assert np.array_equal(dec.nnz_owner, part[: model.nnz])

    def test_matrix_roundtrip(self, paper_figure1_matrix):
        model = build_finegrain_model(paper_figure1_matrix)
        part = np.zeros(model.hypergraph.num_vertices, dtype=np.int64)
        dec = decomposition_from_finegrain(model, part, 1)
        assert (dec.matrix() != paper_figure1_matrix).nnz == 0

    def test_wrong_length_rejected(self, paper_figure1_matrix):
        model = build_finegrain_model(paper_figure1_matrix)
        with pytest.raises(ValueError, match="length"):
            decomposition_from_finegrain(model, np.zeros(3), 2)


class TestFromRowColPartitions:
    def test_row_partition(self, small_sparse_matrix):
        a = small_sparse_matrix
        m = a.shape[0]
        row_part = np.arange(m) % 4
        dec = decomposition_from_row_partition(a, row_part, 4)
        assert np.array_equal(dec.nnz_owner, row_part[dec.nnz_row])
        assert np.array_equal(dec.x_owner, row_part)
        assert dec.is_symmetric()

    def test_col_partition(self, small_sparse_matrix):
        a = small_sparse_matrix
        m = a.shape[0]
        col_part = np.arange(m) % 3
        dec = decomposition_from_col_partition(a, col_part, 3)
        assert np.array_equal(dec.nnz_owner, col_part[dec.nnz_col])
        assert np.array_equal(dec.y_owner, col_part)

    def test_wrong_length(self, small_sparse_matrix):
        with pytest.raises(ValueError, match="one entry per row"):
            decomposition_from_row_partition(small_sparse_matrix, np.zeros(3), 2)


class TestDecompositionAccessors:
    def make(self, small_sparse_matrix, k=4):
        m = small_sparse_matrix.shape[0]
        return decomposition_from_row_partition(
            small_sparse_matrix, np.arange(m) % k, k
        )

    def test_loads(self, small_sparse_matrix):
        dec = self.make(small_sparse_matrix)
        loads = dec.computational_loads()
        assert loads.sum() == dec.nnz
        assert len(loads) == 4
        assert dec.load_imbalance() >= 0

    def test_local_matrices_partition_the_nonzeros(self, small_sparse_matrix):
        dec = self.make(small_sparse_matrix)
        total = sum(dec.local_matrix(p).nnz for p in range(4))
        assert total == dec.nnz
        summed = sum(dec.local_matrix(p) for p in range(4))
        assert abs(summed - small_sparse_matrix).max() < 1e-12

    def test_owner_range_checked(self, small_sparse_matrix):
        m = small_sparse_matrix.shape[0]
        with pytest.raises(ValueError, match="outside"):
            decomposition_from_row_partition(small_sparse_matrix, np.full(m, 9), 4)
