"""The content-addressed request identity (:mod:`repro.fingerprint`).

One fingerprint function keys the serving cache, the checkpoint layer
and client-side lookups, so these tests pin down exactly what it must
and must not depend on: instance *content* (not provenance or format),
the bit-shaping config fields (not execution policy), the seed's
pre-draw generator state (an int and the generator it creates are the
same request; unseeded is never the same request twice).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.fingerprint import (
    BIT_FIELDS,
    config_digest,
    fingerprint,
    instance_digest,
    seed_digest,
)
from repro.hypergraph import hypergraph_from_netlists
from repro.partitioner import PartitionerConfig


@pytest.fixture
def a():
    return sp.random(40, 40, density=0.1, format="csr", random_state=0)


class TestInstanceDigest:
    def test_content_addressed_not_provenance(self, a):
        assert fingerprint(a, k=4, seed=0) == fingerprint(a.copy(), k=4, seed=0)

    def test_format_invariant(self, a):
        # the same nonzeros in COO/CSC canonicalize to the same identity
        assert instance_digest(a) == instance_digest(sp.coo_matrix(a))
        assert instance_digest(a) == instance_digest(sp.csc_matrix(a))

    def test_different_values_differ(self, a):
        b = a.copy()
        b.data[0] += 1.0
        assert fingerprint(a, k=4, seed=0) != fingerprint(b, k=4, seed=0)

    def test_hypergraph_instances(self):
        h1 = hypergraph_from_netlists(4, [[0, 1], [1, 2, 3], [2, 3]])
        h2 = hypergraph_from_netlists(4, [[0, 1], [1, 2, 3], [2, 3]])
        h3 = hypergraph_from_netlists(4, [[0, 1], [1, 2], [2, 3]])
        assert fingerprint(h1, k=2, seed=0) == fingerprint(h2, k=2, seed=0)
        assert fingerprint(h1, k=2, seed=0) != fingerprint(h3, k=2, seed=0)

    def test_rejects_unknown_instances(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint(np.zeros((3, 3)), k=2, seed=0)


class TestRequestFields:
    def test_k_method_and_extra_participate(self, a):
        base = fingerprint(a, k=4, method="finegrain", seed=0)
        assert base != fingerprint(a, k=8, method="finegrain", seed=0)
        assert base != fingerprint(a, k=4, method="columnnet", seed=0)
        assert base != fingerprint(
            a, k=4, method="finegrain", seed=0, extra={"seed_1d": True}
        )

    def test_int_seed_equals_its_generator(self, a):
        assert fingerprint(a, seed=7, k=4) == fingerprint(
            a, seed=np.random.default_rng(7), k=4
        )
        assert fingerprint(a, seed=7, k=4) != fingerprint(a, seed=8, k=4)

    def test_unseeded_is_never_reusable(self, a):
        assert fingerprint(a, seed=None, k=4) != fingerprint(a, seed=None, k=4)

    def test_seed_digest_reads_state_without_draws(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        seed_digest(rng)
        assert rng.bit_generator.state == before


class TestConfigDigest:
    def test_default_config_is_none(self):
        assert config_digest(None) == config_digest(PartitionerConfig())

    def test_bit_fields_participate(self, a):
        cfg = PartitionerConfig()
        assert fingerprint(a, cfg, 0, k=4) != fingerprint(
            a, cfg.with_(epsilon=0.1), 0, k=4
        )
        assert fingerprint(a, cfg, 0, k=4) != fingerprint(
            a, cfg.with_(n_starts=4), 0, k=4
        )

    def test_execution_policy_does_not(self, a):
        # workers/backends/deadlines move results between machines, not
        # between answers — they must hit the same cache entry
        cfg = PartitionerConfig()
        base = fingerprint(a, cfg, 0, k=4)
        assert base == fingerprint(a, cfg.with_(n_workers=8), 0, k=4)
        assert base == fingerprint(a, cfg.with_(deadline=0.5), 0, k=4)
        assert base == fingerprint(a, cfg.with_(start_backend="thread"), 0, k=4)

    def test_bit_fields_exist_on_config(self):
        cfg = PartitionerConfig()
        for name in BIT_FIELDS:
            assert hasattr(cfg, name)


class TestDecomposeCarriesFingerprint:
    def test_result_fingerprint_matches_public_helper(self, a):
        res = repro.decompose(a, 4, method="finegrain", seed=0)
        assert res.fingerprint == repro.fingerprint(
            a, None, 0, k=4, method="finegrain"
        )

    def test_same_request_same_fingerprint_and_bits(self, a):
        r1 = repro.decompose(a, 4, method="finegrain", seed=0)
        r2 = repro.decompose(a, 4, method="finegrain", seed=0)
        assert r1.fingerprint == r2.fingerprint
        assert np.array_equal(r1.part, r2.part)

    def test_sweep_fingerprint_is_content_addressed(self):
        from repro.partitioner.resilience import sweep_fingerprint

        h1 = hypergraph_from_netlists(4, [[0, 1], [1, 2, 3], [2, 3]])
        h2 = hypergraph_from_netlists(4, [[0, 1], [1, 2, 3], [2, 3]])
        h3 = hypergraph_from_netlists(4, [[0, 1], [1, 3], [2, 3]])
        cfg = PartitionerConfig()
        fp = sweep_fingerprint(h1, 2, cfg, np.random.default_rng(0))
        assert fp == sweep_fingerprint(h2, 2, cfg, np.random.default_rng(0))
        assert fp != sweep_fingerprint(h3, 2, cfg, np.random.default_rng(0))
