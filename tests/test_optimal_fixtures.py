"""Known-optimal fixture parity suite.

Every committed entry in ``tests/data/optimal/optimal_cuts.json`` is
re-certified by the branch-and-bound solver on every run (both paper
objectives), and the multilevel pipeline is held to the resulting hard
quality floor: its lexicographic ``(excess, cut)`` key may never beat a
certified optimum, and with ``initial_method="exact"`` it may never end
worse than the default GHG initial on these instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import exact_bisection
from repro.hypergraph.partition import compute_part_weights, cutsize_connectivity
from repro.partitioner import PartitionerConfig, partition_hypergraph
from repro.verify import check_partition

from tests.optimal_fixtures import (
    EPSILON,
    OPTIMA,
    check_optimal,
    fixture_hypergraphs,
)

FIXTURES = list(fixture_hypergraphs())
FIXTURE_IDS = [key for key, _m, _model, _h in FIXTURES]


def _heuristic_key(h, part, max_weights) -> tuple[int, int]:
    w = compute_part_weights(h, part, 2)
    excess = int(
        max(0, int(w[0]) - max_weights[0]) + max(0, int(w[1]) - max_weights[1])
    )
    return (excess, int(cutsize_connectivity(h, part)))


def test_registry_covers_every_fixture():
    # a fixture without a committed entry (or a stale orphan entry) means
    # the generator and the registry drifted apart
    assert sorted(OPTIMA) == sorted(FIXTURE_IDS)


def test_all_five_models_represented():
    models = {model for _k, _m, model, _h in FIXTURES}
    assert models == {"finegrain", "finegrain-rect", "columnnet", "rownet", "graph"}


@pytest.mark.parametrize("key,mname,model,h", FIXTURES, ids=FIXTURE_IDS)
def test_certified_optimum_matches_registry(key, mname, model, h):
    # re-proves the recorded (excess, cut) with proven=True for BOTH
    # objectives (check_optimal certifies connectivity and cutnet and
    # asserts they coincide at k=2)
    check_optimal(key, h)


@pytest.mark.parametrize("key,mname,model,h", FIXTURES, ids=FIXTURE_IDS)
def test_exact_partition_audits_gap_zero(key, mname, model, h):
    # the solver's own partition, pushed through the independent oracle
    # audit as a bare ExactResult, must report optimality gap 0
    res = exact_bisection(h, EPSILON)
    rep = check_partition(h, res, 2, epsilon=EPSILON, exact_gap=True)
    assert rep.passed, rep.summary()
    assert rep.extras["exact"]["gap"] == 0
    assert rep.extras["exact"]["proven"]
    assert rep.to_dict()["extras"]["exact"]["gap"] == 0


@pytest.mark.parametrize("key,mname,model,h", FIXTURES, ids=FIXTURE_IDS)
def test_multilevel_never_beats_certified_optimum(key, mname, model, h):
    gold = OPTIMA[key]
    optimum = (gold["excess"], gold["cut"])
    cfg = PartitionerConfig(epsilon=EPSILON)
    for seed in (0, 1):
        res = partition_hypergraph(h, 2, cfg, seed=seed)
        _, maxw = _bounds(h)
        key2 = _heuristic_key(h, res.part, maxw)
        assert key2 >= optimum, (
            f"{key} seed={seed}: multilevel {key2} beats the certified "
            f"optimum {optimum} — the exact solver is wrong"
        )


@pytest.mark.parametrize("key,mname,model,h", FIXTURES, ids=FIXTURE_IDS)
def test_exact_initial_no_worse_than_ghg(key, mname, model, h):
    gold = OPTIMA[key]
    _, maxw = _bounds(h)
    cfg_ghg = PartitionerConfig(epsilon=EPSILON)
    cfg_exact = PartitionerConfig(
        epsilon=EPSILON,
        initial_method="exact",
        exact_initial_vertices=max(64, h.num_vertices),
    )
    for seed in (0,):
        r_ghg = partition_hypergraph(h, 2, cfg_ghg, seed=seed)
        r_exact = partition_hypergraph(h, 2, cfg_exact, seed=seed)
        k_ghg = _heuristic_key(h, r_ghg.part, maxw)
        k_exact = _heuristic_key(h, r_exact.part, maxw)
        assert k_exact <= k_ghg, (
            f"{key} seed={seed}: exact initial {k_exact} worse than GHG {k_ghg}"
        )
        # these instances have no coarsening levels to climb back up, so
        # the exact initial must land the whole pipeline on the optimum
        assert k_exact == (gold["excess"], gold["cut"])


def test_graph_and_columnnet_fixtures_agree():
    # verify_decompose audits the graph method against the column-net
    # hypergraph; their certified optima must therefore be identical
    for key, entry in OPTIMA.items():
        if key.endswith(":graph"):
            twin = key.replace(":graph", ":columnnet")
            assert OPTIMA[twin]["cut"] == entry["cut"], (key, twin)
            assert OPTIMA[twin]["excess"] == entry["excess"], (key, twin)


def _bounds(h):
    from repro.exact import bisection_bounds

    return bisection_bounds(h, EPSILON)
