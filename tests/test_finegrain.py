"""Tests for the fine-grain hypergraph model (§3 of the paper)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings

from repro.core import build_finegrain_model
from repro.hypergraph.builders import validate_hypergraph
from tests.conftest import sparse_square_matrices


class TestConstruction:
    def test_counts(self, paper_figure1_matrix):
        a = paper_figure1_matrix
        model = build_finegrain_model(a)
        h = model.hypergraph
        m, z = a.shape[0], a.nnz
        assert model.m == m
        assert model.nnz == z
        assert h.num_nets == 2 * m
        # dummies for each zero diagonal
        n_zero_diag = m - np.count_nonzero(a.diagonal())
        assert model.n_dummy == n_zero_diag
        assert h.num_vertices == z + n_zero_diag

    def test_nets_match_rows_and_columns(self, paper_figure1_matrix):
        a = paper_figure1_matrix
        model = build_finegrain_model(a)
        h = model.hypergraph
        coo = a.tocoo()
        for i in range(model.m):
            pins = h.pins_of(model.row_net(i))
            real = [int(v) for v in pins if not model.is_dummy(int(v))]
            assert sorted(model.vertex_col[real].tolist()) == sorted(
                coo.col[coo.row == i].tolist()
            )
        for j in range(model.m):
            pins = h.pins_of(model.col_net(j))
            real = [int(v) for v in pins if not model.is_dummy(int(v))]
            assert sorted(model.vertex_row[real].tolist()) == sorted(
                coo.row[coo.col == j].tolist()
            )

    def test_figure1_shapes(self, paper_figure1_matrix):
        """Row net m_1 has 4 pins, column net n_3 has 3 pins (Figure 1)."""
        model = build_finegrain_model(paper_figure1_matrix)
        h = model.hypergraph
        assert h.net_size(model.row_net(1)) == 4
        assert h.net_size(model.col_net(3)) == 3

    def test_every_real_vertex_has_two_nets(self, small_sparse_matrix):
        model = build_finegrain_model(small_sparse_matrix)
        h = model.hypergraph
        degs = h.vertex_degrees()
        assert np.all(degs == 2)

    def test_unit_weights_and_zero_dummies(self, paper_figure1_matrix):
        model = build_finegrain_model(paper_figure1_matrix)
        w = model.hypergraph.vertex_weights
        assert np.all(w[: model.nnz] == 1)
        assert np.all(w[model.nnz :] == 0)
        assert model.hypergraph.total_vertex_weight() == model.nnz

    def test_consistency_condition(self, paper_figure1_matrix):
        """v_jj is a pin of both m_j and n_j for every j (the §3 condition)."""
        model = build_finegrain_model(paper_figure1_matrix)
        h = model.hypergraph
        for j in range(model.m):
            d = int(model.diag_vertex[j])
            assert d in h.pins_of(model.row_net(j))
            assert d in h.pins_of(model.col_net(j))
            assert model.vertex_row[d] == j
            assert model.vertex_col[d] == j

    def test_no_consistency_mode(self, paper_figure1_matrix):
        model = build_finegrain_model(paper_figure1_matrix, consistency=False)
        assert model.n_dummy == 0
        assert model.hypergraph.num_vertices == model.nnz
        # zero-diagonal columns then have no diagonal vertex
        assert (model.diag_vertex < 0).any()

    def test_explicit_zeros_dropped(self):
        a = sp.csr_matrix(np.array([[1.0, 0.0], [2.0, 0.0]]))
        a[0, 1] = 0.0  # explicit stored zero
        model = build_finegrain_model(a)
        assert model.nnz == 2

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            build_finegrain_model(sp.csr_matrix((2, 3)))

    def test_values_preserved(self, paper_figure1_matrix):
        model = build_finegrain_model(paper_figure1_matrix)
        rebuilt = sp.csr_matrix(
            (
                model.vertex_val,
                (model.vertex_row[: model.nnz], model.vertex_col[: model.nnz]),
            ),
            shape=(model.m, model.m),
        )
        assert (rebuilt != paper_figure1_matrix).nnz == 0

    @given(sparse_square_matrices())
    @settings(max_examples=40, deadline=None)
    def test_property_structure_valid(self, a):
        model = build_finegrain_model(a)
        h = model.hypergraph
        validate_hypergraph(h)
        # pin count: every vertex in exactly its row net and column net
        assert h.num_pins == 2 * h.num_vertices
        # diagonal vertices well-defined for all columns
        assert np.all(model.diag_vertex >= 0)
        assert np.all(model.vertex_row[model.diag_vertex] == np.arange(model.m))
        assert np.all(model.vertex_col[model.diag_vertex] == np.arange(model.m))
