"""Tests for the baseline models: 1D hypergraph models, standard graph
model, and the generic reduction-problem model."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings

from repro.models import (
    ReductionProblem,
    build_columnnet_model,
    build_reduction_hypergraph,
    build_rownet_model,
    build_standard_graph_model,
)
from repro.partitioner import partition_hypergraph
from tests.conftest import sparse_square_matrices


class TestColumnNetModel:
    def test_structure(self, paper_figure1_matrix):
        a = paper_figure1_matrix
        model = build_columnnet_model(a)
        h = model.hypergraph
        assert model.orientation == "row"
        assert h.num_vertices == a.shape[0]
        assert h.num_nets == a.shape[1]

    def test_vertex_weights_are_row_nnz(self, paper_figure1_matrix):
        model = build_columnnet_model(paper_figure1_matrix)
        row_nnz = np.diff(sp.csr_matrix(paper_figure1_matrix).indptr)
        assert model.hypergraph.vertex_weights.tolist() == row_nnz.tolist()

    def test_net_pins_are_column_pattern_plus_consistency(self):
        a = sp.csr_matrix(np.array([
            [1.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 1.0],
        ]))
        model = build_columnnet_model(a, consistency=True)
        h = model.hypergraph
        # column 1 pattern = {0}; consistency adds vertex 1
        assert sorted(h.pins_of(1).tolist()) == [0, 1]
        # column 0 pattern = {0, 2}; a_00 != 0 so nothing added
        assert sorted(h.pins_of(0).tolist()) == [0, 2]

    def test_without_consistency(self):
        a = sp.csr_matrix(np.array([
            [1.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 1.0],
        ]))
        model = build_columnnet_model(a, consistency=False)
        assert sorted(model.hypergraph.pins_of(1).tolist()) == [0]

    @given(sparse_square_matrices())
    @settings(max_examples=30, deadline=None)
    def test_property_total_weight_is_nnz(self, a):
        model = build_columnnet_model(a)
        a2 = sp.csr_matrix(a)
        a2.eliminate_zeros()
        assert model.hypergraph.total_vertex_weight() == a2.nnz


class TestRowNetModel:
    def test_is_dual_of_columnnet_on_transpose(self, small_sparse_matrix):
        a = small_sparse_matrix
        mr = build_rownet_model(a)
        mc = build_columnnet_model(sp.csr_matrix(a).T)
        assert mr.orientation == "col"
        assert mr.hypergraph == mc.hypergraph

    def test_vertex_weights_are_col_nnz(self, paper_figure1_matrix):
        model = build_rownet_model(paper_figure1_matrix)
        col_nnz = np.bincount(
            sp.coo_matrix(paper_figure1_matrix).col, minlength=5
        )
        assert model.hypergraph.vertex_weights.tolist() == col_nnz.tolist()


class TestStandardGraphModel:
    def test_symmetric_matrix(self):
        a = sp.csr_matrix(np.array([
            [1.0, 2.0, 0.0],
            [2.0, 1.0, 3.0],
            [0.0, 3.0, 1.0],
        ]))
        model = build_standard_graph_model(a)
        g = model.graph
        assert g.num_vertices == 3
        assert g.num_edges == 2
        # both directions stored -> edge weight 2
        assert set(g.adjwgt.tolist()) == {2}

    def test_nonsymmetric_edge_costs(self):
        a = sp.csr_matrix(np.array([
            [1.0, 1.0],
            [0.0, 1.0],
        ]))
        g = build_standard_graph_model(a).graph
        # only a_01 stored -> edge weight 1
        assert g.adjwgt.tolist() == [1, 1]

    def test_vertex_weights_are_row_nnz(self, paper_figure1_matrix):
        model = build_standard_graph_model(paper_figure1_matrix)
        row_nnz = np.diff(sp.csr_matrix(paper_figure1_matrix).indptr)
        assert model.graph.vwgt.tolist() == row_nnz.tolist()

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            build_standard_graph_model(sp.csr_matrix((2, 3)))


class TestReductionModel:
    def make_problem(self):
        # 4 tasks, 3 inputs, 2 outputs
        return ReductionProblem(
            n_inputs=3,
            n_outputs=2,
            task_inputs=((0,), (0, 1), (1, 2), (2,)),
            task_outputs=((0,), (0,), (1,), (1,)),
        )

    def test_structure(self):
        p = self.make_problem()
        h, task_ids = build_reduction_hypergraph(p)
        assert h.num_vertices == 4
        assert h.num_nets == 5  # 2 output + 3 input nets
        assert task_ids.tolist() == [0, 1, 2, 3]
        # output net 0 pins tasks 0 and 1
        assert h.pins_of(0).tolist() == [0, 1]
        # input net for input 1 (net id 2+1=3) pins tasks 1 and 2
        assert h.pins_of(3).tolist() == [1, 2]

    def test_preassignment_adds_fixed_part_vertices(self):
        p = self.make_problem()
        h, task_ids = build_reduction_hypergraph(
            p, k=2, input_assignment=[0, -1, 1], output_assignment=[-1, 1]
        )
        assert h.num_vertices == 6  # 4 tasks + 2 part vertices
        assert h.fixed.tolist() == [-1, -1, -1, -1, 0, 1]
        # part vertex 0 (vertex 4) pins the net of input 0 (net 2)
        assert 4 in h.pins_of(2).tolist()
        # part vertex 1 (vertex 5) pins input net 2 (net 4) and output net 1
        assert 5 in h.pins_of(4).tolist()
        assert 5 in h.pins_of(1).tolist()
        # part vertices carry no weight
        assert h.vertex_weights[4:].tolist() == [0, 0]

    def test_partitioning_respects_preassignment(self):
        p = self.make_problem()
        h, task_ids = build_reduction_hypergraph(
            p, k=2, input_assignment=[0, -1, 1], output_assignment=[0, 1]
        )
        res = partition_hypergraph(h, 2, seed=0)
        assert res.part[4] == 0 and res.part[5] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            ReductionProblem(1, 1, ((5,),), ((0,),))
        with pytest.raises(ValueError, match="align"):
            ReductionProblem(1, 1, ((0,),), ())
        p = self.make_problem()
        with pytest.raises(ValueError, match="k is required"):
            build_reduction_hypergraph(p, input_assignment=[0, 0, 0])

    def test_duplicate_pins_deduped(self):
        p = ReductionProblem(
            n_inputs=1, n_outputs=1,
            task_inputs=((0, 0),), task_outputs=((0,),),
        )
        h, _ = build_reduction_hypergraph(p)
        assert h.pins_of(1).tolist() == [0]
