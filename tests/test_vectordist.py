"""Tests for conformal vector distributions and local index maps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_finegrain_model, decomposition_from_finegrain
from repro.core.vectordist import build_vector_distribution
from repro.spmv import communication_stats
from tests.conftest import sparse_square_matrices


def make_dec(a, k, seed):
    model = build_finegrain_model(a)
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, size=model.hypergraph.num_vertices)
    return decomposition_from_finegrain(model, part, k)


class TestLayouts:
    def test_owned_partition_the_indices(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 4, 0)
        dist = build_vector_distribution(dec)
        all_owned = np.concatenate([l.owned for l in dist.layouts])
        assert sorted(all_owned.tolist()) == list(range(dec.m))

    def test_ghosts_equal_expand_volume(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 4, 1)
        dist = build_vector_distribution(dec)
        stats = communication_stats(dec)
        assert dist.total_ghosts() == stats.expand_volume

    def test_local_nonzeros_resolvable(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 3, 2)
        dist = build_vector_distribution(dec)
        for layout in dist.layouts:
            cols = np.unique(dec.nnz_col[dec.nnz_owner == layout.rank])
            local = layout.localize(cols)
            assert len(local) == len(cols)
            assert local.max(initial=-1) < layout.local_size

    def test_global_to_local_roundtrip(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 4, 3)
        dist = build_vector_distribution(dec)
        layout = dist.layouts[0]
        for j in layout.owned[:5]:
            assert layout.owned[layout.global_to_local(int(j))] == j
        for j in layout.ghosts[:5]:
            pos = layout.global_to_local(int(j))
            assert layout.ghosts[pos - len(layout.owned)] == j

    def test_missing_index_raises(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 2, 4)
        dist = build_vector_distribution(dec)
        layout = dist.layouts[0]
        non_local = set(range(dec.m)) - set(layout.owned.tolist()) - set(
            layout.ghosts.tolist()
        )
        if non_local:
            j = next(iter(non_local))
            with pytest.raises(KeyError):
                layout.global_to_local(j)
            with pytest.raises(KeyError):
                layout.localize(np.array([j]))

    def test_owner_of(self, small_sparse_matrix):
        dec = make_dec(small_sparse_matrix, 4, 5)
        dist = build_vector_distribution(dec)
        for j in range(0, dec.m, 7):
            assert dist.owner_of(j) == dec.x_owner[j]

    @given(sparse_square_matrices(), st.integers(1, 5), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_ghosts_match_simulator(self, a, k, seed):
        dec = make_dec(a, k, seed)
        dist = build_vector_distribution(dec)
        assert dist.total_ghosts() == communication_stats(dec).expand_volume
