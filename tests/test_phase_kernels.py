"""Phase-kernel parity: flat build_coarse / matching / GHG / K-way == reference.

The kernel axis originally covered the FM inner loop only; it now spans
every V-cycle phase.  Each flat phase kernel promises bit-identical
output to its pure-python reference.  This suite pins that promise with
direct A/B parity (size gates monkeypatched to force the flat paths on
test-sized inputs), hypothesis harnesses over random instances, unit
tests of the tier-race dispatcher, and the :class:`LevelArena` usage
contract.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import random_hypergraph
from repro._util import as_rng
from repro.partitioner import PartitionerConfig
from repro.partitioner import coarsen as C
from repro.partitioner import initial as I
from repro.partitioner import kway as KW
from repro.partitioner import kernels as K
from repro.partitioner.arena import LevelArena, current_arena, scratch, use_arena
from repro.telemetry import TelemetryRecorder, use_recorder


def _assert_same_hypergraph(a, b):
    assert a.num_vertices == b.num_vertices
    assert np.array_equal(a.xpins, b.xpins)
    assert np.array_equal(a.pins, b.pins)
    assert np.array_equal(a.vertex_weights, b.vertex_weights)
    assert np.array_equal(a.net_costs, b.net_costs)


def _random_cmap(rng, nv: int, n_clusters_hint: int):
    """A surjective cluster map with consecutive ids."""
    raw = rng.integers(0, max(n_clusters_hint, 1), size=nv)
    _, cmap = np.unique(raw, return_inverse=True)
    return cmap.astype(np.int64), int(cmap.max()) + 1 if nv else 0


# ----------------------------------------------------------------------
# build_coarse: flat == reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("vector_merge", [False, True])
def test_build_coarse_flat_matches_reference(monkeypatch, vector_merge):
    """Both flat sub-paths (scalar dict dedup and vectorized merge)
    contract to the same hypergraph as the per-net reference loop."""
    monkeypatch.setattr(C, "_BUILD_FLAT_MIN_PINS", 0)
    if vector_merge:
        monkeypatch.setattr(C, "_VECTOR_MIN_PINS_BUILD", 0)
    for hseed in (0, 3, 8):
        rng = as_rng(hseed)
        h = random_hypergraph(rng, 90, 120, weighted=True)
        cmap, nc = _random_cmap(rng, h.num_vertices, 30)
        ref = C.build_coarse(h, cmap, nc, kernel="python")
        flat = C.build_coarse(h, cmap, nc, kernel="flat")
        _assert_same_hypergraph(ref, flat)


@settings(max_examples=40, deadline=None)
@given(hseed=st.integers(0, 2**16), cseed=st.integers(0, 2**16),
       nc=st.integers(1, 40))
def test_build_coarse_flat_matches_reference_hypothesis(hseed, cseed, nc):
    h = random_hypergraph(as_rng(hseed), 50, 60, weighted=True)
    cmap, n_clusters = _random_cmap(as_rng(cseed), h.num_vertices, nc)
    ref = C._build_coarse(h, cmap, n_clusters, "python")
    # bypass the size gate by calling the flat body's branches directly:
    # the production gate routes small inputs to the reference, so force
    # the flat machinery through a monkeypatch-free private call
    import unittest.mock as mock

    with mock.patch.object(C, "_BUILD_FLAT_MIN_PINS", 0):
        flat = C._build_coarse(h, cmap, n_clusters, "flat")
    with mock.patch.object(C, "_BUILD_FLAT_MIN_PINS", 0), \
         mock.patch.object(C, "_VECTOR_MIN_PINS_BUILD", 0):
        flat_vec = C._build_coarse(h, cmap, n_clusters, "flat")
    _assert_same_hypergraph(ref, flat)
    _assert_same_hypergraph(ref, flat_vec)


def test_build_coarse_gate_routes_small_to_reference(monkeypatch):
    """Below _BUILD_FLAT_MIN_PINS the flat tier runs the reference loop —
    the gate is a pure speed heuristic, verified by instrumentation."""
    h = random_hypergraph(as_rng(1), 40, 30)
    cmap, nc = _random_cmap(as_rng(2), h.num_vertices, 10)
    calls = []
    orig = C._build_reference

    def spy(*a, **kw):
        calls.append(1)
        return orig(*a, **kw)

    monkeypatch.setattr(C, "_build_reference", spy)
    C.build_coarse(h, cmap, nc, kernel="flat")
    assert calls  # tiny instance: flat routed to the reference loop


# ----------------------------------------------------------------------
# matching: flat (scalar + dense-aux batching) == reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["hcm", "hcc"])
def test_match_flat_matches_reference(scheme):
    for hseed, mseed in [(0, 5), (4, 9), (7, 1)]:
        h = random_hypergraph(as_rng(hseed), 150, 110, weighted=True)
        r_ref = C.match_vertices(h, as_rng(mseed), scheme=scheme,
                                 kernel="python")
        r_flat = C.match_vertices(h, as_rng(mseed), scheme=scheme,
                                  kernel="flat")
        assert np.array_equal(r_ref[0], r_flat[0])
        assert r_ref[1] == r_flat[1]
        assert np.array_equal(r_ref[2], r_flat[2])


@pytest.mark.parametrize("scheme", ["hcm", "hcc"])
def test_match_flat_dense_aux_path_matches_reference(monkeypatch, scheme):
    """Force the per-vertex dense batched-scoring path (normally gated by
    _VERTEX_VECTOR_MIN / _DENSE_AUX_MIN) and require identical clustering."""
    monkeypatch.setattr(C, "_DENSE_AUX_MIN", 0)
    monkeypatch.setattr(C, "_VERTEX_VECTOR_MIN", 1)
    for hseed, mseed in [(2, 3), (6, 8)]:
        h = random_hypergraph(as_rng(hseed), 120, 100, max_net_size=10,
                              weighted=True)
        r_ref = C.match_vertices(h, as_rng(mseed), scheme=scheme,
                                 kernel="python")
        r_flat = C.match_vertices(h, as_rng(mseed), scheme=scheme,
                                  kernel="flat")
        assert np.array_equal(r_ref[0], r_flat[0])
        assert r_ref[1] == r_flat[1]


@settings(max_examples=25, deadline=None)
@given(hseed=st.integers(0, 2**16), mseed=st.integers(0, 2**16),
       hcm=st.booleans())
def test_match_flat_matches_reference_hypothesis(hseed, mseed, hcm):
    h = random_hypergraph(as_rng(hseed), 60, 50, weighted=True)
    scheme = "hcm" if hcm else "hcc"
    r_ref = C.match_vertices(h, as_rng(mseed), scheme=scheme, kernel="python")
    r_flat = C.match_vertices(h, as_rng(mseed), scheme=scheme, kernel="flat")
    assert np.array_equal(r_ref[0], r_flat[0])
    assert r_ref[1] == r_flat[1]


def test_match_restricted_and_fixed_flat_matches_reference():
    """V-cycle restricted matching (part=) and fixed vertices take the
    same flat path; parity must hold there too."""
    h = random_hypergraph(as_rng(3), 100, 80, weighted=True)
    rng = as_rng(0)
    part = rng.integers(0, 2, size=h.num_vertices)
    fixed = np.full(h.num_vertices, -1, dtype=np.int64)
    fixed[:10] = rng.integers(0, 2, size=10)
    for kw in ({"part": part}, {"fixed": fixed}, {"part": part, "fixed": fixed}):
        r_ref = C.match_vertices(h, as_rng(5), kernel="python", **kw)
        r_flat = C.match_vertices(h, as_rng(5), kernel="flat", **kw)
        assert np.array_equal(r_ref[0], r_flat[0])
        assert np.array_equal(r_ref[2], r_flat[2])


# ----------------------------------------------------------------------
# GHG initial bisection: flat == reference
# ----------------------------------------------------------------------
def _ghg_targets(h, epsilon=0.1):
    total = int(h.total_vertex_weight())
    t0 = total // 2
    return t0, int(t0 * (1 + epsilon))


@pytest.mark.parametrize("with_fixed", [False, True])
def test_ghg_flat_matches_reference(with_fixed):
    for hseed, seed in [(0, 1), (5, 7), (9, 2)]:
        h = random_hypergraph(as_rng(hseed), 140, 120, weighted=True)
        t0, max0 = _ghg_targets(h)
        fixed = None
        if with_fixed:
            fixed = np.full(h.num_vertices, -1, dtype=np.int64)
            fixed[:8] = as_rng(seed).integers(0, 2, size=8)
        p_ref = I._ghg_reference(h, t0, max0, as_rng(seed), fixed)
        p_flat = I._ghg_flat(h, t0, max0, as_rng(seed), fixed)
        assert np.array_equal(p_ref, p_flat)


@settings(max_examples=25, deadline=None)
@given(hseed=st.integers(0, 2**16), seed=st.integers(0, 2**16))
def test_ghg_flat_matches_reference_hypothesis(hseed, seed):
    h = random_hypergraph(as_rng(hseed), 70, 60, weighted=True)
    t0, max0 = _ghg_targets(h)
    p_ref = I._ghg_reference(h, t0, max0, as_rng(seed), None)
    p_flat = I._ghg_flat(h, t0, max0, as_rng(seed), None)
    assert np.array_equal(p_ref, p_flat)


def test_ghg_race_dispatch_is_bit_identical(monkeypatch):
    """With the gate lowered, ghg_bisection races flat vs python across
    calls on the same hypergraph; every call must return reference bits
    regardless of which tier the race picks."""
    monkeypatch.setattr(I, "_GHG_VECTOR_MIN", 0)
    h = random_hypergraph(as_rng(4), 120, 100, weighted=True)
    t0, max0 = _ghg_targets(h)
    for seed in range(5):
        p_ref = I.ghg_bisection(h, t0, max0, rng=seed, kernel="python")
        p_flat = I.ghg_bisection(h, t0, max0, rng=seed, kernel="flat")
        assert np.array_equal(p_ref, p_flat)
    race = h._view("ghg.tier_race", dict)
    # both tiers were probed (events accumulated), so the race is live
    assert race["flat"][1] > 0 and race["python"][1] > 0


# ----------------------------------------------------------------------
# K-way refinement: flat sweep == reference sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize("with_fixed", [False, True])
def test_kway_flat_matches_reference(monkeypatch, with_fixed):
    monkeypatch.setattr(KW, "_KWAY_VECTOR_MIN", 1)
    for hseed, seed, k in [(0, 1, 4), (6, 3, 8)]:
        h = random_hypergraph(as_rng(hseed), 160, 140, weighted=True)
        rng0 = as_rng(seed)
        part = rng0.integers(0, k, size=h.num_vertices)
        fixed = None
        if with_fixed:
            fixed = np.full(h.num_vertices, -1, dtype=np.int64)
            fixed[:12] = rng0.integers(0, k, size=12)
        p_ref = KW.kway_refine(
            h, part, k, PartitionerConfig(kernel="python"), as_rng(seed + 1),
            fixed,
        )
        p_flat = KW.kway_refine(
            h, part, k, PartitionerConfig(kernel="flat"), as_rng(seed + 1),
            fixed,
        )
        assert np.array_equal(p_ref, p_flat)


@settings(max_examples=20, deadline=None)
@given(hseed=st.integers(0, 2**16), seed=st.integers(0, 2**16),
       k=st.integers(2, 8))
def test_kway_flat_matches_reference_hypothesis(hseed, seed, k):
    import unittest.mock as mock

    h = random_hypergraph(as_rng(hseed), 60, 50, weighted=True)
    part = as_rng(seed).integers(0, k, size=h.num_vertices)
    p_ref = KW.kway_refine(
        h, part, k, PartitionerConfig(kernel="python"), as_rng(seed), None
    )
    with mock.patch.object(KW, "_KWAY_VECTOR_MIN", 1):
        p_flat = KW.kway_refine(
            h, part, k, PartitionerConfig(kernel="flat"), as_rng(seed), None
        )
    assert np.array_equal(p_ref, p_flat)


# ----------------------------------------------------------------------
# tier race dispatcher
# ----------------------------------------------------------------------
def test_race_pick_probes_unmeasured_tiers_first():
    race = {"flat": [0.0, 0], "python": [0.0, 0]}
    assert K.race_pick(race) == "flat"  # flat probes first
    race["flat"] = [1.0, 100]
    assert K.race_pick(race) == "python"  # then python gets its probe


def test_race_pick_prefers_lower_seconds_per_event():
    fast_flat = {"flat": [1.0, 1000], "python": [1.0, 100]}
    assert K.race_pick(fast_flat) == "flat"
    fast_py = {"flat": [1.0, 100], "python": [1.0, 1000]}
    assert K.race_pick(fast_py) == "python"
    # exact tie breaks toward flat (the cheaper-to-probe default)
    tie = {"flat": [1.0, 500], "python": [1.0, 500]}
    assert K.race_pick(tie) == "flat"


def test_race_min_events_filters_trivial_passes():
    """The FM dispatcher only records passes with >= RACE_MIN_EVENTS move
    events so converged no-op passes cannot poison the rate estimate."""
    assert K.RACE_MIN_EVENTS >= 1


def test_fm_race_state_cached_on_level(monkeypatch):
    """fm_refine_bisection under the flat tier attaches its race state to
    the hypergraph so repeats on the same level share the verdict."""
    from repro.partitioner import refine as R

    monkeypatch.setattr(R, "_FM_FLAT_MIN_PINS", 0)
    h = random_hypergraph(as_rng(2), 120, 100, weighted=True)
    total = int(h.total_vertex_weight())
    maxw = (int(total * 0.55), int(total * 0.55))
    cfg = PartitionerConfig(kernel="flat")
    part = as_rng(0).integers(0, 2, size=h.num_vertices)
    p_flat, cut_flat = R.fm_refine_bisection(h, part, maxw, cfg, as_rng(1))
    race = h._view("fm.tier_race", dict)
    assert set(race) == {"flat", "python"}
    p_ref, cut_ref = R.fm_refine_bisection(
        h, part, maxw, PartitionerConfig(kernel="python"), as_rng(1)
    )
    assert cut_flat == cut_ref
    assert np.array_equal(p_flat, p_ref)


# ----------------------------------------------------------------------
# LevelArena
# ----------------------------------------------------------------------
def test_arena_take_reuses_and_grows():
    a = LevelArena()
    b1 = a.take("x", 10)
    assert len(b1) == 10 and a.allocs == 1 and a.reuses == 0
    b2 = a.take("x", 8)
    assert len(b2) == 8 and a.reuses == 1 and a.allocs == 1
    # same key aliases the same storage
    b2[...] = 7
    assert (a.take("x", 8) == 7).all()
    # growth reallocates (geometrically) and zero=True clears the view
    b3 = a.take("x", 40, zero=True)
    assert len(b3) == 40 and a.allocs == 2 and (b3 == 0).all()
    z = a.take("x", 5, zero=True)
    assert (z == 0).all()


def test_arena_dtype_change_reallocates():
    a = LevelArena()
    a.take("k", 4, dtype=np.int64)
    a.take("k", 4, dtype=bool)
    assert a.allocs == 2
    assert a.take("k", 4, dtype=bool).dtype == np.bool_


def test_scratch_without_arena_allocates_fresh():
    assert current_arena() is None
    x = scratch("free", 6, zero=True)
    assert (x == 0).all() and len(x) == 6
    y = scratch("free", 6)
    assert x is not y  # no arena: no aliasing between takes


def test_use_arena_reentrant_and_flushes_counters():
    rec = TelemetryRecorder()
    with use_recorder(rec):
        with use_arena() as outer:
            scratch("a", 16)
            with use_arena() as inner:
                assert inner is outer  # nested activation joins the outer
                scratch("a", 12)
            # still active: the inner exit must not flush or deactivate
            assert current_arena() is outer
            assert not rec.counter_totals()
        assert current_arena() is None
    totals = rec.counter_totals()
    assert totals["arena.allocs"] == 1
    assert totals["arena.reuses"] == 1
    assert totals["arena.bytes"] > 0


def test_partition_run_records_arena_counters(monkeypatch):
    """The driver activates an arena around each partition run; with the
    flat FM gate lowered to let the flat engine run on a test-sized
    instance, its scratch takes must show up as arena counters."""
    from repro.partitioner import partition_hypergraph
    from repro.partitioner import refine as R

    monkeypatch.setattr(R, "_FM_FLAT_MIN_PINS", 0)
    h = random_hypergraph(as_rng(6), 150, 120, weighted=True)
    rec = TelemetryRecorder()
    with use_recorder(rec):
        partition_hypergraph(
            h, 4, config=PartitionerConfig(kernel="flat"), seed=0
        )
    totals = rec.counter_totals()
    assert totals.get("arena.allocs", 0) > 0
    assert totals.get("arena.reuses", 0) > 0


# ----------------------------------------------------------------------
# introspection: the kernel axis spans every phase
# ----------------------------------------------------------------------
def test_kernels_introspection_lists_all_phases():
    import repro

    info = repro.kernels()
    assert set(info["phases"]) == {
        "fm", "matching", "coarse_build", "initial", "kway"
    }
    # under the flat tier every phase routes flat
    assert set(K.phase_kernels("flat").values()) == {"flat"}
    # the reference tier never silently upgrades
    assert set(K.phase_kernels("python").values()) == {"python"}
