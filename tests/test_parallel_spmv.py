"""Tests for the process-parallel SpMV executor."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    build_finegrain_model,
    decomposition_from_finegrain,
    decomposition_from_row_partition,
)
from repro.spmv import build_comm_plan
from repro.spmv.parallel import parallel_spmv


def finegrain_dec(a, k, seed=0):
    model = build_finegrain_model(a)
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, size=model.hypergraph.num_vertices)
    return decomposition_from_finegrain(model, part, k)


class TestParallelSpmv:
    def test_matches_serial(self, small_sparse_matrix):
        dec = finegrain_dec(small_sparse_matrix, 4)
        x = np.random.default_rng(1).standard_normal(30)
        y = parallel_spmv(dec, x)
        assert np.allclose(y, small_sparse_matrix @ x)

    def test_rowwise_decomposition(self, small_sparse_matrix):
        m = small_sparse_matrix.shape[0]
        dec = decomposition_from_row_partition(
            small_sparse_matrix, np.arange(m) % 3, 3
        )
        x = np.random.default_rng(2).standard_normal(m)
        assert np.allclose(parallel_spmv(dec, x), small_sparse_matrix @ x)

    def test_reused_plan(self, small_sparse_matrix):
        dec = finegrain_dec(small_sparse_matrix, 4, seed=3)
        plan = build_comm_plan(dec)
        rng = np.random.default_rng(4)
        a = small_sparse_matrix
        for _ in range(2):
            x = rng.standard_normal(30)
            assert np.allclose(parallel_spmv(dec, x, plan=plan), a @ x)

    def test_single_processor(self, small_sparse_matrix):
        dec = finegrain_dec(small_sparse_matrix, 1)
        x = np.ones(30)
        assert np.allclose(parallel_spmv(dec, x), small_sparse_matrix @ x)

    def test_wrong_x_shape(self, small_sparse_matrix):
        dec = finegrain_dec(small_sparse_matrix, 2)
        with pytest.raises(ValueError, match="wrong shape"):
            parallel_spmv(dec, np.zeros(5))
