"""A2 — ablation: recursive bisection alone vs + direct K-way refinement.

The paper runs plain recursive bisection (PaToH); the direct K-way boundary
pass is the "planned modifications" extension.  It may only ever improve
the cutsize (the pass applies positive-gain moves only).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE, report
from repro.core import build_finegrain_model
from repro.matrix import load_collection_matrix
from repro.partitioner import PartitionerConfig, partition_hypergraph

MATRIX = "cq9"
K = 16

_results: dict[bool, int] = {}


@pytest.fixture(scope="module")
def hypergraph():
    a = load_collection_matrix(MATRIX, scale=min(SCALE, 0.1), seed=0)
    yield build_finegrain_model(a).hypergraph
    if set(_results) == {False, True}:
        report(
            f"\nABLATION A2 — direct K-way refinement ({MATRIX}, K={K}):\n"
            f"  recursive bisection:        cutsize={_results[False]}\n"
            f"  + direct K-way refinement:  cutsize={_results[True]}"
        )
        assert _results[True] <= _results[False]


@pytest.mark.parametrize("kway", [False, True], ids=["recursive", "recursive+kway"])
def test_kway_refinement(benchmark, hypergraph, kway):
    cfg = PartitionerConfig(kway_refine=kway)

    def run():
        return partition_hypergraph(hypergraph, K, config=cfg, seed=0)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[kway] = res.cutsize
