"""Throughput of the measurement substrate itself.

The simulator must be cheap relative to partitioning (it is called once per
seed per instance in Table 2), so we benchmark its two entry points on the
largest benchmark matrix with a random fine-grain decomposition.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SCALE
from repro.core import build_finegrain_model, decomposition_from_finegrain
from repro.matrix import load_collection_matrix
from repro.spmv import communication_stats, simulate_spmv


@pytest.fixture(scope="module")
def decomposition():
    a = load_collection_matrix("mod2", scale=min(SCALE, 0.25), seed=0)
    model = build_finegrain_model(a)
    rng = np.random.default_rng(0)
    part = rng.integers(0, 64, size=model.hypergraph.num_vertices)
    return decomposition_from_finegrain(model, part, 64)


def test_communication_stats(benchmark, decomposition):
    stats = benchmark(communication_stats, decomposition)
    assert stats.total_volume > 0


def test_simulate_spmv(benchmark, decomposition):
    x = np.random.default_rng(1).standard_normal(decomposition.m)
    res = benchmark(simulate_spmv, decomposition, x)
    assert np.isfinite(res.y).all()


def test_simulate_with_ledger(benchmark, decomposition):
    res = benchmark.pedantic(
        simulate_spmv, args=(decomposition,), kwargs={"collect_messages": True},
        rounds=1, iterations=1,
    )
    assert res.messages
