"""A3 — ablation: imbalance tolerance vs communication volume.

Eq. 1's epsilon trades load balance for cut quality: a looser bound gives
the partitioner more freedom, so the cutsize (= communication volume) is
non-increasing in expectation as epsilon grows.  The paper fixes eps = 3%;
this sweep shows what that choice costs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE, report
from repro.core import build_finegrain_model
from repro.matrix import load_collection_matrix
from repro.partitioner import PartitionerConfig, partition_hypergraph

MATRIX = "nl"
K = 16
EPSILONS = [0.01, 0.03, 0.10, 0.30]

_results: dict[float, tuple[int, float]] = {}


@pytest.fixture(scope="module")
def hypergraph():
    a = load_collection_matrix(MATRIX, scale=min(SCALE, 0.1), seed=0)
    yield build_finegrain_model(a).hypergraph
    if len(_results) == len(EPSILONS):
        lines = [f"\nABLATION A3 — epsilon sweep ({MATRIX}, K={K}):"]
        for eps in EPSILONS:
            cut, imb = _results[eps]
            lines.append(
                f"  eps={eps:5.2f}: cutsize={cut:6d}  "
                f"achieved imbalance={100 * imb:5.2f}%"
            )
        report("\n".join(lines))
        # loosest bound should not do worse than the tightest
        assert _results[EPSILONS[-1]][0] <= _results[EPSILONS[0]][0] * 1.1


@pytest.mark.parametrize("eps", EPSILONS)
def test_epsilon(benchmark, hypergraph, eps):
    cfg = PartitionerConfig(epsilon=eps)

    def run():
        return partition_hypergraph(hypergraph, K, config=cfg, seed=0)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[eps] = (res.cutsize, res.imbalance)
    # the partitioner must hit the requested balance (small rounding slack)
    assert res.imbalance <= eps + 0.02
