"""A5 — ablation: three generations of 2D decomposition.

§1 of the paper dismisses prior 2D schemes ("do not involve explicit effort
towards reducing communication volume").  This bench quantifies the claim
on a skewed LP matrix:

* **checkerboard** (Hendrickson et al. / Lewis & van de Geijn) — oblivious
  cartesian stripes, minimal message counts, no volume optimization;
* **jagged** — orthogonal recursive splits, each phase volume-minimizing;
* **mondriaan** — recursive best-direction splitting (the fine-grain
  model's best-known descendant);
* **fine-grain** (the paper) — per-nonzero freedom, exact volume objective.

Expected shape: the volume-optimizing methods beat the oblivious
checkerboard on skewed sparse structure, while message counts rank the
other way round.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE, report
from repro.core.api import decompose_2d_finegrain
from repro.matrix import load_collection_matrix
from repro.models import (
    decompose_2d_checkerboard,
    decompose_2d_jagged,
    decompose_2d_mondriaan,
)
from repro.spmv import communication_stats

MATRIX = "finan512"
K = 16

_results: dict[str, tuple[int, float, float]] = {}

_METHODS = {
    "checkerboard": lambda a: decompose_2d_checkerboard(a, K),
    "jagged": lambda a: decompose_2d_jagged(a, K, seed=0),
    "mondriaan": lambda a: decompose_2d_mondriaan(a, K, seed=0),
    "finegrain": lambda a: decompose_2d_finegrain(a, K, seed=0)[0],
}


@pytest.fixture(scope="module")
def matrix():
    a = load_collection_matrix(MATRIX, scale=min(SCALE, 0.1), seed=0)
    yield a
    if set(_results) == set(_METHODS):
        lines = [f"\nABLATION A5 — 2D decomposition methods ({MATRIX}, K={K}):"]
        # fine-grain and mondriaan must beat the oblivious baseline
        for name, (vol, msgs, imb) in _results.items():
            lines.append(
                f"  {name:>12}: volume={vol:6d}  avg#msgs={msgs:6.2f}  "
                f"load imbalance={100 * imb:6.2f}%"
            )
        report("\n".join(lines))
        assert _results["finegrain"][0] <= _results["checkerboard"][0]


@pytest.mark.parametrize("method", list(_METHODS))
def test_2d_method(benchmark, matrix, method):
    dec = benchmark.pedantic(_METHODS[method], args=(matrix,), rounds=1, iterations=1)
    stats = communication_stats(dec)
    _results[method] = (
        stats.total_volume,
        stats.avg_messages,
        stats.load_imbalance,
    )
    assert dec.is_symmetric()
