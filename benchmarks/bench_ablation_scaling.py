"""A6 — ablation: the scale gradient of the model comparison.

DESIGN.md §4's central substitution caveat, measured: shrinking the
surrogates at constant average degree inflates density by 1/scale, which
compresses the volume gap between the models.  This bench runs one matrix
at several scales and reports the 2D/1D and 2D/graph volume ratios — they
must trend *downwards* (gaps opening) as scale grows toward the paper's
full-size setting.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.bench.runner import run_instance
from repro.matrix import load_collection_matrix

MATRIX = "ken-11"
K = 16
SCALES = [0.05, 0.1, 0.2]

_results: dict[float, dict[str, float]] = {}


@pytest.fixture(scope="module")
def finalizer():
    yield
    if len(_results) == len(SCALES):
        lines = [f"\nABLATION A6 — scale gradient ({MATRIX}, K={K}):"]
        lines.append(
            f"  {'scale':>6} {'graph':>8} {'1d-hg':>8} {'2d-fg':>8} "
            f"{'2d/1d':>6} {'2d/graph':>9}"
        )
        for s in SCALES:
            r = _results[s]
            lines.append(
                f"  {s:>6} {r['graph']:>8.3f} {r['hypergraph1d']:>8.3f} "
                f"{r['finegrain2d']:>8.3f} "
                f"{r['finegrain2d'] / r['hypergraph1d']:>6.2f} "
                f"{r['finegrain2d'] / r['graph']:>9.2f}"
            )
        lines.append("  (paper, full size:                      0.23      0.15)")
        report("\n".join(lines))
        # the 2D advantage must not shrink as the surrogate grows
        first = _results[SCALES[0]]
        last = _results[SCALES[-1]]
        assert (
            last["finegrain2d"] / last["graph"]
            <= first["finegrain2d"] / first["graph"] * 1.10
        )


@pytest.mark.parametrize("scale", SCALES)
def test_scale(benchmark, finalizer, scale):
    a = load_collection_matrix(MATRIX, scale=scale, seed=0)

    def run():
        out = {}
        for model in ("graph", "hypergraph1d", "finegrain2d"):
            out[model] = run_instance(a, MATRIX, K, model, n_seeds=1).tot
        return out

    _results[scale] = benchmark.pedantic(run, rounds=1, iterations=1)
