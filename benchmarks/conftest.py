"""Shared configuration of the benchmark suite.

Environment knobs (all optional):

* ``REPRO_BENCH_SCALE``   — matrix scale factor (default 0.1; 1.0 = the
  paper's original sizes — hours of pure-Python partitioning);
* ``REPRO_BENCH_SEEDS``   — partitioner seeds per instance (default 1;
  paper: 50);
* ``REPRO_BENCH_KS``      — comma-separated K list (default ``16,32,64``);
* ``REPRO_BENCH_MATRICES``— comma-separated subset of the 14 matrices
  (default: all).

Each bench prints its table after the run (with ``-s`` visible live;
otherwise in the captured summary).
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.matrix.collection import collection_names, load_collection_matrix

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "1"))
KS = tuple(
    int(x) for x in os.environ.get("REPRO_BENCH_KS", "16,32,64").split(",") if x
)
_names_env = os.environ.get("REPRO_BENCH_MATRICES", "")
MATRIX_NAMES = [n for n in _names_env.split(",") if n] or collection_names()


@pytest.fixture(scope="session")
def bench_matrices():
    """The benchmark's matrix set, generated once per session."""
    return {
        name: load_collection_matrix(name, scale=SCALE, seed=0)
        for name in MATRIX_NAMES
    }


#: report blocks accumulated during the run, flushed by
#: pytest_terminal_summary (fd-level capture would swallow direct prints
#: from fixture teardowns)
_REPORTS: list[str] = []


def report(text: str) -> None:
    """Queue bench-report text for the end-of-run terminal summary."""
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print the reproduction tables after the benchmark summary."""
    for block in _REPORTS:
        terminalreporter.write_line(block)
    _REPORTS.clear()


@pytest.fixture(scope="session")
def table2_collector():
    """Accumulates InstanceResults across bench_table2 tests and prints the
    paper-layout table when the session ends."""
    results = []
    yield results
    if results:
        from repro.bench.summary import summarize_table2
        from repro.bench.tables import format_table2

        lines = [
            "",
            "=" * 70,
            f"TABLE 2 REPRODUCTION (scale={SCALE}, seeds={SEEDS})",
            "=" * 70,
            format_table2(results),
            "",
            summarize_table2(results).report(),
        ]
        report("\n".join(lines))
