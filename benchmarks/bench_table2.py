"""E2/E3 — Table 2: the paper's main experiment.

One benchmark per decomposition instance (matrix x K x model).  The
partitioner run is the timed section — matching the paper's "time" column —
and the induced decomposition's exact communication statistics are recorded
for the final printed table (see conftest.table2_collector).

Shape assertions (DESIGN.md E2): the fine-grain model's total volume must
not exceed the 1D hypergraph model's on the same instance beyond a small
tolerance, and all message bounds must hold.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import KS, MATRIX_NAMES, SEEDS
from repro.bench.runner import MODELS, run_instance
from repro.partitioner import PartitionerConfig

_CFG = PartitionerConfig(epsilon=0.03)


@pytest.mark.parametrize("name", MATRIX_NAMES)
@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("model", list(MODELS))
def test_instance(benchmark, bench_matrices, table2_collector, name, k, model):
    """Partition + decode one instance; record its exact comm statistics."""
    a = bench_matrices[name]

    def run():
        return run_instance(a, name, k, model, n_seeds=SEEDS, config=_CFG)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table2_collector.append(result)

    # hard invariants that must hold for every instance
    bound = 2 * (k - 1) if model == "finegrain2d" else k - 1
    assert result.avg_msgs <= bound + 1e-9
    assert result.tot >= 0
