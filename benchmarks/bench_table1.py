"""E1 — Table 1: test-matrix structural properties.

Benchmarks the generation of every collection matrix and prints the
generated-vs-paper statistics table.  The fidelity assertions mirror
tests/test_collection.py but run at the benchmark's scale.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import MATRIX_NAMES, SCALE, report
from repro.matrix import load_collection_matrix, matrix_stats, paper_table1
from repro.bench.tables import format_table1


@pytest.mark.parametrize("name", MATRIX_NAMES)
def test_generate_matrix(benchmark, name):
    """Time the deterministic generation of one collection matrix."""
    a = benchmark(load_collection_matrix, name, SCALE, 0)
    s = matrix_stats(a, name)
    assert s.rows > 0
    assert s.min_per_rowcol >= 1  # no empty rows/columns, as in the paper


def test_print_table1(benchmark, bench_matrices):
    """Compute and print Table 1 (generated alongside the paper's
    originals).  The timed section is the statistics computation over the
    whole collection."""
    text = benchmark(format_table1, bench_matrices, paper_table1())
    report(f"\nTABLE 1 REPRODUCTION (scale={SCALE})\n{text}")
