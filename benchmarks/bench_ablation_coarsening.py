"""A1 — ablation: coarsening scheme (HCC vs HCM vs none).

DESIGN.md calls out the agglomerative-vs-matching choice: HCC absorbs
star-like structures (dense matrix rows/columns) that pairwise HCM leaves
fragmented, and disabling coarsening altogether exposes how much the
multilevel framework buys over flat FM.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE, report
from repro.core import build_finegrain_model
from repro.matrix import load_collection_matrix
from repro.partitioner import PartitionerConfig, partition_hypergraph

MATRIX = "ken-11"
K = 16

_results: dict[str, tuple[int, float]] = {}


@pytest.fixture(scope="module")
def hypergraph():
    a = load_collection_matrix(MATRIX, scale=min(SCALE, 0.1), seed=0)
    yield build_finegrain_model(a).hypergraph
    if set(_results) == {"hcc", "hcm", "none"}:
        lines = [f"\nABLATION A1 — coarsening ({MATRIX}, K={K}):"]
        for scheme, (cut, t) in _results.items():
            lines.append(f"  {scheme:>5}: cutsize={cut:6d}  time={t:6.2f}s")
        report("\n".join(lines))
        # multilevel coarsening must clearly beat flat FM on cutsize
        assert _results["hcc"][0] < _results["none"][0]


@pytest.mark.parametrize("matching", ["hcc", "hcm", "none"])
def test_coarsening_scheme(benchmark, hypergraph, matching):
    cfg = PartitionerConfig(matching=matching)

    def run():
        return partition_hypergraph(hypergraph, K, config=cfg, seed=0)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[matching] = (res.cutsize, res.runtime)
    assert res.imbalance <= 0.10
