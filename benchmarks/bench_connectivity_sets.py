"""Micro-benchmark: vectorized ``net_connectivity_sets`` vs the old loop.

PR 3 replaced the per-net ``np.unique`` Python loop with one lexsort over
the (net, part) incidence pairs.  This bench pins the speedup on a
100k-net hypergraph (the satellite's acceptance instance) and keeps the
reference implementation around so the two stay comparable and provably
equivalent.

Run with::

    PYTHONPATH=src:. python -m pytest benchmarks/bench_connectivity_sets.py \
        --benchmark-only -q
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import Hypergraph
from repro.hypergraph.partition import net_connectivity_sets

N_NETS = 100_000
N_VERTICES = 50_000
K = 64


def _reference_connectivity_sets(h: Hypergraph, part: np.ndarray):
    """The pre-PR3 implementation: one ``np.unique`` call per net."""
    return [np.unique(part[h.pins_of(j)]) for j in range(h.num_nets)]


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(7)
    sizes = rng.integers(2, 9, size=N_NETS)
    xpins = np.zeros(N_NETS + 1, dtype=np.int64)
    np.cumsum(sizes, out=xpins[1:])
    # sample without within-net duplicates: offset a random base per net
    pins = np.concatenate(
        [rng.choice(N_VERTICES, size=s, replace=False) for s in sizes[:64]]
        + [
            (
                np.arange(int(sizes[j]), dtype=np.int64) * 97
                + int(rng.integers(N_VERTICES))
            )
            % N_VERTICES
            for j in range(64, N_NETS)
        ]
    )
    # the arithmetic fallback can collide for stride*size >= N; dedup nets
    # by construction: 97 * 8 << 50k, so pins within a net are distinct
    h = Hypergraph(N_VERTICES, xpins, pins, validate=False)
    part = rng.integers(0, K, size=N_VERTICES).astype(np.int64)
    return h, part


def test_equivalence(instance):
    h, part = instance
    fast = net_connectivity_sets(h, part)
    slow = _reference_connectivity_sets(h, part)
    assert len(fast) == len(slow) == h.num_nets
    for a, b in zip(fast, slow):
        assert np.array_equal(a, b)


def test_vectorized(benchmark, instance):
    h, part = instance
    sets = benchmark(net_connectivity_sets, h, part)
    assert len(sets) == N_NETS


def test_reference_loop(benchmark, instance):
    h, part = instance
    sets = benchmark.pedantic(
        _reference_connectivity_sets, args=instance, rounds=1, iterations=1
    )
    assert len(sets) == N_NETS
