"""A7 — ablation: direct fine-grain vs 1D-seeded fine-grain.

An extension beyond the paper: every rowwise (1D) decomposition is a point
in the fine-grain solution space, so seeding the fine-grain partitioner
with the 1D hypergraph model's partition and refining guarantees the 2D
result never loses to 1D.  On matrix families where direct recursive
bisection of the huge fine-grain hypergraph struggles (banded, staircase),
the seed recovers the paper's ordering.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE, report
from repro.core.api import decompose_1d_columnnet, decompose_2d_finegrain
from repro.matrix import load_collection_matrix
from repro.spmv import communication_stats

MATRIX = "vibrobox"
K = 16

_results: dict[str, int] = {}


@pytest.fixture(scope="module")
def matrix():
    a = load_collection_matrix(MATRIX, scale=min(SCALE, 0.1), seed=0)
    yield a
    if set(_results) == {"1d", "2d-direct", "2d-seeded"}:
        report(
            f"\nABLATION A7 — 1D-seeded fine-grain ({MATRIX}, K={K}):\n"
            f"  1D hypergraph model:     volume={_results['1d']}\n"
            f"  fine-grain (direct):     volume={_results['2d-direct']}\n"
            f"  fine-grain (1D-seeded):  volume={_results['2d-seeded']}"
        )
        assert _results["2d-seeded"] <= min(_results["2d-direct"], int(_results["1d"] * 1.02))


_VARIANTS = {
    "1d": lambda a: decompose_1d_columnnet(a, K, seed=0)[0],
    "2d-direct": lambda a: decompose_2d_finegrain(a, K, seed=0)[0],
    "2d-seeded": lambda a: decompose_2d_finegrain(a, K, seed=0, seed_1d=True)[0],
}


@pytest.mark.parametrize("variant", list(_VARIANTS))
def test_seeded_variant(benchmark, matrix, variant):
    dec = benchmark.pedantic(_VARIANTS[variant], args=(matrix,), rounds=1, iterations=1)
    _results[variant] = communication_stats(dec).total_volume
