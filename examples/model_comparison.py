#!/usr/bin/env python
"""A miniature Table 2: compare the three decomposition models on one
matrix across several K.

For the full 14-matrix reproduction run ``python -m repro.bench table2``.

Run:  python examples/model_comparison.py [matrix] [scale]
"""

import sys

from repro.bench import format_table2, run_matrix_instances, summarize_table2
from repro.matrix import load_collection_matrix, matrix_stats


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "cre-b"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1
    a = load_collection_matrix(name, scale=scale, seed=0)
    print(matrix_stats(a, name).table1_row(), "\n")

    results = run_matrix_instances(
        a, name, ks=(16, 32, 64), n_seeds=1,
        progress=lambda s: print(f"  running {s}..."),
    )
    print()
    print(format_table2(results))
    print()
    print(summarize_table2(results).report())


if __name__ == "__main__":
    main()
