#!/usr/bin/env python
"""Distributed eigensolver on a fine-grain decomposition.

Power iteration for the dominant eigenpair of a symmetric matrix, with
every multiply running on the decomposed matrix and the total
communication bill itemized — SpMV traffic (what the paper's model
minimizes) versus the scalar all-reduces of the vector operations (free of
vector-component communication thanks to the symmetric distribution).

Run:  python examples/eigensolver.py
"""

import numpy as np
import scipy.sparse as sp

from repro import decompose_2d_finegrain
from repro.solvers import power_iteration

K = 16


def laplacian_matrix(n_side: int = 24) -> sp.csr_matrix:
    """2D grid Laplacian (symmetric positive semidefinite)."""
    n = n_side * n_side
    rows, cols, vals = [], [], []
    for x in range(n_side):
        for y in range(n_side):
            v = x * n_side + y
            deg = 0
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                xx, yy = x + dx, y + dy
                if 0 <= xx < n_side and 0 <= yy < n_side:
                    rows.append(v)
                    cols.append(xx * n_side + yy)
                    vals.append(-1.0)
                    deg += 1
            rows.append(v)
            cols.append(v)
            vals.append(float(deg))
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def main() -> None:
    a = laplacian_matrix()
    print(f"grid Laplacian: n={a.shape[0]}, nnz={a.nnz}, K={K}")

    dec, info = decompose_2d_finegrain(a, K, seed=0)
    print(f"decomposition: {info.summary()}")

    res = power_iteration(dec, tol=1e-10, maxiter=5000)
    dense_top = np.linalg.eigvalsh(a.toarray())[-1]
    print(
        f"dominant eigenvalue: {res.eigenvalue:.6f} "
        f"(dense reference {dense_top:.6f}) in {res.iterations} iterations"
    )
    print(
        f"communication per iteration: {res.spmv_words_per_iteration} SpMV words "
        f"in {res.spmv_messages_per_iteration} messages "
        f"+ {res.reduction_words_per_iteration} all-reduce words"
    )
    print(f"whole solve: {res.total_words} words")
    assert abs(res.eigenvalue - dense_top) / dense_top < 1e-4


if __name__ == "__main__":
    main()
