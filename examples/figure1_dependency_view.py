#!/usr/bin/env python
"""E4 — Figure 1: the dependency-relation view of the fine-grain model.

Reconstructs the paper's Figure 1 for a small matrix containing exactly the
shapes discussed in §3: a row net of size 4 (the fold of one y entry from
four partial products) and a column net of size 3 (the expand of one x
entry to three scalar multiplications), plus a dummy diagonal vertex.

Run:  python examples/figure1_dependency_view.py
"""

import numpy as np
import scipy.sparse as sp

from repro import build_finegrain_model, decomposition_from_finegrain, partition_hypergraph
from repro.core.render import render_dependency_view, render_partitioned_matrix


def figure1_matrix() -> sp.csr_matrix:
    """Row 1 = {a_10, a_11, a_12, a_13}; column 3 = {a_13, a_33, a_43}."""
    rows = [1, 1, 1, 1, 3, 4, 0, 2]
    cols = [0, 1, 2, 3, 3, 3, 0, 2]
    vals = np.arange(1.0, len(rows) + 1)
    return sp.csr_matrix((vals, (rows, cols)), shape=(5, 5))


def main() -> None:
    a = figure1_matrix()
    model = build_finegrain_model(a)
    print(
        f"fine-grain hypergraph: {model.hypergraph.num_vertices} vertices "
        f"({model.nnz} nonzeros + {model.n_dummy} dummy diagonal), "
        f"{model.hypergraph.num_nets} nets\n"
    )

    print(render_dependency_view(model, row=1, col=3))

    print("\npartitioned nonzero map (K=2):")
    res = partition_hypergraph(model.hypergraph, 2, seed=0)
    dec = decomposition_from_finegrain(model, res.part, 2)
    print(render_partitioned_matrix(dec))
    print(f"\ncutsize={res.cutsize} == total communication volume")


if __name__ == "__main__":
    main()
