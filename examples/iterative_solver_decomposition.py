#!/usr/bin/env python
"""Decomposing the kernel of an iterative solver (the paper's motivation).

§1 of the paper: repeated y = A x with the *same* matrix is the kernel of
iterative solvers, so a one-time decomposition cost is amortized over many
multiplies, and the per-iteration communication volume is what matters.

This example runs a simple unpreconditioned conjugate-gradient solve on a
symmetric positive-definite matrix where every SpMV goes through the
distributed simulator, demonstrating that

* the decomposition's communication statistics are identical every
  iteration (the paper's "repeated multiplication" setting);
* the fine-grain decomposition does the same arithmetic as the serial
  kernel (CG converges to the same solution);
* the 2D model needs less communication per iteration than 1D models,
  which is the quantity an iterative solver pays on every step.

Run:  python examples/iterative_solver_decomposition.py
"""

import numpy as np
import scipy.sparse as sp

from repro import (
    decompose_1d_columnnet,
    decompose_1d_graph,
    decompose_2d_finegrain,
    simulate_spmv,
)
from repro.spmv import MachineModel, estimate_parallel_time

K = 16


def spd_matrix(n: int = 800, seed: int = 0) -> sp.csr_matrix:
    """A structurally symmetric, diagonally dominant (hence SPD) matrix."""
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=0.01, random_state=rng, format="csr")
    a = a + a.T  # symmetric pattern and values
    diag = np.abs(a).sum(axis=1).A1 + 1.0
    return sp.csr_matrix(a + sp.diags(diag))


def cg_with_simulator(a, dec, b, tol=1e-8, maxiter=200):
    """Conjugate gradients where every A @ p runs on the simulator."""
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rs = float(r @ r)
    vol_per_iter = None
    for it in range(maxiter):
        res = simulate_spmv(dec, p)
        ap = res.y
        if vol_per_iter is None:
            vol_per_iter = res.stats.total_volume
        else:
            # the decomposition is static: identical traffic every iteration
            assert res.stats.total_volume == vol_per_iter
        alpha = rs / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) < tol:
            return x, it + 1, vol_per_iter
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, maxiter, vol_per_iter


def main() -> None:
    a = spd_matrix()
    rng = np.random.default_rng(1)
    b = rng.standard_normal(a.shape[0])

    print(f"SPD matrix: n={a.shape[0]}, nnz={a.nnz}; CG on K={K} processors\n")
    machine = MachineModel()
    rows = []
    for name, fn in [
        ("graph 1D", decompose_1d_graph),
        ("hypergraph 1D", decompose_1d_columnnet),
        ("fine-grain 2D", decompose_2d_finegrain),
    ]:
        dec, _ = fn(a, K, seed=0)
        x, iters, vol = cg_with_simulator(a, dec, b)
        resid = np.linalg.norm(a @ x - b)
        est = estimate_parallel_time(simulate_spmv(dec, b).stats, machine)
        rows.append((name, iters, vol, est, resid))
        print(
            f"{name:>14}: {iters:3d} CG iterations, {vol:6d} words/iteration, "
            f"est. {est * 1e6:7.1f} us/SpMV, final residual {resid:.2e}"
        )

    vols = {name: vol for name, _, vol, _, _ in rows}
    assert vols["fine-grain 2D"] <= vols["hypergraph 1D"]
    print("\nfine-grain 2D pays the least communication on every iteration.")


if __name__ == "__main__":
    main()
