#!/usr/bin/env python
"""Run a fine-grain decomposition on real OS processes.

The paper's tables count words and messages; this example *sends* them:
K worker processes execute the expand / multiply / fold phases against the
compiled communication plan, exchanging numpy payloads through queues —
the shape of an mpi4py implementation, minus MPI.

Run:  python examples/parallel_execution.py
"""

import numpy as np

from repro import decompose_2d_finegrain
from repro.matrix import load_collection_matrix
from repro.spmv import build_comm_plan, parallel_spmv, simulate_spmv

K = 8


def main() -> None:
    a = load_collection_matrix("bcspwr10", scale=0.2, seed=0)
    print(f"matrix: {a.shape[0]}x{a.shape[1]}, {a.nnz} nnz; K={K} processes")

    dec, info = decompose_2d_finegrain(a, K, seed=0)
    plan = build_comm_plan(dec)
    busiest = max(plan.processors, key=lambda p: p.n_messages)
    print(f"partition: {info.summary()}")
    print(
        f"plan: rank {busiest.rank} is busiest with {busiest.n_messages} "
        f"sends / {busiest.send_words} words per multiply"
    )

    x = np.random.default_rng(1).standard_normal(a.shape[0])
    y = parallel_spmv(dec, x, plan=plan)
    assert np.allclose(y, a @ x)
    print("parallel result == serial A @ x (verified across real processes)")

    # and the traffic the workers generated is what the simulator predicted
    stats = simulate_spmv(dec, x).stats
    planned = plan.stats()
    assert stats.total_volume == planned.total_volume
    print(
        f"traffic: {planned.total_volume} words in "
        f"{planned.total_messages} messages, exactly as simulated"
    )


if __name__ == "__main__":
    main()
