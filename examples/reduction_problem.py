#!/usr/bin/env python
"""Generic parallel reduction with pre-assigned inputs/outputs (§3).

The paper notes the fine-grain model "can also be used to decompose
computational domains of other parallel reduction problems", including
problems whose inputs/outputs are pre-assigned to processors — handled by
adding K zero-weight *part vertices* fixed to their parts and pinned into
the nets of the pre-assigned elements.

The scenario here: a sensor-fusion reduction.  ``n_sensors`` input readings
are combined by overlapping window tasks into ``n_tracks`` output
estimates.  Half of the sensors are wired to specific processors (their
readings arrive on fixed NICs), so the decomposition must respect those
placements while minimizing communication.

Run:  python examples/reduction_problem.py
"""

import numpy as np

from repro.hypergraph.partition import cutsize_connectivity, imbalance
from repro.models import ReductionProblem, build_reduction_hypergraph
from repro.partitioner import PartitionerConfig, partition_hypergraph

K = 4
N_SENSORS = 120
N_TRACKS = 40
TASKS_PER_TRACK = 6


def make_problem(rng: np.random.Generator) -> ReductionProblem:
    """Each track is fed by several tasks, each reading a sensor window."""
    task_inputs = []
    task_outputs = []
    for track in range(N_TRACKS):
        for _ in range(TASKS_PER_TRACK):
            start = int(rng.integers(0, N_SENSORS - 5))
            task_inputs.append(tuple(range(start, start + 4)))
            task_outputs.append((track,))
    return ReductionProblem(
        n_inputs=N_SENSORS,
        n_outputs=N_TRACKS,
        task_inputs=tuple(task_inputs),
        task_outputs=tuple(task_outputs),
    )


def main() -> None:
    rng = np.random.default_rng(0)
    problem = make_problem(rng)
    print(
        f"reduction: {problem.n_tasks} tasks, {N_SENSORS} inputs, "
        f"{N_TRACKS} outputs, K={K}"
    )

    # pre-assign half the sensors round-robin to processors (fixed NICs)
    input_assignment = [-1] * N_SENSORS
    for s in range(0, N_SENSORS, 2):
        input_assignment[s] = (s // 2) % K

    h, task_ids = build_reduction_hypergraph(
        problem, k=K, input_assignment=input_assignment
    )
    print(
        f"hypergraph: {h.num_vertices} vertices "
        f"({problem.n_tasks} tasks + {K} fixed part vertices), "
        f"{h.num_nets} nets"
    )

    res = partition_hypergraph(h, K, config=PartitionerConfig(epsilon=0.05), seed=0)
    print(f"partition: cutsize={res.cutsize} imbalance={100 * res.imbalance:.1f}%")

    # the part vertices stayed where they were fixed
    for p in range(K):
        assert res.part[problem.n_tasks + p] == p
    print("fixed part vertices respected (pre-assigned sensors honoured)")

    # compare with ignoring the pre-assignment (free placement lower bound)
    h_free, _ = build_reduction_hypergraph(problem)
    free = partition_hypergraph(h_free, K, seed=0)
    print(
        f"communication volume: {res.cutsize} words with fixed sensors "
        f"vs {free.cutsize} with free placement "
        f"(the gap is the price of the NIC constraints)"
    )


if __name__ == "__main__":
    main()
