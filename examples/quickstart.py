#!/usr/bin/env python
"""Quickstart: decompose a sparse matrix with the fine-grain model.

Builds the 2D fine-grain hypergraph of a sparse matrix, partitions it for
16 processors, decodes the partition into a decomposition, and verifies the
paper's headline property: the partition's connectivity-minus-one cutsize
equals the exact communication volume of the parallel multiply — which the
simulator also executes and checks numerically against the serial product.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import decompose, simulate_spmv
from repro.matrix import load_collection_matrix

K = 16


def main() -> None:
    # one of the paper's test matrices (synthesized at 1/8 scale so this
    # finishes in seconds; scale=1.0 reproduces the original)
    a = load_collection_matrix("ken-11", scale=0.125, seed=0)
    print(f"matrix: {a.shape[0]} x {a.shape[1]}, {a.nnz} nonzeros")

    # the unified front door; method="columnnet"/"rownet"/"graph"/
    # "finegrain-rect" select the baseline models, and n_starts>1 runs
    # the multi-start engine (best of N independent seeded attempts)
    res = decompose(a, K, method="finegrain", seed=0)
    dec, info = res.decomposition, res.info
    print(f"partitioner: {res.summary()}")

    x = np.random.default_rng(1).standard_normal(a.shape[0])
    result = simulate_spmv(dec, x)
    stats = result.stats
    print(f"simulator:   {stats.summary()}")

    # the theorem of §3: cutsize == total words communicated, exactly
    assert stats.total_volume == info.cutsize, "volume theorem violated!"
    print(f"volume theorem holds: cutsize {info.cutsize} == "
          f"{stats.expand_volume} expand + {stats.fold_volume} fold words")

    # and the distributed multiply is the real multiply
    assert np.allclose(result.y, a @ x)
    print("distributed y == serial A @ x (verified)")

    print(f"scaled volumes (Table 2 presentation): "
          f"tot={stats.scaled_total_volume:.2f} max={stats.scaled_max_volume:.2f} "
          f"avg #msgs={stats.avg_messages:.2f} (bound {2 * (K - 1)})")


if __name__ == "__main__":
    main()
