#!/usr/bin/env python
"""Rectangular decomposition: the general reduction of §3.

§1 of the paper: "any technique used in the sparse matrix decomposition is
also applicable to other reduction problems" — inputs and outputs need not
match in number.  The scenario here is a term-document scoring kernel:
``scores = A @ weights`` where A is a documents x terms matrix.  No
symmetric vector distribution exists (documents != terms), so the
consistency-free fine-grain model applies; the volume theorem still holds
with vector entries assigned inside their nets' connectivity sets.

Run:  python examples/rectangular_reduction.py
"""

import numpy as np
import scipy.sparse as sp

from repro import decompose_2d_rectangular, simulate_spmv
from repro.matrix.generators import skewed_lp_matrix

K = 8


def term_document_matrix(n_docs=600, n_terms=900, seed=0) -> sp.csr_matrix:
    """Documents x terms with Zipfian term frequencies."""
    rng = np.random.default_rng(seed)
    # reuse the hierarchical power-law machinery by generating square and
    # cropping: topic locality + a few ubiquitous terms
    big = skewed_lp_matrix(
        n_terms, n_docs * 12, max_degree=n_terms // 5,
        block_size=48, coupling=0.3, seed=seed,
    )
    return sp.csr_matrix(big[:n_docs, :])


def main() -> None:
    a = term_document_matrix()
    m, n = a.shape
    print(f"term-document matrix: {m} docs x {n} terms, {a.nnz} nnz; K={K}")

    dec, info = decompose_2d_rectangular(a, K, seed=0)
    stats = simulate_spmv(dec).stats
    print(f"partition: {info.summary()}")
    print(f"traffic:   {stats.summary()}")
    assert stats.total_volume == info.cutsize
    print("volume theorem holds for the rectangular reduction")

    weights = np.random.default_rng(1).uniform(0.0, 1.0, n)
    scores = simulate_spmv(dec, weights).y
    assert np.allclose(scores, a @ weights)
    top = np.argsort(scores)[-3:][::-1]
    print(f"top documents by score: {top.tolist()} (verified == serial)")

    # inputs and outputs live on different processors: no symmetric
    # distribution exists or is required here
    print(f"symmetric distribution: {dec.is_symmetric()} (expected False)")


if __name__ == "__main__":
    main()
