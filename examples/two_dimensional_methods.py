#!/usr/bin/env python
"""Three generations of 2D decomposition on one matrix.

§1 of the paper positions the fine-grain model against the earlier 2D
checkerboard schemes, which "do not involve explicit effort towards
reducing communication volume".  This example makes the progression
concrete on a skewed LP matrix:

    checkerboard  →  jagged (orthogonal recursive)  →  fine-grain

and also shows the communication-*plan* view a real message-passing code
would compile from each decomposition.

Run:  python examples/two_dimensional_methods.py
"""

import numpy as np

from repro import decompose_2d_finegrain
from repro.matrix import load_collection_matrix
from repro.models import decompose_2d_checkerboard, decompose_2d_jagged, processor_grid
from repro.spmv import build_comm_plan, communication_stats, execute_plan

K = 16


def main() -> None:
    a = load_collection_matrix("cre-d", scale=0.1, seed=0)
    x = np.random.default_rng(0).standard_normal(a.shape[0])
    r, c = processor_grid(K)
    print(f"matrix: {a.shape[0]}x{a.shape[1]}, {a.nnz} nnz; "
          f"K={K} (grid {r}x{c})\n")

    methods = {
        "checkerboard": lambda: decompose_2d_checkerboard(a, K),
        "jagged": lambda: decompose_2d_jagged(a, K, seed=0),
        "fine-grain": lambda: decompose_2d_finegrain(a, K, seed=0)[0],
    }

    print(f"{'method':>14} {'volume':>8} {'max vol':>8} {'avg#msgs':>9} "
          f"{'max#msgs':>9} {'imbalance':>10}")
    for name, make in methods.items():
        dec = make()
        stats = communication_stats(dec)
        # plan-driven execution cross-checks the decomposition end to end
        plan = build_comm_plan(dec)
        assert np.allclose(execute_plan(plan, dec, x), a @ x)
        print(
            f"{name:>14} {stats.total_volume:>8} {stats.max_volume:>8} "
            f"{stats.avg_messages:>9.2f} {stats.max_messages:>9} "
            f"{100 * stats.load_imbalance:>9.2f}%"
        )

    print(
        "\ncheckerboard keeps messages minimal but ignores volume;\n"
        "the fine-grain model spends more messages to minimize the volume —\n"
        "the trade the paper's Table 2 quantifies."
    )


if __name__ == "__main__":
    main()
