#!/usr/bin/env python
"""File-based workflow: Matrix Market in, PaToH hypergraph + partition out.

Demonstrates interoperability with the standard tool ecosystem the paper
lives in:

1. write a test matrix to a MatrixMarket ``.mtx`` file (the UF collection's
   format — swap in a real downloaded file to reproduce the paper exactly);
2. read it back, build the fine-grain hypergraph;
3. export the hypergraph in PaToH format (runnable by the real PaToH) and
   in hMeTiS format;
4. partition with this library and store the part vector.

Run:  python examples/matrix_market_workflow.py [outdir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import build_finegrain_model, partition_hypergraph
from repro.hypergraph.partfile import write_partition
from repro.hypergraph.io import write_hmetis, write_patoh
from repro.matrix import (
    load_collection_matrix,
    matrix_stats,
    read_matrix_market,
    write_matrix_market,
)

K = 8


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("/tmp/repro-demo")
    outdir.mkdir(parents=True, exist_ok=True)

    a = load_collection_matrix("sherman3", scale=0.25, seed=0)
    mtx = outdir / "sherman3_quarter.mtx"
    write_matrix_market(a, mtx, comment="sherman3 structural surrogate, 1/4 scale")
    print(f"wrote {mtx}")

    b = read_matrix_market(mtx)
    assert (abs(b - a)).max() < 1e-12
    print(matrix_stats(b, "reloaded").table1_row())

    model = build_finegrain_model(b)
    patoh_file = outdir / "sherman3_finegrain.patoh"
    hmetis_file = outdir / "sherman3_finegrain.hmetis"
    write_patoh(model.hypergraph, patoh_file)
    write_hmetis(model.hypergraph, hmetis_file)
    print(f"wrote {patoh_file} and {hmetis_file} "
          f"({model.hypergraph.num_vertices} vertices, "
          f"{model.hypergraph.num_nets} nets)")

    res = partition_hypergraph(model.hypergraph, K, seed=0)
    part_file = outdir / f"sherman3_finegrain.part.{K}"
    write_partition(res.part, part_file, comment=f"fine-grain K={K} cutsize={res.cutsize}")
    print(f"partitioned: {res.summary()}")
    print(f"wrote {part_file}")


if __name__ == "__main__":
    main()
