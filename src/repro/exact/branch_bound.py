"""Budgeted branch-and-bound exact bipartitioner.

An improved-bounds exact algorithm for sparse-matrix bipartitioning in
the spirit of Knigge & Bisseling (arXiv:1811.02043), specialized to the
repo's :class:`~repro.hypergraph.hypergraph.Hypergraph` CSR arrays and
its k=2 recursive-bisection building block:

* **search space** — a DFS over vertex assignments in a fixed
  connectivity-first order (BFS from the highest-degree vertex, so nets
  close early and the partial-cut bound tightens fast), with incremental
  per-net pin counts, partial part weights and partial cut maintained
  under O(degree) apply/undo;
* **objective** — the lexicographic key ``(excess, cut)`` the whole
  partitioner ranks by: ``excess`` is the total weight overflow beyond
  the ε-balance maximum part weights (0 on any feasible bipartition) and
  ``cut`` the bipartition cutsize.  Minimizing this key subsumes the
  hard-balance formulation — on balance-feasible instances the optimum
  has ``excess == 0`` and is the minimum-cut feasible bipartition — while
  still returning the certified least-infeasible answer on instances
  where no ε-balanced bipartition exists (single dominant vertex, one
  vertex total, ...).  At k=2 the connectivity-1 (Eq. 3) and cut-net
  (Eq. 2) cutsizes coincide (``lambda_j ∈ {1, 2}``), so one search
  certifies both objectives;
* **lower bound** — both key components are monotone along a DFS path:
  part weights only grow, so the partial excess is exact, and a net with
  pins on both sides stays cut.  On top of the already-cut-nets term the
  bound adds *unassignable-net reasoning*: an uncut net whose assigned
  pins all sit in part ``p`` must either be cut or pull **all** its
  unassigned pin weight into ``p`` — if that weight exceeds ``p``'s
  remaining capacity, the net's cost is added to the bound (staying
  sound under the lexicographic key because the only escape, leaving the
  net uncut, strictly grows the integer excess);
* **symmetry breaking** — when no vertex is fixed and the two maximum
  part weights agree, complement partitions are equivalent, so the first
  vertex in DFS order is only ever assigned to part 0;
* **budget** — a deterministic node budget (``max_nodes``) and/or a
  wall-clock :class:`~repro.partitioner.resilience.Deadline`.  The
  search always holds a complete incumbent (a greedy warm start built
  before the DFS), so exhausting the budget degrades gracefully: the
  best-found bipartition is returned with ``proven=False`` instead of a
  certificate.  Passing only ``max_nodes`` keeps the outcome a pure
  function of the inputs — the property the coarsest-level
  ``initial_method="exact"`` integration relies on for bit-identical
  results across machines.

The solver is pure Python over plain lists — it exists to be obviously
correct (the differential oracle for every heuristic layer above it),
and the instances it certifies are tiny by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro._util import INDEX_DTYPE
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.resilience import Deadline

__all__ = ["ExactResult", "exact_bisection", "bisection_bounds"]

#: supported cutsize objectives (numerically identical at k=2; both names
#: are accepted so callers can state which of Eq. 2/3 they certify)
OBJECTIVES = ("connectivity", "cutnet")

#: deadline expiry is polled every this many expanded nodes (a monotonic
#: clock read per node would dominate the search on tiny instances)
_DEADLINE_STRIDE = 256


@dataclass(frozen=True)
class ExactResult:
    """Outcome of :func:`exact_bisection`.

    ``proven`` is the certificate: the DFS exhausted the search space
    within budget, so ``(excess, cutsize)`` is the lexicographic minimum
    over **all** bipartitions respecting the fixed vertices.  With
    ``proven=False`` the result is only the best bipartition found
    before the budget ran out — still valid, never certified.
    """

    #: side (0/1) per vertex — always a complete valid bipartition
    part: np.ndarray
    #: cutsize of :attr:`part` under :attr:`objective` (at k=2 the
    #: connectivity-1 and cut-net cutsizes are the same number)
    cutsize: int
    #: total weight overflow beyond :attr:`max_weights` (0 = ε-feasible)
    excess: int
    #: objective name the caller asked for ("connectivity" or "cutnet")
    objective: str
    #: True when optimality was certified within the budget
    proven: bool
    #: B&B nodes expanded (vertex assignments tried)
    nodes: int
    #: wall-clock seconds spent in the solver
    runtime: float
    #: the per-side maximum weights the excess is measured against
    max_weights: tuple[int, int]

    def key(self) -> tuple[int, int]:
        """The lexicographic quality key ``(excess, cutsize)``."""
        return (self.excess, self.cutsize)

    def summary(self) -> str:
        """One-line human-readable summary."""
        tag = "optimal" if self.proven else "best-found"
        return (
            f"exact[{tag}] cut={self.cutsize} excess={self.excess} "
            f"nodes={self.nodes} time={self.runtime:.3f}s"
        )


def bisection_bounds(
    h: Hypergraph, epsilon: float, targets: tuple[int, int] | None = None
) -> tuple[tuple[int, int], tuple[int, int]]:
    """``(targets, max_weights)`` of a k=2 split, exactly as the
    multilevel pipeline derives them (:func:`_split_targets` +
    :func:`multilevel_bisect`), so exact and heuristic results are
    comparable over the same feasible set."""
    total = h.total_vertex_weight()
    if targets is None:
        t0 = int(round(total / 2))
        targets = (t0, total - t0)
    max_weights = (
        int(targets[0] * (1.0 + epsilon)),
        int(targets[1] * (1.0 + epsilon)),
    )
    return targets, max_weights


def _search_order(h: Hypergraph, free: list[int]) -> list[int]:
    """Deterministic DFS vertex order: BFS from the highest-degree free
    vertex through shared nets (nets close early → tight cut bounds),
    then any unreached vertices by decreasing weight, id as tiebreak."""
    free_set = set(free)
    if not free_set:
        return []
    xpins, pins = h.xpins_list(), h.pins_list()
    xnets, vnets = h.xnets_list(), h.vnets_list()
    degree = {v: xnets[v + 1] - xnets[v] for v in free_set}
    order: list[int] = []
    seen: set[int] = set()
    remaining = sorted(free_set, key=lambda v: (-degree[v], v))
    for root in remaining:
        if root in seen:
            continue
        queue = [root]
        seen.add(root)
        while queue:
            v = queue.pop(0)
            order.append(v)
            for t in range(xnets[v], xnets[v + 1]):
                j = vnets[t]
                for s in range(xpins[j], xpins[j + 1]):
                    u = pins[s]
                    if u in free_set and u not in seen:
                        seen.add(u)
                        queue.append(u)
    # components are visited highest-degree-root first; within each the
    # BFS order is fixed by the CSR arrays — fully deterministic
    return order


def exact_bisection(
    h: Hypergraph,
    epsilon: float = 0.03,
    objective: str = "connectivity",
    *,
    targets: tuple[int, int] | None = None,
    max_weights: tuple[int, int] | None = None,
    fixed: np.ndarray | None = None,
    max_nodes: int | None = None,
    deadline: Deadline | float | None = None,
) -> ExactResult:
    """Certified-optimal (or budgeted best-found) bipartition of *h*.

    Minimizes the lexicographic key ``(excess, cutsize)`` where
    ``excess`` is the weight overflow beyond *max_weights* (derived from
    *targets* and *epsilon* when not given, mirroring the multilevel
    pipeline) and ``cutsize`` the k=2 cutsize — identical for both
    objective names at k=2.

    ``fixed`` (or ``h.fixed``) pins vertices to side 0/1; ``max_nodes``
    and ``deadline`` bound the search (see :class:`ExactResult.proven`).
    A ``deadline`` given as a float is interpreted as a fresh budget of
    that many seconds.  Note only ``max_nodes`` is deterministic across
    machines — a wall-clock budget may certify on one host and not
    another.
    """
    t_start = perf_counter()
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
        )
    if max_nodes is not None and max_nodes < 1:
        raise ValueError("max_nodes must be >= 1 (or None)")
    if isinstance(deadline, (int, float)):
        deadline = Deadline(float(deadline))
    if fixed is None:
        fixed = h.fixed
    nv = h.num_vertices
    if fixed is not None:
        fixed = np.asarray(fixed)
        if len(fixed) != nv:
            raise ValueError("fixed length mismatch")
        if len(fixed) and int(fixed.max()) > 1:
            raise ValueError("fixed part id out of range for a bipartition")

    targets, maxw = bisection_bounds(h, epsilon, targets)
    if max_weights is not None:
        maxw = (int(max_weights[0]), int(max_weights[1]))

    if nv == 0:
        return ExactResult(
            part=np.empty(0, dtype=INDEX_DTYPE),
            cutsize=0,
            excess=0,
            objective=objective,
            proven=True,
            nodes=0,
            runtime=perf_counter() - t_start,
            max_weights=maxw,
        )

    w = h.weights_list()
    cost = h.costs_list()
    xpins, pins = h.xpins_list(), h.pins_list()
    xnets, vnets = h.xnets_list(), h.vnets_list()
    nn = h.num_nets

    part = [-1] * nv
    free: list[int] = []
    if fixed is not None:
        for v in range(nv):
            f = int(fixed[v])
            if f >= 0:
                part[v] = f
            else:
                free.append(v)
    else:
        free = list(range(nv))

    # ---- incremental net state ----------------------------------------
    cnt = [[0, 0] for _ in range(nn)]  # assigned pins per side
    freecnt = [xpins[j + 1] - xpins[j] for j in range(nn)]
    freew = [0] * nn  # total weight of unassigned pins per net
    for j in range(nn):
        freew[j] = sum(w[pins[s]] for s in range(xpins[j], xpins[j + 1]))
    W = [0, 0]
    cut = 0

    def apply(v: int, side: int) -> int:
        """Assign *v* to *side*; returns the cut delta (for undo)."""
        nonlocal cut
        part[v] = side
        W[side] += w[v]
        delta = 0
        for t in range(xnets[v], xnets[v + 1]):
            j = vnets[t]
            c = cnt[j]
            freecnt[j] -= 1
            freew[j] -= w[v]
            if c[side] == 0 and c[1 - side] > 0:
                delta += cost[j]  # net newly spans both sides
            c[side] += 1
        cut += delta
        return delta

    def undo(v: int, side: int, delta: int) -> None:
        nonlocal cut
        part[v] = -1
        W[side] -= w[v]
        cut -= delta
        for t in range(xnets[v], xnets[v + 1]):
            j = vnets[t]
            cnt[j][side] -= 1
            freecnt[j] += 1
            freew[j] += w[v]

    # pre-place the fixed vertices once; the DFS never revisits them
    for v in range(nv):
        if part[v] >= 0:
            side, part[v] = part[v], -1
            apply(v, side)

    def excess_now() -> int:
        return max(0, W[0] - maxw[0]) + max(0, W[1] - maxw[1])

    order = _search_order(h, free)

    # ---- greedy warm start: a complete incumbent always exists --------
    deltas = []
    for v in order:
        d0 = apply(v, 0)
        e0, c0 = excess_now(), cut
        undo(v, 0, d0)
        d1 = apply(v, 1)
        e1, c1 = excess_now(), cut
        undo(v, 1, d1)
        side = 0 if (e0, c0, W[0] + w[v]) <= (e1, c1, W[1] + w[v]) else 1
        deltas.append((v, side, apply(v, side)))
    best_key = (excess_now(), cut)
    best_part = list(part)
    for v, side, delta in reversed(deltas):
        undo(v, side, delta)

    # ---- DFS with branch-and-bound ------------------------------------
    symmetric = (
        len(free) == len(order)
        and len(order) == nv  # no fixed vertices at all
        and maxw[0] == maxw[1]
    )
    nodes = 0
    aborted = False
    # nets whose must-cut status can matter: touched but not exhausted
    open_nets: set[int] = {
        j for j in range(nn) if (cnt[j][0] or cnt[j][1]) and freecnt[j]
    }

    def must_cut_extra() -> int:
        """Unassignable-net reasoning: cost of uncut single-sided nets
        whose unassigned pin weight cannot fit the single side.

        Each such net must either be cut (cut grows by its cost) or pull
        weight into the overfull side, raising the integer excess by at
        least 1 — either way the final lexicographic key exceeds the
        bound, so summing the costs is sound.  The ``> max(cap, 0)``
        guard keeps the bound honest around zero-weight free pins (the
        fine-grain model's dummy diagonal vertices): those can join the
        single side without moving the excess at all.
        """
        cap0 = max(maxw[0] - W[0], 0)
        cap1 = max(maxw[1] - W[1], 0)
        extra = 0
        for j in open_nets:
            c0, c1 = cnt[j]
            if c0 and c1:
                continue  # already cut, already counted
            if c0:
                if freew[j] > cap0:
                    extra += cost[j]
            elif freew[j] > cap1:
                extra += cost[j]
        return extra

    def search(i: int) -> None:
        nonlocal nodes, best_key, best_part, aborted
        if aborted:
            return
        if i == len(order):
            key = (excess_now(), cut)
            if key < best_key:
                best_key = key
                best_part = list(part)
            return
        nodes += 1
        if max_nodes is not None and nodes > max_nodes:
            aborted = True
            return
        if (
            deadline is not None
            and nodes % _DEADLINE_STRIDE == 0
            and deadline.expired()
        ):
            aborted = True
            return

        v = order[i]
        # probe both sides' cut deltas to explore the cheaper one first
        # (better incumbents earlier → more pruning); fully deterministic
        sides: tuple[int, ...]
        if i == 0 and symmetric:
            sides = (0,)
        else:
            d0 = 0
            d1 = 0
            for t in range(xnets[v], xnets[v + 1]):
                j = vnets[t]
                c0, c1 = cnt[j]
                if c0 == 0 and c1 > 0:
                    d0 += cost[j]
                elif c1 == 0 and c0 > 0:
                    d1 += cost[j]
            if (d1, W[1] + w[v] > maxw[1]) < (d0, W[0] + w[v] > maxw[0]):
                sides = (1, 0)
            else:
                sides = (0, 1)

        touched = [
            vnets[t]
            for t in range(xnets[v], xnets[v + 1])
            if freecnt[vnets[t]] == 1 and vnets[t] in open_nets
        ]
        newly_open = [
            vnets[t]
            for t in range(xnets[v], xnets[v + 1])
            if cnt[vnets[t]][0] == 0
            and cnt[vnets[t]][1] == 0
            and freecnt[vnets[t]] > 1
        ]
        for side in sides:
            delta = apply(v, side)
            for j in touched:
                open_nets.discard(j)  # last free pin consumed
            for j in newly_open:
                open_nets.add(j)
            lb = (excess_now(), cut)
            if lb < best_key:
                lb = (lb[0], cut + must_cut_extra())
            if lb < best_key:
                search(i + 1)
            for j in newly_open:
                open_nets.discard(j)
            for j in touched:
                open_nets.add(j)
            undo(v, side, delta)
            if aborted:
                return

    # a zero-cut feasible incumbent is already optimal — skip the search
    if best_key > (0, 0):
        search(0)

    return ExactResult(
        part=np.asarray(best_part, dtype=INDEX_DTYPE),
        cutsize=int(best_key[1]),
        excess=int(best_key[0]),
        objective=objective,
        proven=not aborted,
        nodes=nodes,
        runtime=perf_counter() - t_start,
        max_weights=maxw,
    )
