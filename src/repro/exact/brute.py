"""Exhaustive bipartition enumeration — the oracle for the oracle.

:func:`brute_force_bisection` enumerates all ``2^n_free`` assignments of
the free vertices and scores each through the **independent** cutsize
and weight oracles (:mod:`repro.hypergraph.partition`), sharing no code
with the branch-and-bound solver it cross-checks.  It exists purely for
``tests/test_exact.py`` — anything beyond ~20 free vertices is refused.
"""

from __future__ import annotations

import numpy as np

from repro._util import INDEX_DTYPE
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import (
    compute_part_weights,
    cutsize_connectivity,
    cutsize_cutnet,
)

__all__ = ["brute_force_bisection", "MAX_BRUTE_VERTICES"]

#: hard refusal threshold — 2^20 oracle evaluations is already slow
MAX_BRUTE_VERTICES = 20


def brute_force_bisection(
    h: Hypergraph,
    max_weights: tuple[int, int],
    objective: str = "connectivity",
    fixed: np.ndarray | None = None,
) -> tuple[np.ndarray, int, int]:
    """Return ``(part, cutsize, excess)`` minimizing the lexicographic
    key ``(excess, cutsize)`` by trying every bipartition.

    ``excess`` is the total weight overflow beyond *max_weights*; ties
    between equal keys resolve to the first assignment in enumeration
    order (free vertices flipped lowest-id-fastest), which makes the
    result deterministic but not necessarily the same *vector* the B&B
    returns — cross-checks must compare keys, not partition vectors.
    """
    if fixed is None:
        fixed = h.fixed
    nv = h.num_vertices
    base = np.zeros(nv, dtype=INDEX_DTYPE)
    free = list(range(nv))
    if fixed is not None:
        fixed = np.asarray(fixed)
        free = [v for v in range(nv) if fixed[v] < 0]
        base = np.where(fixed >= 0, fixed, 0).astype(INDEX_DTYPE)
    if len(free) > MAX_BRUTE_VERTICES:
        raise ValueError(
            f"{len(free)} free vertices exceeds the brute-force cap "
            f"({MAX_BRUTE_VERTICES}); use exact_bisection instead"
        )
    score = cutsize_cutnet if objective == "cutnet" else cutsize_connectivity

    best_key: tuple[int, int] | None = None
    best_part: np.ndarray | None = None
    for mask in range(1 << len(free)):
        part = base.copy()
        for i, v in enumerate(free):
            part[v] = (mask >> i) & 1
        w = compute_part_weights(h, part, 2)
        excess = int(
            max(0, int(w[0]) - max_weights[0])
            + max(0, int(w[1]) - max_weights[1])
        )
        key = (excess, int(score(h, part)))
        if best_key is None or key < best_key:
            best_key, best_part = key, part
    if best_part is None:  # nv == 0: the empty bipartition
        return base, 0, 0
    return best_part, best_key[1], best_key[0]
