"""Exact bipartitioning: budgeted branch-and-bound + brute-force oracle.

The certified floor under the multilevel heuristic — see
:mod:`repro.exact.branch_bound` for the algorithm and
``docs/verification.md`` ("Optimality gap") for how the rest of the repo
consumes it.
"""

from repro.exact.branch_bound import ExactResult, bisection_bounds, exact_bisection
from repro.exact.brute import MAX_BRUTE_VERTICES, brute_force_bisection

__all__ = [
    "ExactResult",
    "exact_bisection",
    "bisection_bounds",
    "brute_force_bisection",
    "MAX_BRUTE_VERTICES",
]
