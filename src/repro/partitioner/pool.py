"""Shared worker budget and subtree scheduler for tree-parallel recursion.

After every bisection the two :func:`~repro.partitioner.recursive.extract_side`
subproblems are fully independent (cut-net splitting severs all coupling),
so the recursion tree is an embarrassingly parallel task DAG.  This module
provides the two pieces that exploit it without ever changing the result:

* :class:`WorkerBudget` — a non-blocking slot counter.  One budget of
  ``cfg.n_workers`` slots is shared by everything a partitioning call does
  concurrently; the multi-start engine divides it between starts and hands
  each start its share for subtree fan-out, so starts × subtrees can never
  oversubscribe the machine.
* :class:`TreeScheduler` — fork-one/walk-one scheduling: at each recursion
  node the caller offers one side to the pool and walks the other side
  itself.  When no slot is free (or the subproblem is too small, or the
  node is below ``spawn_depth``) the side simply runs inline.  Because
  seeds come from the per-node seed tree, *where* a subtree runs is
  invisible in the output — scheduling is pure wall-clock policy.

The scheduler degrades gracefully: if the process pool cannot be created
or a submitted task dies, the subtree is recomputed inline and the run
completes serially (mirroring the engine's backend fallback chain).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

from repro.partitioner.config import PartitionerConfig
from repro.telemetry import get_recorder
from repro.verify.faults import trip as _fault_trip

__all__ = ["WorkerBudget", "TreeScheduler", "resolve_tree_backend"]


class WorkerBudget:
    """Fixed pool of worker slots with non-blocking acquisition.

    ``try_acquire`` never blocks: a caller that cannot get a slot does the
    work inline instead of queueing — queueing would serialize the very
    recursion we are trying to parallelize.
    """

    def __init__(self, slots: int) -> None:
        self.slots = max(0, int(slots))
        self._sem = threading.Semaphore(self.slots)

    def try_acquire(self) -> bool:
        """Take one slot if any is free; never blocks."""
        return self.slots > 0 and self._sem.acquire(blocking=False)

    def release(self) -> None:
        self._sem.release()


def resolve_tree_backend(cfg: PartitionerConfig) -> str:
    """Execution backend for subtree tasks (same policy as the engine's)."""
    if not cfg.tree_parallel or cfg.n_workers <= 1:
        return "serial"
    if cfg.start_backend in ("process", "thread"):
        return cfg.start_backend
    if cfg.start_backend == "serial":
        return "serial"
    return "process" if (os.cpu_count() or 1) > 1 else "serial"


class TreeScheduler:
    """Offers recursion subtrees to a bounded executor; inline otherwise.

    The executor is created lazily on the first accepted offer, so a call
    whose subproblems never clear ``spawn_min_vertices`` pays no pool
    startup cost at all.  ``shutdown`` must run in a ``finally`` — the
    driver owns that.
    """

    def __init__(self, cfg: PartitionerConfig, budget: WorkerBudget | None = None):
        self.cfg = cfg
        self.backend = resolve_tree_backend(cfg)
        # the walking thread itself works a subtree, so only n_workers - 1
        # extra tasks may be in flight at once
        self.budget = budget if budget is not None else WorkerBudget(cfg.n_workers - 1)
        self._executor = None
        self._lock = threading.Lock()
        self._broken = False

    # ------------------------------------------------------------------
    def _ensure_executor(self):
        with self._lock:
            if self._executor is None and not self._broken:
                pool = (
                    ProcessPoolExecutor
                    if self.backend == "process"
                    else ThreadPoolExecutor
                )
                try:
                    self._executor = pool(max_workers=max(self.budget.slots, 1))
                except (OSError, RuntimeError, ImportError):
                    # restricted environments can refuse pools; run inline
                    self._broken = True
                    get_recorder().add("tree.pool_fallbacks")
            return self._executor

    def offer(self, depth: int, num_vertices: int, fn, /, *args) -> Future | None:
        """Submit ``fn(*args)`` as a subtree task, or decline.

        Declines (returns ``None``) when the node is past the fan-out
        frontier, the subproblem is too small to be worth shipping, no
        budget slot is free, or the pool is broken.  The caller then runs
        the subtree inline — same bits either way.
        """
        if self.backend == "serial" or self._broken:
            return None
        if depth >= self.cfg.spawn_depth:
            return None
        if num_vertices < self.cfg.spawn_min_vertices:
            return None
        if not self.budget.try_acquire():
            return None
        ex = self._ensure_executor()
        if ex is None:
            self.budget.release()
            return None
        try:
            _fault_trip("pool.submit")
            fut = ex.submit(fn, *args)
        except (OSError, RuntimeError):
            self.budget.release()
            self._broken = True
            get_recorder().add("tree.pool_fallbacks")
            return None
        fut.add_done_callback(lambda _f: self.budget.release())
        get_recorder().add("tree.tasks_spawned")
        return fut

    def shutdown(self) -> None:
        """Tear the executor down (idempotent)."""
        with self._lock:
            ex, self._executor = self._executor, None
        if ex is not None:
            ex.shutdown(wait=True)

    def __enter__(self) -> "TreeScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
