"""Bucket-list priority structure for Fiduccia–Mattheyses refinement.

The classic FM data structure: one doubly-linked list per integer gain
value, plus a moving max-gain pointer.  All operations the refinement inner
loop needs are O(1) except :meth:`GainBucket.best`, whose amortized cost is
bounded by the gain-range walk (the standard FM argument).

Plain Python lists are used instead of numpy arrays deliberately: the inner
loop performs millions of single-element reads/writes, where list indexing
is several times faster than numpy scalar indexing (see the repository's
profiling notes in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["GainBucket"]


class GainBucket:
    """Doubly-linked bucket lists over the gain range ``[-max_gain, max_gain]``.

    Vertices are identified by integer ids in ``[0, n)``.  A vertex is in at
    most one bucket at a time.
    """

    __slots__ = ("offset", "heads", "nxt", "prv", "gain", "inside", "maxptr", "count")

    def __init__(self, n: int, max_gain: int) -> None:
        if max_gain < 0:
            raise ValueError("max_gain must be non-negative")
        self.offset = max_gain
        nbuckets = 2 * max_gain + 1
        self.heads = [-1] * nbuckets
        self.nxt = [-1] * n
        self.prv = [-1] * n
        self.gain = [0] * n
        self.inside = [False] * n
        self.maxptr = -1  # index into heads of the highest non-empty bucket
        self.count = 0

    # -- primitive ops -------------------------------------------------
    def insert(self, v: int, gain: int) -> None:
        """Insert vertex *v* with *gain*; *v* must not already be inside."""
        b = gain + self.offset
        if b < 0 or b >= len(self.heads):
            raise ValueError(f"gain {gain} outside bucket range ±{self.offset}")
        if self.inside[v]:
            raise ValueError(f"vertex {v} already in bucket")
        head = self.heads[b]
        self.nxt[v] = head
        self.prv[v] = -1
        if head != -1:
            self.prv[head] = v
        self.heads[b] = v
        self.gain[v] = gain
        self.inside[v] = True
        self.count += 1
        if b > self.maxptr:
            self.maxptr = b

    def remove(self, v: int) -> None:
        """Remove vertex *v*; no-op protection is the caller's job."""
        if not self.inside[v]:
            raise ValueError(f"vertex {v} not in bucket")
        nxt, prv = self.nxt[v], self.prv[v]
        if prv != -1:
            self.nxt[prv] = nxt
        else:
            self.heads[self.gain[v] + self.offset] = nxt
        if nxt != -1:
            self.prv[nxt] = prv
        self.inside[v] = False
        self.count -= 1

    def contains(self, v: int) -> bool:
        """Whether *v* is currently stored."""
        return self.inside[v]

    def adjust(self, v: int, delta: int) -> None:
        """Change the gain of stored vertex *v* by *delta* (re-link)."""
        g = self.gain[v] + delta
        self.remove(v)
        self.insert(v, g)

    def move_to(self, v: int, g: int) -> None:
        """Relink stored vertex *v* into the bucket for gain *g*.

        Equivalent to ``remove(v)`` + ``insert(v, g)`` (new head of the
        target bucket) with the call overhead and revalidation stripped —
        this is the single hottest operation of an FM pass.  *v* must be
        stored and *g* in range; the refinement loop guarantees both.
        """
        nxt, prv, heads = self.nxt, self.prv, self.heads
        nx, pv = nxt[v], prv[v]
        if pv != -1:
            nxt[pv] = nx
        else:
            heads[self.gain[v] + self.offset] = nx
        if nx != -1:
            prv[nx] = pv
        b = g + self.offset
        head = heads[b]
        nxt[v] = head
        prv[v] = -1
        if head != -1:
            prv[head] = v
        heads[b] = v
        self.gain[v] = g
        if b > self.maxptr:
            self.maxptr = b

    def bulk_insert(self, vs: np.ndarray, gains: np.ndarray) -> None:
        """Insert vertices *vs* (insertion order) with their *gains* at once.

        Produces the exact linked-list state the equivalent sequence of
        :meth:`insert` calls would: within each bucket, later-inserted
        vertices sit closer to the head (LIFO).  None of *vs* may already
        be stored.
        """
        m = len(vs)
        if m == 0:
            return
        b = np.asarray(gains, dtype=np.int64) + self.offset
        if int(b.min()) < 0 or int(b.max()) >= len(self.heads):
            raise ValueError(f"gain outside bucket range ±{self.offset}")
        # bucket-major, reverse insertion order within a bucket: walking the
        # sorted sequence then links head -> tail of every bucket chain
        ordr = np.lexsort((-np.arange(m), b))
        sv = np.asarray(vs)[ordr].tolist()
        sb = b[ordr].tolist()
        heads, nxt, prv = self.heads, self.nxt, self.prv
        gain, inside = self.gain, self.inside
        off = self.offset
        prev_b = -1
        prev_v = -1
        for i in range(m):
            v = sv[i]
            if inside[v]:
                raise ValueError(f"vertex {v} already in bucket")
            bb = sb[i]
            if bb != prev_b:
                if prev_v != -1:
                    nxt[prev_v] = -1
                heads[bb] = v
                prv[v] = -1
            else:
                nxt[prev_v] = v
                prv[v] = prev_v
            gain[v] = bb - off
            inside[v] = True
            prev_b = bb
            prev_v = v
        nxt[prev_v] = -1
        self.count += m
        mb = int(b.max())
        if mb > self.maxptr:
            self.maxptr = mb

    def __len__(self) -> int:
        return self.count

    # -- selection -------------------------------------------------------
    def _settle_maxptr(self) -> None:
        heads = self.heads
        m = self.maxptr
        while m >= 0 and heads[m] == -1:
            m -= 1
        self.maxptr = m

    def max_gain(self) -> int | None:
        """Highest stored gain, or ``None`` when empty."""
        if self.count == 0:
            return None
        self._settle_maxptr()
        return self.maxptr - self.offset

    def best(self, feasible: Callable[[int], bool] | None = None) -> int | None:
        """Highest-gain vertex satisfying *feasible* (or any, if ``None``).

        Walks buckets downward from the max pointer; within a bucket walks
        the list in insertion order.  Returns ``None`` when nothing
        qualifies.  The vertex is *not* removed.
        """
        if self.count == 0:
            return None
        self._settle_maxptr()
        heads, nxt = self.heads, self.nxt
        for b in range(self.maxptr, -1, -1):
            v = heads[b]
            while v != -1:
                if feasible is None or feasible(v):
                    return v
                v = nxt[v]
        return None

    def best_capped(self, w: list[int], cap: int) -> int | None:
        """:meth:`best` specialized to the feasibility test ``w[v] <= cap``.

        Same walk and same result as ``best(lambda v: w[v] <= cap)`` but
        without a Python call per candidate — the dominant selection path
        when neither side is overweight.
        """
        if self.count == 0:
            return None
        self._settle_maxptr()
        heads, nxt = self.heads, self.nxt
        for b in range(self.maxptr, -1, -1):
            v = heads[b]
            while v != -1:
                if w[v] <= cap:
                    return v
                v = nxt[v]
        return None

    def pop_best(self, feasible: Callable[[int], bool] | None = None) -> int | None:
        """Like :meth:`best` but also removes the returned vertex."""
        v = self.best(feasible)
        if v is not None:
            self.remove(v)
        return v
