"""Fiduccia–Mattheyses bisection refinement with gain buckets.

For a bisection the connectivity-minus-one metric (Eq. 3) coincides with the
cut-net metric (Eq. 2): every cut net has ``lambda = 2`` and contributes
exactly its cost.  The classic FM critical-net update rules therefore apply
unchanged, and recursive bisection with cut-net splitting extends the
guarantee to K-way connectivity cutsize (see recursive.py).

The module exposes a small engine class, :class:`FMCore`, shared by the
refinement pass and by greedy hypergraph growing in initial.py: it owns the
pin-count bookkeeping, the gain array, and the critical-net gain updates of
a vertex move.

Hot loops operate on plain Python lists (see gainbucket.py for why).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro._util import INDEX_DTYPE, as_rng
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.gainbucket import GainBucket
from repro.partitioner.kernels import (
    RACE_MIN_EVENTS,
    race_pick,
    resolve_kernel,
)
from repro.telemetry import get_recorder

__all__ = ["FMCore", "fm_refine_bisection"]

#: below this pin count the flat FM pass takes the python loop instead:
#: its numpy bucket setup and per-move fixed costs only amortize once
#: per-pin gain updates dominate.  Bit-identical either way (the tiers
#: interleave freely), so the gate affects speed only.
_FM_FLAT_MIN_PINS = 20_000


class FMCore:
    """Shared move engine for 2-way FM refinement and greedy growing.

    Holds the mutable bisection state: part vector, per-net pin counts on
    both sides, part weights, the per-vertex gain array, and (optionally)
    the gain buckets to keep synchronized during moves.
    """

    def __init__(
        self,
        h: Hypergraph,
        part: np.ndarray,
        fixed: np.ndarray | None = None,
    ) -> None:
        self.h = h
        self.nv = h.num_vertices
        self.nn = h.num_nets
        # shared read-only list views for the inner loops (cached on h)
        self.xpins = h.xpins_list()
        self.pins = h.pins_list()
        self.xnets = h.xnets_list()
        self.vnets = h.vnets_list()
        self.w = h.weights_list()
        self.cost = h.costs_list()
        self.part: list[int] = np.asarray(part, dtype=INDEX_DTYPE).tolist()
        self.free = [True] * self.nv
        if fixed is not None:
            for v in np.flatnonzero(fixed >= 0):
                self.free[int(v)] = False
        # pin counts per side
        self._net_of_pin = h.net_of_pin()
        self.recount()
        self.gain: list[int] = [0] * self.nv
        self.locked: list[bool] = [False] * self.nv
        self.buckets: tuple[GainBucket, GainBucket] | None = None
        #: in boundary mode, vertices touched by a gain update get inserted
        self.insert_on_touch = False
        #: move events (kept + rolled back) of the last pass; the tier
        #: race normalizes pass timings by this
        self.pass_events = 0

    # -- bookkeeping -----------------------------------------------------
    def part_array(self) -> np.ndarray:
        """The part vector as a numpy array (copy)."""
        return np.asarray(self.part, dtype=INDEX_DTYPE)

    def recount(self) -> None:
        """Recompute pin counts and part weights from the part vector."""
        pa = self.part_array()
        part_of_pin = pa[self.h.pins]
        pc0 = np.bincount(self._net_of_pin[part_of_pin == 0], minlength=self.nn)
        pc1 = np.bincount(self._net_of_pin[part_of_pin == 1], minlength=self.nn)
        self.pc = [pc0.astype(np.int64).tolist(), pc1.astype(np.int64).tolist()]
        w = self.h.vertex_weights
        w1 = int(w[pa == 1].sum())
        self.W = [int(w.sum()) - w1, w1]

    def cut(self) -> int:
        """Current cut cost (sum of costs of nets with pins on both sides)."""
        pc0 = np.asarray(self.pc[0])
        pc1 = np.asarray(self.pc[1])
        return int(self.h.net_costs[(pc0 > 0) & (pc1 > 0)].sum())

    def compute_all_gains(self) -> None:
        """Vectorized FM gain of every vertex (positive = cut decreases)."""
        pc0 = np.asarray(self.pc[0], dtype=np.int64)
        pc1 = np.asarray(self.pc[1], dtype=np.int64)
        non = self._net_of_pin
        pp = self.part_array()[self.h.pins]
        same = np.where(pp == 0, pc0[non], pc1[non])
        other = np.where(pp == 0, pc1[non], pc0[non])
        contrib = self.h.net_costs[non] * (
            (same == 1).astype(np.int64) - (other == 0).astype(np.int64)
        )
        # bincount beats np.add.at by an order of magnitude; float64
        # accumulation is exact here (integer contributions far below 2**53)
        g = np.bincount(
            self.h.pins, weights=contrib, minlength=self.nv
        ).astype(np.int64)
        self.gain = g.tolist()

    def boundary_vertices(self) -> np.ndarray:
        """Vertices incident to at least one cut net."""
        pc0 = np.asarray(self.pc[0])
        pc1 = np.asarray(self.pc[1])
        cutmask = (pc0 > 0) & (pc1 > 0)
        sel = cutmask[self._net_of_pin]
        return np.unique(self.h.pins[sel])

    def max_gain_bound(self) -> int:
        """Upper bound on |gain|: the max total incident net cost."""
        return self.h.max_incident_cost()

    # -- the move --------------------------------------------------------
    def _bump(self, u: int, delta: int) -> None:
        """Apply a gain delta to vertex *u*, keeping buckets in sync."""
        g = self.gain[u] + delta
        self.gain[u] = g
        if self.buckets is not None:
            b = self.buckets[self.part[u]]
            if b.inside[u]:
                b.move_to(u, g)
            elif self.insert_on_touch and not self.locked[u] and self.free[u]:
                b.insert(u, g)

    def apply_move(self, v: int, update_gains: bool = True) -> None:
        """Move vertex *v* to the opposite side, updating pin counts,
        weights, and (when *update_gains*) neighbour gains by the FM
        critical-net rules."""
        frm = self.part[v]
        to = 1 - frm
        pcf = self.pc[frm]
        pct = self.pc[to]
        xpins, pins, cost = self.xpins, self.pins, self.cost
        part, locked, free = self.part, self.locked, self.free
        bump = self._bump
        for n in self.vnets[self.xnets[v] : self.xnets[v + 1]]:
            c = cost[n]
            T = pct[n]
            F = pcf[n]
            if update_gains and c:
                lo, hi = xpins[n], xpins[n + 1]
                if T == 0:
                    # net leaves the "entirely in frm" state: every other
                    # pin can now cut it one unit less by following v
                    for u in pins[lo:hi]:
                        if u != v and not locked[u] and free[u]:
                            bump(u, c)
                elif T == 1:
                    # the lone to-side pin loses its uncut-by-moving gain
                    for u in pins[lo:hi]:
                        if part[u] == to:
                            if not locked[u] and free[u]:
                                bump(u, -c)
                            break
                if F == 1:
                    # net becomes entirely in 'to': every pin loses the
                    # incentive (it can no longer uncut the net)
                    for u in pins[lo:hi]:
                        if u != v and not locked[u] and free[u]:
                            bump(u, -c)
                elif F == 2:
                    # exactly one frm-side pin remains: it gains
                    for u in pins[lo:hi]:
                        if u != v and part[u] == frm:
                            if not locked[u] and free[u]:
                                bump(u, c)
                            break
            pcf[n] = F - 1
            pct[n] = T + 1
        self.part[v] = to
        wv = self.w[v]
        self.W[frm] -= wv
        self.W[to] += wv
        # v's own gain simply flips sign for the reverse move
        self.gain[v] = -self.gain[v]

    def undo_move(self, v: int) -> None:
        """Reverse a prior :meth:`apply_move` without gain maintenance."""
        frm = self.part[v]  # side v is on now
        to = 1 - frm
        pcf = self.pc[frm]
        pct = self.pc[to]
        for n in self.vnets[self.xnets[v] : self.xnets[v + 1]]:
            pcf[n] -= 1
            pct[n] += 1
        self.part[v] = to
        wv = self.w[v]
        self.W[frm] -= wv
        self.W[to] += wv


def _excess(W: list[int], maxw: tuple[int, int]) -> int:
    return max(0, W[0] - maxw[0]) + max(0, W[1] - maxw[1])


def fm_refine_bisection(
    h: Hypergraph,
    part: np.ndarray,
    max_weights: tuple[int, int],
    cfg: PartitionerConfig,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Refine a bisection with boundary FM; returns ``(part, cut)``.

    Never returns a partition with larger cut unless it strictly reduces
    balance excess (when the input violates ``max_weights``); never
    increases balance excess.
    """
    rng = as_rng(rng)
    core = FMCore(h, part, fixed)
    maxw = (int(max_weights[0]), int(max_weights[1]))
    cut = core.cut()

    kern = resolve_kernel(getattr(cfg, "kernel", "python"))
    race = None
    pass_fn = None
    if kern == "flat" and h.num_pins >= _FM_FLAT_MIN_PINS:
        from repro.partitioner.fm_flat import fm_pass_flat

        race = h._view(
            "fm.tier_race", lambda: {"flat": [0.0, 0], "python": [0.0, 0]}
        )
    elif kern == "jit":
        from repro.partitioner.fm_jit import fm_pass_jit as pass_fn

    rec = get_recorder()
    with rec.span(
        "refine.fm",
        vertices=h.num_vertices,
        nets=h.num_nets,
        pins=h.num_pins,
        kernel=kern,
    ) as sp:
        cut0 = cut
        tier = kern
        for p in range(cfg.fm_passes):
            if race is not None:
                tier = race_pick(race)
                t0 = perf_counter()
                if tier == "flat":
                    gain, moved = fm_pass_flat(core, maxw, cfg, rng)
                else:
                    gain, moved = _fm_pass(core, maxw, cfg, rng, cut)
                dt = perf_counter() - t0
                ev = getattr(core, "pass_events", 0)
                if ev >= RACE_MIN_EVENTS:
                    st = race[tier]
                    st[0] += dt
                    st[1] += ev
            elif pass_fn is not None:
                gain, moved = pass_fn(core, maxw, cfg, rng)
            else:
                gain, moved = _fm_pass(core, maxw, cfg, rng, cut)
            cut -= gain
            rec.add("fm.passes")
            if gain <= 0 and not moved:
                break
        sp.set(cut=cut, tier=tier)
        rec.add("fm.cut_delta", cut0 - cut)
    return core.part_array(), cut


def _fm_pass(
    core: FMCore,
    maxw: tuple[int, int],
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    cut_now: int,
) -> tuple[int, bool]:
    """One FM pass.  Returns (cut improvement, whether anything changed)."""
    nv = core.nv
    core.compute_all_gains()
    core.locked = [False] * nv

    boundary_mode = nv > cfg.fm_boundary_threshold
    if boundary_mode:
        cand = core.boundary_vertices()
    else:
        cand = np.arange(nv)
    cand = cand[np.asarray(core.free, dtype=bool)[cand]]
    if len(cand) == 0:
        core.pass_events = 0
        return 0, False

    bound = core.max_gain_bound()
    b0 = GainBucket(nv, bound)
    b1 = GainBucket(nv, bound)
    core.buckets = (b0, b1)
    core.insert_on_touch = boundary_mode
    # seed both buckets in permutation order; the buckets are independent,
    # so splitting by side preserves each one's insertion sequence exactly
    seq = cand[rng.permutation(len(cand))]
    side = np.asarray(core.part, dtype=np.int64)[seq]
    gain_np = np.asarray(core.gain, dtype=np.int64)
    b0.bulk_insert(seq[side == 0], gain_np[seq[side == 0]])
    b1.bulk_insert(seq[side == 1], gain_np[seq[side == 1]])

    W = core.W
    w = core.w
    exc0 = _excess(W, maxw)

    # move log for rollback
    moves: list[int] = []
    cum = 0
    best_cum = 0
    best_idx = 0  # number of moves kept
    best_feasible = exc0 == 0
    best_excess = exc0
    stall_window = max(int(cfg.fm_stall_frac * len(cand)), cfg.fm_stall_min)
    stalls = 0

    def feasible_to(side_to: int):
        cap = maxw[side_to] - W[side_to]
        side_frm = 1 - side_to
        over_frm = W[side_frm] > maxw[side_frm]

        def ok(v: int) -> bool:
            wv = w[v]
            if wv <= cap:
                return True
            # rescue move: source side is overweight and the move strictly
            # reduces total excess
            if not over_frm:
                return False
            red = min(wv, W[side_frm] - maxw[side_frm])
            inc = max(0, W[side_to] + wv - maxw[side_to])
            return inc < red

        return ok

    # boundary mode can grow the candidate pool mid-pass, so cap at nv
    max_moves = nv
    for _ in range(max_moves):
        # fast path: when the source side is not overweight the feasibility
        # test collapses to a weight cap, which best_capped checks inline
        if W[0] > maxw[0]:
            v0 = b0.best(feasible_to(1))
        else:
            v0 = b0.best_capped(w, maxw[1] - W[1])
        if W[1] > maxw[1]:
            v1 = b1.best(feasible_to(0))
        else:
            v1 = b1.best_capped(w, maxw[0] - W[0])
        if v0 is None and v1 is None:
            break
        if v0 is None:
            v = v1
        elif v1 is None:
            v = v0
        else:
            g0, g1 = core.gain[v0], core.gain[v1]
            if g0 > g1:
                v = v0
            elif g1 > g0:
                v = v1
            else:
                # tie: move from the heavier side to help balance
                v = v0 if W[0] >= W[1] else v1
        b = b0 if core.part[v] == 0 else b1
        b.remove(v)
        core.locked[v] = True
        g = core.gain[v]
        core.apply_move(v, update_gains=True)
        moves.append(v)
        cum += g
        e0 = W[0] - maxw[0]
        e1 = W[1] - maxw[1]
        exc = (e0 if e0 > 0 else 0) + (e1 if e1 > 0 else 0)
        feas = exc == 0
        better = False
        if feas and not best_feasible:
            better = True
        elif feas == best_feasible:
            if feas:
                better = cum > best_cum
            else:
                better = (exc < best_excess) or (exc == best_excess and cum > best_cum)
        if better:
            best_cum = cum
            best_idx = len(moves)
            best_feasible = feas
            best_excess = exc
            stalls = 0
        else:
            stalls += 1
            if stalls > stall_window:
                break

    # roll back to the best prefix
    core.buckets = None
    for v in reversed(moves[best_idx:]):
        core.undo_move(v)
        core.locked[v] = False

    core.pass_events = len(moves)
    rec = get_recorder()
    if rec.enabled:
        rec.add("fm.moves", best_idx)
        rec.add("fm.rollbacks", len(moves) - best_idx)
    changed = best_idx > 0
    return (best_cum if changed else 0), changed
