"""K-way partition refinement: improve a *given* partition.

Recursive bisection builds a partition from nothing; this module improves
one that already exists, by pairwise FM between parts plus the direct
greedy K-way pass.  Two uses:

* **V-cycle K-way refinement** — polish the output of recursive bisection;
* **seeded fine-grain partitioning** — start the fine-grain model from the
  partition induced by a 1D model (every 1D decomposition is a point in
  the fine-grain solution space), guaranteeing the refined 2D result is at
  least as good as the 1D one.  The paper itself never does this; it is the
  natural "planned modification" its §4 alludes to, benchmarked as ablation
  A7.

The pairwise pass sweeps adjacent part pairs (those sharing cut nets) and
runs 2-way FM on the sub-hypergraph they induce, with all other parts
frozen.  Cut-net splitting semantics are preserved by keeping each net's
pins in the two active parts and dropping the rest — exactly the
construction whose cut equals the pair's contribution to Eq. 3.
"""

from __future__ import annotations

import numpy as np

from repro._util import INDEX_DTYPE, as_rng, prefix_from_counts
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import cutsize_connectivity
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.kway import kway_refine
from repro.partitioner.recursive import extract_side
from repro.partitioner.refine import fm_refine_bisection
from repro.telemetry import get_recorder

__all__ = ["refine_partition", "pairwise_refine"]


def _adjacent_pairs(h: Hypergraph, part: np.ndarray, k: int) -> list[tuple[int, int]]:
    """Part pairs connected by at least one cut net, heaviest first.

    One global ``np.unique`` over ``net * k + part`` replaces a per-net
    unique: the sorted keys group by net (ascending) with distinct parts
    ascending within each group — the exact net/pair encounter order of the
    per-net loop, so dict insertion order and the stable heaviest-first
    sort's tie-breaks are unchanged.
    """
    weight: dict[tuple[int, int], int] = {}
    if h.num_pins:
        key = h.net_of_pin() * np.int64(k) + part[h.pins]
        uniq = np.unique(key)
        unet = uniq // k
        counts = np.bincount(unet, minlength=h.num_nets)
        starts = prefix_from_counts(counts).tolist()
        upart = (uniq % k).tolist()
        costs = h.net_costs
        for j in np.flatnonzero(counts >= 2).tolist():
            lo, hi = starts[j], starts[j + 1]
            c = int(costs[j])
            ps = upart[lo:hi]
            for a in range(len(ps)):
                pa = ps[a]
                for b in range(a + 1, len(ps)):
                    pair = (pa, ps[b])
                    weight[pair] = weight.get(pair, 0) + c
    return [p for p, _ in sorted(weight.items(), key=lambda kv: -kv[1])]


def pairwise_refine(
    h: Hypergraph,
    part: np.ndarray,
    k: int,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    max_pairs: int | None = None,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """One sweep of pairwise 2-way FM over adjacent part pairs."""
    part = np.asarray(part, dtype=INDEX_DTYPE).copy()
    w = h.vertex_weights
    total = int(w.sum())
    maxw_part = int((total / k) * (1.0 + cfg.epsilon))
    pairs = _adjacent_pairs(h, part, k)
    if max_pairs is not None:
        pairs = pairs[:max_pairs]
    pairwise_span = get_recorder().span("kway.pairwise", k=k, pairs=len(pairs))
    with pairwise_span:
        part = _refine_pairs(h, part, pairs, maxw_part, cfg, rng, fixed)
    return part


def _refine_pairs(h, part, pairs, maxw_part, cfg, rng, fixed):
    for pa, pb in pairs:
        sel = (part == pa) | (part == pb)
        side01 = np.where(part == pb, 1, 0)
        # reuse extract_side's cut-net splitting: mark the pair as side 0
        sub, ids, _ = extract_side(h, np.where(sel, 0, 1), 0)
        if sub.num_vertices == 0:
            continue
        sub_part = side01[ids]
        sub_fixed = fixed[ids] if fixed is not None else None
        if sub_fixed is not None:
            # fixed ids are final parts; map to the local 0/1 sides
            sub_fixed = np.where(
                sub_fixed == pa, 0, np.where(sub_fixed == pb, 1, -1)
            ).astype(INDEX_DTYPE)
        new_sub, _ = fm_refine_bisection(
            sub, sub_part, (maxw_part, maxw_part), cfg, rng, sub_fixed
        )
        part[ids] = np.where(new_sub == 1, pb, pa)
    return part


def refine_partition(
    h: Hypergraph,
    part: np.ndarray,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
    sweeps: int = 2,
) -> np.ndarray:
    """Improve a given K-way partition; never returns a worse cutsize.

    Alternates pairwise FM sweeps with the direct greedy K-way pass until
    no sweep improves (at most *sweeps* rounds).  Fixed vertices are taken
    from ``h.fixed``.
    """
    cfg = config or PartitionerConfig()
    rng = as_rng(seed)
    part = np.asarray(part, dtype=INDEX_DTYPE).copy()
    if k <= 1 or h.num_vertices == 0:
        return part
    fixed = h.fixed
    best = part
    best_cut = cutsize_connectivity(h, best)
    rec = get_recorder()
    for sweep in range(max(sweeps, 0)):
        with rec.span("kway.sweep", sweep=sweep) as sp:
            cand = pairwise_refine(h, best, k, cfg, rng, fixed=fixed)
            cand = kway_refine(h, cand, k, cfg, rng, fixed=fixed)
            cut = cutsize_connectivity(h, cand)
            sp.set(cut=cut)
        if cut >= best_cut:
            break
        best, best_cut = cand, cut
    return best
