"""Multilevel hypergraph partitioner — the PaToH analogue.

The paper runs PaToH [5] on its hypergraph models.  This package implements
the same multilevel pipeline from scratch:

1. **Coarsening** (:mod:`~repro.partitioner.coarsen`): randomized
   agglomerative clustering — heavy-connectivity matching (HCM) or
   heavy-connectivity clustering (HCC) — followed by coarse-hypergraph
   construction with single-pin-net removal and identical-net merging.
2. **Initial partitioning** (:mod:`~repro.partitioner.initial`): multi-start
   greedy hypergraph growing (GHG) and random balanced bisections on the
   coarsest hypergraph.
3. **Uncoarsening with refinement** (:mod:`~repro.partitioner.refine`):
   boundary Fiduccia–Mattheyses passes with gain buckets
   (:mod:`~repro.partitioner.gainbucket`) and hill-climbing rollback.
4. **K-way via recursive bisection** (:mod:`~repro.partitioner.recursive`)
   with *cut-net splitting*, which makes the sum of bisection cuts equal the
   connectivity-minus-one cutsize of the final K-way partition — the
   property that lets recursive bisection minimize Eq. 3 of the paper.
5. Optional **direct K-way refinement** (:mod:`~repro.partitioner.kway`) as
   a final improvement pass.

Fixed vertices (pre-assigned parts) are honoured throughout, supporting the
paper's reduction-problem extension.
"""

from repro.partitioner.config import (
    ExecutionPolicy,
    ModelConfig,
    PartitionerConfig,
)
from repro.partitioner.driver import PartitionResult, partition_hypergraph
from repro.partitioner.engine import StartStat, partition_multistart
from repro.partitioner.kernels import kernel_info, resolve_kernel
from repro.partitioner.pool import TreeScheduler, WorkerBudget

__all__ = [
    "ExecutionPolicy",
    "ModelConfig",
    "PartitionerConfig",
    "PartitionResult",
    "StartStat",
    "TreeScheduler",
    "WorkerBudget",
    "kernel_info",
    "partition_hypergraph",
    "partition_multistart",
    "resolve_kernel",
]
