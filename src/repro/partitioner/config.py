"""Configuration of the multilevel hypergraph partitioner."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["PartitionerConfig"]


@dataclass(frozen=True)
class PartitionerConfig:
    """Tuning knobs of :func:`repro.partitioner.partition_hypergraph`.

    The defaults mirror the paper's experimental setup where it specifies
    one (``epsilon = 0.03``: "percent load imbalance values are below 3%")
    and PaToH's defaults in spirit elsewhere.
    """

    #: maximum allowed imbalance ratio of Eq. 1 (paper: 3%)
    epsilon: float = 0.03
    #: coarsening stops when the hypergraph has at most this many vertices
    coarsen_to: int = 120
    #: hard cap on the number of coarsening levels per bisection
    max_coarsen_levels: int = 30
    #: stop coarsening when one level shrinks the vertex count by less than
    #: this factor (stagnation guard)
    min_coarsen_shrink: float = 0.95
    #: matching scheme: "hcc" (agglomerative clusters, PaToH default),
    #: "hcm" (pairwise matching) or "none" (no coarsening; flat FM)
    matching: str = "hcc"
    #: nets larger than this are ignored while scoring matches (they carry
    #: almost no locality signal and dominate the runtime)
    max_net_size_coarsen: int = 300
    #: number of initial-partitioning starts; the best bisection is kept
    n_initial_starts: int = 5
    #: maximum FM passes per uncoarsening level
    fm_passes: int = 3
    #: an FM pass aborts after this many consecutive non-improving moves
    #: (hill-climbing window); scaled fraction of free vertices
    fm_stall_frac: float = 0.25
    #: absolute floor for the stall window
    fm_stall_min: int = 50
    #: vertex-count threshold above which FM seeds its buckets with boundary
    #: vertices only (full seeding below)
    fm_boundary_threshold: int = 4096
    #: extra V-cycles per bisection: after the first multilevel pass, the
    #: bisected hypergraph is re-coarsened with matching restricted to the
    #: parts and refined again (PaToH-style V-cycle refinement); 0 disables
    n_vcycles: int = 1
    #: run a final direct K-way greedy refinement after recursive bisection
    kway_refine: bool = False
    #: passes of the direct K-way refinement
    kway_passes: int = 2
    #: independent multi-start runs of the whole pipeline; best cut wins
    #: (sequential, sharing one RNG stream — see ``n_starts`` for the
    #: engine-level variant with independent per-start seeds)
    n_runs: int = 1
    #: independent seeded attempts of the multi-start engine
    #: (:func:`repro.partitioner.partition_multistart`); the best partition
    #: by (balance excess, cutsize, start index) wins.  ``1`` runs the
    #: legacy single-start pipeline unchanged (bit-identical results).
    n_starts: int = 1
    #: worker processes/threads for the multi-start engine; ``1`` runs the
    #: starts sequentially in-process
    n_workers: int = 1
    #: backend for ``n_workers > 1``: "process"
    #: (:class:`concurrent.futures.ProcessPoolExecutor`), "thread",
    #: "serial", or "auto" (process when multiple CPU cores are available,
    #: serial otherwise — pure-Python workloads gain nothing from threads)
    start_backend: str = "auto"
    #: stop launching further starts once one achieves a feasible partition
    #: with cutsize at or below this target (``None`` disables).  Trades
    #: the deterministic "all n_starts run" protocol for wall-clock time;
    #: with parallel workers the set of completed starts may vary from run
    #: to run.
    early_stop_cut: int | None = None

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.matching not in ("hcc", "hcm", "none"):
            raise ValueError(f"unknown matching scheme {self.matching!r}")
        if self.coarsen_to < 2:
            raise ValueError("coarsen_to must be at least 2")
        if self.n_initial_starts < 1 or self.n_runs < 1:
            raise ValueError("n_initial_starts and n_runs must be >= 1")
        if self.n_vcycles < 0:
            raise ValueError("n_vcycles must be >= 0")
        if self.n_starts < 1 or self.n_workers < 1:
            raise ValueError("n_starts and n_workers must be >= 1")
        if self.start_backend not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown start_backend {self.start_backend!r}")
        if self.early_stop_cut is not None and self.early_stop_cut < 0:
            raise ValueError("early_stop_cut must be non-negative")

    def with_(self, **kwargs) -> "PartitionerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
