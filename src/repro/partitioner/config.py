"""Configuration of the multilevel hypergraph partitioner.

The configuration is split along the line the fingerprint subsystem
enforces (:mod:`repro.fingerprint`):

* :class:`ModelConfig` — every knob that shapes which partition comes
  out (the bit-shaping fields).  ``repro.fingerprint()`` draws from this
  class directly, so adding a field here automatically makes it part of
  a request's content-addressed identity.
* :class:`ExecutionPolicy` — workers, backends, transports, retries,
  deadlines, checkpoints and the refinement *kernel* tier.  Changing any
  of these must never move a bit; they are deliberately excluded from
  the fingerprint so the same request served on different hardware hits
  the same cache entry.

:class:`PartitionerConfig` composes the two and keeps the original flat
keyword API working (``PartitionerConfig(epsilon=0.1, n_workers=4)``)
as a back-compat shim — attribute access, ``with_()`` and pickling all
behave exactly as before the split.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace

__all__ = ["ModelConfig", "ExecutionPolicy", "PartitionerConfig", "KERNELS"]

#: the kernel tiers of the refinement/matching hot path, in fallback
#: order (``resolve_kernel`` walks right from the requested tier until
#: one is available; see :mod:`repro.partitioner.kernels`)
KERNELS = ("jit", "flat", "python")


def _env_bool(name: str, fallback: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    try:
        return int(raw)
    except ValueError:
        return fallback


def _env_str(name: str, fallback: str) -> str:
    return os.environ.get(name, fallback)


def _env_float(name: str, fallback: float | None) -> float | None:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        return float(raw)
    except ValueError:
        return fallback


@dataclass(frozen=True)
class ModelConfig:
    """The bit-shaping knobs: everything that decides which partition
    comes out.

    The defaults mirror the paper's experimental setup where it specifies
    one (``epsilon = 0.03``: "percent load imbalance values are below 3%")
    and PaToH's defaults in spirit elsewhere.  ``repro.fingerprint()``
    digests exactly these fields — execution policy never participates.
    """

    #: maximum allowed imbalance ratio of Eq. 1 (paper: 3%)
    epsilon: float = 0.03
    #: coarsening stops when the hypergraph has at most this many vertices
    coarsen_to: int = 120
    #: hard cap on the number of coarsening levels per bisection
    max_coarsen_levels: int = 30
    #: stop coarsening when one level shrinks the vertex count by less than
    #: this factor (stagnation guard)
    min_coarsen_shrink: float = 0.95
    #: matching scheme: "hcc" (agglomerative clusters, PaToH default),
    #: "hcm" (pairwise matching) or "none" (no coarsening; flat FM)
    matching: str = "hcc"
    #: nets larger than this are ignored while scoring matches (they carry
    #: almost no locality signal and dominate the runtime)
    max_net_size_coarsen: int = 300
    #: number of initial-partitioning starts; the best bisection is kept
    n_initial_starts: int = 5
    #: coarsest-level initial partitioner: "ghg" (the best-of-N greedy
    #: hypergraph growing + random starts, PaToH-style) or "exact" (the
    #: branch-and-bound bipartitioner of :mod:`repro.exact`, attempted
    #: first under ``exact_initial_nodes``; when it certifies, its optimal
    #: bisection of the coarsest hypergraph is used, otherwise the GHG
    #: path runs bit-identically — the exact attempt consumes no RNG)
    initial_method: str = "ghg"
    #: node budget of the ``initial_method="exact"`` attempt.  A *node*
    #: budget, not wall clock, so the outcome — certified or fallback —
    #: is a pure function of the inputs on every machine
    exact_initial_nodes: int = 100_000
    #: ``initial_method="exact"`` is only attempted when the coarsest
    #: hypergraph has at most this many vertices (beyond it the search
    #: would burn the node budget without certifying anyway)
    exact_initial_vertices: int = 32
    #: maximum FM passes per uncoarsening level
    fm_passes: int = 3
    #: an FM pass aborts after this many consecutive non-improving moves
    #: (hill-climbing window); scaled fraction of free vertices
    fm_stall_frac: float = 0.25
    #: absolute floor for the stall window
    fm_stall_min: int = 50
    #: vertex-count threshold above which FM seeds its buckets with boundary
    #: vertices only (full seeding below)
    fm_boundary_threshold: int = 4096
    #: extra V-cycles per bisection: after the first multilevel pass, the
    #: bisected hypergraph is re-coarsened with matching restricted to the
    #: parts and refined again (PaToH-style V-cycle refinement); 0 disables
    n_vcycles: int = 1
    #: run a final direct K-way greedy refinement after recursive bisection
    kway_refine: bool = False
    #: passes of the direct K-way refinement
    kway_passes: int = 2
    #: independent multi-start runs of the whole pipeline; best cut wins
    #: (sequential, sharing one RNG stream — see ``n_starts`` for the
    #: engine-level variant with independent per-start seeds)
    n_runs: int = 1
    #: independent seeded attempts of the multi-start engine
    #: (:func:`repro.partitioner.partition_multistart`); the best partition
    #: by (balance excess, cutsize, start index) wins.  ``1`` runs the
    #: legacy single-start pipeline unchanged (bit-identical results).
    n_starts: int = 1
    #: schedule the two subproblems of every bisection as independent tasks
    #: over the shared worker budget (see :mod:`repro.partitioner.pool`).
    #: Seeds come from a deterministic per-node seed tree, so the result is
    #: bit-identical to ``tree_parallel=True`` at any worker count and any
    #: backend — but NOT to the legacy sequential-stream recursion
    #: (``tree_parallel=False``), which threads one RNG through the tree in
    #: visit order.  That is why this field lives here and not on
    #: :class:`ExecutionPolicy`: flipping it changes which partition comes
    #: out.  Env-overridable default: ``REPRO_TREE_PARALLEL``.
    tree_parallel: bool = field(
        default_factory=lambda: _env_bool("REPRO_TREE_PARALLEL", False)
    )

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.matching not in ("hcc", "hcm", "none"):
            raise ValueError(f"unknown matching scheme {self.matching!r}")
        if self.coarsen_to < 2:
            raise ValueError("coarsen_to must be at least 2")
        if self.n_initial_starts < 1 or self.n_runs < 1:
            raise ValueError("n_initial_starts and n_runs must be >= 1")
        if self.initial_method not in ("ghg", "exact"):
            raise ValueError(
                f"unknown initial_method {self.initial_method!r}; "
                f"expected 'ghg' or 'exact'"
            )
        if self.exact_initial_nodes < 1:
            raise ValueError("exact_initial_nodes must be >= 1")
        if self.exact_initial_vertices < 0:
            raise ValueError("exact_initial_vertices must be >= 0")
        if self.n_vcycles < 0:
            raise ValueError("n_vcycles must be >= 0")
        if self.n_starts < 1:
            raise ValueError("n_starts and n_workers must be >= 1")

    def with_(self, **kwargs) -> "ModelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a partition is computed, never what comes out.

    Every field here may change between machines, reruns and resumed
    sweeps without moving a single bit of the result — the verify
    subsystem's replay matrix asserts exactly that.  None of these
    participate in ``repro.fingerprint()``.
    """

    #: worker processes/threads shared by the multi-start engine and the
    #: tree-parallel recursion (one budget: starts x subtrees never
    #: oversubscribe it); ``1`` runs everything sequentially in-process.
    #: Env-overridable default: ``REPRO_N_WORKERS``.
    n_workers: int = field(default_factory=lambda: _env_int("REPRO_N_WORKERS", 1))
    #: backend for ``n_workers > 1``: "process"
    #: (:class:`concurrent.futures.ProcessPoolExecutor`), "thread",
    #: "serial", or "auto" (process when multiple CPU cores are available,
    #: serial otherwise — pure-Python workloads gain nothing from threads).
    #: Env-overridable default: ``REPRO_START_BACKEND``.
    start_backend: str = field(
        default_factory=lambda: _env_str("REPRO_START_BACKEND", "auto")
    )
    #: maximum recursion-tree depth at which subtree tasks may be handed to
    #: the worker pool (the fan-out frontier: at most ``2**spawn_depth``
    #: concurrent subtrees); deeper nodes always run inline.  Purely a
    #: scheduling knob — never affects the partition.
    spawn_depth: int = field(default_factory=lambda: _env_int("REPRO_SPAWN_DEPTH", 2))
    #: a subtree is only worth shipping to a worker when its sub-hypergraph
    #: has at least this many vertices (below it, task overhead dominates).
    #: Purely a scheduling knob — never affects the partition.
    spawn_min_vertices: int = field(
        default_factory=lambda: _env_int("REPRO_SPAWN_MIN_VERTICES", 4096)
    )
    #: ship the hypergraph to process-backend engine workers through
    #: :mod:`multiprocessing.shared_memory` (zero-copy: a segment name +
    #: dtypes travel instead of a pickle of the CSR arrays); falls back to
    #: pickle transport when shared memory is unavailable
    shm_transport: bool = field(
        default_factory=lambda: _env_bool("REPRO_SHM_TRANSPORT", True)
    )
    #: seconds to wait for a spawned subtree task before abandoning it and
    #: recomputing the subtree inline (``None`` waits indefinitely).  A
    #: timeout costs wall clock, never correctness — the seed tree makes
    #: the inline recompute bit-identical.  Counted as
    #: ``tree.task_timeouts`` telemetry.  Env-overridable default:
    #: ``REPRO_TREE_TASK_TIMEOUT``.
    tree_task_timeout: float | None = field(
        default_factory=lambda: _env_float("REPRO_TREE_TASK_TIMEOUT", None)
    )
    #: stop launching further starts once one achieves a feasible partition
    #: with cutsize at or below this target (``None`` disables).  Trades
    #: the deterministic "all n_starts run" protocol for wall-clock time;
    #: with parallel workers the set of completed starts may vary from run
    #: to run.
    early_stop_cut: int | None = None
    #: how many times a failed/crashed engine start (or spawned subtree
    #: task) is retried before giving up.  A retried start re-derives its
    #: original seed, so retries never move the bits — they only buy
    #: wall-clock robustness.  ``0`` preserves the pre-resilience behavior
    #: (first failure triggers the backend fallback chain).
    #: Env-overridable default: ``REPRO_MAX_RETRIES``.
    max_retries: int = field(default_factory=lambda: _env_int("REPRO_MAX_RETRIES", 0))
    #: first retry delay in seconds; attempt ``a`` waits
    #: ``min(backoff_cap, backoff_base * 2**a)`` with deterministic jitter
    #: (see :func:`repro.partitioner.resilience.backoff_delay`).
    #: Env-overridable default: ``REPRO_BACKOFF_BASE``.
    backoff_base: float = field(
        default_factory=lambda: _env_float("REPRO_BACKOFF_BASE", 0.05) or 0.05
    )
    #: upper bound on a single backoff delay in seconds.
    #: Env-overridable default: ``REPRO_BACKOFF_CAP``.
    backoff_cap: float = field(
        default_factory=lambda: _env_float("REPRO_BACKOFF_CAP", 2.0) or 2.0
    )
    #: wall-clock budget in seconds for one multi-start engine call
    #: (``None`` = unlimited).  Graceful degradation, never an exception:
    #: past the deadline no new starts launch, the best completed start is
    #: returned with ``PartitionResult.degraded`` set, and at least one
    #: start always runs.  Env-overridable default: ``REPRO_DEADLINE``.
    deadline: float | None = field(
        default_factory=lambda: _env_float("REPRO_DEADLINE", None)
    )
    #: path of the engine's crash-resumable sweep checkpoint (``None``
    #: disables).  After every completed start the file is atomically
    #: rewritten (tmp + ``os.replace``); a rerun with the same
    #: configuration, seed and path skips the recorded starts.  Requires
    #: ``n_starts > 1`` and an explicit seed to be useful.
    #: Env-overridable default: ``REPRO_CHECKPOINT``.
    checkpoint_path: str | None = field(
        default_factory=lambda: os.environ.get("REPRO_CHECKPOINT") or None
    )
    #: supervise process-backend engine workers: heartbeat timestamps in a
    #: small shared-memory segment, dead/hung workers are killed and
    #: respawned, their in-flight seeds re-queued (``engine.worker_restarts``
    #: telemetry).  Off falls back to the plain executor transport.
    #: Env-overridable default: ``REPRO_SUPERVISE``.
    supervise: bool = field(default_factory=lambda: _env_bool("REPRO_SUPERVISE", True))
    #: seconds between heartbeat writes of a supervised worker.
    #: Env-overridable default: ``REPRO_HEARTBEAT_INTERVAL``.
    heartbeat_interval: float = field(
        default_factory=lambda: _env_float("REPRO_HEARTBEAT_INTERVAL", 0.25) or 0.25
    )
    #: a supervised worker whose newest heartbeat (or task dispatch) is
    #: older than this many seconds while a start is in flight is presumed
    #: hung: it is killed, respawned and its seed re-queued.
    #: Env-overridable default: ``REPRO_HEARTBEAT_TIMEOUT``.
    heartbeat_timeout: float = field(
        default_factory=lambda: _env_float("REPRO_HEARTBEAT_TIMEOUT", 30.0) or 30.0
    )
    #: implementation tier of the V-cycle hot loops (FM refinement,
    #: matching, coarse build, initial bisection, k-way refinement):
    #: "python" (the pure-Python reference loops — the differential
    #: oracle, no batching), "flat" (adaptive numpy tier: vectorized
    #: kernels behind measured size gates so it never loses to the
    #: reference), "jit" (numba-compiled move loop, requires numba), or
    #: "auto" (best available tier — the default).  Every tier is
    #: bit-identical — the verify subsystem's replay matrix asserts it —
    #: so this is execution policy, not model.  A requested tier that is
    #: unavailable falls back ``jit -> flat -> python``
    #: (see :func:`repro.partitioner.kernels.resolve_kernel`).
    #: Env-overridable default: ``REPRO_KERNEL``.
    kernel: str = field(default_factory=lambda: _env_str("REPRO_KERNEL", "auto"))

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_starts and n_workers must be >= 1")
        if self.start_backend not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown start_backend {self.start_backend!r}")
        if self.spawn_depth < 0:
            raise ValueError("spawn_depth must be >= 0")
        if self.spawn_min_vertices < 0:
            raise ValueError("spawn_min_vertices must be >= 0")
        if self.early_stop_cut is not None and self.early_stop_cut < 0:
            raise ValueError("early_stop_cut must be non-negative")
        if self.tree_task_timeout is not None and self.tree_task_timeout <= 0:
            raise ValueError("tree_task_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError(
                "heartbeat_interval and heartbeat_timeout must be positive"
            )
        if self.kernel not in ("auto",) + KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {('auto',) + KERNELS}"
            )

    def with_(self, **kwargs) -> "ExecutionPolicy":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


_MODEL_FIELDS = frozenset(f.name for f in fields(ModelConfig))
_EXECUTION_FIELDS = frozenset(f.name for f in fields(ExecutionPolicy))


class PartitionerConfig:
    """Tuning knobs of :func:`repro.partitioner.partition_hypergraph`.

    A composition of :class:`ModelConfig` (``.model``, the bit-shaping
    fields) and :class:`ExecutionPolicy` (``.execution``, the
    how-to-compute fields).  The pre-split flat API still works — both
    construction and attribute access::

        >>> cfg = PartitionerConfig(epsilon=0.1, n_workers=4)
        >>> cfg.epsilon, cfg.n_workers
        (0.1, 4)
        >>> cfg.model.epsilon, cfg.execution.n_workers
        (0.1, 4)

    New code should prefer passing the sub-configs explicitly::

        >>> cfg = PartitionerConfig(
        ...     model=ModelConfig(epsilon=0.1),
        ...     execution=ExecutionPolicy(n_workers=4),
        ... )
    """

    __slots__ = ("model", "execution")

    def __init__(
        self,
        model: ModelConfig | None = None,
        execution: ExecutionPolicy | None = None,
        **kwargs,
    ):
        if kwargs:
            mk = {k: v for k, v in kwargs.items() if k in _MODEL_FIELDS}
            ek = {k: v for k, v in kwargs.items() if k in _EXECUTION_FIELDS}
            unknown = set(kwargs) - _MODEL_FIELDS - _EXECUTION_FIELDS
            if unknown:
                raise TypeError(
                    f"PartitionerConfig got unexpected keyword arguments "
                    f"{sorted(unknown)}"
                )
            if mk and model is not None:
                raise TypeError(
                    f"cannot combine model= with flat model kwargs {sorted(mk)}"
                )
            if ek and execution is not None:
                raise TypeError(
                    "cannot combine execution= with flat execution kwargs "
                    f"{sorted(ek)}"
                )
            model = model if model is not None else ModelConfig(**mk)
            execution = execution if execution is not None else ExecutionPolicy(**ek)
        object.__setattr__(self, "model", model or ModelConfig())
        object.__setattr__(self, "execution", execution or ExecutionPolicy())

    def __getattr__(self, name: str):
        # flat back-compat access: cfg.epsilon / cfg.n_workers keep working
        if name in _MODEL_FIELDS:
            return getattr(self.model, name)
        if name in _EXECUTION_FIELDS:
            return getattr(self.execution, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name, value):
        raise AttributeError("PartitionerConfig is immutable; use with_()")

    def __delattr__(self, name):
        raise AttributeError("PartitionerConfig is immutable; use with_()")

    def with_(self, **kwargs) -> "PartitionerConfig":
        """Return a copy with the given fields replaced.

        Accepts the flat field names (routed to the owning sub-config)
        as well as ``model=`` / ``execution=`` wholesale replacements.
        """
        model = kwargs.pop("model", None) or self.model
        execution = kwargs.pop("execution", None) or self.execution
        mk = {k: v for k, v in kwargs.items() if k in _MODEL_FIELDS}
        ek = {k: v for k, v in kwargs.items() if k in _EXECUTION_FIELDS}
        unknown = set(kwargs) - _MODEL_FIELDS - _EXECUTION_FIELDS
        if unknown:
            raise TypeError(f"unknown config fields {sorted(unknown)}")
        if mk:
            model = replace(model, **mk)
        if ek:
            execution = replace(execution, **ek)
        return PartitionerConfig(model=model, execution=execution)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PartitionerConfig):
            return NotImplemented
        return self.model == other.model and self.execution == other.execution

    def __hash__(self) -> int:
        return hash((self.model, self.execution))

    def __repr__(self) -> str:
        return (
            f"PartitionerConfig(model={self.model!r}, "
            f"execution={self.execution!r})"
        )

    def __reduce__(self):
        # configs cross process boundaries (engine workers, serve daemon)
        return (PartitionerConfig, (self.model, self.execution))
