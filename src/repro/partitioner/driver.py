"""Public entry point of the hypergraph partitioner."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import Timer, as_rng
from repro.telemetry import get_recorder
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import (
    cutsize_connectivity,
    cutsize_cutnet,
    imbalance,
    validate_partition,
)
from repro.partitioner.arena import use_arena
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.kway import kway_refine
from repro.partitioner.pool import TreeScheduler, resolve_tree_backend
from repro.partitioner.recursive import partition_recursive

__all__ = ["PartitionResult", "partition_hypergraph"]


@dataclass
class PartitionResult:
    """Outcome of :func:`partition_hypergraph`."""

    #: part id per vertex
    part: np.ndarray
    #: number of parts
    k: int
    #: connectivity-minus-one cutsize (Eq. 3) — the paper's objective
    cutsize: int
    #: cut-net cutsize (Eq. 2), for reference
    cutsize_cutnet: int
    #: achieved imbalance ratio (W_max - W_avg) / W_avg
    imbalance: float
    #: wall-clock seconds spent partitioning
    runtime: float
    #: cut of every bisection performed (sums to `cutsize` when the final
    #: direct K-way pass is disabled)
    bisection_cuts: list[int] = field(default_factory=list)
    #: per-start statistics when produced by the multi-start engine
    #: (:func:`repro.partitioner.partition_multistart` with ``n_starts > 1``);
    #: empty for the single-start pipeline
    start_stats: list = field(default_factory=list)
    #: True when the engine returned early under a resilience policy (for
    #: now: a ``deadline`` stopped the sweep before every start ran); the
    #: partition is still valid — just not the full best-of-N
    degraded: bool = False
    #: human-readable reason when ``degraded`` (e.g. which starts never ran)
    degraded_reason: str | None = None

    def summary(self) -> str:
        """One-line human-readable summary."""
        tail = " [degraded]" if self.degraded else ""
        return (
            f"K={self.k} cutsize={self.cutsize} "
            f"imbalance={100 * self.imbalance:.2f}% time={self.runtime:.2f}s"
            f"{tail}"
        )


def partition_hypergraph(
    h: Hypergraph,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> PartitionResult:
    """Partition hypergraph *h* into *k* parts minimizing Eq. 3.

    Runs ``config.n_runs`` independent multilevel recursive-bisection
    pipelines and returns the best partition by (balance-excess, cutsize).
    Fixed vertices are taken from ``h.fixed`` (final part ids, -1 = free).

    >>> from repro.hypergraph import hypergraph_from_netlists
    >>> h = hypergraph_from_netlists(4, [[0, 1], [2, 3], [1, 2]])
    >>> res = partition_hypergraph(h, 2, seed=0)
    >>> res.cutsize
    1
    """
    cfg = config or PartitionerConfig()
    rng = as_rng(seed)
    if k < 1:
        raise ValueError("k must be >= 1")
    fixed = h.fixed
    if fixed is not None and len(fixed) and fixed.max() >= k:
        raise ValueError("fixed part id out of range for k")

    best: PartitionResult | None = None
    best_key: tuple[float, int] | None = None
    wavg = h.total_vertex_weight() / k
    rec = get_recorder()
    # one scheduler (and so one worker pool) serves every run of this call;
    # it only ever affects wall clock — the seed tree pins the bits
    scheduler = None
    if (
        cfg.tree_parallel
        and k > 2
        and cfg.n_workers > 1
        and resolve_tree_backend(cfg) != "serial"
    ):
        scheduler = TreeScheduler(cfg)
    try:
        # one scratch arena serves every level/start/run of this call
        # (worker threads of the scheduler fall back to plain allocation)
        with rec.span(
            "partition",
            k=k,
            n_runs=cfg.n_runs,
            vertices=h.num_vertices,
            nets=h.num_nets,
            pins=h.num_pins,
            tree_parallel=cfg.tree_parallel,
            initial=cfg.initial_method,
        ) as psp, use_arena():
            for run in range(cfg.n_runs):
                with rec.span("partition.run", run=run) as rsp, Timer() as t:
                    part, cuts = partition_recursive(
                        h, k, cfg, rng, fixed, scheduler=scheduler
                    )
                    if cfg.kway_refine and k > 1:
                        part = kway_refine(h, part, k, cfg, rng, fixed)
                validate_partition(h, part, k)
                cut = cutsize_connectivity(h, part)
                imb = imbalance(h, part, k)
                rsp.set(cutsize=cut, imbalance=round(imb, 6))
                excess = max(0.0, imb - cfg.epsilon)
                key = (excess, cut)
                if best_key is None or key < best_key:
                    best_key = key
                    best = PartitionResult(
                        part=part,
                        k=k,
                        cutsize=cut,
                        cutsize_cutnet=cutsize_cutnet(h, part),
                        imbalance=imb,
                        runtime=t.elapsed,
                        bisection_cuts=cuts,
                    )
            assert best is not None
            psp.set(cutsize=best.cutsize, imbalance=round(best.imbalance, 6))
    finally:
        if scheduler is not None:
            scheduler.shutdown()
    return best
