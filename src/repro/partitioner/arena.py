"""Scratch-buffer arena reused across V-cycle levels and multi-starts.

Every FM pass, GHG start, and coarsening level allocates a handful of
vertex-sized scratch arrays (gain vectors, eligibility masks, bucket
membership flags).  On a multilevel run those allocations repeat once per
pass x level x start — dozens of times over buffers whose size only
shrinks as coarsening proceeds.  :class:`LevelArena` keeps one buffer per
*site key* and hands out prefix views, so the finest level's allocation is
the only one that ever hits the allocator.

Usage contract:

* A key identifies a *call site*, not a buffer instance.  Two takes of the
  same key alias each other, so a site may only re-take its key after the
  previous view is dead.  The V-cycle is strictly sequential per thread
  (passes never nest), which is what makes the fixed key set in
  :mod:`~repro.partitioner.fm_flat` safe.
* Views never escape their pass: the flat engines convert state back to
  python lists (``writeback``) or copy (``astype``) before returning.
* The arena is thread-local.  Worker threads of the tree scheduler simply
  see no arena and fall back to plain allocation — correctness never
  depends on the arena being active.

Telemetry: ``arena.allocs`` / ``arena.reuses`` / ``arena.bytes`` counters
are flushed when the outermost :func:`use_arena` exits, so ``repro
profile`` can show the allocation traffic the arena absorbed.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

from repro.telemetry import get_recorder

__all__ = ["LevelArena", "current_arena", "scratch", "use_arena"]

_TLS = threading.local()


class LevelArena:
    """Keyed pool of grow-only numpy scratch buffers."""

    __slots__ = ("_bufs", "allocs", "reuses", "bytes_allocated")

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}
        self.allocs = 0
        self.reuses = 0
        self.bytes_allocated = 0

    def take(self, key: str, n: int, dtype=np.int64, zero: bool = False):
        """A length-*n* view of the buffer for *key* (uninitialized unless
        ``zero``).  Grows geometrically on miss so a V-cycle's shrinking
        levels settle on one allocation per key."""
        dt = np.dtype(dtype)
        buf = self._bufs.get(key)
        if buf is None or buf.dtype != dt or len(buf) < n:
            cap = max(n, 16)
            if buf is not None and buf.dtype == dt:
                cap = max(cap, 2 * len(buf))
            buf = np.zeros(cap, dtype=dt) if zero else np.empty(cap, dtype=dt)
            self._bufs[key] = buf
            self.allocs += 1
            self.bytes_allocated += buf.nbytes
            return buf[:n]
        self.reuses += 1
        out = buf[:n]
        if zero:
            out[...] = 0
        return out

    def stats(self) -> dict:
        return {
            "allocs": self.allocs,
            "reuses": self.reuses,
            "bytes": self.bytes_allocated,
            "keys": len(self._bufs),
        }


def current_arena() -> LevelArena | None:
    """The arena active on this thread, or None."""
    return getattr(_TLS, "arena", None)


def scratch(key: str, n: int, dtype=np.int64, zero: bool = False):
    """Arena-backed allocation with a plain numpy fallback.

    The single allocation entry point for per-pass scratch: callers get a
    reused view when an arena is active and a fresh array otherwise, so
    every code path works identically with or without :func:`use_arena`.
    """
    arena = current_arena()
    if arena is None:
        return (
            np.zeros(n, dtype=dtype) if zero else np.empty(n, dtype=dtype)
        )
    return arena.take(key, n, dtype, zero)


@contextmanager
def use_arena(arena: LevelArena | None = None):
    """Activate a :class:`LevelArena` for this thread.

    Reentrant: nested activations (recursive bisection re-enters the
    partitioner) join the outer arena, and only the outermost exit flushes
    the telemetry counters.
    """
    prev = current_arena()
    if prev is not None and arena is None:
        yield prev
        return
    arena = arena if arena is not None else LevelArena()
    _TLS.arena = arena
    try:
        yield arena
    finally:
        _TLS.arena = prev
        rec = get_recorder()
        if rec.enabled:
            rec.add("arena.allocs", arena.allocs)
            rec.add("arena.reuses", arena.reuses)
            rec.add("arena.bytes", arena.bytes_allocated)
