"""Kernel tiers of the refinement/matching hot path.

The FM inner loop and the HCM/HCC matching loop exist in up to three
implementations — *tiers* — selected through the ``kernel`` axis of
:class:`~repro.partitioner.config.ExecutionPolicy`:

``python``
    The pure-Python reference (:class:`~repro.partitioner.gainbucket.GainBucket`
    + the per-pin loops in :mod:`~repro.partitioner.refine`).  Always
    available; the differential-replay baseline every other tier is
    measured against.
``flat``
    Flat numpy array buckets with lazy deletion and per-net vectorized
    gain updates (:mod:`~repro.partitioner.fm_flat`).  Always available
    (numpy is a hard dependency); the big win on instances with large
    nets, where the python tier's per-pin loops dominate.
``jit``
    The flat-array move loop compiled with numba
    (:mod:`~repro.partitioner.fm_jit`).  Available only when numba is
    importable; ``import repro`` never requires it.

Every tier produces bit-identical partitions — the replay matrix in
:mod:`repro.verify.replay` asserts it across the kernel universe — so
the kernel is pure execution policy and never participates in
:func:`repro.fingerprint`.

A requested tier that is unavailable degrades gracefully along
``jit -> flat -> python`` (:func:`resolve_kernel`); ``"auto"`` asks for
the best available tier.  :func:`kernel_info` (exported as
``repro.kernels()``) reports each tier's availability and, when a tier
is unavailable, why.
"""

from __future__ import annotations

from repro.partitioner.config import KERNELS

__all__ = [
    "KERNELS",
    "PHASES",
    "RACE_MIN_EVENTS",
    "kernel_available",
    "kernel_info",
    "phase_kernels",
    "race_pick",
    "resolve_kernel",
]

#: a race probe must log at least this many move events before its
#: per-event rate counts as evidence; tiny converged passes stay probes
RACE_MIN_EVENTS = 32


def race_pick(race: dict[str, list[float]]) -> str:
    """Pick the tier for one raced kernel invocation on a level.

    Some flat-vs-python regimes no static size gate can separate: a
    level's *criticality structure* (how much per-pin mass-update work
    each move triggers) decides the winner, and that is only observable
    by running.  Because every tier is bit-identical per invocation, a
    caller can simply time one invocation of each on the level and keep
    the winner.  *race* accumulates ``[seconds, events]`` per tier —
    callers cache it on the level hypergraph (``h._view``), so
    multi-starts and V-cycles revisiting the level inherit the verdict
    instead of re-probing.  Unprobed tiers run first (flat before
    python); after both have evidence the lower seconds-per-event rate
    wins.
    """
    if race["flat"][1] == 0:
        return "flat"
    if race["python"][1] == 0:
        return "python"
    rf = race["flat"][0] / race["flat"][1]
    rp = race["python"][0] / race["python"][1]
    return "flat" if rf <= rp else "python"

#: V-cycle phases with tiered implementations (see the phase modules:
#: refine/fm_flat/fm_jit, coarsen, initial, kway)
PHASES = ("fm", "matching", "coarse_build", "initial", "kway")

#: phases with a numba implementation; the rest run their flat tier when
#: ``jit`` is requested
_JIT_PHASES = frozenset({"fm", "matching"})

# probe results, cached process-wide: tier -> (available, reason)
_PROBES: dict[str, tuple[bool, str | None]] = {}


def _probe(tier: str) -> tuple[bool, str | None]:
    if tier == "python":
        return True, None
    if tier == "flat":
        return True, None
    if tier == "jit":
        try:
            from repro.partitioner import fm_jit
        except Exception as exc:  # pragma: no cover - import-time failure
            return False, f"jit tier failed to import: {exc!r}"
        if fm_jit.NUMBA_AVAILABLE:
            return True, None
        return False, f"numba is not installed ({fm_jit.NUMBA_ERROR})"
    return False, f"unknown kernel tier {tier!r}"


def kernel_available(tier: str) -> bool:
    """Whether one kernel tier can run in this process."""
    if tier not in _PROBES:
        _PROBES[tier] = _probe(tier)
    return _PROBES[tier][0]


def kernel_info() -> dict:
    """Availability report for every kernel tier (``repro.kernels()``).

    Returns a dict with one entry per tier in fallback order::

        {"jit":    {"available": False, "reason": "numba is not installed ..."},
         "flat":   {"available": True,  "reason": None},
         "python": {"available": True,  "reason": None}}

    plus ``"fallback_order"`` and ``"default"`` (the process-wide default
    tier after the environment/``ExecutionPolicy`` resolution).
    """
    from repro.partitioner.config import ExecutionPolicy

    tiers = {}
    for tier in KERNELS:
        avail = kernel_available(tier)
        tiers[tier] = {"available": avail, "reason": _PROBES[tier][1]}
    requested = ExecutionPolicy().kernel  # honors REPRO_KERNEL
    return {
        **tiers,
        "fallback_order": list(KERNELS),
        "default": resolve_kernel(requested),
        "phases": phase_kernels(requested),
    }


def phase_kernels(requested: str = "auto") -> dict:
    """The tier each V-cycle phase runs under a requested kernel.

    Phases without a numba implementation run their flat tier when
    ``jit`` resolves.  Flat phase kernels additionally size-gate
    individual calls (small inputs take the scalar loop because it
    measures faster — see docs/performance.md), so this reports tier
    *routing*, not a per-call trace.
    """
    d = resolve_kernel(requested)
    no_jit = "flat" if d == "jit" else d
    return {p: (d if p in _JIT_PHASES else no_jit) for p in PHASES}


def resolve_kernel(requested: str) -> str:
    """Map a requested tier to the tier that will actually run.

    ``"auto"`` picks the best available tier; an explicit tier that is
    unavailable falls back along ``jit -> flat -> python`` (counted as
    ``kernel.fallbacks`` telemetry so silent degradation is visible in
    traces).  The return value is always an available tier.
    """
    if requested == "auto":
        for tier in KERNELS:
            if kernel_available(tier):
                return tier
        return "python"  # unreachable: python always probes available
    if requested not in KERNELS:
        raise ValueError(
            f"unknown kernel {requested!r}; expected one of "
            f"{('auto',) + tuple(KERNELS)}"
        )
    if kernel_available(requested):
        return requested
    from repro.telemetry import get_recorder

    start = KERNELS.index(requested)
    for tier in KERNELS[start + 1:]:
        if kernel_available(tier):
            get_recorder().add("kernel.fallbacks", 1)
            return tier
    return "python"
