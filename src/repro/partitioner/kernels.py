"""Kernel tiers of the refinement/matching hot path.

The FM inner loop and the HCM/HCC matching loop exist in up to three
implementations — *tiers* — selected through the ``kernel`` axis of
:class:`~repro.partitioner.config.ExecutionPolicy`:

``python``
    The pure-Python reference (:class:`~repro.partitioner.gainbucket.GainBucket`
    + the per-pin loops in :mod:`~repro.partitioner.refine`).  Always
    available; the differential-replay baseline every other tier is
    measured against.
``flat``
    Flat numpy array buckets with lazy deletion and per-net vectorized
    gain updates (:mod:`~repro.partitioner.fm_flat`).  Always available
    (numpy is a hard dependency); the big win on instances with large
    nets, where the python tier's per-pin loops dominate.
``jit``
    The flat-array move loop compiled with numba
    (:mod:`~repro.partitioner.fm_jit`).  Available only when numba is
    importable; ``import repro`` never requires it.

Every tier produces bit-identical partitions — the replay matrix in
:mod:`repro.verify.replay` asserts it across the kernel universe — so
the kernel is pure execution policy and never participates in
:func:`repro.fingerprint`.

A requested tier that is unavailable degrades gracefully along
``jit -> flat -> python`` (:func:`resolve_kernel`); ``"auto"`` asks for
the best available tier.  :func:`kernel_info` (exported as
``repro.kernels()``) reports each tier's availability and, when a tier
is unavailable, why.
"""

from __future__ import annotations

from repro.partitioner.config import KERNELS

__all__ = ["KERNELS", "kernel_available", "kernel_info", "resolve_kernel"]

# probe results, cached process-wide: tier -> (available, reason)
_PROBES: dict[str, tuple[bool, str | None]] = {}


def _probe(tier: str) -> tuple[bool, str | None]:
    if tier == "python":
        return True, None
    if tier == "flat":
        return True, None
    if tier == "jit":
        try:
            from repro.partitioner import fm_jit
        except Exception as exc:  # pragma: no cover - import-time failure
            return False, f"jit tier failed to import: {exc!r}"
        if fm_jit.NUMBA_AVAILABLE:
            return True, None
        return False, f"numba is not installed ({fm_jit.NUMBA_ERROR})"
    return False, f"unknown kernel tier {tier!r}"


def kernel_available(tier: str) -> bool:
    """Whether one kernel tier can run in this process."""
    if tier not in _PROBES:
        _PROBES[tier] = _probe(tier)
    return _PROBES[tier][0]


def kernel_info() -> dict:
    """Availability report for every kernel tier (``repro.kernels()``).

    Returns a dict with one entry per tier in fallback order::

        {"jit":    {"available": False, "reason": "numba is not installed ..."},
         "flat":   {"available": True,  "reason": None},
         "python": {"available": True,  "reason": None}}

    plus ``"fallback_order"`` and ``"default"`` (the process-wide default
    tier after the environment/``ExecutionPolicy`` resolution).
    """
    from repro.partitioner.config import ExecutionPolicy

    tiers = {}
    for tier in KERNELS:
        avail = kernel_available(tier)
        tiers[tier] = {"available": avail, "reason": _PROBES[tier][1]}
    requested = ExecutionPolicy().kernel  # honors REPRO_KERNEL
    return {
        **tiers,
        "fallback_order": list(KERNELS),
        "default": resolve_kernel(requested),
    }


def resolve_kernel(requested: str) -> str:
    """Map a requested tier to the tier that will actually run.

    ``"auto"`` picks the best available tier; an explicit tier that is
    unavailable falls back along ``jit -> flat -> python`` (counted as
    ``kernel.fallbacks`` telemetry so silent degradation is visible in
    traces).  The return value is always an available tier.
    """
    if requested == "auto":
        for tier in KERNELS:
            if kernel_available(tier):
                return tier
        return "python"  # unreachable: python always probes available
    if requested not in KERNELS:
        raise ValueError(
            f"unknown kernel {requested!r}; expected one of "
            f"{('auto',) + tuple(KERNELS)}"
        )
    if kernel_available(requested):
        return requested
    from repro.telemetry import get_recorder

    start = KERNELS.index(requested)
    for tier in KERNELS[start + 1:]:
        if kernel_available(tier):
            get_recorder().add("kernel.fallbacks", 1)
            return tier
    return "python"
