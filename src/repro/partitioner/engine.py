"""Multi-start partitioning engine.

Runs ``n_starts`` independent seeded multilevel pipelines and keeps the
best partition by (balance excess, connectivity-1 cutsize, start index) —
the standard way real partitioners (PaToH's multiple-runs mode, Mondriaan,
KaHyPar) buy quality and, with parallel workers, wall-clock time.

Execution backends
------------------
``serial``
    The starts run one after another in-process.  Fully deterministic:
    the per-start seeds derive from the engine seed, every start runs,
    and the best is chosen by a total order.
``process``
    :class:`concurrent.futures.ProcessPoolExecutor` with ``n_workers``
    workers — the only backend that buys wall-clock time for this
    pure-Python workload (threads serialize on the GIL).  The hypergraph
    travels by zero-copy shared memory when ``cfg.shm_transport`` is on:
    the segment is created once, each worker attaches once (pool
    initializer), and tasks ship only integer seeds — no per-start pickle
    of the pin arrays.  The segment is guaranteed to be unlinked when the
    engine returns, raises, or falls back.  Falls back to pickle
    transport, then threads, then serial, if shared memory or process
    pools are unavailable (restricted environments, unpicklable
    platforms).
``thread``
    :class:`concurrent.futures.ThreadPoolExecutor`; useful as a fallback
    and for testing the concurrent plumbing without processes.
``auto``
    ``process`` when ``n_workers > 1`` and the machine has more than one
    CPU core, else ``serial``.

Determinism contract: with ``n_starts=1`` the engine is a pass-through to
:func:`repro.partitioner.partition_hypergraph` — bit-identical results.
For ``n_starts > 1`` the per-start seeds and the winner are deterministic
functions of the engine seed regardless of backend; ``early_stop_cut``
trades that determinism (the set of completed starts becomes timing-
dependent under parallel backends) for time.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass

import numpy as np

from repro._util import Timer, as_rng
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.driver import PartitionResult, partition_hypergraph
from repro.telemetry import get_recorder
from repro.verify.faults import trip as _fault_trip

__all__ = ["StartStat", "partition_multistart"]


@dataclass(frozen=True)
class StartStat:
    """Outcome of one engine start."""

    #: start index in [0, n_starts)
    start: int
    #: derived integer seed the start ran with; ``-1`` for start 0, which
    #: replays the engine seed's own RNG stream (see
    #: :func:`partition_multistart`)
    seed: int
    #: connectivity-minus-one cutsize the start achieved
    cutsize: int
    #: achieved imbalance ratio
    imbalance: float
    #: wall-clock seconds of the start
    runtime: float


def _run_start(
    h: Hypergraph, k: int, cfg: PartitionerConfig, seed: int
) -> PartitionResult:
    """Worker body: one single-start pipeline (top-level for pickling)."""
    _fault_trip("engine.start")
    return partition_hypergraph(h, k, cfg, seed)


#: worker-process global: the hypergraph attached from shared memory by
#: :func:`_attach_worker` (one attach per process, reused by every start
#: that lands on the worker)
_WORKER_HG: Hypergraph | None = None


def _attach_worker(meta: dict) -> None:
    """Process-pool initializer: map the shared hypergraph once."""
    global _WORKER_HG
    _WORKER_HG = Hypergraph.from_shm(meta)


def _run_start_shm(k: int, cfg: PartitionerConfig, seed: int) -> PartitionResult:
    """Worker body for shm transport: the task ships no hypergraph at all."""
    _fault_trip("engine.start")
    assert _WORKER_HG is not None, "worker initializer did not run"
    return partition_hypergraph(_WORKER_HG, k, cfg, seed)


def _resolve_backend(cfg: PartitionerConfig) -> str:
    if cfg.n_workers <= 1 or cfg.n_starts <= 1:
        return "serial"
    if cfg.start_backend != "auto":
        return cfg.start_backend
    return "process" if (os.cpu_count() or 1) > 1 else "serial"


def _tree_workers(cfg: PartitionerConfig, backend: str) -> int:
    """Worker-budget share each start may spend on subtree fan-out.

    One budget, ``cfg.n_workers`` slots: a serial-backend engine runs one
    start at a time, so the whole budget goes to the recursion tree; a
    parallel engine occupies ``min(n_workers, n_starts)`` slots with
    starts and divides the rest, so starts × subtrees never exceed
    ``n_workers`` concurrent workers.
    """
    if not cfg.tree_parallel:
        return 1
    if backend == "serial":
        return cfg.n_workers
    occupied = min(cfg.n_workers, cfg.n_starts)
    return max(1, cfg.n_workers // occupied)


def _hits_target(res: PartitionResult, cfg: PartitionerConfig) -> bool:
    return (
        cfg.early_stop_cut is not None
        and res.cutsize <= cfg.early_stop_cut
        and res.imbalance <= cfg.epsilon
    )


def partition_multistart(
    h: Hypergraph,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> PartitionResult:
    """Best-of-``config.n_starts`` partition of *h* into *k* parts.

    With the default ``n_starts=1`` this is exactly
    :func:`partition_hypergraph` (same RNG consumption, bit-identical
    partition).  For ``n_starts > 1``, start 0 replays the engine seed's
    own RNG stream — it reproduces the single-start run bit for bit, so
    the best-of-N result is **never worse** than the single-start result
    at the same seed — while the remaining starts run with integer seeds
    drawn from the engine RNG.  The starts run on the configured backend
    and the best result by (balance excess, cutsize, start index) is
    returned with ``start_stats`` describing every completed start.  The
    result's ``runtime`` is the engine's total wall-clock time; per-start
    times are in the stats.

    >>> from repro.hypergraph import hypergraph_from_netlists
    >>> h = hypergraph_from_netlists(4, [[0, 1], [2, 3], [1, 2]])
    >>> cfg = PartitionerConfig(n_starts=3)
    >>> res = partition_multistart(h, 2, cfg, seed=0)
    >>> res.cutsize, len(res.start_stats)
    (1, 3)
    """
    cfg = config or PartitionerConfig()
    if cfg.n_starts == 1:
        return partition_hypergraph(h, k, cfg, seed)

    rng = as_rng(seed)
    # start 0 replays the pristine engine RNG (the legacy single-start
    # stream); later starts get independent integer seeds drawn after the
    # copy, so no start's consumption perturbs another's
    seeds: list[int | np.random.Generator] = [copy.deepcopy(rng)]
    seeds += [int(s) for s in rng.integers(0, 2**31 - 1, size=cfg.n_starts - 1)]
    backend = _resolve_backend(cfg)
    single = cfg.with_(
        n_starts=1, n_workers=_tree_workers(cfg, backend), early_stop_cut=None
    )

    rec = get_recorder()
    with rec.span(
        "engine", n_starts=cfg.n_starts, backend=backend, k=k
    ) as esp, Timer() as timer:
        if backend == "serial":
            completed = _run_serial(h, k, single, seeds, cfg)
        else:
            completed = _run_parallel(h, k, single, seeds, cfg, backend)

        # deterministic winner: scan in start order, strict improvement only
        best_i, best_res = -1, None
        best_key: tuple[float, int] | None = None
        for i, res in sorted(completed.items()):
            key = (max(0.0, res.imbalance - cfg.epsilon), res.cutsize)
            if best_key is None or key < best_key:
                best_i, best_res, best_key = i, res, key
        assert best_res is not None

        stats = [
            StartStat(
                start=i,
                seed=seeds[i] if isinstance(seeds[i], int) else -1,
                cutsize=res.cutsize,
                imbalance=res.imbalance,
                runtime=res.runtime,
            )
            for i, res in sorted(completed.items())
        ]
        if rec.enabled:
            rec.add("engine.starts", len(completed))
            rec.add("engine.best_cut", best_res.cutsize)
            rec.add(
                "engine.cut_spread",
                max(s.cutsize for s in stats) - min(s.cutsize for s in stats),
            )
        esp.set(best_start=best_i, cutsize=best_res.cutsize)

    best_res.start_stats = stats
    best_res.runtime = timer.elapsed
    return best_res


def _run_serial(
    h: Hypergraph,
    k: int,
    single: PartitionerConfig,
    seeds: list[int],
    cfg: PartitionerConfig,
) -> dict[int, PartitionResult]:
    rec = get_recorder()
    completed: dict[int, PartitionResult] = {}
    for i, s in enumerate(seeds):
        with rec.span(
            "engine.start", start=i, seed=s if isinstance(s, int) else -1
        ) as sp:
            res = partition_hypergraph(h, k, single, s)
            sp.set(cutsize=res.cutsize)
        completed[i] = res
        if _hits_target(res, cfg):
            rec.add("engine.early_stops")
            break
    return completed


def _run_parallel(
    h: Hypergraph,
    k: int,
    single: PartitionerConfig,
    seeds: list[int],
    cfg: PartitionerConfig,
    backend: str,
) -> dict[int, PartitionResult]:
    """Fan the starts out over an executor; falls back serial on failure.

    The process backend ships the hypergraph once through shared memory
    (``cfg.shm_transport``); the ``finally`` unlinks the segment on every
    exit path — normal return, early stop, worker crash, backend fallback.
    Per-start telemetry spans are lost under the process backend (workers
    have their own recorders); the per-start runtimes survive in the
    returned results.
    """
    rec = get_recorder()
    shared = None
    if backend == "process" and cfg.shm_transport:
        try:
            shared = h.to_shm()
        except Exception:
            # no usable /dev/shm (or equivalent): pickle transport instead
            rec.add("engine.shm_fallbacks")
            shared = None
    try:
        pool_kwargs = {"max_workers": min(cfg.n_workers, len(seeds))}
        if shared is not None:
            pool_kwargs.update(
                initializer=_attach_worker, initargs=(shared.meta,)
            )
            rec.add("engine.shm_bytes", shared.nbytes)
        pool = ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
        try:
            with pool(**pool_kwargs) as ex:
                futures = {
                    (
                        ex.submit(_run_start_shm, k, single, s)
                        if shared is not None
                        else ex.submit(_run_start, h, k, single, s)
                    ): i
                    for i, s in enumerate(seeds)
                }
                completed: dict[int, PartitionResult] = {}
                pending = set(futures)
                stop = False
                while pending and not stop:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for f in done:
                        res = f.result()
                        completed[futures[f]] = res
                        if _hits_target(res, cfg):
                            stop = True
                    if stop:
                        for f in pending:
                            f.cancel()
                        rec.add("engine.early_stops")
                return completed
        except (OSError, RuntimeError, ImportError) as exc:
            # restricted environments can refuse process pools (no fork/sem);
            # degrade gracefully rather than fail the partitioning call
            rec.add("engine.backend_fallbacks")
            if backend == "process":
                try:
                    return _run_parallel(h, k, single, seeds, cfg, "thread")
                except (OSError, RuntimeError, ImportError):
                    pass
            del exc
            return _run_serial(h, k, single, seeds, cfg)
    finally:
        if shared is not None:
            shared.close()
