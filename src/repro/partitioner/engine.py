"""Multi-start partitioning engine.

Runs ``n_starts`` independent seeded multilevel pipelines and keeps the
best partition by (balance excess, connectivity-1 cutsize, start index) —
the standard way real partitioners (PaToH's multiple-runs mode, Mondriaan,
KaHyPar) buy quality and, with parallel workers, wall-clock time.

Execution backends
------------------
``serial``
    The starts run one after another in-process.  Fully deterministic:
    the per-start seeds derive from the engine seed, every start runs,
    and the best is chosen by a total order.
``process``
    :class:`concurrent.futures.ProcessPoolExecutor` with ``n_workers``
    workers — the only backend that buys wall-clock time for this
    pure-Python workload (threads serialize on the GIL).  The hypergraph
    travels by zero-copy shared memory when ``cfg.shm_transport`` is on:
    the segment is created once, each worker attaches once (pool
    initializer), and tasks ship only integer seeds — no per-start pickle
    of the pin arrays.  The segment is guaranteed to be unlinked when the
    engine returns, raises, or falls back.  Falls back to pickle
    transport, then threads, then serial, if shared memory or process
    pools are unavailable (restricted environments, unpicklable
    platforms).
``thread``
    :class:`concurrent.futures.ThreadPoolExecutor`; useful as a fallback
    and for testing the concurrent plumbing without processes.
``auto``
    ``process`` when ``n_workers > 1`` and the machine has more than one
    CPU core, else ``serial``.

Determinism contract: with ``n_starts=1`` the engine is a pass-through to
:func:`repro.partitioner.partition_hypergraph` — bit-identical results.
For ``n_starts > 1`` the per-start seeds and the winner are deterministic
functions of the engine seed regardless of backend; ``early_stop_cut``
trades that determinism (the set of completed starts becomes timing-
dependent under parallel backends) for time.

Resilience: execution is delegated to
:mod:`repro.partitioner.resilience` — retry with backoff for failed
starts, worker supervision (heartbeats, kill/respawn/re-queue) for the
process backend, a graceful ``cfg.deadline`` budget, and crash-resumable
sweeps via ``cfg.checkpoint_path``.  None of it moves the bits: retried
and resumed starts re-derive their original seeds.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass

import numpy as np

from repro._util import Timer, as_rng
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner import resilience
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.driver import PartitionResult, partition_hypergraph
from repro.partitioner.kernels import resolve_kernel
from repro.telemetry import get_recorder
from repro.verify.faults import trip as _fault_trip

__all__ = ["StartStat", "partition_multistart"]


@dataclass(frozen=True)
class StartStat:
    """Outcome of one engine start."""

    #: start index in [0, n_starts)
    start: int
    #: derived integer seed the start ran with; ``-1`` for start 0, which
    #: replays the engine seed's own RNG stream (see
    #: :func:`partition_multistart`)
    seed: int
    #: connectivity-minus-one cutsize the start achieved
    cutsize: int
    #: achieved imbalance ratio
    imbalance: float
    #: wall-clock seconds of the start
    runtime: float
    #: retries the start needed before completing (0 for a clean start;
    #: resumed starts report the count recorded in the checkpoint)
    retries: int = 0


def _run_start(
    h: Hypergraph, k: int, cfg: PartitionerConfig, seed: int
) -> PartitionResult:
    """Worker body: one single-start pipeline (top-level for pickling)."""
    _fault_trip("engine.start")
    return partition_hypergraph(h, k, cfg, seed)


#: worker-process global: the hypergraph attached from shared memory by
#: :func:`_attach_worker` (one attach per process, reused by every start
#: that lands on the worker)
_WORKER_HG: Hypergraph | None = None


def _attach_worker(meta: dict) -> None:
    """Process-pool initializer: map the shared hypergraph once."""
    global _WORKER_HG
    _WORKER_HG = Hypergraph.from_shm(meta)


def _run_start_shm(k: int, cfg: PartitionerConfig, seed: int) -> PartitionResult:
    """Worker body for shm transport: the task ships no hypergraph at all."""
    _fault_trip("engine.start")
    assert _WORKER_HG is not None, "worker initializer did not run"
    return partition_hypergraph(_WORKER_HG, k, cfg, seed)


def _resolve_backend(cfg: PartitionerConfig) -> str:
    if cfg.n_workers <= 1 or cfg.n_starts <= 1:
        return "serial"
    if cfg.start_backend != "auto":
        return cfg.start_backend
    return "process" if (os.cpu_count() or 1) > 1 else "serial"


def _tree_workers(cfg: PartitionerConfig, backend: str) -> int:
    """Worker-budget share each start may spend on subtree fan-out.

    One budget, ``cfg.n_workers`` slots: a serial-backend engine runs one
    start at a time, so the whole budget goes to the recursion tree; a
    parallel engine occupies ``min(n_workers, n_starts)`` slots with
    starts and divides the rest, so starts × subtrees never exceed
    ``n_workers`` concurrent workers.
    """
    if not cfg.tree_parallel:
        return 1
    if backend == "serial":
        return cfg.n_workers
    occupied = min(cfg.n_workers, cfg.n_starts)
    return max(1, cfg.n_workers // occupied)


def partition_multistart(
    h: Hypergraph,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> PartitionResult:
    """Best-of-``config.n_starts`` partition of *h* into *k* parts.

    With the default ``n_starts=1`` this is exactly
    :func:`partition_hypergraph` (same RNG consumption, bit-identical
    partition).  For ``n_starts > 1``, start 0 replays the engine seed's
    own RNG stream — it reproduces the single-start run bit for bit, so
    the best-of-N result is **never worse** than the single-start result
    at the same seed — while the remaining starts run with integer seeds
    drawn from the engine RNG.  The starts run on the configured backend
    and the best result by (balance excess, cutsize, start index) is
    returned with ``start_stats`` describing every completed start.  The
    result's ``runtime`` is the engine's total wall-clock time; per-start
    times are in the stats.

    >>> from repro.hypergraph import hypergraph_from_netlists
    >>> h = hypergraph_from_netlists(4, [[0, 1], [2, 3], [1, 2]])
    >>> cfg = PartitionerConfig(n_starts=3)
    >>> res = partition_multistart(h, 2, cfg, seed=0)
    >>> res.cutsize, len(res.start_stats)
    (1, 3)
    """
    cfg = config or PartitionerConfig()
    # the single-start shortcut must not skip the checkpoint layer: a
    # checkpointed n_starts=1 sweep still goes through the engine (start 0
    # replays the single-start stream, so the bits are identical)
    if cfg.n_starts == 1 and not cfg.checkpoint_path:
        return partition_hypergraph(h, k, cfg, seed)

    rng = as_rng(seed)
    # the fingerprint hashes the RNG state *before* any draws so a rerun
    # with the same explicit seed identifies the same sweep
    fingerprint = None
    if cfg.checkpoint_path:
        fingerprint = resilience.sweep_fingerprint(h, k, cfg, rng)
    # start 0 replays the pristine engine RNG (the legacy single-start
    # stream); later starts get independent integer seeds drawn after the
    # copy, so no start's consumption perturbs another's
    seeds: list[int | np.random.Generator] = [copy.deepcopy(rng)]
    seeds += [int(s) for s in rng.integers(0, 2**31 - 1, size=cfg.n_starts - 1)]
    backend = _resolve_backend(cfg)
    # a start never inherits the sweep-level resilience knobs: the engine
    # owns the deadline and the checkpoint, not the inner pipelines
    single = cfg.with_(
        n_starts=1,
        n_workers=_tree_workers(cfg, backend),
        early_stop_cut=None,
        deadline=None,
        checkpoint_path=None,
    )

    rec = get_recorder()
    with rec.span(
        "engine",
        n_starts=cfg.n_starts,
        backend=backend,
        k=k,
        kernel=resolve_kernel(getattr(cfg, "kernel", "python")),
    ) as esp, Timer() as timer:
        outcome = resilience.run_starts(
            h, k, single, seeds, cfg, backend, fingerprint=fingerprint
        )

        # deterministic winner over fresh + checkpoint-resumed starts:
        # scan in start order, strict improvement only
        candidates = list(outcome.completed.items())
        if outcome.resumed_best is not None:
            candidates.append(outcome.resumed_best)
        best_i, best_res = -1, None
        best_key: tuple[float, int] | None = None
        for i, res in sorted(candidates, key=lambda item: item[0]):
            key = (max(0.0, res.imbalance - cfg.epsilon), res.cutsize)
            if best_key is None or key < best_key:
                best_i, best_res, best_key = i, res, key
        assert best_res is not None

        stats = []
        for i in sorted(set(outcome.completed) | set(outcome.resumed)):
            if i in outcome.completed:
                res = outcome.completed[i]
                stats.append(
                    StartStat(
                        start=i,
                        seed=seeds[i] if isinstance(seeds[i], int) else -1,
                        cutsize=res.cutsize,
                        imbalance=res.imbalance,
                        runtime=res.runtime,
                        retries=outcome.retries.get(i, 0),
                    )
                )
            else:
                r = outcome.resumed[i]
                stats.append(
                    StartStat(
                        start=r.start,
                        seed=r.seed,
                        cutsize=r.cutsize,
                        imbalance=r.imbalance,
                        runtime=r.runtime,
                        retries=r.retries,
                    )
                )
        if rec.enabled:
            rec.add("engine.starts", len(stats))
            rec.add("engine.best_cut", best_res.cutsize)
            rec.add(
                "engine.cut_spread",
                max(s.cutsize for s in stats) - min(s.cutsize for s in stats),
            )
        esp.set(best_start=best_i, cutsize=best_res.cutsize)
        if outcome.degraded_reason is not None:
            best_res.degraded = True
            best_res.degraded_reason = (
                f"{outcome.degraded_reason}: starts {outcome.skipped} "
                "never ran"
            )
            rec.add("engine.degraded_runs")
            esp.set(degraded=outcome.degraded_reason)

    best_res.start_stats = stats
    best_res.runtime = timer.elapsed
    return best_res
