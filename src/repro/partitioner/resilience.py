"""Resilient execution runtime for the multi-start engine.

The paper's evaluation is a long fan-out campaign — 14 matrices x three K
values x three models, each best-of-N — exactly the shape of run where one
hung worker or OOM-killed process used to throw away hours of work.  This
module is the recovery layer the fault-injection suite (PR 4) exists to
exercise:

retry with backoff
    A failed or crashed start is retried up to ``cfg.max_retries`` times
    with exponential backoff and deterministic jitter
    (:func:`backoff_delay`).  A retried start re-derives its original
    seed, so retries are invisible in the output — the partition stays
    bit-identical to a failure-free run.
worker supervision
    The process backend runs under a supervisor (not a bare
    ``ProcessPoolExecutor``): each worker stamps a heartbeat slot in a
    small shared-memory segment (:class:`~repro.hypergraph.shm.HeartbeatBoard`)
    from a background thread; the parent detects dead or hung workers,
    kills and respawns them, and re-queues their in-flight seeds
    (``engine.worker_restarts`` telemetry).  A bounded restart budget
    keeps a deterministic crash from looping forever — when it runs out
    the pool declares itself broken and the engine's backend fallback
    chain takes over.
deadline budget
    ``cfg.deadline`` (or ``decompose(deadline=...)`` /
    ``REPRO_DEADLINE``) caps the engine call's wall clock *gracefully*:
    past the deadline no new starts launch, in-flight starts finish, and
    the best completed start is returned with
    ``PartitionResult.degraded`` set — never an exception once at least
    one start has finished, and at least one start always runs.
checkpoint / resume
    ``cfg.checkpoint_path`` makes the sweep crash-resumable: after every
    completed start the :class:`CheckpointStore` atomically rewrites
    (tmp + ``os.replace``) an NDJSON record of the per-start statistics
    plus the best partition vector so far.  A rerun with the same
    hypergraph, config and seed skips the recorded starts
    (``engine.starts_resumed``) and completes exactly the remainder.  A
    fingerprint mismatch (different config/seed/instance) is refused
    with a warning rather than silently mixing sweeps.

Every failure path here is driven deterministically by the
``engine.start``, ``worker.heartbeat`` and ``checkpoint.write`` fault
sites of :mod:`repro.verify.faults`, and the bit-identity promises are
asserted by ``tests/test_resilience.py`` against the failure-free golden
partitions.
"""

from __future__ import annotations

import base64
import copy
import json
import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
import warnings
import zlib
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.shm import HeartbeatBoard
from repro.partitioner.config import PartitionerConfig
from repro.telemetry import get_recorder
from repro.verify.faults import trip as _fault_trip

__all__ = [
    "backoff_delay",
    "Deadline",
    "ResumedStart",
    "CheckpointStore",
    "StartsOutcome",
    "WorkerPoolBroken",
    "sweep_fingerprint",
    "run_starts",
]

#: pids of the most recently spawned supervised workers (test hook: lets
#: the kill-a-worker-mid-start suite SIGKILL a live worker without
#: reaching into the pool internals)
_LAST_WORKER_PIDS: list[int] = []


class WorkerPoolBroken(RuntimeError):
    """The supervised pool exhausted its restart budget (a RuntimeError on
    purpose: the engine's backend fallback chain catches it)."""


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
def backoff_delay(cfg: PartitionerConfig, attempt: int, salt=0) -> float:
    """Delay in seconds before retry number ``attempt`` (0-based).

    Exponential growth ``backoff_base * 2**attempt`` capped at
    ``backoff_cap``, scaled by a jitter factor in [0.5, 1.0] derived from
    ``(salt, attempt)`` with CRC32 — deterministic (repeated runs sleep
    identically; the partitioning RNG is never consumed) yet spread out,
    so a crashed fan-out does not thunder back in lockstep.
    """
    if cfg.backoff_base <= 0:
        return 0.0
    raw = min(cfg.backoff_cap, cfg.backoff_base * (2.0 ** attempt))
    u = zlib.crc32(f"{salt}:{attempt}".encode()) / 0xFFFFFFFF
    return raw * (0.5 + 0.5 * u)


# ----------------------------------------------------------------------
# deadline budget
# ----------------------------------------------------------------------
class Deadline:
    """Monotonic wall-clock budget for one engine call."""

    def __init__(self, budget: float) -> None:
        self.budget = float(budget)
        self._t0 = time.monotonic()

    @classmethod
    def from_config(cls, cfg: PartitionerConfig) -> "Deadline | None":
        return cls(cfg.deadline) if cfg.deadline is not None else None

    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    def expired(self) -> bool:
        return self.elapsed() >= self.budget


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResumedStart:
    """Per-start statistics recovered from a checkpoint file."""

    start: int
    seed: int
    cutsize: int
    imbalance: float
    runtime: float
    retries: int = 0


def sweep_fingerprint(
    h: Hypergraph, k: int, cfg: PartitionerConfig, rng: np.random.Generator
) -> str:
    """Identity of a multi-start sweep: instance + bit-shaping config + seed.

    A thin wrapper over the library-wide :func:`repro.fingerprint`
    helper (content-addressed: the hypergraph's pin/weight/cost arrays
    participate, not just its dimensions — the same key derivation the
    serving cache and clients use).  Computed from the engine RNG state
    *before* any draws, so the same explicit seed always fingerprints
    identically; a ``seed=None`` run gets a fresh fingerprint every time
    and therefore never resumes.
    """
    from repro.fingerprint import fingerprint

    return fingerprint(h, cfg, rng, k=int(k))


def _start_key(imbalance: float, cutsize: int, start: int, epsilon: float):
    """The engine's winner total order: (balance excess, cut, start index)."""
    return (max(0.0, imbalance - epsilon), int(cutsize), int(start))


class CheckpointStore:
    """Atomic NDJSON record of a sweep's completed starts.

    File format (one JSON object per line)::

        {"kind": "header", "version": 1, "fingerprint": ..., "n_starts": N, "k": K}
        {"kind": "start", "start": 0, "seed": -1, "cutsize": ..., "imbalance": ...,
         "runtime": ..., "retries": 0}
        {"kind": "best", "start": 2, "cutsize": ..., "cutsize_cutnet": ...,
         "imbalance": ..., "runtime": ..., "part_b64": "...", "dtype": "int64"}

    Every :meth:`record` rewrites the whole file to a sibling ``.tmp``
    and ``os.replace``\\ s it into place, so the file on disk is always a
    complete, parseable snapshot — a kill at any instant loses at most
    the start that was in flight.  A write failure (injectable at the
    ``checkpoint.write`` fault site) must never fail the partitioning run
    that produced the result: it is absorbed and counted as
    ``checkpoint.write_errors``.
    """

    VERSION = 1

    def __init__(self, path: str, fingerprint: str, epsilon: float,
                 n_starts: int, k: int) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.epsilon = epsilon
        self.n_starts = n_starts
        self.k = k
        #: start index -> ResumedStart for every recorded completion
        self.completed: dict[int, ResumedStart] = {}
        self._best_record: dict | None = None

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, fingerprint: str, epsilon: float,
             n_starts: int, k: int) -> "CheckpointStore":
        """Load *path* if it records the same sweep, else start fresh.

        Also sweeps any stale ``<path>.tmp`` left behind by a process that
        died between the tmp-write and the atomic ``os.replace`` — the
        real checkpoint (if any) is intact in that case, and the orphan
        would otherwise accumulate forever (counted as
        ``checkpoint.tmp_swept``).
        """
        cls.sweep_stale_tmp(path)
        store = cls(path, fingerprint, epsilon, n_starts, k)
        if os.path.exists(path):
            store._load()
        return store

    @staticmethod
    def sweep_stale_tmp(path: str) -> bool:
        """Remove an orphaned ``<path>.tmp``; True when one was removed."""
        tmp = path + ".tmp"
        try:
            os.remove(tmp)
        except OSError:
            return False
        get_recorder().add("checkpoint.tmp_swept")
        return True

    def _load(self) -> None:
        try:
            with open(self.path) as f:
                lines = [json.loads(s) for s in f if s.strip()]
        except (OSError, ValueError):
            warnings.warn(
                f"checkpoint {self.path!r} is unreadable; starting fresh",
                stacklevel=3,
            )
            get_recorder().add("engine.checkpoint_mismatches")
            return
        if not lines or lines[0].get("kind") != "header":
            warnings.warn(
                f"checkpoint {self.path!r} has no header; starting fresh",
                stacklevel=3,
            )
            get_recorder().add("engine.checkpoint_mismatches")
            return
        header = lines[0]
        if header.get("fingerprint") != self.fingerprint:
            warnings.warn(
                f"checkpoint {self.path!r} records a different sweep "
                "(config, seed or instance changed); starting fresh",
                stacklevel=3,
            )
            get_recorder().add("engine.checkpoint_mismatches")
            return
        for rec in lines[1:]:
            if rec.get("kind") == "start":
                self.completed[int(rec["start"])] = ResumedStart(
                    start=int(rec["start"]),
                    seed=int(rec["seed"]),
                    cutsize=int(rec["cutsize"]),
                    imbalance=float(rec["imbalance"]),
                    runtime=float(rec["runtime"]),
                    retries=int(rec.get("retries", 0)),
                )
            elif rec.get("kind") == "best":
                self._best_record = rec

    # ------------------------------------------------------------------
    def best_result(self):
        """``(start_index, PartitionResult)`` recovered from the record,
        or ``None`` when the checkpoint holds no completed start yet."""
        from repro.partitioner.driver import PartitionResult

        rec = self._best_record
        if rec is None:
            return None
        raw = base64.b64decode(rec["part_b64"])
        part = np.frombuffer(raw, dtype=np.dtype(rec["dtype"])).copy()
        return int(rec["start"]), PartitionResult(
            part=part,
            k=self.k,
            cutsize=int(rec["cutsize"]),
            cutsize_cutnet=int(rec.get("cutsize_cutnet", 0)),
            imbalance=float(rec["imbalance"]),
            runtime=float(rec["runtime"]),
            bisection_cuts=[],
        )

    def record(self, start: int, seed: int, res, retries: int = 0) -> None:
        """Register one completed start and persist the new snapshot."""
        self.completed[start] = ResumedStart(
            start=start,
            seed=seed,
            cutsize=int(res.cutsize),
            imbalance=float(res.imbalance),
            runtime=float(res.runtime),
            retries=int(retries),
        )
        key = _start_key(res.imbalance, res.cutsize, start, self.epsilon)
        if self._best_record is None or key < _start_key(
            self._best_record["imbalance"],
            self._best_record["cutsize"],
            self._best_record["start"],
            self.epsilon,
        ):
            part = np.ascontiguousarray(res.part, dtype=np.int64)
            self._best_record = {
                "kind": "best",
                "start": int(start),
                "cutsize": int(res.cutsize),
                "cutsize_cutnet": int(getattr(res, "cutsize_cutnet", 0)),
                "imbalance": float(res.imbalance),
                "runtime": float(res.runtime),
                "part_b64": base64.b64encode(part.tobytes()).decode("ascii"),
                "dtype": "int64",
            }
        self.write()

    def write(self) -> None:
        """Atomically rewrite the snapshot; failures are absorbed."""
        rec = get_recorder()
        lines = [
            {
                "kind": "header",
                "version": self.VERSION,
                "fingerprint": self.fingerprint,
                "n_starts": self.n_starts,
                "k": self.k,
            }
        ]
        lines += [
            {"kind": "start", "start": s.start, "seed": s.seed,
             "cutsize": s.cutsize, "imbalance": s.imbalance,
             "runtime": s.runtime, "retries": s.retries}
            for s in sorted(self.completed.values(), key=lambda x: x.start)
        ]
        if self._best_record is not None:
            lines.append(self._best_record)
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "w") as f:
                for obj in lines:
                    f.write(json.dumps(obj) + "\n")
            _fault_trip("checkpoint.write")
            os.replace(tmp, self.path)
            rec.add("engine.checkpoint_writes")
        except (OSError, RuntimeError):
            # a full disk (or an injected fault) costs resumability of the
            # newest start, never the run itself
            rec.add("checkpoint.write_errors")
            try:
                os.remove(tmp)
            except OSError:
                pass


# ----------------------------------------------------------------------
# outcome of one execution attempt
# ----------------------------------------------------------------------
@dataclass
class StartsOutcome:
    """Everything the engine needs from the start-execution layer."""

    #: freshly computed results by start index
    completed: dict = field(default_factory=dict)
    #: retry count by start index (fresh starts that needed retries only)
    retries: dict = field(default_factory=dict)
    #: statistics of starts skipped because a checkpoint already had them
    resumed: dict = field(default_factory=dict)
    #: ``(start_index, PartitionResult)`` best among the resumed starts
    resumed_best: tuple | None = None
    #: why the run is degraded (``"deadline"``), or None for a clean run
    degraded_reason: str | None = None
    #: start indices that never ran (deadline hit)
    skipped: list = field(default_factory=list)

    def reset_fresh(self) -> None:
        """Drop the fresh-execution state before a backend fallback rerun
        (resumed state survives — it came from the checkpoint)."""
        self.completed.clear()
        self.retries.clear()
        self.skipped = []
        self.degraded_reason = None


def _hits_target(res, cfg: PartitionerConfig) -> bool:
    return (
        cfg.early_stop_cut is not None
        and res.cutsize <= cfg.early_stop_cut
        and res.imbalance <= cfg.epsilon
    )


def _fresh_seed(seeds: list, i: int):
    """The seed start *i* runs with — always re-derived from the pristine
    entry, so a retry replays the exact stream of the first attempt."""
    s = seeds[i]
    return copy.deepcopy(s) if isinstance(s, np.random.Generator) else s


def _complete(outcome: StartsOutcome, store: CheckpointStore | None,
              i: int, seeds: list, res, cfg: PartitionerConfig) -> None:
    outcome.completed[i] = res
    if store is not None:
        seed_i = seeds[i] if isinstance(seeds[i], int) else -1
        store.record(i, seed_i, res, retries=outcome.retries.get(i, 0))


# ----------------------------------------------------------------------
# serial backend
# ----------------------------------------------------------------------
def _serial_starts(h, k, single, seeds, todo, cfg, outcome, store, deadline,
                   trip: bool) -> None:
    """Run *todo* starts in-process.

    ``trip=True`` routes each start through the ``engine.start`` fault
    site with the retry policy; ``trip=False`` is the legacy last-resort
    fallback body (no site, no retry) used when every parallel backend
    has already failed — it must not re-fire the very faults it is
    recovering from.
    """
    rec = get_recorder()
    from repro.partitioner import engine as _engine
    from repro.partitioner.driver import partition_hypergraph

    for pos, i in enumerate(todo):
        if (
            deadline is not None
            and deadline.expired()
            and (outcome.completed or outcome.resumed)
        ):
            outcome.skipped = list(todo[pos:])
            outcome.degraded_reason = "deadline"
            rec.add("engine.deadline_hits")
            break
        seed_label = seeds[i] if isinstance(seeds[i], int) else -1
        with rec.span("engine.start", start=i, seed=seed_label) as sp:
            attempt = 0
            while True:
                s = _fresh_seed(seeds, i)
                try:
                    if trip:
                        res = _engine._run_start(h, k, single, s)
                    else:
                        res = partition_hypergraph(h, k, single, s)
                    break
                except Exception:
                    if attempt >= cfg.max_retries:
                        raise
                    rec.add("engine.start_retries")
                    outcome.retries[i] = attempt + 1
                    time.sleep(backoff_delay(cfg, attempt, salt=i))
                    attempt += 1
            sp.set(cutsize=res.cutsize)
        _complete(outcome, store, i, seeds, res, cfg)
        if _hits_target(res, cfg):
            rec.add("engine.early_stops")
            break


# ----------------------------------------------------------------------
# executor backends (thread; process without supervision)
# ----------------------------------------------------------------------
def _executor_starts(h, k, single, seeds, todo, cfg, outcome, store, deadline,
                     backend: str) -> None:
    """Fan *todo* out over a ``concurrent.futures`` executor.

    The process flavour ships the hypergraph once through shared memory
    (``cfg.shm_transport``); the ``finally`` unlinks the segment on every
    exit path.  Dispatch is incremental (at most ``n_workers`` futures in
    flight) so the deadline can stop launching starts and a failed start
    can be resubmitted with its original seed after backoff.  Per-start
    telemetry spans are lost under the process flavour (workers have
    their own recorders); the per-start runtimes survive in the results.
    """
    rec = get_recorder()
    from repro.partitioner import engine as _engine

    shared = None
    if backend == "process" and cfg.shm_transport:
        try:
            shared = h.to_shm()
        except Exception:
            # no usable /dev/shm (or equivalent): pickle transport instead
            rec.add("engine.shm_fallbacks")
            shared = None
    try:
        max_workers = min(cfg.n_workers, len(todo))
        pool_kwargs = {"max_workers": max_workers}
        if shared is not None:
            pool_kwargs.update(
                initializer=_engine._attach_worker, initargs=(shared.meta,)
            )
            rec.add("engine.shm_bytes", shared.nbytes)
        pool_cls = ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor

        def submit(ex, i):
            s = _fresh_seed(seeds, i)
            if shared is not None:
                return ex.submit(_engine._run_start_shm, k, single, s)
            return ex.submit(_engine._run_start, h, k, single, s)

        with pool_cls(**pool_kwargs) as ex:
            pending = deque((i, 0) for i in todo)
            futures: dict = {}
            stop = False
            while (pending or futures) and not stop:
                while pending and len(futures) < max_workers:
                    if (
                        deadline is not None
                        and deadline.expired()
                        and (outcome.completed or outcome.resumed or futures)
                    ):
                        break
                    i, attempt = pending.popleft()
                    futures[submit(ex, i)] = (i, attempt)
                if not futures:
                    break
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for f in done:
                    i, attempt = futures.pop(f)
                    try:
                        res = f.result()
                    except Exception:
                        if attempt >= cfg.max_retries:
                            raise
                        rec.add("engine.start_retries")
                        outcome.retries[i] = attempt + 1
                        time.sleep(backoff_delay(cfg, attempt, salt=i))
                        futures[submit(ex, i)] = (i, attempt + 1)
                        continue
                    _complete(outcome, store, i, seeds, res, cfg)
                    if _hits_target(res, cfg):
                        stop = True
                if stop:
                    for f in futures:
                        f.cancel()
                    rec.add("engine.early_stops")
            if pending:
                outcome.skipped = sorted(i for i, _ in pending)
                outcome.degraded_reason = "deadline"
                rec.add("engine.deadline_hits")
    finally:
        if shared is not None:
            shared.close()


# ----------------------------------------------------------------------
# supervised process backend
# ----------------------------------------------------------------------
def _beat_loop(board: HeartbeatBoard, rank: int, interval: float,
               stop: threading.Event) -> None:
    """Worker-side heartbeat writer (daemon thread)."""
    while True:
        try:
            _fault_trip("worker.heartbeat")
            board.beat(rank)
        except Exception:
            # a dead heartbeat is the *signal*, not an error: the
            # supervisor will presume the worker hung and recycle it
            return
        if stop.wait(interval):
            return


def _supervised_worker(rank, task_q, result_q, hb_name, n_slots, hb_interval,
                       payload, k, single) -> None:
    """One supervised engine worker (child-process main).

    Pulls ``(start_index, seed)`` tasks from its private queue, runs the
    single-start pipeline and posts ``(rank, start, ok, result_or_exc)``.
    A background thread stamps the heartbeat slot; the worker body calls
    the same ``engine._run_start*`` functions the executor backends use,
    so fault injection and monkeypatching reach it identically.
    """
    from repro.partitioner import engine as _engine

    stop = threading.Event()
    board = None
    try:
        if payload.get("shm_meta") is not None:
            h = Hypergraph.from_shm(payload["shm_meta"])
            _engine._WORKER_HG = h
        else:
            h = payload["hypergraph"]
        if hb_name is not None:
            try:
                board = HeartbeatBoard.attach(hb_name, n_slots)
                threading.Thread(
                    target=_beat_loop,
                    args=(board, rank, hb_interval, stop),
                    daemon=True,
                ).start()
            except Exception:
                board = None
        while True:
            item = task_q.get()
            if item is None:
                return
            i, seed = item
            try:
                if payload.get("shm_meta") is not None:
                    res = _engine._run_start_shm(k, single, seed)
                else:
                    res = _engine._run_start(h, k, single, seed)
            except Exception as exc:
                try:
                    result_q.put((rank, i, False, exc))
                except Exception:  # unpicklable exception: ship a summary
                    result_q.put(
                        (rank, i, False,
                         RuntimeError(f"{type(exc).__name__}: {exc}"))
                    )
            else:
                result_q.put((rank, i, True, res))
    finally:
        stop.set()


class _Slot:
    """Supervisor-side state of one worker rank."""

    __slots__ = ("rank", "proc", "queue", "task", "dispatched_at")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.proc = None
        self.queue = None
        self.task = None  # (start_index, attempt) while one is in flight
        self.dispatched_at = 0.0


def _mp_context():
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context()


def _supervised_starts(h, k, single, seeds, todo, cfg, outcome, store,
                       deadline) -> None:
    """Process backend with heartbeats, kill/respawn and seed re-queueing.

    Differences from the executor flavour: worker death or a heartbeat
    older than ``cfg.heartbeat_timeout`` (while a start is in flight)
    kills and respawns the worker and re-queues the seed — a re-queue
    spends the restart budget (``n_workers * (max_retries + 1)`` total),
    not the per-start retry budget, because the *task* never reported
    failure.  A start that does report an exception follows the normal
    retry-with-backoff policy.  When the restart budget runs out the pool
    raises :class:`WorkerPoolBroken` and the engine falls back a backend.
    """
    rec = get_recorder()
    ctx = _mp_context()
    n_workers = min(cfg.n_workers, len(todo))

    shared = None
    payload: dict = {}
    if cfg.shm_transport:
        try:
            shared = h.to_shm()
        except Exception:
            rec.add("engine.shm_fallbacks")
            shared = None
    if shared is not None:
        payload = {"shm_meta": shared.meta}
        rec.add("engine.shm_bytes", shared.nbytes)
    else:
        payload = {"hypergraph": h}

    board = None
    try:
        board = HeartbeatBoard.create(n_workers)
    except Exception:
        # no shared memory: supervision degrades to death detection only
        rec.add("engine.heartbeat_fallbacks")
        board = None

    result_q = ctx.Queue()
    slots = [_Slot(r) for r in range(n_workers)]
    restart_budget = cfg.n_workers * (cfg.max_retries + 1)
    # (start_index, attempt, not_before) — retried entries carry a backoff
    # horizon instead of blocking the supervisor in time.sleep
    pending: list = [(i, 0, 0.0) for i in todo]
    tick = max(0.01, min(cfg.heartbeat_interval, 0.1))
    early_stopped = False

    def spawn(slot: _Slot) -> None:
        slot.queue = ctx.Queue()
        slot.proc = ctx.Process(
            target=_supervised_worker,
            args=(slot.rank, slot.queue, result_q,
                  board.name if board is not None else None, n_workers,
                  cfg.heartbeat_interval, payload, k, single),
        )
        slot.proc.start()
        _LAST_WORKER_PIDS[:] = [
            s.proc.pid for s in slots if s.proc is not None and s.proc.is_alive()
        ]

    def recycle(slot: _Slot, why: str) -> None:
        """Kill a dead/hung worker, re-queue its seed, respawn."""
        nonlocal restart_budget
        if slot.proc is not None:
            slot.proc.kill()
            slot.proc.join(timeout=5)
        if slot.task is not None:
            i, attempt = slot.task
            if i not in outcome.completed:
                pending.insert(0, (i, attempt, time.monotonic()))
            slot.task = None
        if restart_budget <= 0:
            raise WorkerPoolBroken(
                f"supervised worker rank {slot.rank} {why} and the restart "
                f"budget is exhausted"
            )
        restart_budget -= 1
        if board is not None:
            board.slots[slot.rank] = 0.0
        spawn(slot)
        rec.add("engine.worker_restarts")

    try:
        for slot in slots:
            spawn(slot)

        while True:
            inflight = any(s.task is not None for s in slots)
            if not pending and not inflight:
                break

            # dispatch ready work to idle live workers
            now = time.monotonic()
            deadline_blocked = (
                deadline is not None
                and deadline.expired()
                and (outcome.completed or outcome.resumed or inflight)
            )
            if not deadline_blocked:
                for slot in slots:
                    if not pending or slot.task is not None:
                        continue
                    if slot.proc is None or not slot.proc.is_alive():
                        continue  # the monitor pass below recycles it
                    ready = next(
                        (idx for idx, (_i, _a, nb) in enumerate(pending)
                         if nb <= now),
                        None,
                    )
                    if ready is None:
                        break
                    i, attempt, _nb = pending.pop(ready)
                    if i in outcome.completed:  # stale re-queue duplicate
                        continue
                    slot.queue.put((i, _fresh_seed(seeds, i)))
                    slot.task = (i, attempt)
                    slot.dispatched_at = now
            elif not inflight:
                # past the deadline with nothing left in flight: the rest
                # of the sweep is abandoned gracefully
                outcome.skipped = sorted(i for i, _a, _nb in pending)
                outcome.degraded_reason = "deadline"
                rec.add("engine.deadline_hits")
                break

            # collect one result (or just wait a tick)
            try:
                rank, i, ok, res = result_q.get(timeout=tick)
            except queue_mod.Empty:
                pass
            else:
                slot = slots[rank]
                if slot.task is not None and slot.task[0] == i:
                    attempt = slot.task[1]
                    slot.task = None
                else:  # result from a recycled rank; attempt is best-effort
                    attempt = 0
                if ok:
                    if i not in outcome.completed:
                        _complete(outcome, store, i, seeds, res, cfg)
                        if _hits_target(res, cfg) and not early_stopped:
                            early_stopped = True
                            pending.clear()
                            rec.add("engine.early_stops")
                else:
                    if attempt >= cfg.max_retries:
                        raise res
                    rec.add("engine.start_retries")
                    outcome.retries[i] = attempt + 1
                    pending.append(
                        (i, attempt + 1,
                         time.monotonic() + backoff_delay(cfg, attempt, salt=i))
                    )

            # monitor: recycle dead or hung workers
            now = time.monotonic()
            for slot in slots:
                if slot.proc is None:
                    continue
                if not slot.proc.is_alive():
                    if slot.task is not None or pending:
                        recycle(slot, "died")
                    continue
                if slot.task is not None and board is not None:
                    newest = max(board.last_beat(slot.rank), slot.dispatched_at)
                    if now - newest > cfg.heartbeat_timeout:
                        recycle(slot, "stopped heartbeating")
    finally:
        for slot in slots:
            if slot.queue is not None:
                try:
                    slot.queue.put(None)
                except Exception:
                    pass
        for slot in slots:
            if slot.proc is None:
                continue
            slot.proc.join(timeout=2)
            if slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(timeout=2)
                if slot.proc.is_alive():  # pragma: no cover - defensive
                    slot.proc.kill()
                    slot.proc.join(timeout=2)
        for slot in slots:
            if slot.queue is not None:
                slot.queue.close()
                slot.queue.cancel_join_thread()
        result_q.close()
        result_q.cancel_join_thread()
        if board is not None:
            board.close()
        if shared is not None:
            shared.close()


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------
def run_starts(
    h: Hypergraph,
    k: int,
    single: PartitionerConfig,
    seeds: list,
    cfg: PartitionerConfig,
    backend: str,
    fingerprint: str | None = None,
) -> StartsOutcome:
    """Execute the engine's starts resiliently on *backend*.

    Resumes from ``cfg.checkpoint_path`` when it records this sweep,
    applies the retry policy at every level, honours the deadline budget,
    and degrades through the backend chain (supervised process ->
    thread -> in-process serial) exactly like the pre-resilience engine:
    only ``OSError`` / ``RuntimeError`` / ``ImportError`` trigger a
    fallback; anything else is a real bug and propagates.
    """
    rec = get_recorder()
    store = None
    if cfg.checkpoint_path and fingerprint is not None:
        store = CheckpointStore.open(
            cfg.checkpoint_path, fingerprint, cfg.epsilon, len(seeds), k
        )
    outcome = StartsOutcome()
    if store is not None and store.completed:
        outcome.resumed = dict(store.completed)
        outcome.resumed_best = store.best_result()
        rec.add("engine.starts_resumed", len(outcome.resumed))
    todo = [i for i in range(len(seeds)) if i not in outcome.resumed]
    if not todo:
        return outcome
    deadline = Deadline.from_config(cfg)

    if backend == "serial":
        _serial_starts(h, k, single, seeds, todo, cfg, outcome, store,
                       deadline, trip=True)
        return outcome

    chain = ["thread"] if backend == "thread" else ["process", "thread"]
    for hop, attempt_backend in enumerate(chain):
        try:
            if attempt_backend == "process" and cfg.supervise:
                _supervised_starts(h, k, single, seeds, todo, cfg, outcome,
                                   store, deadline)
            else:
                _executor_starts(h, k, single, seeds, todo, cfg, outcome,
                                 store, deadline, attempt_backend)
            return outcome
        except (OSError, RuntimeError, ImportError):
            # restricted environments can refuse process pools (no fork /
            # sem / shm); retries are exhausted; degrade rather than fail
            rec.add("engine.backend_fallbacks")
            outcome.reset_fresh()
    _serial_starts(h, k, single, seeds, todo, cfg, outcome, store,
                   deadline, trip=False)
    return outcome
