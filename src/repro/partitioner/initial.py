"""Initial bisection of the coarsest hypergraph.

Two constructors, both run multiple times with different random seeds and
followed by FM refinement; the best feasible result wins:

* **GHG** — greedy hypergraph growing (PaToH's default): start with
  everything in part 1, then repeatedly pull the vertex whose move to part 0
  reduces the cut the most (FM gain), until part 0 reaches its target
  weight.  Equivalent to growing a cluster around a seed while accounting
  for net costs.
* **random** — random balanced assignment, useful as a diversifier.

Fixed vertices are pre-placed and never moved.
"""

from __future__ import annotations

import numpy as np

from repro._util import INDEX_DTYPE, as_rng
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import cutsize_connectivity
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.gainbucket import GainBucket
from repro.partitioner.refine import FMCore, fm_refine_bisection
from repro.telemetry import get_recorder

__all__ = ["ghg_bisection", "random_bisection", "initial_bisection"]


def _base_part(h: Hypergraph, fixed: np.ndarray | None) -> np.ndarray:
    part = np.ones(h.num_vertices, dtype=INDEX_DTYPE)
    if fixed is not None:
        locked = fixed >= 0
        part[locked] = fixed[locked]
    return part


def ghg_bisection(
    h: Hypergraph,
    target0: int,
    max0: int,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy hypergraph growing: grow part 0 up to ``target0`` weight."""
    rng = as_rng(rng)
    part = _base_part(h, fixed)
    core = FMCore(h, part, fixed)
    core.compute_all_gains()
    bound = core.max_gain_bound()
    b0 = GainBucket(h.num_vertices, bound)  # unused side, kept for symmetry
    b1 = GainBucket(h.num_vertices, bound)
    core.buckets = (b0, b1)
    core.insert_on_touch = False

    order = rng.permutation(h.num_vertices)
    for v in order:
        v = int(v)
        if core.free[v] and core.part[v] == 1:
            b1.insert(v, core.gain[v])

    w = core.w
    W = core.W
    # force a random seed vertex first so different starts explore
    # different regions even when many gains tie
    seeded = False
    while W[0] < target0 and len(b1):
        if not seeded:
            free1 = [int(v) for v in order if core.free[int(v)] and core.part[int(v)] == 1]
            if not free1:
                break
            v = free1[int(rng.integers(len(free1)))]
            seeded = True
        else:
            cap = max0 - W[0]
            v = b1.best(lambda u: w[u] <= cap)
            if v is None:
                break
        b1.remove(v)
        core.locked[v] = True  # each vertex enters part 0 at most once
        core.apply_move(v, update_gains=True)
    return core.part_array()


def random_bisection(
    h: Hypergraph,
    target0: int,
    max0: int,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """Random balanced bisection: fill part 0 greedily in random order."""
    rng = as_rng(rng)
    part = _base_part(h, fixed)
    w = h.vertex_weights
    W0 = int(w[part == 0].sum())
    for v in rng.permutation(h.num_vertices):
        if W0 >= target0:
            break
        v = int(v)
        if fixed is not None and fixed[v] >= 0:
            continue
        if W0 + w[v] <= max0:
            part[v] = 0
            W0 += int(w[v])
    return part


def initial_bisection(
    h: Hypergraph,
    targets: tuple[int, int],
    max_weights: tuple[int, int],
    cfg: PartitionerConfig,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """Best-of-N initial bisection (GHG and random starts, FM-refined).

    Candidates are ranked by (balance feasibility, cut); the winner is
    returned un-refined at the caller's level — refinement already happened
    here on the coarsest hypergraph.
    """
    rng = as_rng(rng)
    best_part: np.ndarray | None = None
    best_key: tuple[int, int] | None = None
    w = h.vertex_weights
    rec = get_recorder()
    with rec.span(
        "initial", vertices=h.num_vertices, starts=cfg.n_initial_starts
    ) as sp:
        for s in range(cfg.n_initial_starts):
            if s % 3 == 2:
                raw = random_bisection(h, targets[0], max_weights[0], rng, fixed)
            else:
                raw = ghg_bisection(h, targets[0], max_weights[0], rng, fixed)
            part, cut = fm_refine_bisection(h, raw, max_weights, cfg, rng, fixed)
            w0 = int(w[part == 0].sum())
            w1 = int(w.sum()) - w0
            excess = max(0, w0 - max_weights[0]) + max(0, w1 - max_weights[1])
            key = (excess, cut)
            if best_key is None or key < best_key:
                best_key = key
                best_part = part
        sp.set(cut=best_key[1], excess=best_key[0])
    assert best_part is not None
    return best_part
