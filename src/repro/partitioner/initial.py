"""Initial bisection of the coarsest hypergraph.

Two constructors, both run multiple times with different random seeds and
followed by FM refinement; the best feasible result wins:

* **GHG** — greedy hypergraph growing (PaToH's default): start with
  everything in part 1, then repeatedly pull the vertex whose move to part 0
  reduces the cut the most (FM gain), until part 0 reaches its target
  weight.  Equivalent to growing a cluster around a seed while accounting
  for net costs.
* **random** — random balanced assignment, useful as a diversifier.

Fixed vertices are pre-placed and never moved.
"""

from __future__ import annotations

import numpy as np

from repro._util import INDEX_DTYPE, as_rng
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import cutsize_connectivity
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.gainbucket import GainBucket
from repro.partitioner.refine import FMCore, fm_refine_bisection
from repro.telemetry import get_recorder

__all__ = ["ghg_bisection", "random_bisection", "initial_bisection"]

#: below this pin count the scalar GHG loop wins: the flat tier's numpy
#: bucket machinery has per-move fixed costs that only pay off once the
#: per-pin gain updates of large nets dominate.  Both paths are
#: bit-identical, so the gate affects speed only.
_GHG_VECTOR_MIN = 50_000


def _base_part(h: Hypergraph, fixed: np.ndarray | None) -> np.ndarray:
    part = np.ones(h.num_vertices, dtype=INDEX_DTYPE)
    if fixed is not None:
        locked = fixed >= 0
        part[locked] = fixed[locked]
    return part


def _ghg_flat(
    h: Hypergraph,
    target0: int,
    max0: int,
    rng: np.random.Generator,
    fixed: np.ndarray | None,
) -> np.ndarray:
    """The ``flat`` tier of :func:`ghg_bisection`: FlatGainBucket
    selection plus the vectorized critical-net updates of
    :class:`~repro.partitioner.fm_flat.FlatMoveEngine`.

    Bit-identical to the reference: same RNG consumption (one
    permutation, one seed draw), same newest-first bucket selection,
    same gain updates — the parity harness in tests/test_phase_kernels.py
    asserts it.  Gated by :data:`_GHG_VECTOR_MIN` in the caller because
    its per-move fixed cost only amortizes on large-net instances.
    """
    from repro.partitioner.arena import scratch
    from repro.partitioner.fm_flat import FlatGainBucket, FlatMoveEngine

    nv = h.num_vertices
    part = _base_part(h, fixed)
    core = FMCore(h, part, fixed)
    core.compute_all_gains()
    bound = core.max_gain_bound()
    G = np.asarray(core.gain, dtype=np.int64)
    eng = FlatMoveEngine(core, G, boundary_mode=False)
    b0 = FlatGainBucket(
        nv, bound, gains=G, inside=scratch("fm.inside0", nv, bool, zero=True)
    )
    b1 = FlatGainBucket(
        nv, bound, gains=G, inside=scratch("fm.inside1", nv, bool, zero=True)
    )
    eng.buckets = (b0, b1)

    order = rng.permutation(h.num_vertices)
    mask = eng.free[order] & (eng.part[order] == 1)
    seq = order[mask]
    b1.bulk_insert(seq, G[seq])

    w_arr = np.asarray(core.w, dtype=np.int64)
    W = eng.W
    seeded = False
    while W[0] < target0 and b1.count > 0:
        if not seeded:
            # seq is exactly the reference's free1 list (same filter,
            # same permutation order), so the seed draw matches
            v = int(seq[int(rng.integers(len(seq)))])
            seeded = True
        else:
            v = b1.best_capped(w_arr, max0 - W[0])
            if v is None:
                break
        b1.remove(v)
        eng.lock(v)  # each vertex enters part 0 at most once
        eng.apply_move(v)
    return eng.part.astype(INDEX_DTYPE)


def ghg_bisection(
    h: Hypergraph,
    target0: int,
    max0: int,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
    kernel: str = "python",
) -> np.ndarray:
    """Greedy hypergraph growing: grow part 0 up to ``target0`` weight.

    Above :data:`_GHG_VECTOR_MIN` pins the flat/jit tiers race the two
    bit-identical implementations (see
    :func:`~repro.partitioner.kernels.race_pick`): initial bisection
    runs many starts on the same coarsest hypergraph, so the first two
    starts pay for the measurement and the rest inherit the winner.
    """
    from time import perf_counter

    from repro.partitioner.kernels import race_pick

    rng = as_rng(rng)
    if kernel in ("flat", "jit") and h.num_pins >= _GHG_VECTOR_MIN:
        race = h._view(
            "ghg.tier_race", lambda: {"flat": [0.0, 0], "python": [0.0, 0]}
        )
        tier = race_pick(race)
        t0 = perf_counter()
        if tier == "flat":
            part = _ghg_flat(h, target0, max0, rng, fixed)
        else:
            part = _ghg_reference(h, target0, max0, rng, fixed)
        st = race[tier]
        st[0] += perf_counter() - t0
        # every start grows to the same weight target, so starts are
        # comparable per vertex
        st[1] += h.num_vertices
        return part
    return _ghg_reference(h, target0, max0, rng, fixed)


def _ghg_reference(
    h: Hypergraph,
    target0: int,
    max0: int,
    rng: np.random.Generator,
    fixed: np.ndarray | None,
) -> np.ndarray:
    """The ``python`` tier of :func:`ghg_bisection`: the pure reference
    loop over :class:`~repro.partitioner.gainbucket.GainBucket`."""
    part = _base_part(h, fixed)
    core = FMCore(h, part, fixed)
    core.compute_all_gains()
    bound = core.max_gain_bound()
    b0 = GainBucket(h.num_vertices, bound)  # unused side, kept for symmetry
    b1 = GainBucket(h.num_vertices, bound)
    core.buckets = (b0, b1)
    core.insert_on_touch = False

    order = rng.permutation(h.num_vertices)
    for v in order:
        v = int(v)
        if core.free[v] and core.part[v] == 1:
            b1.insert(v, core.gain[v])

    w = core.w
    W = core.W
    # force a random seed vertex first so different starts explore
    # different regions even when many gains tie
    seeded = False
    while W[0] < target0 and len(b1):
        if not seeded:
            free1 = [int(v) for v in order if core.free[int(v)] and core.part[int(v)] == 1]
            if not free1:
                break
            v = free1[int(rng.integers(len(free1)))]
            seeded = True
        else:
            cap = max0 - W[0]
            v = b1.best(lambda u: w[u] <= cap)
            if v is None:
                break
        b1.remove(v)
        core.locked[v] = True  # each vertex enters part 0 at most once
        core.apply_move(v, update_gains=True)
    return core.part_array()


def random_bisection(
    h: Hypergraph,
    target0: int,
    max0: int,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """Random balanced bisection: fill part 0 greedily in random order."""
    rng = as_rng(rng)
    part = _base_part(h, fixed)
    w = h.vertex_weights
    W0 = int(w[part == 0].sum())
    for v in rng.permutation(h.num_vertices):
        if W0 >= target0:
            break
        v = int(v)
        if fixed is not None and fixed[v] >= 0:
            continue
        if W0 + w[v] <= max0:
            part[v] = 0
            W0 += int(w[v])
    return part


def initial_bisection(
    h: Hypergraph,
    targets: tuple[int, int],
    max_weights: tuple[int, int],
    cfg: PartitionerConfig,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """Best-of-N initial bisection (GHG and random starts, FM-refined).

    Candidates are ranked by (balance feasibility, cut); the winner is
    returned un-refined at the caller's level — refinement already happened
    here on the coarsest hypergraph.

    With ``cfg.initial_method == "exact"`` and a small enough coarsest
    hypergraph, the branch-and-bound bipartitioner of :mod:`repro.exact`
    is tried first under ``cfg.exact_initial_nodes``: a certified result
    is returned as-is (it is lexicographically optimal — no FM pass or
    extra start can beat it), and a budget-exhausted one is discarded in
    favor of the heuristic loop below.  The exact attempt consumes no
    RNG, so the fallback is bit-identical to ``initial_method="ghg"``.
    """
    from repro.partitioner.kernels import resolve_kernel

    rng = as_rng(rng)
    best_part: np.ndarray | None = None
    best_key: tuple[int, int] | None = None
    w = h.vertex_weights
    kern = resolve_kernel(getattr(cfg, "kernel", "python"))
    rec = get_recorder()
    if (
        cfg.initial_method == "exact"
        and h.num_vertices <= cfg.exact_initial_vertices
    ):
        from repro.exact import exact_bisection

        with rec.span(
            "initial.exact",
            vertices=h.num_vertices,
            budget=cfg.exact_initial_nodes,
        ) as sp:
            res = exact_bisection(
                h,
                targets=targets,
                max_weights=max_weights,
                fixed=fixed,
                max_nodes=cfg.exact_initial_nodes,
            )
            sp.set(proven=res.proven, nodes=res.nodes)
            if res.proven:
                sp.set(cut=res.cutsize, excess=res.excess)
                return res.part
    with rec.span(
        "initial",
        vertices=h.num_vertices,
        starts=cfg.n_initial_starts,
        kernel=kern,
    ) as sp:
        for s in range(cfg.n_initial_starts):
            if s % 3 == 2:
                raw = random_bisection(h, targets[0], max_weights[0], rng, fixed)
            else:
                raw = ghg_bisection(
                    h, targets[0], max_weights[0], rng, fixed, kernel=kern
                )
            part, cut = fm_refine_bisection(h, raw, max_weights, cfg, rng, fixed)
            w0 = int(w[part == 0].sum())
            w1 = int(w.sum()) - w0
            excess = max(0, w0 - max_weights[0]) + max(0, w1 - max_weights[1])
            key = (excess, cut)
            if best_key is None or key < best_key:
                best_key = key
                best_part = part
        sp.set(cut=best_key[1], excess=best_key[0])
    assert best_part is not None
    return best_part
