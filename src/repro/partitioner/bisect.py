"""Multilevel bisection: coarsen → initial partition → uncoarsen + refine."""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.coarsen import coarsen, coarsen_restricted
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.initial import initial_bisection
from repro.partitioner.refine import fm_refine_bisection
from repro.telemetry import get_recorder

__all__ = ["multilevel_bisect"]


def multilevel_bisect(
    h: Hypergraph,
    targets: tuple[int, int],
    epsilon: float,
    cfg: PartitionerConfig,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Bisect *h* into parts with target weights ``targets`` and per-side
    slack ``epsilon``; returns ``(part01, cut)``.

    ``fixed`` optionally pins vertices to side 0 or 1 (-1 = free).  After
    the first multilevel pass, ``cfg.n_vcycles`` additional V-cycles
    re-coarsen the hypergraph with matching restricted to the current sides
    and refine again — each cycle can only improve the cut.
    """
    rng = as_rng(rng)
    t0, t1 = int(targets[0]), int(targets[1])
    max_weights = (int(t0 * (1.0 + epsilon)), int(t1 * (1.0 + epsilon)))

    rec = get_recorder()
    levels, coarsest, coarsest_fixed = coarsen(h, cfg, rng, fixed)
    part = initial_bisection(
        coarsest, (t0, t1), max_weights, cfg, rng, coarsest_fixed
    )
    with rec.span("uncoarsen", levels=len(levels)) as usp:
        part, cut = fm_refine_bisection(
            coarsest, part, max_weights, cfg, rng, coarsest_fixed
        )
        for depth, level in enumerate(reversed(levels)):
            # per-level spans so `repro profile` can attribute refinement
            # cost to hypergraph size as the projection walks back up
            with rec.span(
                "uncoarsen.level",
                level=len(levels) - 1 - depth,
                vertices=level.fine.num_vertices,
                nets=level.fine.num_nets,
                pins=level.fine.num_pins,
            ):
                part = part[level.cmap]  # project onto the finer hypergraph
                part, cut = fm_refine_bisection(
                    level.fine, part, max_weights, cfg, rng, level.fixed
                )
        usp.set(cut=cut)

    for cycle in range(cfg.n_vcycles if cfg.matching != "none" else 0):
        with rec.span("vcycle", cycle=cycle) as vsp:
            vlevels, vcoarsest, vfixed, vpart = coarsen_restricted(
                h, cfg, rng, part, fixed
            )
            vpart, vcut = fm_refine_bisection(
                vcoarsest, vpart, max_weights, cfg, rng, vfixed
            )
            for level in reversed(vlevels):
                vpart = vpart[level.cmap]
                vpart, vcut = fm_refine_bisection(
                    level.fine, vpart, max_weights, cfg, rng, level.fixed
                )
            vsp.set(cut=vcut)
        if vcut >= cut:
            break  # converged; further cycles would only re-discover this
        part, cut = vpart, vcut
    return part, cut
