"""Direct K-way greedy refinement of the connectivity-minus-one cutsize.

Recursive bisection never reconsiders a vertex's side once a bisection has
placed it.  This pass does: it sweeps the boundary vertices in random order
and greedily moves each to the connected part with the largest positive
cutsize gain, subject to the balance bound.  It is the "planned
modification" flavour of improvement PaToH later shipped; here it is an
optional ablation (``PartitionerConfig.kway_refine``).

Gain of moving v from part p to part q under Eq. 3 (unit treatment per net
of cost c):

* net has ``count[p] == 1``: the move removes p from the net's connectivity
  set → gain ``+c``;
* net has ``count[q] == 0``: the move adds q → gain ``-c``.

Both counts are maintained in an ``N x K`` dense matrix — affordable for
the paper's K ≤ 64.
"""

from __future__ import annotations

import numpy as np

from repro._util import INDEX_DTYPE, as_rng
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.config import PartitionerConfig
from repro.telemetry import get_recorder

__all__ = ["kway_refine"]


def kway_refine(
    h: Hypergraph,
    part: np.ndarray,
    k: int,
    cfg: PartitionerConfig,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy K-way boundary refinement; returns an improved part vector.

    Only strictly positive-gain, balance-preserving moves are applied, so
    the cutsize never increases and Eq. 1 feasibility is preserved.
    """
    rng = as_rng(rng)
    part = np.asarray(part, dtype=INDEX_DTYPE).copy()
    nv, nn = h.num_vertices, h.num_nets
    if nv == 0 or nn == 0 or k <= 1:
        return part

    net_of_pin = h.net_of_pin()
    counts = np.zeros((nn, k), dtype=np.int32)
    np.add.at(counts, (net_of_pin, part[h.pins]), 1)

    w = h.vertex_weights
    W = np.bincount(part, weights=w, minlength=k).astype(np.int64)
    maxw = int((w.sum() / k) * (1.0 + cfg.epsilon))

    xnets = h.xnets_list()
    vnets = h.vnets_list()
    cost = h.costs_list()
    wl = h.weights_list()
    part_l = part.tolist()
    counts_l = counts  # keep numpy: row slicing is the common op here
    free = np.ones(nv, dtype=bool)
    if fixed is not None:
        free &= fixed < 0

    rec = get_recorder()
    with rec.span("kway", k=k, vertices=nv):
        for pass_no in range(cfg.kway_passes):
            # boundary = vertices on some net with connectivity > 1
            lam = (counts_l > 0).sum(axis=1)
            cut_net = lam > 1
            bnd = np.unique(h.pins[cut_net[net_of_pin]])
            bnd = bnd[free[bnd]]
            if len(bnd) == 0:
                break
            moved = 0
            gained = 0
            for v in rng.permutation(bnd):
                v = int(v)
                p = part_l[v]
                nets_v = vnets[xnets[v] : xnets[v + 1]]
                # candidate parts: those connected through v's nets
                gain_remove = 0
                cand: dict[int, int] = {}
                for n in nets_v:
                    row = counts_l[n]
                    c = cost[n]
                    if row[p] == 1:
                        gain_remove += c
                    for q in np.flatnonzero(row):
                        q = int(q)
                        if q != p:
                            cand[q] = cand.get(q, 0) + c
                best_q, best_gain = -1, 0
                wv = wl[v]
                for q, conn in cand.items():
                    if W[q] + wv > maxw:
                        continue
                    # gain = (nets leaving p) - (nets newly entering q)
                    loss = 0
                    for n in nets_v:
                        if counts_l[n, q] == 0:
                            loss += cost[n]
                    g = gain_remove - loss
                    if g > best_gain:
                        best_q, best_gain = q, g
                if best_q >= 0:
                    for n in nets_v:
                        counts_l[n, p] -= 1
                        counts_l[n, best_q] += 1
                    W[p] -= wv
                    W[best_q] += wv
                    part_l[v] = best_q
                    moved += 1
                    gained += best_gain
            if rec.enabled:
                rec.add("kway.passes")
                rec.add("kway.moves", moved)
                rec.add("kway.cut_delta", gained)
            if not moved:
                break
    return np.asarray(part_l, dtype=INDEX_DTYPE)
