"""Direct K-way greedy refinement of the connectivity-minus-one cutsize.

Recursive bisection never reconsiders a vertex's side once a bisection has
placed it.  This pass does: it sweeps the boundary vertices in random order
and greedily moves each to the connected part with the largest positive
cutsize gain, subject to the balance bound.  It is the "planned
modification" flavour of improvement PaToH later shipped; here it is an
optional ablation (``PartitionerConfig.kway_refine``).

Gain of moving v from part p to part q under Eq. 3 (unit treatment per net
of cost c):

* net has ``count[p] == 1``: the move removes p from the net's connectivity
  set → gain ``+c``;
* net has ``count[q] == 0``: the move adds q → gain ``-c``.

Both counts are maintained in an ``N x K`` dense matrix — affordable for
the paper's K ≤ 64.

The ``flat`` kernel tier batch-scores a whole permutation chunk at once:
``g(v, q) = gain_remove(v) - total_cost(v) + connected_cost(v, q)`` falls
out of one gather of the counts matrix plus segmented reductions, and any
vertex whose best exact gain is ≤ 0 provably cannot move (the balance
bound only removes candidates), so the sequential pass skips it without
touching any state.  Vertices with a positive candidate — or whose nets
were touched by an earlier move in the same chunk, invalidating their
batch score — run the ordinary reference body, which keeps the flat tier
bit-identical by construction.
"""

from __future__ import annotations

import numpy as np

from repro._util import INDEX_DTYPE, as_rng, multi_arange
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.config import PartitionerConfig
from repro.telemetry import get_recorder

__all__ = ["kway_refine"]

#: vertices per batch-scoring chunk of the flat tier; shorter chunks waste
#: numpy call overhead, longer ones go stale faster (a move invalidates
#: the batch scores of every later vertex sharing one of its nets)
_KWAY_CHUNK = 4096

#: below this boundary size the reference loop wins outright
_KWAY_VECTOR_MIN = 64


def _move_one(
    v: int,
    part_l: list[int],
    counts: np.ndarray,
    W: np.ndarray,
    maxw: int,
    wl: list[int],
    cost: list[int],
    xnets: list[int],
    vnets: list[int],
) -> tuple[int, list[int] | None]:
    """The reference per-vertex body: score, select, and (maybe) apply one
    greedy move.  Returns ``(gain, touched_nets)`` — gain 0 means no move.
    """
    p = part_l[v]
    nets_v = vnets[xnets[v] : xnets[v + 1]]
    # candidate parts: those connected through v's nets
    gain_remove = 0
    cand: dict[int, int] = {}
    for n in nets_v:
        row = counts[n]
        c = cost[n]
        if row[p] == 1:
            gain_remove += c
        for q in np.flatnonzero(row):
            q = int(q)
            if q != p:
                cand[q] = cand.get(q, 0) + c
    best_q, best_gain = -1, 0
    wv = wl[v]
    for q, conn in cand.items():
        if W[q] + wv > maxw:
            continue
        # gain = (nets leaving p) - (nets newly entering q)
        loss = 0
        for n in nets_v:
            if counts[n, q] == 0:
                loss += cost[n]
        g = gain_remove - loss
        if g > best_gain:
            best_q, best_gain = q, g
    if best_q < 0:
        return 0, None
    for n in nets_v:
        counts[n, p] -= 1
        counts[n, best_q] += 1
    W[p] -= wv
    W[best_q] += wv
    part_l[v] = best_q
    return best_gain, nets_v


def _kway_pass_ref(
    perm: np.ndarray,
    part_l: list[int],
    counts: np.ndarray,
    W: np.ndarray,
    maxw: int,
    wl: list[int],
    cost: list[int],
    xnets: list[int],
    vnets: list[int],
) -> tuple[int, int]:
    """One reference-tier sweep over *perm*."""
    moved = 0
    gained = 0
    for v in perm.tolist():
        g, _ = _move_one(int(v), part_l, counts, W, maxw, wl, cost, xnets, vnets)
        if g:
            moved += 1
            gained += g
    return moved, gained


def _kway_pass_flat(
    h: Hypergraph,
    k: int,
    perm: np.ndarray,
    part_l: list[int],
    counts: np.ndarray,
    W: np.ndarray,
    maxw: int,
    wl: list[int],
    cost: list[int],
    xnets: list[int],
    vnets: list[int],
) -> tuple[int, int]:
    """One flat-tier sweep: batch-score chunks, skip provably-unmovable
    vertices, run the reference body for the rest (see module docstring
    for the exactness argument)."""
    xnets_np, vnets_np = h.xnets, h.vnets
    cost_np = np.asarray(h.net_costs, dtype=np.int64)
    touch = [-1] * h.num_nets  # move index that last changed each net
    move_no = 0
    moved = 0
    gained = 0
    NEG = np.int64(-(1 << 60))
    for lo in range(0, len(perm), _KWAY_CHUNK):
        chunk = perm[lo : lo + _KWAY_CHUNK].astype(np.int64)
        m = len(chunk)
        deg = xnets_np[chunk + 1] - xnets_np[chunk]
        starts = np.zeros(m, dtype=np.int64)
        np.cumsum(deg[:-1], out=starts[1:])
        ns = vnets_np[multi_arange(xnets_np[chunk], deg)]
        C = counts[ns]  # (E, k) gather of the live counts matrix
        cpos = C > 0
        ce = cost_np[ns]
        conn = np.add.reduceat(cpos * ce[:, None], starts, axis=0)
        candq = np.add.reduceat(cpos, starts, axis=0) > 0
        totc = np.add.reduceat(ce, starts)
        p_arr = np.fromiter(
            (part_l[v] for v in chunk.tolist()), dtype=np.int64, count=m
        )
        crit = ce * (C[np.arange(len(ns)), np.repeat(p_arr, deg)] == 1)
        gain_remove = np.add.reduceat(crit, starts)
        g = gain_remove[:, None] - totc[:, None] + conn
        g = np.where(candq, g, NEG)
        g[np.arange(m), p_arr] = NEG
        gmax = g.max(axis=1)

        chunk_t = move_no  # scores are valid for nets untouched since here
        hot = gmax > 0
        for j, v in enumerate(chunk.tolist()):
            nets_v = vnets[xnets[v] : xnets[v + 1]]
            fresh = True
            for n in nets_v:
                if touch[n] >= chunk_t:
                    fresh = False
                    break
            if fresh and not hot[j]:
                # exact batch gain ≤ 0 for every candidate: the balance
                # bound can only shrink the candidate set, so the
                # reference body would not move v either — skip it
                continue
            g1, mnets = _move_one(
                v, part_l, counts, W, maxw, wl, cost, xnets, vnets
            )
            if g1:
                moved += 1
                gained += g1
                for n in mnets:
                    touch[n] = move_no
                move_no += 1
    return moved, gained


def kway_refine(
    h: Hypergraph,
    part: np.ndarray,
    k: int,
    cfg: PartitionerConfig,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy K-way boundary refinement; returns an improved part vector.

    Only strictly positive-gain, balance-preserving moves are applied, so
    the cutsize never increases and Eq. 1 feasibility is preserved.
    """
    from repro.partitioner.kernels import resolve_kernel

    rng = as_rng(rng)
    part = np.asarray(part, dtype=INDEX_DTYPE).copy()
    nv, nn = h.num_vertices, h.num_nets
    if nv == 0 or nn == 0 or k <= 1:
        return part

    net_of_pin = h.net_of_pin()
    counts = np.zeros((nn, k), dtype=np.int32)
    np.add.at(counts, (net_of_pin, part[h.pins]), 1)

    w = h.vertex_weights
    W = np.bincount(part, weights=w, minlength=k).astype(np.int64)
    maxw = int((w.sum() / k) * (1.0 + cfg.epsilon))

    xnets = h.xnets_list()
    vnets = h.vnets_list()
    cost = h.costs_list()
    wl = h.weights_list()
    part_l = part.tolist()
    free = np.ones(nv, dtype=bool)
    if fixed is not None:
        free &= fixed < 0

    kern = resolve_kernel(getattr(cfg, "kernel", "python"))
    rec = get_recorder()
    with rec.span(
        "kway", k=k, vertices=nv, nets=h.num_nets, pins=h.num_pins,
        kernel=kern,
    ):
        for pass_no in range(cfg.kway_passes):
            # boundary = vertices on some net with connectivity > 1
            lam = (counts > 0).sum(axis=1)
            cut_net = lam > 1
            bnd = np.unique(h.pins[cut_net[net_of_pin]])
            bnd = bnd[free[bnd]]
            if len(bnd) == 0:
                break
            perm = rng.permutation(bnd)
            if kern != "python" and len(bnd) >= _KWAY_VECTOR_MIN:
                moved, gained = _kway_pass_flat(
                    h, k, perm, part_l, counts, W, maxw, wl, cost,
                    xnets, vnets,
                )
            else:
                moved, gained = _kway_pass_ref(
                    perm, part_l, counts, W, maxw, wl, cost, xnets, vnets
                )
            if rec.enabled:
                rec.add("kway.passes")
                rec.add("kway.moves", moved)
                rec.add("kway.cut_delta", gained)
            if not moved:
                break
    return np.asarray(part_l, dtype=INDEX_DTYPE)
