"""The ``flat`` kernel tier: numpy flat-array FM refinement.

Two ideas replace the pure-Python hot loops of :mod:`refine` while
producing bit-identical partitions (the replay matrix and the golden
suite assert it):

**Lazy-deletion stack buckets** (:class:`FlatGainBucket`).  The classic
FM structure keeps one doubly-linked list per gain value and relinks a
vertex on every gain update.  Observe that the linked list's iteration
order — head first — is exactly "most recently linked first".  So an
append-only stack per gain bucket reproduces the identical iteration
order by scanning from the end, *if* stale entries are skipped: an entry
``v`` in bucket ``b`` is current iff ``inside[v]`` and ``gain[v]``
still maps to ``b``.  Updates become O(1) appends (no unlinking), and
batches of updates become single vectorized appends.  Ghost entries — an
older append of a vertex whose newest entry sits higher in the same
stack — are harmless: the scan meets the newest entry first, and the
feasibility test is deterministic within one selection, so a ghost can
repeat a rejection but never change the selected vertex.  Stale tails
are truncated at the scan frontier, bounding total scan work by total
appends (the same amortized argument as the classic structure) — and,
crucially, each stack is a growable numpy buffer, so both the stale
skipping and the weight-cap feasibility test evaluate as chunked array
masks from the tail rather than one interpreted comparison per entry.
Without that the structure merely *defers* the per-bump interpreter cost
from update time to scan time.

**Per-net vectorized gain updates** (:class:`FlatMoveEngine`).  Within
one ``apply_move`` no selection happens, so only each neighbour's
*final* gain and *last* touch time are observable through the buckets —
all critical-net bumps of a move can therefore be applied as one batch:
per net of the moved vertex, the four FM cases reduce to masked slices
of the pin array (``T==0``/``F==1``: every eligible pin, ``T==1``/
``F==2``: the first matching pin via ``argmax``, reproducing the
reference loop's ``break`` semantics).  This is where huge nets stop
dominating: a dense row that costs thousands of interpreted per-pin
iterations in the python tier is a handful of O(|net|) numpy kernels
here, while the per-vertex Python work is proportional to the number of
*touched* vertices only.  Batch appends land grouped by destination
bucket in touch order at final gains — a vertex touched twice leaves an
extra same-bucket ghost behind its newest entry, which the ghost
argument above makes invisible — so the scan observes exactly the
linked-list state the sequential reference produces.
"""

from __future__ import annotations

import numpy as np

from repro.partitioner.arena import scratch
from repro.telemetry import get_recorder

__all__ = ["FlatGainBucket", "FlatMoveEngine", "fm_pass_flat"]


#: tail-chunk size for the vectorized stale-skip scans; amortizes numpy
#: call overhead without touching more of a deep stack than needed
_CHUNK = 512

#: event batches at or below this size append via the scalar ``_push``
#: loop — grouping a handful of entries through argsort costs more than
#: pushing them one by one
_SMALL_APPEND = 24

#: compact the bucket stacks once total stored entries exceed this
#: multiple of the current vertex count.  Ghost entries are individually
#: harmless but collectively fatal: a mass-update regime re-appends the
#: same vertices move after move, so without compaction the stale-skip
#: scans walk stacks proportional to *total appends* instead of live
#: entries.  Compaction drops stale entries per bucket while preserving
#: chronological order, so selection order is untouched.
_COMPACT_FACTOR = 4
_COMPACT_MIN = 2048

#: nets at or below this many pins run their critical-case events as
#: interpreted loops over the cached pin lists.  Slicing a 2-element
#: numpy segment and argmax-ing it costs microseconds of fixed overhead
#: where the list loop costs nanoseconds — and on fine-grain models
#: (vertex degree <= 2, nets of 2..3 pins after coarsening) *every*
#: move fires such events, so the fixed cost is the whole move.  Above
#: the threshold the masked-slice path wins on per-pin throughput.
_SCALAR_NET = 32

#: scalar probes from the stack tail before switching to chunked masks.
#: The common selection finds a live, feasible entry within a handful of
#: pops, where one element read costs ~20x less than a chunk scan; the
#: budget bounds the interpreted work when the tail is deeply stale
_PROBE = 16


class FlatGainBucket:
    """Lazy-deletion bucket stacks over the gain range ``[-max_gain, max_gain]``.

    Drop-in equivalent of :class:`~repro.partitioner.gainbucket.GainBucket`
    (same operations, same iteration order, hence bit-identical selection)
    with O(1) updates that never unlink.  Each bucket is a growable numpy
    buffer scanned as chunked masks from the tail.  ``gains``/``inside``
    may be caller-supplied arrays so the refinement pass can share one
    gain vector with the bucket and update both in single vectorized
    sweeps.
    """

    __slots__ = (
        "offset", "bufs", "lens", "gains", "inside", "maxb", "count", "stored",
    )

    def __init__(
        self,
        n: int,
        max_gain: int,
        gains: np.ndarray | None = None,
        inside: np.ndarray | None = None,
    ) -> None:
        if max_gain < 0:
            raise ValueError("max_gain must be non-negative")
        self.offset = int(max_gain)
        nb = 2 * self.offset + 1
        self.bufs: list[np.ndarray | None] = [None] * nb
        self.lens = [0] * nb
        self.gains = np.zeros(n, dtype=np.int64) if gains is None else gains
        self.inside = np.zeros(n, dtype=bool) if inside is None else inside
        self.maxb = -1
        self.count = 0
        self.stored = 0  # total stack entries, live and stale

    # -- storage ---------------------------------------------------------
    def _room(self, b: int, k: int) -> np.ndarray:
        """The bucket-*b* buffer with room for *k* more entries."""
        buf = self.bufs[b]
        need = self.lens[b] + k
        if buf is None:
            buf = self.bufs[b] = np.empty(max(16, need), dtype=np.int64)
        elif need > len(buf):
            cap = len(buf)
            while cap < need:
                cap *= 2
            grown = np.empty(cap, dtype=np.int64)
            grown[: self.lens[b]] = buf[: self.lens[b]]
            buf = self.bufs[b] = grown
        return buf

    def _push(self, b: int, v: int) -> None:
        self._room(b, 1)[self.lens[b]] = v
        self.lens[b] += 1
        self.stored += 1
        if b > self.maxb:
            self.maxb = b

    def _maybe_compact(self) -> None:
        """Drop stale stack entries once they outnumber live ones.

        Each bucket keeps only its current entries (``inside`` and gain
        still mapping here), compressed in place in chronological order —
        the scan meets the same live entries in the same order, so every
        selection is unchanged.  Amortized O(1) per append."""
        if self.stored <= _COMPACT_MIN or self.stored <= _COMPACT_FACTOR * max(
            self.count, 1
        ):
            return
        gains, inside = self.gains, self.inside
        total = 0
        for b, l in enumerate(self.lens):
            if l == 0:
                continue
            buf = self.bufs[b]
            seg = buf[:l]
            cur = seg[inside[seg] & (gains[seg] == b - self.offset)]
            k = len(cur)
            buf[:k] = cur
            self.lens[b] = k
            total += k
        self.stored = total

    # -- primitive ops -------------------------------------------------
    def insert(self, v: int, gain: int) -> None:
        """Insert vertex *v* with *gain*; *v* must not already be inside."""
        b = gain + self.offset
        if b < 0 or b >= len(self.bufs):
            raise ValueError(f"gain {gain} outside bucket range ±{self.offset}")
        if self.inside[v]:
            raise ValueError(f"vertex {v} already in bucket")
        self.gains[v] = gain
        self.inside[v] = True
        self._push(b, v)
        self.count += 1

    def remove(self, v: int) -> None:
        """Remove vertex *v* (lazily: its stack entries go stale)."""
        if not self.inside[v]:
            raise ValueError(f"vertex {v} not in bucket")
        self.inside[v] = False
        self.count -= 1

    def contains(self, v: int) -> bool:
        """Whether *v* is currently stored."""
        return bool(self.inside[v])

    def move_to(self, v: int, g: int) -> None:
        """Re-bucket stored vertex *v* to gain *g* (O(1): append only)."""
        self.gains[v] = g
        self._push(g + self.offset, v)

    def adjust(self, v: int, delta: int) -> None:
        """Change the gain of stored vertex *v* by *delta*."""
        self.move_to(v, int(self.gains[v]) + delta)

    def bulk_insert(self, vs: np.ndarray, gains: np.ndarray) -> None:
        """Insert *vs* (insertion order) with *gains* at once.

        Same iteration-order contract as ``GainBucket.bulk_insert``:
        within a bucket, later-inserted vertices are met first.
        """
        m = len(vs)
        if m == 0:
            return
        vs = np.asarray(vs, dtype=np.int64)
        gs = np.asarray(gains, dtype=np.int64)
        b = gs + self.offset
        if int(b.min()) < 0 or int(b.max()) >= len(self.bufs):
            raise ValueError(f"gain outside bucket range ±{self.offset}")
        if bool(self.inside[vs].any()):
            raise ValueError("vertex already in bucket")
        self.gains[vs] = gs
        self.inside[vs] = True
        self.count += m
        self._append_grouped(vs, b)

    def _append_grouped(self, vs: np.ndarray, b: np.ndarray) -> None:
        """Append vertices *vs* with bucket indices *b*, preserving the
        given (chronological) order within each bucket."""
        m = len(vs)
        self.stored += m
        if m <= _SMALL_APPEND:
            # tiny batches: the grouping sort costs more than pushing
            lens, bufs = self.lens, self.bufs
            mx = self.maxb
            for v, bb in zip(vs.tolist(), b.tolist()):
                buf = bufs[bb]
                l = lens[bb]
                if buf is None or l + 1 > len(buf):
                    buf = self._room(bb, 1)
                buf[l] = v
                lens[bb] = l + 1
                if bb > mx:
                    mx = bb
            self.maxb = mx
            return
        # bucket indices are tiny ints: a narrow key makes numpy's stable
        # sort a radix sort (O(n)) instead of timsort — same permutation
        nb = len(self.bufs)
        if nb <= (1 << 8):
            b_key = b.astype(np.uint8)
        elif nb <= (1 << 16):
            b_key = b.astype(np.uint16)
        else:
            b_key = b
        ordr = np.argsort(b_key, kind="stable")
        sb = b[ordr]
        sv = vs[ordr]
        starts = np.flatnonzero(np.r_[True, sb[1:] != sb[:-1]])
        bounds = starts.tolist() + [len(sv)]
        sb_l = sb[starts].tolist()
        lens = self.lens
        for j, bb in enumerate(sb_l):
            chunk = sv[bounds[j] : bounds[j + 1]]
            buf = self._room(bb, len(chunk))
            buf[lens[bb] : lens[bb] + len(chunk)] = chunk
            lens[bb] += len(chunk)
        mx = int(sb[-1])
        if mx > self.maxb:
            self.maxb = mx

    def __len__(self) -> int:
        return self.count

    # -- selection -------------------------------------------------------
    def _trim(self, b: int) -> int:
        """Truncate bucket *b*'s stale tail; return the index of its
        newest current entry, or -1 when the bucket drains empty."""
        l = self.lens[b]
        if l == 0:
            return -1
        buf, gains, inside = self.bufs[b], self.gains, self.inside
        g = b - self.offset
        while l > 0:
            lo = l - _CHUNK if l > _CHUNK else 0
            seg = buf[lo:l]
            cur = inside[seg] & (gains[seg] == g)
            if cur.any():
                li = lo + len(cur) - 1 - int(np.argmax(cur[::-1]))
                self.lens[b] = li + 1
                return li
            l = lo
        self.lens[b] = 0
        return -1

    def _scan(self, test) -> int | None:
        """Walk buckets top-down, entries newest-first, skipping stale
        entries; return the first vertex passing *test* (or ``None``).

        Staleness is evaluated as chunked masks; *test* (an arbitrary
        callable) only ever runs on current entries.
        """
        if self.count == 0:
            return None
        self._maybe_compact()
        gains, inside = self.gains, self.inside
        b = self.maxb
        settled = False
        while b >= 0:
            li = self._trim(b)
            if li >= 0:
                if not settled:
                    self.maxb = b
                    settled = True
                buf = self.bufs[b]
                g = b - self.offset
                l = li + 1
                while l > 0:
                    lo = l - _CHUNK if l > _CHUNK else 0
                    seg = buf[lo:l]
                    for j in np.flatnonzero(inside[seg] & (gains[seg] == g))[::-1]:
                        v = int(seg[j])
                        if test(v):
                            return v
                    l = lo
            b -= 1
        if not settled:
            self.maxb = -1
        return None

    def max_gain(self) -> int | None:
        """Highest stored gain, or ``None`` when empty."""
        if self.count == 0:
            return None
        self._maybe_compact()
        b = self.maxb
        while b >= 0:
            if self._trim(b) >= 0:
                self.maxb = b
                return b - self.offset
            b -= 1
        self.maxb = -1
        return None

    def best(self, feasible=None) -> int | None:
        """Highest-gain vertex satisfying *feasible* (not removed)."""
        if feasible is None:
            return self._scan(lambda v: True)
        return self._scan(feasible)

    def best_capped(self, w, cap: int) -> int | None:
        """:meth:`best` specialized to ``w[v] <= cap`` — the whole scan,
        staleness and weight test both, runs as chunked masks.

        The call starts with up to ``_PROBE`` scalar pops from the stack
        tail — most selections are decided there, at element-read cost —
        then falls back to the fused trim-and-test chunk walk, which
        computes each liveness mask once, truncates the stale tail with
        it, and applies the weight cap on top.  Either way the entry
        found is the same: the newest live entry passing the cap."""
        if self.count == 0:
            return None
        self._maybe_compact()
        gains, inside = self.gains, self.inside
        b = self.maxb
        probes = _PROBE
        while b >= 0:
            l = self.lens[b]
            buf = self.bufs[b]
            g = b - self.offset
            while l > 0 and probes > 0:
                v = buf[l - 1]
                if inside[v] and gains[v] == g:
                    # newest live entry of the whole structure: the
                    # stale tail above it is gone, and maxb settles
                    self.lens[b] = l
                    self.maxb = b
                    if w[v] <= cap:
                        return int(v)
                    # live but over cap: keep it, search older entries
                    return self._capped_vec(b, l - 1, True, w, cap)
                l -= 1
                probes -= 1
            self.lens[b] = l
            if l > 0:
                break  # probe budget spent mid-bucket: go vectorized
            b -= 1
        if b < 0:
            self.maxb = -1
            return None
        return self._capped_vec(b, self.lens[b], False, w, cap)

    def _capped_vec(self, b: int, l0: int, settled: bool, w, cap: int):
        """Chunk-mask continuation of :meth:`best_capped` from length
        *l0* of bucket *b* downward; *settled* says whether the newest
        live entry (hence ``maxb`` and the trim frontier) is known."""
        warr = w if isinstance(w, np.ndarray) else np.asarray(w, dtype=np.int64)
        gains, inside = self.gains, self.inside
        l = l0
        while b >= 0:
            buf = self.bufs[b]
            g = b - self.offset
            while l > 0:
                lo = l - _CHUNK if l > _CHUNK else 0
                seg = buf[lo:l]
                cur = inside[seg] & (gains[seg] == g)
                if cur.any():
                    if not settled:
                        # newest live entry of the whole structure: the
                        # stale tail above it can go, and maxb settles
                        li = lo + len(cur) - 1 - int(np.argmax(cur[::-1]))
                        self.lens[b] = li + 1
                        self.maxb = b
                        settled = True
                    ok = cur & (warr[seg] <= cap)
                    if ok.any():
                        return int(seg[len(ok) - 1 - int(np.argmax(ok[::-1]))])
                elif not settled and lo == 0:
                    self.lens[b] = 0
                l = lo
            b -= 1
            if b >= 0:
                l = self.lens[b]
        if not settled:
            self.maxb = -1
        return None

    def pop_best(self, feasible=None) -> int | None:
        """Like :meth:`best` but also removes the returned vertex."""
        v = self.best(feasible)
        if v is not None:
            self.remove(v)
        return v


class FlatMoveEngine:
    """Array-resident FM state plus the vectorized move kernel.

    Factored out of the pass loop so the inner loop is drivable on its
    own: :func:`fm_pass_flat` runs selection over it, and the
    ``repro-bench kernels`` inner-loop microbenchmark scripts identical
    move sequences through this engine and through the python reference
    (:meth:`FMCore.apply_move <repro.partitioner.refine.FMCore.apply_move>`)
    to time the move kernel without the shared vectorized pass setup.

    The caller owns the buckets (a ``(side0, side1)`` pair of
    :class:`FlatGainBucket` sharing :attr:`G`) and the selection policy;
    the engine owns eligibility bookkeeping: :meth:`lock` must be used
    instead of writing ``locked[v]`` directly so the combined
    free-and-unlocked mask stays coherent.
    """

    __slots__ = (
        "nv", "part", "pc0", "pc1", "free", "locked", "elig", "G",
        "xpins", "pins", "xpins_l", "pins_l", "xnets", "vnets",
        "cost", "w", "W", "buckets", "boundary_mode",
    )

    def __init__(self, core, G: np.ndarray, boundary_mode: bool = False):
        h = core.h
        self.nv = core.nv
        self.part = core.part_array().astype(np.int64)
        # pin counts and net costs live as python lists: the move kernels
        # only ever touch them per-net, where a list element read costs a
        # fraction of a numpy scalar gather
        self.pc0 = list(core.pc[0])
        self.pc1 = list(core.pc[1])
        self.free = np.asarray(core.free, dtype=bool)
        # per-pass masks come from the level arena when one is active:
        # engines never outlive their pass, so the site keys are safe
        self.locked = scratch("fm.locked", core.nv, bool, zero=True)
        # combined eligibility (free and not locked): the hot masks below
        # need one gather through this instead of two, and the moved
        # vertex itself is excluded for free because it is locked first
        self.elig = scratch("fm.elig", core.nv, bool)
        np.copyto(self.elig, self.free)
        self.G = G
        self.xpins, self.pins = h.xpins, h.pins
        # cached plain-list views for the scalar small-net event path
        self.xpins_l = h.xpins_list()
        self.pins_l = h.pins_list()
        self.xnets, self.vnets = h.xnets, h.vnets
        self.cost = h.net_costs.tolist()
        self.w = core.w  # python list: scalar reads in selection tests
        self.W = core.W  # shared with core, mutated in place
        self.buckets: tuple[FlatGainBucket, FlatGainBucket] | None = None
        self.boundary_mode = boundary_mode

    def lock(self, v: int) -> None:
        """Lock *v* for the rest of the pass (call before
        :meth:`apply_move`, after removing *v* from its bucket)."""
        self.locked[v] = True
        self.elig[v] = False

    def apply_move(self, v: int) -> None:
        """Vectorized critical-net gain updates of one move (see module
        docstring for the batch-equals-sequential argument).

        Gains are applied per event as the nets are walked (a vertex a
        move touches twice accumulates both deltas), then every touched
        pin is appended once per touch at its *final* gain, in event
        order.  The duplicate appends this creates are ordinary ghosts:
        the newest one sits at the vertex's last-touch position — exactly
        where the reference's relinking leaves it — and older duplicates
        can only repeat a deterministic rejection, never change a
        selection.  This keeps the move free of sorting or dedup over
        the touch stream (per-bucket grouping of the single batched
        append is the only reordering, and it is a radix argsort).
        """
        part, elig, G = self.part, self.elig, self.G
        pins, xpins = self.pins, self.xpins
        pl, xl = self.pins_l, self.xpins_l
        frm = int(part[v])
        to = 1 - frm
        pcf, pct = (self.pc0, self.pc1) if frm == 0 else (self.pc1, self.pc0)
        cost = self.cost
        # touch events, chronological: ints (scalar path and the
        # first-matching-pin cases) or arrays (large-net mass bumps)
        ev_v: list = []
        has_arr = False
        # per-net pc updates interleave with that net's event: each
        # event reads only its own net's counts (T/F before the move)
        # plus part/elig, which both stay untouched until after the loop
        for n in self.vnets[self.xnets[v] : self.xnets[v + 1]].tolist():
            c = cost[n]
            if c:
                T = pct[n]
                F = pcf[n]
                if T == 0 or F == 1 or F == 2 or T == 1:
                    lo = xl[n]
                    hi = xl[n + 1]
                    if hi - lo <= _SCALAR_NET:
                        # small net: interpreted loops over the cached
                        # pin list — same cases, same order, no numpy
                        # fixed costs (see _SCALAR_NET)
                        if T == 0:
                            # elig excludes v (locked) — same set as the
                            # reference's u != v / not locked/free test
                            for i in range(lo, hi):
                                u = pl[i]
                                if elig[u]:
                                    G[u] += c
                                    ev_v.append(u)
                        elif T == 1:
                            # the reference bumps the first to-side pin
                            for i in range(lo, hi):
                                u = pl[i]
                                if part[u] == to:
                                    if elig[u]:
                                        G[u] -= c
                                        ev_v.append(u)
                                    break
                        if F == 1:
                            for i in range(lo, hi):
                                u = pl[i]
                                if elig[u]:
                                    G[u] -= c
                                    ev_v.append(u)
                        elif F == 2:
                            for i in range(lo, hi):
                                u = pl[i]
                                if u != v and part[u] == frm:
                                    if elig[u]:
                                        G[u] += c
                                        ev_v.append(u)
                                    break
                    else:
                        seg = pins[lo:hi]
                        if T == 0:
                            el = seg[elig[seg]]
                            if len(el):
                                G[el] += c
                                ev_v.append(el)
                                has_arr = True
                        elif T == 1:
                            i = int(np.argmax(part[seg] == to))
                            u = int(seg[i])
                            if elig[u]:
                                G[u] -= c
                                ev_v.append(u)
                        if F == 1:
                            el = seg[elig[seg]]
                            if len(el):
                                G[el] -= c
                                ev_v.append(el)
                                has_arr = True
                        elif F == 2:
                            i = int(np.argmax((seg != v) & (part[seg] == frm)))
                            u = int(seg[i])
                            if elig[u]:
                                G[u] += c
                                ev_v.append(u)
            pcf[n] -= 1
            pct[n] += 1
        part[v] = to
        wv = self.w[v]
        W = self.W
        W[frm] -= wv
        W[to] += wv
        G[v] = -G[v]
        if not ev_v:
            return
        buckets = self.buckets
        if not has_arr:
            # all events are single vertices (the typical small-net
            # move): push each at its final gain, in event order — the
            # per-side split of the batch tail below preserves exactly
            # this chronological order per bucket, so the stacks match
            boundary = self.boundary_mode
            for u in ev_v:
                bk = buckets[int(part[u])]
                if boundary and not bk.inside[u]:
                    bk.inside[u] = True
                    bk.count += 1
                bk._push(int(G[u]) + bk.offset, u)
            return
        if len(ev_v) == 1:
            ev = ev_v[0]
        else:
            ev = np.concatenate(
                [
                    e
                    if isinstance(e, np.ndarray)
                    else np.array([e], dtype=np.int64)
                    for e in ev_v
                ]
            )
        for s in (0, 1):
            bk = buckets[s]
            tv = ev[part[ev] == s]
            if len(tv) == 0:
                continue
            if self.boundary_mode:
                ins = bk.inside[tv]
                fresh = tv[~ins]
                if len(fresh):
                    bk.inside[fresh] = True
                    # fresh may repeat a vertex touched twice within one
                    # move: count distinct entries only (O(|fresh|), not
                    # the O(nv) full recount this replaces)
                    if len(fresh) == 1:
                        bk.count += 1
                    else:
                        bk.count += len(np.unique(fresh))
                app = tv
            else:
                # every eligible vertex was seeded and only selection
                # removes (and locks) — touched pins are always inside
                app = tv
            if len(app):
                bk._append_grouped(app, G[app] + bk.offset)

    def undo_move(self, v: int) -> None:
        """Reverse one applied move (vectorized pc undo); gains and
        buckets are not restored — rollback discards the pass state."""
        part = self.part
        frm = int(part[v])  # side v is on now
        to = 1 - frm
        pcf, pct = (self.pc0, self.pc1) if frm == 0 else (self.pc1, self.pc0)
        for n in self.vnets[self.xnets[v] : self.xnets[v + 1]].tolist():
            pcf[n] -= 1
            pct[n] += 1
        part[v] = to
        wv = self.w[v]
        W = self.W
        W[frm] -= wv
        W[to] += wv
        self.locked[v] = False
        self.elig[v] = self.free[v]

    def writeback(self, core) -> None:
        """Write array state back to *core* so the next pass (any tier)
        sees it."""
        core.part = self.part.tolist()
        core.pc = [list(self.pc0), list(self.pc1)]
        core.gain = self.G.tolist()
        core.locked = self.locked.tolist()


def _excess(W, maxw) -> int:
    return max(0, W[0] - maxw[0]) + max(0, W[1] - maxw[1])


def fm_pass_flat(core, maxw, cfg, rng) -> tuple[int, bool]:
    """One FM pass over *core* using the flat kernel.

    Bit-identical to :func:`repro.partitioner.refine._fm_pass`: same RNG
    consumption, same selection order, same moves, same rollback.  Core
    state (part/pc/W/gain/locked) is converted to arrays for the pass and
    written back at the end, so passes of different tiers can interleave.
    """
    nv = core.nv
    core.compute_all_gains()
    G = np.asarray(core.gain, dtype=np.int64)
    core.locked = [False] * nv

    boundary_mode = nv > cfg.fm_boundary_threshold
    if boundary_mode:
        cand = core.boundary_vertices()
    else:
        cand = np.arange(nv)
    free = np.asarray(core.free, dtype=bool)
    cand = cand[free[cand]]
    if len(cand) == 0:
        core.pass_events = 0
        return 0, False

    eng = FlatMoveEngine(core, G, boundary_mode)
    part = eng.part
    w = eng.w  # python list: scalar reads in the selection tests
    w_arr = np.asarray(w, dtype=np.int64)  # vectorized best_capped scans
    W = eng.W

    bound = core.max_gain_bound()
    b0 = FlatGainBucket(
        nv, bound, gains=G, inside=scratch("fm.inside0", nv, bool, zero=True)
    )
    b1 = FlatGainBucket(
        nv, bound, gains=G, inside=scratch("fm.inside1", nv, bool, zero=True)
    )
    buckets = (b0, b1)
    eng.buckets = buckets
    # identical RNG consumption and seeding order to the reference pass
    seq = cand[rng.permutation(len(cand))]
    side = part[seq]
    b0.bulk_insert(seq[side == 0], G[seq[side == 0]])
    b1.bulk_insert(seq[side == 1], G[seq[side == 1]])

    exc0 = _excess(W, maxw)
    moves: list[int] = []
    cum = 0
    best_cum = 0
    best_idx = 0
    best_feasible = exc0 == 0
    best_excess = exc0
    stall_window = max(int(cfg.fm_stall_frac * len(cand)), cfg.fm_stall_min)
    stalls = 0

    def feasible_to(side_to: int):
        cap = maxw[side_to] - W[side_to]
        side_frm = 1 - side_to
        over_frm = W[side_frm] > maxw[side_frm]

        def ok(v: int) -> bool:
            wv = w[v]
            if wv <= cap:
                return True
            if not over_frm:
                return False
            red = min(wv, W[side_frm] - maxw[side_frm])
            inc = max(0, W[side_to] + wv - maxw[side_to])
            return inc < red

        return ok

    max_moves = nv
    for _ in range(max_moves):
        if W[0] > maxw[0]:
            v0 = b0.best(feasible_to(1))
        else:
            v0 = b0.best_capped(w_arr, maxw[1] - W[1])
        if W[1] > maxw[1]:
            v1 = b1.best(feasible_to(0))
        else:
            v1 = b1.best_capped(w_arr, maxw[0] - W[0])
        if v0 is None and v1 is None:
            break
        if v0 is None:
            v = v1
        elif v1 is None:
            v = v0
        else:
            g0, g1 = int(G[v0]), int(G[v1])
            if g0 > g1:
                v = v0
            elif g1 > g0:
                v = v1
            else:
                v = v0 if W[0] >= W[1] else v1
        buckets[int(part[v])].remove(v)
        eng.lock(v)
        g = int(G[v])
        eng.apply_move(v)
        moves.append(v)
        cum += g
        e0 = W[0] - maxw[0]
        e1 = W[1] - maxw[1]
        exc = (e0 if e0 > 0 else 0) + (e1 if e1 > 0 else 0)
        feas = exc == 0
        better = False
        if feas and not best_feasible:
            better = True
        elif feas == best_feasible:
            if feas:
                better = cum > best_cum
            else:
                better = (exc < best_excess) or (
                    exc == best_excess and cum > best_cum
                )
        if better:
            best_cum = cum
            best_idx = len(moves)
            best_feasible = feas
            best_excess = exc
            stalls = 0
        else:
            stalls += 1
            if stalls > stall_window:
                break

    # roll back to the best prefix
    for v in reversed(moves[best_idx:]):
        eng.undo_move(v)

    eng.writeback(core)

    core.pass_events = len(moves)
    rec = get_recorder()
    if rec.enabled:
        rec.add("fm.moves", best_idx)
        rec.add("fm.rollbacks", len(moves) - best_idx)
    changed = best_idx > 0
    return (best_cum if changed else 0), changed
