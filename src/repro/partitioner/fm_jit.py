"""The ``jit`` kernel tier: numba-compiled FM refinement and matching.

A sequential port of the reference hot loops
(:func:`repro.partitioner.refine._fm_pass` + ``FMCore.apply_move`` and
:func:`repro.partitioner.coarsen._match_scalar`) onto flat numpy arrays,
written in the numba ``nopython`` subset.  When numba is importable the
functions are compiled at import time; when it is not, they remain plain
Python functions — far too slow to use in anger (the kernel resolver
falls back to ``flat``), but exactly executable, which is how the test
suite asserts the jit tier's bit-identity without numba installed.

``import repro`` never requires numba: the import of this module is
probe-guarded behind :func:`repro.partitioner.kernels.kernel_available`.

Structure notes (numba constraints, not style):

* the two gain buckets are classic doubly-linked bucket lists over
  ``(2, n)`` arrays — one row per side — with ``(2,)`` arrays for the
  max-bucket pointer and entry count, because scalars cannot be passed
  by reference;
* the bucket gain of a stored vertex always equals its global gain
  (the reference maintains the same invariant through ``FMCore._bump``),
  so no separate per-bucket gain array is needed;
* growable outputs (clusters) are preallocated to the vertex count.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_ERROR",
    "fm_pass_jit",
    "match_jit",
    "warmup",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
    NUMBA_ERROR = None

    def _jit(fn):
        return numba.njit(nogil=True)(fn)

except ImportError as _exc:  # numba optional: interpreted fallback
    NUMBA_AVAILABLE = False
    NUMBA_ERROR = str(_exc)

    def _jit(fn):
        return fn


def _bump(
    u, delta, part, gain, heads, nxt, prv, inside,
    locked, free, offset, insert_on_touch, maxptr, count,
):
    """Gain delta on vertex *u*, relinking its bucket entry (reference:
    ``FMCore._bump``)."""
    gold = gain[u]
    g = gold + delta
    gain[u] = g
    s = part[u]
    b = g + offset
    if inside[s, u]:
        nx = nxt[s, u]
        pv = prv[s, u]
        if pv != -1:
            nxt[s, pv] = nx
        else:
            heads[s, gold + offset] = nx
        if nx != -1:
            prv[s, nx] = pv
        hd = heads[s, b]
        nxt[s, u] = hd
        prv[s, u] = -1
        if hd != -1:
            prv[s, hd] = u
        heads[s, b] = u
        if b > maxptr[s]:
            maxptr[s] = b
    elif insert_on_touch and not locked[u] and free[u]:
        hd = heads[s, b]
        nxt[s, u] = hd
        prv[s, u] = -1
        if hd != -1:
            prv[s, hd] = u
        heads[s, b] = u
        inside[s, u] = True
        count[s] += 1
        if b > maxptr[s]:
            maxptr[s] = b


def _best_capped(s, cap, heads, nxt, maxptr, count, w):
    """Reference: ``GainBucket.best_capped`` — returns -1 for None."""
    if count[s] == 0:
        return -1
    m = maxptr[s]
    while m >= 0 and heads[s, m] == -1:
        m -= 1
    maxptr[s] = m
    for b in range(m, -1, -1):
        v = heads[s, b]
        while v != -1:
            if w[v] <= cap:
                return v
            v = nxt[s, v]
    return -1


def _best_feasible(s, to, heads, nxt, maxptr, count, w, W, maxw):
    """Reference: ``GainBucket.best`` under ``_fm_pass.feasible_to`` —
    weight cap plus the rescue-move rule for an overweight source."""
    if count[s] == 0:
        return -1
    cap = maxw[to] - W[to]
    frm = 1 - to
    over_frm = W[frm] > maxw[frm]
    m = maxptr[s]
    while m >= 0 and heads[s, m] == -1:
        m -= 1
    maxptr[s] = m
    for b in range(m, -1, -1):
        v = heads[s, b]
        while v != -1:
            wv = w[v]
            if wv <= cap:
                return v
            if over_frm:
                red = W[frm] - maxw[frm]
                if wv < red:
                    red = wv
                inc = W[to] + wv - maxw[to]
                if inc < 0:
                    inc = 0
                if inc < red:
                    return v
            v = nxt[s, v]
    return -1


def _fm_pass_arrays(
    xpins, pins, xnets, vnets, w, cost,
    part, pc, gain, locked, free, W, maxw,
    seq, offset, insert_on_touch, stall_window,
):
    """One full FM pass on flat arrays; mutates part/pc/gain/locked/W in
    place and returns ``(best_cum, best_idx, n_moves)``.

    A statement-for-statement port of ``_fm_pass`` + ``FMCore.apply_move``
    + ``FMCore.undo_move``; every loop visits vertices and pins in the
    same order as the reference, so the result is bit-identical.
    """
    nv = part.shape[0]
    nbuckets = 2 * offset + 1
    heads = np.full((2, nbuckets), -1, dtype=np.int64)
    nxt = np.full((2, nv), -1, dtype=np.int64)
    prv = np.full((2, nv), -1, dtype=np.int64)
    inside = np.zeros((2, nv), dtype=np.bool_)
    maxptr = np.full(2, -1, dtype=np.int64)
    count = np.zeros(2, dtype=np.int64)

    # sequential inserts reproduce bulk_insert's LIFO bucket order exactly
    for i in range(seq.shape[0]):
        v = seq[i]
        s = part[v]
        b = gain[v] + offset
        hd = heads[s, b]
        nxt[s, v] = hd
        prv[s, v] = -1
        if hd != -1:
            prv[s, hd] = v
        heads[s, b] = v
        inside[s, v] = True
        count[s] += 1
        if b > maxptr[s]:
            maxptr[s] = b

    e0 = W[0] - maxw[0]
    e1 = W[1] - maxw[1]
    exc0 = (e0 if e0 > 0 else 0) + (e1 if e1 > 0 else 0)
    moves = np.empty(nv, dtype=np.int64)
    n_moves = 0
    cum = 0
    best_cum = 0
    best_idx = 0
    best_feasible = exc0 == 0
    best_excess = exc0
    stalls = 0

    for _ in range(nv):
        if W[0] > maxw[0]:
            v0 = _best_feasible(0, 1, heads, nxt, maxptr, count, w, W, maxw)
        else:
            v0 = _best_capped(0, maxw[1] - W[1], heads, nxt, maxptr, count, w)
        if W[1] > maxw[1]:
            v1 = _best_feasible(1, 0, heads, nxt, maxptr, count, w, W, maxw)
        else:
            v1 = _best_capped(1, maxw[0] - W[0], heads, nxt, maxptr, count, w)
        if v0 == -1 and v1 == -1:
            break
        if v0 == -1:
            v = v1
        elif v1 == -1:
            v = v0
        else:
            g0 = gain[v0]
            g1 = gain[v1]
            if g0 > g1:
                v = v0
            elif g1 > g0:
                v = v1
            else:
                v = v0 if W[0] >= W[1] else v1

        # remove v from its bucket
        s = part[v]
        nx = nxt[s, v]
        pv = prv[s, v]
        if pv != -1:
            nxt[s, pv] = nx
        else:
            heads[s, gain[v] + offset] = nx
        if nx != -1:
            prv[s, nx] = pv
        inside[s, v] = False
        count[s] -= 1
        locked[v] = True
        g = gain[v]

        # apply_move(v, update_gains=True)
        frm = part[v]
        to = 1 - frm
        for ni in range(xnets[v], xnets[v + 1]):
            n = vnets[ni]
            c = cost[n]
            T = pc[to, n]
            F = pc[frm, n]
            if c != 0:
                lo = xpins[n]
                hi = xpins[n + 1]
                if T == 0:
                    for j in range(lo, hi):
                        u = pins[j]
                        if u != v and not locked[u] and free[u]:
                            _bump(u, c, part, gain, heads, nxt, prv, inside,
                                  locked, free, offset, insert_on_touch,
                                  maxptr, count)
                elif T == 1:
                    for j in range(lo, hi):
                        u = pins[j]
                        if part[u] == to:
                            if not locked[u] and free[u]:
                                _bump(u, -c, part, gain, heads, nxt, prv,
                                      inside, locked, free, offset,
                                      insert_on_touch, maxptr, count)
                            break
                if F == 1:
                    for j in range(lo, hi):
                        u = pins[j]
                        if u != v and not locked[u] and free[u]:
                            _bump(u, -c, part, gain, heads, nxt, prv, inside,
                                  locked, free, offset, insert_on_touch,
                                  maxptr, count)
                elif F == 2:
                    for j in range(lo, hi):
                        u = pins[j]
                        if u != v and part[u] == frm:
                            if not locked[u] and free[u]:
                                _bump(u, c, part, gain, heads, nxt, prv,
                                      inside, locked, free, offset,
                                      insert_on_touch, maxptr, count)
                            break
            pc[frm, n] = F - 1
            pc[to, n] = T + 1
        part[v] = to
        wv = w[v]
        W[frm] -= wv
        W[to] += wv
        gain[v] = -gain[v]

        moves[n_moves] = v
        n_moves += 1
        cum += g
        e0 = W[0] - maxw[0]
        e1 = W[1] - maxw[1]
        exc = (e0 if e0 > 0 else 0) + (e1 if e1 > 0 else 0)
        feas = exc == 0
        better = False
        if feas and not best_feasible:
            better = True
        elif feas == best_feasible:
            if feas:
                better = cum > best_cum
            else:
                better = (exc < best_excess) or (
                    exc == best_excess and cum > best_cum
                )
        if better:
            best_cum = cum
            best_idx = n_moves
            best_feasible = feas
            best_excess = exc
            stalls = 0
        else:
            stalls += 1
            if stalls > stall_window:
                break

    # roll back to the best prefix (undo_move, no gain maintenance)
    for i in range(n_moves - 1, best_idx - 1, -1):
        v = moves[i]
        frm = part[v]
        to = 1 - frm
        for ni in range(xnets[v], xnets[v + 1]):
            n = vnets[ni]
            pc[frm, n] -= 1
            pc[to, n] += 1
        part[v] = to
        wv = w[v]
        W[frm] -= wv
        W[to] += wv
        locked[v] = False

    return best_cum, best_idx, n_moves


def _match_arrays(
    xpins, pins, xnets, vnets, w, cost, order,
    has_part, part, has_fix, fix,
    cluster, cweight, cfixed,
    hcm, max_net_size, max_cluster_weight,
):
    """HCM/HCC matching on flat arrays; reference:
    ``coarsen._match_scalar`` (per-pin branch).

    Mutates ``cluster``/``cweight``/``cfixed`` (preallocated to the
    vertex count) and returns ``(n_clusters, pins_visited)``.  Scores
    accumulate per pin in net order — the same float addition order as
    the reference, so selections are bit-identical.
    """
    nv = cluster.shape[0]
    score = np.zeros(nv, dtype=np.float64)
    touched = np.empty(nv, dtype=np.int64)
    ncl = 0
    pins_visited = 0

    for oi in range(order.shape[0]):
        v = order[oi]
        if cluster[v] != -1:
            continue
        fv = fix[v] if has_fix else -1
        wv = w[v]
        pv = part[v] if has_part else -1
        n_touched = 0
        for ni in range(xnets[v], xnets[v + 1]):
            n = vnets[ni]
            lo = xpins[n]
            hi = xpins[n + 1]
            sz = hi - lo
            if sz == 2 and 2 <= max_net_size:
                pins_visited += 2
                u = pins[lo]
                if u == v:
                    u = pins[lo + 1]
                if score[u] == 0.0:
                    touched[n_touched] = u
                    n_touched += 1
                score[u] += cost[n]
                continue
            if sz < 2 or sz > max_net_size:
                continue
            pins_visited += sz
            sc = cost[n] / (sz - 1)
            for j in range(lo, hi):
                u = pins[j]
                if u != v:
                    if score[u] == 0.0:
                        touched[n_touched] = u
                        n_touched += 1
                    score[u] += sc
        best_u = -1
        best_s = 0.0
        for ti in range(n_touched):
            u = touched[ti]
            s = score[u]
            score[u] = 0.0
            if s <= best_s:
                continue
            if has_part and part[u] != pv:
                continue
            cu = cluster[u]
            if hcm and cu != -1:
                continue
            tw = (cweight[cu] if cu != -1 else w[u]) + wv
            if tw > max_cluster_weight:
                continue
            if cu != -1:
                fu = cfixed[cu]
            elif has_fix:
                fu = fix[u]
            else:
                fu = -1
            if fv != -1 and fu != -1 and fu != fv:
                continue
            best_u = u
            best_s = s
        if best_u == -1:
            cluster[v] = ncl
            cweight[ncl] = wv
            cfixed[ncl] = fv
            ncl += 1
        else:
            cu = cluster[best_u]
            if cu == -1:
                cu = ncl
                cweight[cu] = w[best_u]
                cfixed[cu] = fix[best_u] if has_fix else -1
                cluster[best_u] = cu
                ncl += 1
            cluster[v] = cu
            cweight[cu] += wv
            if fv != -1:
                cfixed[cu] = fv
    return ncl, pins_visited


_bump = _jit(_bump)
_best_capped = _jit(_best_capped)
_best_feasible = _jit(_best_feasible)
_fm_pass_arrays = _jit(_fm_pass_arrays)
_match_arrays = _jit(_match_arrays)


def fm_pass_jit(core, maxw, cfg, rng) -> tuple[int, bool]:
    """One FM pass over *core* using the jit kernel.

    Same conversion contract as :func:`repro.partitioner.fm_flat.fm_pass_flat`:
    identical RNG consumption, core state written back at the end.
    """
    from repro.telemetry import get_recorder

    h = core.h
    nv = core.nv
    core.compute_all_gains()
    gain = np.asarray(core.gain, dtype=np.int64)
    core.locked = [False] * nv

    boundary_mode = nv > cfg.fm_boundary_threshold
    if boundary_mode:
        cand = core.boundary_vertices()
    else:
        cand = np.arange(nv)
    free = np.asarray(core.free, dtype=np.bool_)
    cand = cand[free[cand]]
    if len(cand) == 0:
        return 0, False

    part = core.part_array().astype(np.int64)
    pc = np.stack(
        [np.asarray(core.pc[0], dtype=np.int64),
         np.asarray(core.pc[1], dtype=np.int64)]
    )
    locked = np.zeros(nv, dtype=np.bool_)
    W = np.asarray(core.W, dtype=np.int64)
    maxw_a = np.asarray(maxw, dtype=np.int64)
    w = np.asarray(h.vertex_weights, dtype=np.int64)
    seq = cand[rng.permutation(len(cand))].astype(np.int64)
    stall_window = max(int(cfg.fm_stall_frac * len(cand)), cfg.fm_stall_min)

    best_cum, best_idx, n_moves = _fm_pass_arrays(
        h.xpins.astype(np.int64), h.pins.astype(np.int64),
        h.xnets.astype(np.int64), h.vnets.astype(np.int64),
        w, np.asarray(h.net_costs, dtype=np.int64),
        part, pc, gain, locked, free, W, maxw_a,
        seq, int(core.max_gain_bound()), boundary_mode, stall_window,
    )

    core.part = part.tolist()
    core.pc = [pc[0].tolist(), pc[1].tolist()]
    core.gain = gain.tolist()
    core.locked = locked.tolist()
    core.W = [int(W[0]), int(W[1])]

    rec = get_recorder()
    if rec.enabled:
        rec.add("fm.moves", best_idx)
        rec.add("fm.rollbacks", n_moves - best_idx)
    changed = best_idx > 0
    return (int(best_cum) if changed else 0), changed


def match_jit(
    h, order, part_l, w, fix, cluster, cweight, cfixed,
    hcm, max_net_size, max_cluster_weight,
) -> int:
    """Matcher entry with the same list-based contract as
    ``coarsen._match_scalar`` / ``_match_chunked`` (mutates *cluster*,
    appends to *cweight*/*cfixed*, returns pins visited)."""
    nv = h.num_vertices
    cl = np.full(nv, -1, dtype=np.int64)
    cw = np.zeros(nv, dtype=np.int64)
    cf = np.full(nv, -1, dtype=np.int64)
    has_part = part_l is not None
    has_fix = fix is not None
    part_a = (
        np.asarray(part_l, dtype=np.int64) if has_part
        else np.zeros(0, dtype=np.int64)
    )
    fix_a = (
        np.asarray(fix, dtype=np.int64) if has_fix
        else np.zeros(0, dtype=np.int64)
    )
    ncl, pins_visited = _match_arrays(
        h.xpins.astype(np.int64), h.pins.astype(np.int64),
        h.xnets.astype(np.int64), h.vnets.astype(np.int64),
        np.asarray(h.vertex_weights, dtype=np.int64),
        np.asarray(h.net_costs, dtype=np.int64),
        order.astype(np.int64),
        has_part, part_a, has_fix, fix_a,
        cl, cw, cf,
        hcm, max_net_size, max_cluster_weight,
    )
    cluster[:] = cl.tolist()
    cweight.extend(cw[:ncl].tolist())
    cfixed.extend(cf[:ncl].tolist())
    return int(pins_visited)


def warmup() -> None:
    """Trigger compilation of the jitted kernels on a tiny instance so
    the first real partition does not pay the compile latency."""
    xpins = np.array([0, 2, 4], dtype=np.int64)
    pins = np.array([0, 1, 1, 2], dtype=np.int64)
    xnets = np.array([0, 1, 3, 4], dtype=np.int64)
    vnets = np.array([0, 0, 1, 1], dtype=np.int64)
    w = np.ones(3, dtype=np.int64)
    cost = np.ones(2, dtype=np.int64)
    part = np.array([0, 0, 1], dtype=np.int64)
    pc = np.array([[2, 1], [0, 1]], dtype=np.int64)
    gain = np.zeros(3, dtype=np.int64)
    locked = np.zeros(3, dtype=np.bool_)
    free = np.ones(3, dtype=np.bool_)
    W = np.array([2, 1], dtype=np.int64)
    maxw = np.array([2, 2], dtype=np.int64)
    seq = np.array([0, 1, 2], dtype=np.int64)
    _fm_pass_arrays(
        xpins, pins, xnets, vnets, w, cost, part, pc, gain, locked, free,
        W, maxw, seq, 2, False, 50,
    )
    _match_arrays(
        xpins, pins, xnets, vnets, w, cost, seq,
        False, np.zeros(0, dtype=np.int64), False, np.zeros(0, dtype=np.int64),
        np.full(3, -1, dtype=np.int64), np.zeros(3, dtype=np.int64),
        np.full(3, -1, dtype=np.int64), False, 300, 3,
    )
