"""K-way partitioning by recursive bisection with cut-net splitting.

The key correctness device is *cut-net splitting* (Çatalyürek & Aykanat,
TPDS 1999): after a bisection, each net keeps its pins **within each side**
when the sides are partitioned recursively (nets reduced to fewer than two
pins are dropped).  With this construction the sum of all bisection cuts
along the recursion tree equals the connectivity-minus-one cutsize (Eq. 3)
of the final K-way partition, so minimizing each bisection cut minimizes
the paper's exact communication-volume objective.

Arbitrary K is supported (not only powers of two) by splitting K into
``ceil(K/2)`` and ``floor(K/2)`` with proportional target weights.

Execution models
----------------
*Legacy sequential* (``cfg.tree_parallel=False``, the default): one RNG
stream threads through the tree in depth-first visit order — kept
bit-compatible with the original implementation (golden-partition suite).

*Seed-tree* (``cfg.tree_parallel=True``): each recursion node draws its
randomness from ``SeedSequence(root_entropy, spawn_key=tree_path)`` where
``tree_path`` is the 0/1 left/right path from the root.  Child seeds are a
function of the parent seed and the path — never of call order — so the
two subproblems a bisection produces are schedulable tasks: a
:class:`~repro.partitioner.pool.TreeScheduler` may run either side on a
worker while the caller walks the other, and the result is **bit-identical**
to running the whole tree serially, at any worker count, on any backend.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import TimeoutError as _FutureTimeout

import numpy as np

from repro._util import INDEX_DTYPE, as_rng
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.bisect import multilevel_bisect
from repro.partitioner.config import PartitionerConfig
from repro.telemetry import get_recorder
from repro.verify.faults import trip as _fault_trip

__all__ = ["partition_recursive", "extract_side", "bisection_epsilon"]

#: entropy range for the seed-tree root (any node RNG derives from this one
#: integer plus its tree path)
_ENTROPY_BOUND = 2**63 - 1


def bisection_epsilon(epsilon: float, k: int) -> float:
    """Per-bisection slack so the compounded K-way imbalance stays <= eps.

    With ``L = ceil(log2 K)`` bisection levels the per-level tolerance
    ``(1 + eps')^L = 1 + eps`` keeps the final part weights within Eq. 1.
    """
    levels = max(int(math.ceil(math.log2(max(k, 2)))), 1)
    return (1.0 + epsilon) ** (1.0 / levels) - 1.0


def extract_side(
    h: Hypergraph,
    part01: np.ndarray,
    side: int,
    fixed: np.ndarray | None = None,
) -> tuple[Hypergraph, np.ndarray, np.ndarray | None]:
    """Sub-hypergraph induced on one side of a bisection, with cut-net
    splitting.

    Returns ``(sub_h, vertex_ids, sub_fixed)`` where ``vertex_ids`` maps the
    sub-hypergraph's vertices back to *h*'s vertex ids.  Nets keep exactly
    their pins on *side*; nets left with fewer than two pins are removed
    (single-pin nets cannot contribute to any cut).
    """
    vmask = part01 == side
    vertex_ids = np.flatnonzero(vmask)
    old2new = np.full(h.num_vertices, -1, dtype=INDEX_DTYPE)
    old2new[vertex_ids] = np.arange(len(vertex_ids), dtype=INDEX_DTYPE)

    net_of_pin = h.net_of_pin()
    pin_on_side = vmask[h.pins]
    kept_nets_of_pin = net_of_pin[pin_on_side]
    kept_pins = old2new[h.pins[pin_on_side]]
    sizes = np.bincount(kept_nets_of_pin, minlength=h.num_nets)
    keep_net = sizes >= 2
    # filter pins belonging to dropped nets
    pin_keep = keep_net[kept_nets_of_pin]
    kept_pins = kept_pins[pin_keep]
    kept_sizes = sizes[keep_net]
    xpins = np.empty(len(kept_sizes) + 1, dtype=INDEX_DTYPE)
    xpins[0] = 0
    np.cumsum(kept_sizes, out=xpins[1:])
    sub = Hypergraph(
        len(vertex_ids),
        xpins,
        kept_pins,
        vertex_weights=h.vertex_weights[vertex_ids],
        net_costs=h.net_costs[keep_net],
        validate=False,
    )
    sub_fixed = fixed[vertex_ids] if fixed is not None else None
    return sub, vertex_ids, sub_fixed


def _split_targets(h: Hypergraph, k: int) -> tuple[int, int, int, int]:
    """``(k1, k2, t0, t1)``: side part counts and target weights."""
    k1 = (k + 1) // 2  # parts [0, k1) go to side 0
    k2 = k - k1
    total = h.total_vertex_weight()
    t0 = int(round(total * k1 / k))
    t1 = total - t0
    return k1, k2, t0, t1


def _side_fixed(
    fixed: np.ndarray | None, vertex_ids: np.ndarray, offset: int
) -> np.ndarray | None:
    if fixed is None:
        return None
    f = fixed[vertex_ids]
    return np.where(f >= 0, f - offset, -1).astype(INDEX_DTYPE)


def partition_recursive(
    h: Hypergraph,
    k: int,
    cfg: PartitionerConfig,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
    _eps_b: float | None = None,
    scheduler=None,
) -> tuple[np.ndarray, list[int]]:
    """Partition *h* into *k* parts; returns ``(part, bisection_cuts)``.

    ``fixed`` pins vertices to final part ids in ``[0, k)``.
    ``bisection_cuts`` lists the cut of every bisection performed; their sum
    equals the connectivity-minus-one cutsize of the returned partition
    (property 4 of DESIGN.md, asserted by the test suite).  The cuts are
    listed in depth-first (root, left subtree, right subtree) order in both
    execution models.

    ``scheduler`` (a :class:`~repro.partitioner.pool.TreeScheduler`) only
    matters with ``cfg.tree_parallel=True``; it may run subtrees on workers
    without changing a single bit of the output.
    """
    rng = as_rng(rng)
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return np.zeros(h.num_vertices, dtype=INDEX_DTYPE), []
    eps_b = bisection_epsilon(cfg.epsilon, k) if _eps_b is None else _eps_b

    if cfg.tree_parallel:
        # one draw fixes the whole seed tree; everything below is a pure
        # function of (entropy, tree path) — execution order is irrelevant
        entropy = int(rng.integers(0, _ENTROPY_BOUND))
        return _solve_node(h, k, cfg, entropy, (), fixed, eps_b, scheduler)
    return _solve_sequential(h, k, cfg, rng, fixed, eps_b)


def _solve_sequential(
    h: Hypergraph,
    k: int,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    fixed: np.ndarray | None,
    eps_b: float,
) -> tuple[np.ndarray, list[int]]:
    """Legacy model: one RNG stream, depth-first order (bit-pinned)."""
    if k == 1:
        return np.zeros(h.num_vertices, dtype=INDEX_DTYPE), []
    k1, k2, t0, t1 = _split_targets(h, k)

    fixed01 = None
    if fixed is not None:
        fixed01 = np.where(fixed >= 0, (fixed >= k1).astype(INDEX_DTYPE), -1)

    rec = get_recorder()
    with rec.span("bisection", k=k, vertices=h.num_vertices, nets=h.num_nets) as sp:
        part01, cut = multilevel_bisect(h, (t0, t1), eps_b, cfg, rng, fixed01)
        cuts = [cut]
        sp.set(cut=cut)

        part = np.zeros(h.num_vertices, dtype=INDEX_DTYPE)
        for side, k_side, offset in ((0, k1, 0), (1, k2, k1)):
            sub, vertex_ids, _ = extract_side(h, part01, side)
            sub_fixed = _side_fixed(fixed, vertex_ids, offset)
            sub_part, sub_cuts = _solve_sequential(
                sub, k_side, cfg, rng, sub_fixed, eps_b
            )
            part[vertex_ids] = offset + sub_part
            cuts.extend(sub_cuts)
    return part, cuts


def _node_rng(entropy: int, path: tuple[int, ...]) -> np.random.Generator:
    """The per-node generator of the seed tree (pure function of the path)."""
    return np.random.default_rng(np.random.SeedSequence(entropy, spawn_key=path))


def _path_label(path: tuple[int, ...]) -> str:
    """Human-readable tree path for telemetry: root ``r``, children ``r0``…"""
    return "r" + "".join(str(b) for b in path)


def _solve_subtree(
    h: Hypergraph,
    k: int,
    cfg: PartitionerConfig,
    entropy: int,
    path: tuple[int, ...],
    fixed: np.ndarray | None,
    eps_b: float,
) -> tuple[np.ndarray, list[int]]:
    """Worker task body: solve one subtree inline (top-level for pickling)."""
    _fault_trip("tree.task")
    return _solve_node(h, k, cfg, entropy, path, fixed, eps_b, None)


def _solve_node(
    h: Hypergraph,
    k: int,
    cfg: PartitionerConfig,
    entropy: int,
    path: tuple[int, ...],
    fixed: np.ndarray | None,
    eps_b: float,
    sched,
) -> tuple[np.ndarray, list[int]]:
    """Seed-tree model: solve the recursion node at *path*."""
    if k == 1:
        return np.zeros(h.num_vertices, dtype=INDEX_DTYPE), []
    k1, k2, t0, t1 = _split_targets(h, k)

    fixed01 = None
    if fixed is not None:
        fixed01 = np.where(fixed >= 0, (fixed >= k1).astype(INDEX_DTYPE), -1)

    rec = get_recorder()
    with rec.span(
        "bisection",
        k=k,
        vertices=h.num_vertices,
        nets=h.num_nets,
        path=_path_label(path),
        depth=len(path),
    ) as sp:
        part01, cut = multilevel_bisect(
            h, (t0, t1), eps_b, cfg, _node_rng(entropy, path), fixed01
        )
        sp.set(cut=cut)

        sides = []
        for side, k_side, offset in ((0, k1, 0), (1, k2, k1)):
            sub, vertex_ids, _ = extract_side(h, part01, side)
            sides.append((k_side, offset, sub, vertex_ids,
                          _side_fixed(fixed, vertex_ids, offset)))

        # fork-one/walk-one: offer the right subtree to the pool, walk the
        # left one on this thread, then collect.  Declined offers (no slot,
        # too small, too deep) run inline — the bits cannot tell.
        k_r, off_r, sub_r, vids_r, fix_r = sides[1]
        fut = None
        if sched is not None and k_r > 1:
            fut = sched.offer(
                len(path), sub_r.num_vertices, _solve_subtree,
                sub_r, k_r, cfg, entropy, path + (1,), fix_r, eps_b,
            )

        k_l, off_l, sub_l, vids_l, fix_l = sides[0]
        part_l, cuts_l = _solve_node(
            sub_l, k_l, cfg, entropy, path + (0,), fix_l, eps_b, sched
        )

        if fut is not None:
            # a stuck task is abandoned after cfg.tree_task_timeout seconds,
            # a dead one (broken pool, crashed task) immediately; either
            # way the subtree is re-offered to the pool up to
            # cfg.max_retries times with backoff, then recomputed inline.
            # The seed tree makes every path bit-identical.
            attempt = 0
            while True:
                try:
                    part_r, cuts_r = fut.result(timeout=cfg.tree_task_timeout)
                    break
                except _FutureTimeout:
                    fut.cancel()  # the budget slot frees when it finishes
                    rec.add("tree.task_timeouts")
                except Exception:
                    rec.add("tree.task_failures")
                fut = None
                if attempt < cfg.max_retries and sched is not None:
                    from repro.partitioner.resilience import backoff_delay

                    time.sleep(
                        backoff_delay(
                            cfg, attempt, salt=f"{entropy}:{_path_label(path)}"
                        )
                    )
                    fut = sched.offer(
                        len(path), sub_r.num_vertices, _solve_subtree,
                        sub_r, k_r, cfg, entropy, path + (1,), fix_r, eps_b,
                    )
                attempt += 1
                if fut is None:
                    part_r, cuts_r = _solve_node(
                        sub_r, k_r, cfg, entropy, path + (1,), fix_r, eps_b,
                        None,
                    )
                    break
                rec.add("tree.task_retries")
        else:
            part_r, cuts_r = _solve_node(
                sub_r, k_r, cfg, entropy, path + (1,), fix_r, eps_b, sched
            )

        part = np.zeros(h.num_vertices, dtype=INDEX_DTYPE)
        part[vids_l] = off_l + part_l
        part[vids_r] = off_r + part_r
        # depth-first cut order, independent of completion order
        cuts = [cut] + cuts_l + cuts_r
    return part, cuts
