"""K-way partitioning by recursive bisection with cut-net splitting.

The key correctness device is *cut-net splitting* (Çatalyürek & Aykanat,
TPDS 1999): after a bisection, each net keeps its pins **within each side**
when the sides are partitioned recursively (nets reduced to fewer than two
pins are dropped).  With this construction the sum of all bisection cuts
along the recursion tree equals the connectivity-minus-one cutsize (Eq. 3)
of the final K-way partition, so minimizing each bisection cut minimizes
the paper's exact communication-volume objective.

Arbitrary K is supported (not only powers of two) by splitting K into
``ceil(K/2)`` and ``floor(K/2)`` with proportional target weights.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import INDEX_DTYPE, as_rng
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.bisect import multilevel_bisect
from repro.partitioner.config import PartitionerConfig
from repro.telemetry import get_recorder

__all__ = ["partition_recursive", "extract_side", "bisection_epsilon"]


def bisection_epsilon(epsilon: float, k: int) -> float:
    """Per-bisection slack so the compounded K-way imbalance stays <= eps.

    With ``L = ceil(log2 K)`` bisection levels the per-level tolerance
    ``(1 + eps')^L = 1 + eps`` keeps the final part weights within Eq. 1.
    """
    levels = max(int(math.ceil(math.log2(max(k, 2)))), 1)
    return (1.0 + epsilon) ** (1.0 / levels) - 1.0


def extract_side(
    h: Hypergraph,
    part01: np.ndarray,
    side: int,
    fixed: np.ndarray | None = None,
) -> tuple[Hypergraph, np.ndarray, np.ndarray | None]:
    """Sub-hypergraph induced on one side of a bisection, with cut-net
    splitting.

    Returns ``(sub_h, vertex_ids, sub_fixed)`` where ``vertex_ids`` maps the
    sub-hypergraph's vertices back to *h*'s vertex ids.  Nets keep exactly
    their pins on *side*; nets left with fewer than two pins are removed
    (single-pin nets cannot contribute to any cut).
    """
    vmask = part01 == side
    vertex_ids = np.flatnonzero(vmask)
    old2new = np.full(h.num_vertices, -1, dtype=INDEX_DTYPE)
    old2new[vertex_ids] = np.arange(len(vertex_ids), dtype=INDEX_DTYPE)

    net_of_pin = h.net_of_pin()
    pin_on_side = vmask[h.pins]
    kept_nets_of_pin = net_of_pin[pin_on_side]
    kept_pins = old2new[h.pins[pin_on_side]]
    sizes = np.bincount(kept_nets_of_pin, minlength=h.num_nets)
    keep_net = sizes >= 2
    # filter pins belonging to dropped nets
    pin_keep = keep_net[kept_nets_of_pin]
    kept_pins = kept_pins[pin_keep]
    kept_sizes = sizes[keep_net]
    xpins = np.empty(len(kept_sizes) + 1, dtype=INDEX_DTYPE)
    xpins[0] = 0
    np.cumsum(kept_sizes, out=xpins[1:])
    sub = Hypergraph(
        len(vertex_ids),
        xpins,
        kept_pins,
        vertex_weights=h.vertex_weights[vertex_ids],
        net_costs=h.net_costs[keep_net],
        validate=False,
    )
    sub_fixed = fixed[vertex_ids] if fixed is not None else None
    return sub, vertex_ids, sub_fixed


def partition_recursive(
    h: Hypergraph,
    k: int,
    cfg: PartitionerConfig,
    rng: np.random.Generator | int | None = None,
    fixed: np.ndarray | None = None,
    _eps_b: float | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Partition *h* into *k* parts; returns ``(part, bisection_cuts)``.

    ``fixed`` pins vertices to final part ids in ``[0, k)``.
    ``bisection_cuts`` lists the cut of every bisection performed; their sum
    equals the connectivity-minus-one cutsize of the returned partition
    (property 4 of DESIGN.md, asserted by the test suite).
    """
    rng = as_rng(rng)
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return np.zeros(h.num_vertices, dtype=INDEX_DTYPE), []
    eps_b = bisection_epsilon(cfg.epsilon, k) if _eps_b is None else _eps_b

    k1 = (k + 1) // 2  # parts [0, k1) go to side 0
    k2 = k - k1
    total = h.total_vertex_weight()
    t0 = int(round(total * k1 / k))
    t1 = total - t0

    fixed01 = None
    if fixed is not None:
        fixed01 = np.where(fixed >= 0, (fixed >= k1).astype(INDEX_DTYPE), -1)

    rec = get_recorder()
    with rec.span("bisection", k=k, vertices=h.num_vertices, nets=h.num_nets) as sp:
        part01, cut = multilevel_bisect(h, (t0, t1), eps_b, cfg, rng, fixed01)
        cuts = [cut]
        sp.set(cut=cut)

        part = np.zeros(h.num_vertices, dtype=INDEX_DTYPE)
        for side, k_side, offset in ((0, k1, 0), (1, k2, k1)):
            sub, vertex_ids, _ = extract_side(h, part01, side)
            sub_fixed = None
            if fixed is not None:
                f = fixed[vertex_ids]
                sub_fixed = np.where(f >= 0, f - offset, -1).astype(INDEX_DTYPE)
            sub_part, sub_cuts = partition_recursive(
                sub, k_side, cfg, rng, sub_fixed, _eps_b=eps_b
            )
            part[vertex_ids] = offset + sub_part
            cuts.extend(sub_cuts)
    return part, cuts
