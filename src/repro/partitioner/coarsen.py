"""Coarsening phase: randomized agglomerative matching + coarse build.

Two matching schemes from PaToH are implemented:

* **HCM** (heavy connectivity matching): visits vertices in random order and
  pairs each unmatched vertex with the unmatched neighbour sharing the
  largest total net-connectivity score ``sum c_n / (|n| - 1)``.
* **HCC** (heavy connectivity clustering, PaToH's default): like HCM but a
  vertex may also be *absorbed* into an already-formed cluster, which copes
  much better with the star-like structures of matrices with dense
  rows/columns.

After matching, the coarse hypergraph is built by mapping pins through the
cluster map, removing duplicate pins, discarding single-pin nets (they can
never be cut) and merging identical nets while summing their costs — the
standard transformations that preserve the attainable cutsize exactly.
"""

from __future__ import annotations

import numpy as np

from repro._util import INDEX_DTYPE, as_rng, multi_arange, prefix_from_counts
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.config import PartitionerConfig
from repro.telemetry import get_recorder

__all__ = ["match_vertices", "build_coarse", "coarsen_level", "CoarseLevel", "coarsen"]

#: expansion budget (expanded candidate pins) per scoring chunk of the
#: vectorized matcher.  Chunks are cut by expected expansion work rather
#: than vertex count: larger budgets amortize numpy call overhead, smaller
#: ones waste less scoring on vertices that get absorbed into a cluster
#: mid-chunk.  Dense instances (big nets) therefore get short chunks
#: automatically, sparse ones long.
_SCORE_BUDGET = 100_000

#: below this pin count the scalar matching/contraction loops win: numpy
#: call overhead dominates batched passes on the small sub-hypergraphs of
#: deep recursive bisection.  Both paths are bit-identical, so the switch
#: point affects speed only, never results.
_VECTOR_MIN_PINS = 100_000

#: within the scalar matcher, a single vertex whose scoring expansion
#: (pins behind its eligible nets) reaches this many entries gets a
#: one-vertex batched pass instead of the per-pin loop.  Dense rows/columns
#: produce such vertices; batching them has zero wasted work because the
#: vertex is already known to be unclustered.
_VERTEX_VECTOR_MIN = 3000

#: like :data:`_VECTOR_MIN_PINS` but for the coarse-build contraction,
#: whose vectorized dedup pays off earlier than the matcher's
_VECTOR_MIN_PINS_BUILD = 100_000

#: below this pin count the flat build tier routes to the per-net
#: reference loop: the sort/unique pin remap has O(pins log pins) fixed
#: cost that measures slower than the dict dedup until well past 100k
#: pins (see docs/performance.md).  Bit-identical either way.
_BUILD_FLAT_MIN_PINS = 150_000

#: the dense-vertex branch needs O(pins) numpy precomputation per
#: match_vertices call; skip it entirely for tiny hypergraphs
_DENSE_AUX_MIN = 4096


def _argsort_ids(keys: np.ndarray, hi: int) -> np.ndarray:
    """Stable argsort of non-negative ids ``< hi`` via uint16 radix passes.

    numpy's stable argsort only takes its radix path for <= 16-bit keys
    (an int64 stable argsort measures ~6x slower at the same length), so
    wider ids sort low-half then high-half: two stable passes over
    subkeys compose into one stable sort of the full key.  Ids here are
    vertex/chunk indices, always < 2**32.
    """
    if hi <= (1 << 16):
        return np.argsort(keys.astype(np.uint16), kind="stable")
    s = np.argsort((keys & 0xFFFF).astype(np.uint16), kind="stable")
    high = (keys >> 16).astype(np.uint16)
    return s[np.argsort(high[s], kind="stable")]


def _score_aux(
    h: Hypergraph, max_net_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Scoring-eligibility arrays for matching, cached on *h*.

    Returns ``(sizes, valid, net_score, expand)``: net sizes, which nets are
    scoring-eligible (``2 <= size <= max_net_size``), the per-net
    connectivity score ``c_n / (size - 1)``, and per vertex the number of
    pins behind its eligible nets (the scoring expansion).  All are pure
    functions of the immutable hypergraph and the net-size cap, so V-cycles
    and repeated restricted coarsening of the same level reuse them.
    """

    def make() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        sizes = np.diff(h.xpins)
        valid = (sizes >= 2) & (sizes <= max_net_size)
        net_score = np.where(valid, h.net_costs / np.maximum(sizes - 1, 1), 0.0)
        vmask = valid[h.vnets]
        vowner = np.repeat(
            np.arange(h.num_vertices, dtype=INDEX_DTYPE), np.diff(h.xnets)
        )
        expand = np.bincount(
            vowner[vmask], weights=sizes[h.vnets[vmask]], minlength=h.num_vertices
        ).astype(np.int64)
        return sizes, valid, net_score, expand

    return h._view(f"score_aux_{max_net_size}", make)


def _chunk_candidates(
    chunk: np.ndarray,
    nv: int,
    xnets: np.ndarray,
    vnets: np.ndarray,
    xpins: np.ndarray,
    pins: np.ndarray,
    valid: np.ndarray,
    sizes: np.ndarray,
    net_score: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched match scoring for the vertices of one permutation chunk.

    Returns ``(offsets, cand, pin_total)`` indexed by position within
    *chunk*: ``cand[offsets[j]:offsets[j+1]]`` are the distinct neighbours
    of ``chunk[j]`` through scoring-eligible nets, ordered by descending
    summed ``c_n / (|n| - 1)`` connectivity score (first-encounter order on
    ties), and ``pin_total[j]`` the pins the scalar loop would have visited.

    Equivalence contract with the scalar scoring loop: nets expand in
    ascending id order and pins in storage order, candidates keep their
    first-encounter order, and per-candidate scores accumulate strictly
    left-to-right in that order (``np.bincount`` adds weights
    sequentially over its input), so float sums and every downstream
    tie-break are bit-identical.
    """
    m = len(chunk)
    empty = (
        np.zeros(m + 1, dtype=INDEX_DTYPE),
        np.empty(0, dtype=INDEX_DTYPE),
        np.zeros(m, dtype=INDEX_DTYPE),
    )
    deg = xnets[chunk + 1] - xnets[chunk]
    if int(deg.sum()) == 0:
        return empty
    local = np.repeat(np.arange(m, dtype=INDEX_DTYPE), deg)
    ns = vnets[multi_arange(xnets[chunk], deg)]
    ok = valid[ns]
    ns, local = ns[ok], local[ok]
    if len(ns) == 0:
        return empty
    cnt = sizes[ns]
    pin_total = np.bincount(local, weights=cnt, minlength=m).astype(INDEX_DTYPE)
    owner_local = np.repeat(local, cnt)
    owner = chunk[owner_local]
    cand = pins[multi_arange(xpins[ns], cnt)]
    scs = np.repeat(net_score[ns], cnt)
    keep = cand != owner
    cand, scs, owner_local = cand[keep], scs[keep], owner_local[keep]
    if len(cand) == 0:
        return empty[0], empty[1], pin_total

    # group by (chunk position, candidate); two stable sorts — by
    # candidate, then by chunk position — equal one stable sort by the
    # (position, candidate) pair, and :func:`_argsort_ids` runs every
    # pass as a uint16 radix sort (O(n)).  Stability keeps duplicate
    # pairs in net order so the sequential accumulation below reproduces
    # the scalar float accumulation exactly.
    s1 = _argsort_ids(cand, nv)
    ol = owner_local[s1]
    perm = s1[_argsort_ids(ol, m)]
    oo = owner_local[perm]
    co = cand[perm]
    boundary = np.r_[True, (oo[1:] != oo[:-1]) | (co[1:] != co[:-1])]
    grp = np.flatnonzero(boundary)
    gid = np.cumsum(boundary) - 1
    # bincount accumulates weights left-to-right like the unbuffered
    # np.add.at, an order of magnitude faster; float sums are identical
    score = np.bincount(gid, weights=scs[perm], minlength=len(grp))
    pair_local = oo[grp].astype(INDEX_DTYPE)
    pair_u = co[grp].astype(INDEX_DTYPE)
    first_idx = perm[grp]  # stable sort -> first element is min original index

    # Within each chunk vertex, order candidates by descending score, ties
    # broken by first encounter.  The scalar loop keeps the first strictly
    # greater score while scanning in encounter order, and its feasibility
    # checks read cluster state that cannot change mid-scan, so "max score
    # among feasible, earliest encounter on ties" is exactly "first
    # feasible in this order" -- letting the greedy pass stop at the first
    # candidate that passes the constraint checks instead of walking all.
    order = np.lexsort((first_idx, -score, pair_local))
    offsets = prefix_from_counts(np.bincount(pair_local, minlength=m))
    return offsets, pair_u[order], pin_total


def match_vertices(
    h: Hypergraph,
    rng: np.random.Generator,
    scheme: str = "hcc",
    max_net_size: int = 300,
    max_cluster_weight: int | None = None,
    fixed: np.ndarray | None = None,
    part: np.ndarray | None = None,
    kernel: str = "python",
) -> tuple[np.ndarray, int, np.ndarray]:
    """Cluster vertices; returns ``(cmap, n_clusters, coarse_fixed)``.

    ``cmap[v]`` is the coarse vertex id of ``v``.  ``coarse_fixed`` carries
    pre-assignments onto clusters (a cluster may only contain vertices fixed
    to the same part, or free vertices).

    When *part* is given (V-cycle restricted coarsening), vertices only
    cluster with vertices of the same part, so the partition projects
    exactly onto the coarse hypergraph.

    *kernel* picks the implementation tier (see
    :mod:`repro.partitioner.kernels`): ``"python"`` is the pure reference
    loop (the differential-testing oracle — one interpreted comparison
    per pin, no batching); ``"flat"`` is the adaptive tier: above
    :data:`_VECTOR_MIN_PINS` pins the per-pin scoring runs as
    numpy-batched passes over the CSR pin arrays, one permutation-order
    chunk at a time (scores depend only on the hypergraph, never on
    cluster state, so batching ahead of the greedy selection is exact),
    below it the scalar loop runs with one-vertex batching of dense
    scoring expansions — the greedy selection itself always stays
    sequential, preserving the classic HCM/HCC semantics bit for bit.
    ``"jit"`` runs the numba-compiled scalar loop.  All tiers produce
    identical output; the gates were placed by measurement (chunked
    scoring loses below a few hundred thousand pins — see
    docs/performance.md).
    """
    nv = h.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = max(int(h.total_vertex_weight()), 1)
    hcm = scheme == "hcm"
    part_l = part.tolist() if part is not None else None

    w = h.weights_list()
    fix = fixed.tolist() if fixed is not None else None

    cluster: list[int] = [-1] * nv
    cweight: list[int] = []
    cfixed: list[int] = []
    order = rng.permutation(nv)

    if kernel == "jit":
        from repro.partitioner.fm_jit import match_jit as matcher
    elif kernel == "flat":
        # adaptive: the scalar loop with per-vertex batching of dense
        # scoring expansions.  Whole-chunk batch scoring
        # (:func:`_match_chunked`) measures slower than this on every
        # overlap regime benched so far — the sort-based merge of
        # duplicate candidate pairs eats the vectorization win (the
        # 0.94x forced-batch regression in BENCH_kernels.json) — so the
        # flat tier only batches where batching provably pays: single
        # vertices whose expansion clears _VERTEX_VECTOR_MIN.
        matcher = _match_scalar
    else:
        matcher = _match_reference
    rec = get_recorder()
    with rec.span(
        "coarsen.match",
        vertices=nv,
        nets=h.num_nets,
        pins=h.num_pins,
        kernel=kernel,
    ):
        pins_visited = matcher(
            h, order, part_l, w, fix, cluster, cweight, cfixed,
            hcm, max_net_size, max_cluster_weight,
        )

    if rec.enabled:
        rec.add("coarsen.pins_visited", pins_visited)
        rec.add("coarsen.clusters", len(cweight))
    cmap = np.asarray(cluster, dtype=INDEX_DTYPE)
    return cmap, len(cweight), np.asarray(cfixed, dtype=INDEX_DTYPE)


def _dense_candidates(
    v: int,
    h: Hypergraph,
    valid: np.ndarray,
    sizes: np.ndarray,
    net_score: np.ndarray,
) -> list[int]:
    """Batched scoring of one vertex: candidates in descending-score order
    (first-encounter order on ties), matching the scalar loop's float
    accumulation exactly (see :func:`_chunk_candidates` for the argument).
    """
    ns = h.vnets[h.xnets[v] : h.xnets[v + 1]]
    ns = ns[valid[ns]]
    cnt = sizes[ns]
    cand = h.pins[multi_arange(h.xpins[ns], cnt)]
    keep = cand != v
    cand = cand[keep]
    if len(cand) == 0:
        return []
    scs = np.repeat(net_score[ns], cnt)[keep]
    # radix argsort; bincount accumulates weights in input order exactly
    # like the unbuffered np.add.at it replaces
    perm = _argsort_ids(cand, h.num_vertices)
    cs = cand[perm]
    boundary = np.r_[True, cs[1:] != cs[:-1]]
    grp = np.flatnonzero(boundary)
    gid = np.cumsum(boundary) - 1
    score = np.bincount(gid, weights=scs[perm], minlength=len(grp))
    first_idx = perm[grp]
    ordr = np.lexsort((first_idx, -score))
    return cs[grp][ordr].tolist()


def _match_scalar(
    h: Hypergraph,
    order: np.ndarray,
    part_l: list[int] | None,
    w: list[int],
    fix: list[int] | None,
    cluster: list[int],
    cweight: list[int],
    cfixed: list[int],
    hcm: bool,
    max_net_size: int,
    max_cluster_weight: int,
    dense_ok: bool = True,
) -> int:
    """Scalar matching loop (fast on small hypergraphs).

    With *dense_ok*, vertices whose scoring expansion is dense
    (``_VERTEX_VECTOR_MIN``) are scored by a one-vertex batched pass —
    same candidates, same float accumulation order, same selection result
    as the per-pin loop.  Without it this is the pure per-pin reference.
    """
    nv = h.num_vertices
    xnets = h.xnets_list()
    vnets = h.vnets_list()
    xpins = h.xpins_list()
    pins = h.pins_list()
    costs = h.costs_list()

    dense_aux = None
    if dense_ok and h.num_pins >= _DENSE_AUX_MIN:
        # cheap upper bound on any vertex's scoring expansion: no vertex
        # can expand past max_degree * largest eligible net.  Fine-grain
        # levels (degree <= 2, nets capped at max_net_size) can never
        # reach _VERTEX_VECTOR_MIN, so they skip the _score_aux setup
        # entirely instead of paying O(pins) for a path that never fires.
        max_deg = h._view(
            "max_degree",
            lambda: int(np.diff(h.xnets).max()) if h.num_vertices else 0,
        )
        max_sz = h._view(
            "max_net_size",
            lambda: int(np.diff(h.xpins).max()) if h.num_nets else 0,
        )
        if max_deg * min(max_sz, max_net_size) >= _VERTEX_VECTOR_MIN:
            sizes_np, valid_np, net_score, expand_np = _score_aux(
                h, max_net_size
            )
            expand = h._view(f"expand_l_{max_net_size}", expand_np.tolist)
            dense_aux = (valid_np, sizes_np, net_score)

    # flat score accumulator: positive increments only, so score == 0.0
    # doubles as the "untouched" marker (cheaper than a dict by ~2x on the
    # profile; see DESIGN.md performance notes)
    score: list[float] = [0.0] * nv
    touched: list[int] = []
    pins_visited = 0

    for v in order.tolist():
        if cluster[v] != -1:
            continue
        fv = fix[v] if fix is not None else -1
        wv = w[v]
        pv = part_l[v] if part_l is not None else -1
        best_u = -1
        if dense_aux is not None and expand[v] >= _VERTEX_VECTOR_MIN:
            pins_visited += expand[v]
            # candidates arrive score-descending: first feasible one wins
            for u in _dense_candidates(v, h, *dense_aux):
                if part_l is not None and part_l[u] != pv:
                    continue  # restricted coarsening: stay in-part
                cu = cluster[u]
                if hcm and cu != -1:
                    continue  # pure matching never grows a cluster
                tw = (cweight[cu] if cu != -1 else w[u]) + wv
                if tw > max_cluster_weight:
                    continue
                fu = (
                    cfixed[cu]
                    if cu != -1
                    else (fix[u] if fix is not None else -1)
                )
                if fv != -1 and fu != -1 and fu != fv:
                    continue
                best_u = u
                break
        else:
            touched.clear()
            for n in vnets[xnets[v] : xnets[v + 1]]:
                lo, hi = xpins[n], xpins[n + 1]
                sz = hi - lo
                if sz == 2 <= max_net_size:
                    # dominant case in fine-grain models: the one other pin
                    pins_visited += 2
                    u = pins[lo]
                    if u == v:
                        u = pins[lo + 1]
                    if score[u] == 0.0:
                        touched.append(u)
                    score[u] += costs[n]
                    continue
                if sz < 2 or sz > max_net_size:
                    continue
                pins_visited += sz
                sc = costs[n] / (sz - 1)
                for u in pins[lo:hi]:
                    if u != v:
                        if score[u] == 0.0:
                            touched.append(u)
                        score[u] += sc
            best_s = 0.0
            for u in touched:
                s = score[u]
                score[u] = 0.0
                if s <= best_s:
                    continue
                if part_l is not None and part_l[u] != pv:
                    continue  # restricted (V-cycle) coarsening: stay in-part
                cu = cluster[u]
                if hcm and cu != -1:
                    continue  # pure matching never grows a cluster
                tw = (cweight[cu] if cu != -1 else w[u]) + wv
                if tw > max_cluster_weight:
                    continue
                fu = (
                    cfixed[cu]
                    if cu != -1
                    else (fix[u] if fix is not None else -1)
                )
                if fv != -1 and fu != -1 and fu != fv:
                    continue
                best_u, best_s = u, s
        if best_u == -1:
            cluster[v] = len(cweight)
            cweight.append(wv)
            cfixed.append(fv)
        else:
            cu = cluster[best_u]
            if cu == -1:
                cu = len(cweight)
                cweight.append(w[best_u])
                cfixed.append(fix[best_u] if fix is not None else -1)
                cluster[best_u] = cu
            cluster[v] = cu
            cweight[cu] += wv
            if fv != -1:
                cfixed[cu] = fv
    return pins_visited


def _match_reference(
    h: Hypergraph,
    order: np.ndarray,
    part_l: list[int] | None,
    w: list[int],
    fix: list[int] | None,
    cluster: list[int],
    cweight: list[int],
    cfixed: list[int],
    hcm: bool,
    max_net_size: int,
    max_cluster_weight: int,
) -> int:
    """The ``python`` tier: the pure per-pin reference loop, no batching.

    This is the differential-testing oracle the flat/jit tiers are
    measured against; it trades speed on dense instances for one
    obviously-sequential interpreted loop."""
    return _match_scalar(
        h, order, part_l, w, fix, cluster, cweight, cfixed,
        hcm, max_net_size, max_cluster_weight, dense_ok=False,
    )


def _match_chunked(
    h: Hypergraph,
    order: np.ndarray,
    part_l: list[int] | None,
    w: list[int],
    fix: list[int] | None,
    cluster: list[int],
    cweight: list[int],
    cfixed: list[int],
    hcm: bool,
    max_net_size: int,
    max_cluster_weight: int,
) -> int:
    """Vectorized matching: batched scoring, scalar greedy selection."""
    nv = h.num_vertices
    pins_visited = 0
    sizes, valid, net_score, expand = _score_aux(h, max_net_size)

    # the expansion estimate cuts the permutation into roughly equal-work
    # chunks (pins behind scoring-eligible nets)
    work = np.cumsum(expand[order])
    lo = 0
    while lo < nv:
        hi = int(np.searchsorted(work, work[lo] + _SCORE_BUDGET, side="right"))
        hi = max(hi, lo + 1)
        raw = order[lo:hi]
        lo = hi
        # vertices already clustered by an earlier chunk are skipped before
        # scoring; ones absorbed mid-chunk are skipped at selection below
        chunk = raw[[cluster[int(v)] == -1 for v in raw]]
        if len(chunk) == 0:
            continue
        offs_a, cand_a, ptot_a = _chunk_candidates(
            chunk, nv, h.xnets, h.vnets, h.xpins, h.pins, valid, sizes, net_score
        )
        offs = offs_a.tolist()
        cand = cand_a.tolist()
        ptot = ptot_a.tolist()
        for j, v in enumerate(chunk.tolist()):
            if cluster[v] != -1:
                continue
            fv = fix[v] if fix is not None else -1
            pins_visited += ptot[j]
            best_u = -1
            wv = w[v]
            pv = part_l[v] if part_l is not None else -1
            # candidates arrive score-descending: first feasible one wins
            for i in range(offs[j], offs[j + 1]):
                u = cand[i]
                if part_l is not None and part_l[u] != pv:
                    continue  # restricted (V-cycle) coarsening: stay in-part
                cu = cluster[u]
                if hcm and cu != -1:
                    continue  # pure matching never grows a cluster
                tw = (cweight[cu] if cu != -1 else w[u]) + wv
                if tw > max_cluster_weight:
                    continue
                fu = cfixed[cu] if cu != -1 else (fix[u] if fix is not None else -1)
                if fv != -1 and fu != -1 and fu != fv:
                    continue
                best_u = u
                break
            if best_u == -1:
                cluster[v] = len(cweight)
                cweight.append(wv)
                cfixed.append(fv)
            else:
                cu = cluster[best_u]
                if cu == -1:
                    cu = len(cweight)
                    cweight.append(w[best_u])
                    cfixed.append(fix[best_u] if fix is not None else -1)
                    cluster[best_u] = cu
                cluster[v] = cu
                cweight[cu] += wv
                if fv != -1:
                    cfixed[cu] = fv
    return pins_visited


def _build_reference(
    h: Hypergraph, cmap: np.ndarray, n_clusters: int, cw: np.ndarray
) -> Hypergraph:
    """The ``python`` tier of :func:`build_coarse`: one interpreted loop
    per net — remap pins through the cluster map, collapse duplicates,
    drop single-pin nets, merge identical nets via a dict.  The oracle
    the flat path is differential-tested against."""
    cmap_l = cmap.tolist()
    xpins = h.xpins_list()
    pins = h.pins_list()
    costs = h.costs_list()
    flat_pins: list[int] = []
    counts: list[int] = []
    new_costs: list[int] = []
    seen: dict[tuple[int, ...], int] = {}
    for n in range(h.num_nets):
        seg = sorted({cmap_l[p] for p in pins[xpins[n] : xpins[n + 1]]})
        if len(seg) < 2:
            continue
        bkey = tuple(seg)
        idx = seen.get(bkey)
        if idx is None:
            seen[bkey] = len(new_costs)
            new_costs.append(costs[n])
            counts.append(len(seg))
            flat_pins.extend(seg)
        else:
            new_costs[idx] += costs[n]
    return Hypergraph(
        n_clusters,
        prefix_from_counts(counts),
        np.asarray(flat_pins, dtype=INDEX_DTYPE),
        vertex_weights=cw,
        net_costs=np.asarray(new_costs, dtype=INDEX_DTYPE),
        validate=False,
    )


def build_coarse(
    h: Hypergraph, cmap: np.ndarray, n_clusters: int, kernel: str = "flat"
) -> Hypergraph:
    """Contract *h* along *cmap*.

    Duplicate pins inside a net are collapsed, single-pin nets dropped, and
    identical nets merged with summed costs.  These transformations change
    neither the cutsize of any partition nor the balance (cluster weights
    are the sums of member weights).

    *kernel* ``"python"`` runs the per-net reference loop
    (:func:`_build_reference`); any other tier runs the flat path:
    sort/bincount pin remapping plus — above
    :data:`_VECTOR_MIN_PINS_BUILD` — hash-keyed identical-net merging.
    All paths emit bit-identical hypergraphs.
    """
    rec = get_recorder()
    with rec.span(
        "coarsen.build",
        vertices=h.num_vertices,
        nets=h.num_nets,
        pins=h.num_pins,
        kernel=kernel,
    ):
        return _build_coarse(h, cmap, n_clusters, kernel)


def _build_coarse(
    h: Hypergraph, cmap: np.ndarray, n_clusters: int, kernel: str
) -> Hypergraph:
    cw = np.bincount(cmap, weights=h.vertex_weights, minlength=n_clusters).astype(
        INDEX_DTYPE
    )
    if h.num_pins == 0:
        return Hypergraph(
            n_clusters,
            np.zeros(1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            vertex_weights=cw,
            net_costs=np.empty(0, dtype=INDEX_DTYPE),
            validate=False,
        )
    if kernel == "python" or h.num_pins < _BUILD_FLAT_MIN_PINS:
        return _build_reference(h, cmap, n_clusters, cw)

    key = h.net_of_pin() * n_clusters + cmap[h.pins]
    uniq = np.unique(key)  # sorted -> pins sorted within each net
    knet = uniq // n_clusters
    kpin = uniq % n_clusters
    sizes = np.bincount(knet, minlength=h.num_nets)
    starts = prefix_from_counts(sizes)

    if h.num_pins < _VECTOR_MIN_PINS_BUILD:
        # scalar dict dedup; same output as the vectorized path below
        new_pins_chunks: list[np.ndarray] = []
        new_costs: list[int] = []
        counts: list[int] = []
        seen: dict[bytes, int] = {}
        costs_l = h.net_costs
        for n in range(h.num_nets):
            lo, hi = starts[n], starts[n + 1]
            if hi - lo < 2:
                continue
            seg = kpin[lo:hi]
            bkey = seg.tobytes()
            idx = seen.get(bkey)
            if idx is None:
                seen[bkey] = len(new_costs)
                new_costs.append(int(costs_l[n]))
                counts.append(hi - lo)
                new_pins_chunks.append(seg)
            else:
                new_costs[idx] += int(costs_l[n])
        xpins = prefix_from_counts(counts)
        pins = (
            np.concatenate(new_pins_chunks)
            if new_pins_chunks
            else np.empty(0, dtype=INDEX_DTYPE)
        )
        return Hypergraph(
            n_clusters,
            xpins,
            pins,
            vertex_weights=cw,
            net_costs=np.asarray(new_costs, dtype=INDEX_DTYPE),
            validate=False,
        )

    # identical-net merging, hash-keyed: a position-weighted 64-bit
    # polynomial hash per net groups merge candidates in one pass (no
    # per-size-class stacking), every member is verified element-wise
    # against its group's first net, and the vanishing-probability hash
    # collisions fall back to exact byte keys.  Survivors re-emit in
    # first-appearance (net id) order with summed costs — the same output
    # the sequential dict dedup produces.
    keep = sizes >= 2
    kept_ids = np.flatnonzero(keep)
    if len(kept_ids) == 0:
        return Hypergraph(
            n_clusters,
            np.zeros(1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            vertex_weights=cw,
            net_costs=np.empty(0, dtype=INDEX_DTYPE),
            validate=False,
        )
    kept_sizes = sizes[kept_ids]
    kp = kpin[multi_arange(starts[kept_ids], kept_sizes)]
    koffs = prefix_from_counts(kept_sizes).astype(np.int64)
    costs = h.net_costs
    m = len(kept_ids)

    maxs = int(kept_sizes.max())
    pw = np.ones(maxs, dtype=np.uint64)
    if maxs > 1:
        pw[1:] = np.cumprod(
            np.full(maxs - 1, np.uint64(0x9E3779B97F4A7C15), dtype=np.uint64)
        )
    pos = np.arange(len(kp), dtype=np.int64) - np.repeat(koffs[:-1], kept_sizes)
    contrib = (kp.astype(np.uint64) + np.uint64(0x517CC1B7)) * pw[pos]
    hsh = np.add.reduceat(contrib, koffs[:-1])

    # sort members by (size, hash, net id): groups become contiguous with
    # their first-appearing net leading each group
    go = np.lexsort((np.arange(m), hsh, kept_sizes))
    ss = kept_sizes[go]
    hh = hsh[go]
    bnd = np.r_[True, (ss[1:] != ss[:-1]) | (hh[1:] != hh[:-1])]
    gid = np.cumsum(bnd) - 1
    n_groups = int(gid[-1]) + 1
    rep = go[np.flatnonzero(bnd)]  # group representative (first member)

    # verify: each member's pins must equal its representative's
    mo = koffs[:-1][go]
    ro = koffs[:-1][rep[gid]]
    moffs = prefix_from_counts(ss).astype(np.int64)
    neq = kp[multi_arange(mo, ss)] != kp[multi_arange(ro, ss)]
    bad = np.add.reduceat(neq, moffs[:-1]) > 0
    first_kept = rep
    if bad.any():  # pragma: no cover - 64-bit collision, astronomically rare
        gid = gid.copy()
        extra: dict[bytes, int] = {}
        for j in np.flatnonzero(bad).tolist():
            bkey = kp[mo[j] : mo[j] + int(ss[j])].tobytes()
            g2 = extra.get(bkey)
            if g2 is None:
                extra[bkey] = g2 = n_groups
                n_groups += 1
            gid[j] = g2
        first_kept = np.full(n_groups, m, dtype=np.int64)
        np.minimum.at(first_kept, gid, go)

    csum = np.bincount(gid, weights=costs[kept_ids[go]], minlength=n_groups)
    order = np.argsort(first_kept, kind="stable")
    g_sizes = kept_sizes[first_kept][order]
    xpins = prefix_from_counts(g_sizes)
    pins = kp[multi_arange(koffs[:-1][first_kept][order], g_sizes)]
    return Hypergraph(
        n_clusters,
        xpins,
        pins,
        vertex_weights=cw,
        net_costs=csum[order].astype(INDEX_DTYPE),
        validate=False,
    )


class CoarseLevel:
    """One level of the multilevel hierarchy: the finer hypergraph together
    with the map onto the next-coarser one."""

    __slots__ = ("fine", "cmap", "fixed")

    def __init__(self, fine: Hypergraph, cmap: np.ndarray, fixed: np.ndarray | None):
        self.fine = fine
        self.cmap = cmap
        self.fixed = fixed  # fixed01 of the FINE hypergraph (or None)


def coarsen_level(
    h: Hypergraph,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    max_cluster_weight: int,
    fixed: np.ndarray | None,
    part: np.ndarray | None = None,
) -> tuple[Hypergraph, np.ndarray, np.ndarray | None]:
    """One coarsening step; returns ``(coarse_h, cmap, coarse_fixed)``."""
    from repro.partitioner.kernels import resolve_kernel

    kern = resolve_kernel(getattr(cfg, "kernel", "python"))
    cmap, nc, cfix = match_vertices(
        h,
        rng,
        scheme=cfg.matching,
        max_net_size=cfg.max_net_size_coarsen,
        max_cluster_weight=max_cluster_weight,
        fixed=fixed,
        part=part,
        kernel=kern,
    )
    hc = build_coarse(h, cmap, nc, kernel=kern)
    coarse_fixed = cfix if fixed is not None else None
    return hc, cmap, coarse_fixed


def coarsen(
    h: Hypergraph,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    fixed: np.ndarray | None = None,
) -> tuple[list[CoarseLevel], Hypergraph, np.ndarray | None]:
    """Build the full coarsening hierarchy for one bisection.

    Returns ``(levels, coarsest, coarsest_fixed)`` where ``levels[i].fine``
    is the hypergraph at level *i* (level 0 = input) and
    ``levels[i].cmap`` maps its vertices onto level *i+1*.
    """
    levels: list[CoarseLevel] = []
    cur = h
    cur_fixed = fixed
    if cfg.matching == "none":
        return levels, cur, cur_fixed
    rec = get_recorder()
    total = max(h.total_vertex_weight(), 1)
    # a cluster may not exceed what a perfectly balanced coarsest part could
    # absorb; this keeps the coarsest instance bisectable
    max_cluster_weight = max(total // max(cfg.coarsen_to // 2, 1), 1)
    with rec.span("coarsen", vertices=h.num_vertices, pins=h.num_pins) as csp:
        for depth in range(cfg.max_coarsen_levels):
            if cur.num_vertices <= cfg.coarsen_to:
                break
            with rec.span("coarsen.level", level=depth) as lsp:
                hc, cmap, cfix = coarsen_level(
                    cur, cfg, rng, max_cluster_weight, cur_fixed
                )
                lsp.set(
                    vertices=hc.num_vertices,
                    nets=hc.num_nets,
                    pins=hc.num_pins,
                )
                lsp.gauge(
                    "shrink", hc.num_vertices / max(cur.num_vertices, 1)
                )
            if hc.num_vertices >= cfg.min_coarsen_shrink * cur.num_vertices:
                break  # stagnated; further levels would waste time
            levels.append(CoarseLevel(cur, cmap, cur_fixed))
            cur = hc
            cur_fixed = cfix
        csp.set(levels=len(levels), coarsest_vertices=cur.num_vertices)
    return levels, cur, cur_fixed


def coarsen_restricted(
    h: Hypergraph,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    part: np.ndarray,
    fixed: np.ndarray | None = None,
) -> tuple[list[CoarseLevel], Hypergraph, np.ndarray | None, np.ndarray]:
    """V-cycle coarsening: like :func:`coarsen` but clustering only within
    the parts of *part*, so the bisection projects exactly.

    Returns ``(levels, coarsest, coarsest_fixed, coarsest_part)``.
    """
    levels: list[CoarseLevel] = []
    cur = h
    cur_fixed = fixed
    cur_part = np.asarray(part, dtype=INDEX_DTYPE)
    rec = get_recorder()
    total = max(h.total_vertex_weight(), 1)
    max_cluster_weight = max(total // max(cfg.coarsen_to // 2, 1), 1)
    with rec.span(
        "coarsen", restricted=True, vertices=h.num_vertices, pins=h.num_pins
    ) as csp:
        for depth in range(cfg.max_coarsen_levels):
            if cur.num_vertices <= cfg.coarsen_to:
                break
            with rec.span("coarsen.level", level=depth) as lsp:
                from repro.partitioner.kernels import resolve_kernel

                kern = resolve_kernel(getattr(cfg, "kernel", "python"))
                cmap, nc, cfix = match_vertices(
                    cur,
                    rng,
                    scheme=cfg.matching if cfg.matching != "none" else "hcc",
                    max_net_size=cfg.max_net_size_coarsen,
                    max_cluster_weight=max_cluster_weight,
                    fixed=cur_fixed,
                    part=cur_part,
                    kernel=kern,
                )
                hc = build_coarse(cur, cmap, nc, kernel=kern)
                lsp.set(
                    vertices=hc.num_vertices,
                    nets=hc.num_nets,
                    pins=hc.num_pins,
                )
                lsp.gauge(
                    "shrink", hc.num_vertices / max(cur.num_vertices, 1)
                )
            if hc.num_vertices >= cfg.min_coarsen_shrink * cur.num_vertices:
                break
            # project: all members of a cluster share a part by construction
            coarse_part = np.empty(nc, dtype=INDEX_DTYPE)
            coarse_part[cmap] = cur_part
            levels.append(CoarseLevel(cur, cmap, cur_fixed))
            cur = hc
            cur_fixed = cfix if cur_fixed is not None else None
            cur_part = coarse_part
        csp.set(levels=len(levels), coarsest_vertices=cur.num_vertices)
    return levels, cur, cur_fixed, cur_part
