"""Coarsening phase: randomized agglomerative matching + coarse build.

Two matching schemes from PaToH are implemented:

* **HCM** (heavy connectivity matching): visits vertices in random order and
  pairs each unmatched vertex with the unmatched neighbour sharing the
  largest total net-connectivity score ``sum c_n / (|n| - 1)``.
* **HCC** (heavy connectivity clustering, PaToH's default): like HCM but a
  vertex may also be *absorbed* into an already-formed cluster, which copes
  much better with the star-like structures of matrices with dense
  rows/columns.

After matching, the coarse hypergraph is built by mapping pins through the
cluster map, removing duplicate pins, discarding single-pin nets (they can
never be cut) and merging identical nets while summing their costs — the
standard transformations that preserve the attainable cutsize exactly.
"""

from __future__ import annotations

import numpy as np

from repro._util import INDEX_DTYPE, as_rng, prefix_from_counts
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.config import PartitionerConfig
from repro.telemetry import get_recorder

__all__ = ["match_vertices", "build_coarse", "coarsen_level", "CoarseLevel", "coarsen"]


def match_vertices(
    h: Hypergraph,
    rng: np.random.Generator,
    scheme: str = "hcc",
    max_net_size: int = 300,
    max_cluster_weight: int | None = None,
    fixed: np.ndarray | None = None,
    part: np.ndarray | None = None,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Cluster vertices; returns ``(cmap, n_clusters, coarse_fixed)``.

    ``cmap[v]`` is the coarse vertex id of ``v``.  ``coarse_fixed`` carries
    pre-assignments onto clusters (a cluster may only contain vertices fixed
    to the same part, or free vertices).

    When *part* is given (V-cycle restricted coarsening), vertices only
    cluster with vertices of the same part, so the partition projects
    exactly onto the coarse hypergraph.
    """
    nv = h.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = max(int(h.total_vertex_weight()), 1)
    hcm = scheme == "hcm"
    part_l = part.tolist() if part is not None else None

    # plain-list views for the per-vertex scoring loop
    xnets = h.xnets.tolist()
    vnets = h.vnets.tolist()
    xpins = h.xpins.tolist()
    pins = h.pins.tolist()
    w = h.vertex_weights.tolist()
    costs = h.net_costs.tolist()
    fix = fixed.tolist() if fixed is not None else None

    cluster: list[int] = [-1] * nv
    cweight: list[int] = []
    cfixed: list[int] = []

    # flat score accumulator: positive increments only, so score == 0.0
    # doubles as the "untouched" marker (cheaper than a dict by ~2x on the
    # profile; see DESIGN.md performance notes)
    score: list[float] = [0.0] * nv
    touched: list[int] = []
    pins_visited = 0

    order = rng.permutation(nv)
    for v in order:
        v = int(v)
        if cluster[v] != -1:
            continue
        fv = fix[v] if fix is not None else -1
        touched.clear()
        for t in range(xnets[v], xnets[v + 1]):
            n = vnets[t]
            lo, hi = xpins[n], xpins[n + 1]
            sz = hi - lo
            if sz < 2 or sz > max_net_size:
                continue
            pins_visited += sz
            sc = costs[n] / (sz - 1)
            for j in range(lo, hi):
                u = pins[j]
                if u != v:
                    if score[u] == 0.0:
                        touched.append(u)
                    score[u] += sc
        best_u = -1
        best_s = 0.0
        wv = w[v]
        pv = part_l[v] if part_l is not None else -1
        for u in touched:
            s = score[u]
            score[u] = 0.0
            if s <= best_s:
                continue
            if part_l is not None and part_l[u] != pv:
                continue  # restricted (V-cycle) coarsening: stay in-part
            cu = cluster[u]
            if hcm and cu != -1:
                continue  # pure matching never grows a cluster
            tw = (cweight[cu] if cu != -1 else w[u]) + wv
            if tw > max_cluster_weight:
                continue
            fu = cfixed[cu] if cu != -1 else (fix[u] if fix is not None else -1)
            if fv != -1 and fu != -1 and fu != fv:
                continue
            best_u, best_s = u, s
        if best_u == -1:
            cluster[v] = len(cweight)
            cweight.append(wv)
            cfixed.append(fv)
        else:
            cu = cluster[best_u]
            if cu == -1:
                cu = len(cweight)
                cweight.append(w[best_u])
                cfixed.append(fix[best_u] if fix is not None else -1)
                cluster[best_u] = cu
            cluster[v] = cu
            cweight[cu] += wv
            if fv != -1:
                cfixed[cu] = fv

    rec = get_recorder()
    if rec.enabled:
        rec.add("coarsen.pins_visited", pins_visited)
        rec.add("coarsen.clusters", len(cweight))
    cmap = np.asarray(cluster, dtype=INDEX_DTYPE)
    return cmap, len(cweight), np.asarray(cfixed, dtype=INDEX_DTYPE)


def build_coarse(h: Hypergraph, cmap: np.ndarray, n_clusters: int) -> Hypergraph:
    """Contract *h* along *cmap*.

    Duplicate pins inside a net are collapsed, single-pin nets dropped, and
    identical nets merged with summed costs.  These transformations change
    neither the cutsize of any partition nor the balance (cluster weights
    are the sums of member weights).
    """
    cw = np.bincount(cmap, weights=h.vertex_weights, minlength=n_clusters).astype(
        INDEX_DTYPE
    )
    if h.num_pins == 0:
        return Hypergraph(
            n_clusters,
            np.zeros(1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            vertex_weights=cw,
            net_costs=np.empty(0, dtype=INDEX_DTYPE),
            validate=False,
        )

    net_of_pin = np.repeat(np.arange(h.num_nets, dtype=INDEX_DTYPE), np.diff(h.xpins))
    key = net_of_pin * n_clusters + cmap[h.pins]
    uniq = np.unique(key)  # sorted -> pins sorted within each net
    knet = uniq // n_clusters
    kpin = uniq % n_clusters
    sizes = np.bincount(knet, minlength=h.num_nets)
    starts = prefix_from_counts(sizes)

    new_pins_chunks: list[np.ndarray] = []
    new_costs: list[int] = []
    counts: list[int] = []
    seen: dict[bytes, int] = {}
    costs = h.net_costs
    for n in range(h.num_nets):
        lo, hi = starts[n], starts[n + 1]
        if hi - lo < 2:
            continue
        seg = kpin[lo:hi]
        bkey = seg.tobytes()
        idx = seen.get(bkey)
        if idx is None:
            seen[bkey] = len(new_costs)
            new_costs.append(int(costs[n]))
            counts.append(hi - lo)
            new_pins_chunks.append(seg)
        else:
            new_costs[idx] += int(costs[n])

    xpins = prefix_from_counts(counts)
    pins = (
        np.concatenate(new_pins_chunks)
        if new_pins_chunks
        else np.empty(0, dtype=INDEX_DTYPE)
    )
    return Hypergraph(
        n_clusters,
        xpins,
        pins,
        vertex_weights=cw,
        net_costs=np.asarray(new_costs, dtype=INDEX_DTYPE),
        validate=False,
    )


class CoarseLevel:
    """One level of the multilevel hierarchy: the finer hypergraph together
    with the map onto the next-coarser one."""

    __slots__ = ("fine", "cmap", "fixed")

    def __init__(self, fine: Hypergraph, cmap: np.ndarray, fixed: np.ndarray | None):
        self.fine = fine
        self.cmap = cmap
        self.fixed = fixed  # fixed01 of the FINE hypergraph (or None)


def coarsen_level(
    h: Hypergraph,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    max_cluster_weight: int,
    fixed: np.ndarray | None,
    part: np.ndarray | None = None,
) -> tuple[Hypergraph, np.ndarray, np.ndarray | None]:
    """One coarsening step; returns ``(coarse_h, cmap, coarse_fixed)``."""
    cmap, nc, cfix = match_vertices(
        h,
        rng,
        scheme=cfg.matching,
        max_net_size=cfg.max_net_size_coarsen,
        max_cluster_weight=max_cluster_weight,
        fixed=fixed,
        part=part,
    )
    hc = build_coarse(h, cmap, nc)
    coarse_fixed = cfix if fixed is not None else None
    return hc, cmap, coarse_fixed


def coarsen(
    h: Hypergraph,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    fixed: np.ndarray | None = None,
) -> tuple[list[CoarseLevel], Hypergraph, np.ndarray | None]:
    """Build the full coarsening hierarchy for one bisection.

    Returns ``(levels, coarsest, coarsest_fixed)`` where ``levels[i].fine``
    is the hypergraph at level *i* (level 0 = input) and
    ``levels[i].cmap`` maps its vertices onto level *i+1*.
    """
    levels: list[CoarseLevel] = []
    cur = h
    cur_fixed = fixed
    if cfg.matching == "none":
        return levels, cur, cur_fixed
    rec = get_recorder()
    total = max(h.total_vertex_weight(), 1)
    # a cluster may not exceed what a perfectly balanced coarsest part could
    # absorb; this keeps the coarsest instance bisectable
    max_cluster_weight = max(total // max(cfg.coarsen_to // 2, 1), 1)
    with rec.span("coarsen", vertices=h.num_vertices, pins=h.num_pins) as csp:
        for depth in range(cfg.max_coarsen_levels):
            if cur.num_vertices <= cfg.coarsen_to:
                break
            with rec.span("coarsen.level", level=depth) as lsp:
                hc, cmap, cfix = coarsen_level(
                    cur, cfg, rng, max_cluster_weight, cur_fixed
                )
                lsp.set(
                    vertices=hc.num_vertices,
                    nets=hc.num_nets,
                    pins=hc.num_pins,
                )
                lsp.gauge(
                    "shrink", hc.num_vertices / max(cur.num_vertices, 1)
                )
            if hc.num_vertices >= cfg.min_coarsen_shrink * cur.num_vertices:
                break  # stagnated; further levels would waste time
            levels.append(CoarseLevel(cur, cmap, cur_fixed))
            cur = hc
            cur_fixed = cfix
        csp.set(levels=len(levels), coarsest_vertices=cur.num_vertices)
    return levels, cur, cur_fixed


def coarsen_restricted(
    h: Hypergraph,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    part: np.ndarray,
    fixed: np.ndarray | None = None,
) -> tuple[list[CoarseLevel], Hypergraph, np.ndarray | None, np.ndarray]:
    """V-cycle coarsening: like :func:`coarsen` but clustering only within
    the parts of *part*, so the bisection projects exactly.

    Returns ``(levels, coarsest, coarsest_fixed, coarsest_part)``.
    """
    levels: list[CoarseLevel] = []
    cur = h
    cur_fixed = fixed
    cur_part = np.asarray(part, dtype=INDEX_DTYPE)
    rec = get_recorder()
    total = max(h.total_vertex_weight(), 1)
    max_cluster_weight = max(total // max(cfg.coarsen_to // 2, 1), 1)
    with rec.span(
        "coarsen", restricted=True, vertices=h.num_vertices, pins=h.num_pins
    ) as csp:
        for depth in range(cfg.max_coarsen_levels):
            if cur.num_vertices <= cfg.coarsen_to:
                break
            with rec.span("coarsen.level", level=depth) as lsp:
                cmap, nc, cfix = match_vertices(
                    cur,
                    rng,
                    scheme=cfg.matching if cfg.matching != "none" else "hcc",
                    max_net_size=cfg.max_net_size_coarsen,
                    max_cluster_weight=max_cluster_weight,
                    fixed=cur_fixed,
                    part=cur_part,
                )
                hc = build_coarse(cur, cmap, nc)
                lsp.set(
                    vertices=hc.num_vertices,
                    nets=hc.num_nets,
                    pins=hc.num_pins,
                )
                lsp.gauge(
                    "shrink", hc.num_vertices / max(cur.num_vertices, 1)
                )
            if hc.num_vertices >= cfg.min_coarsen_shrink * cur.num_vertices:
                break
            # project: all members of a cluster share a part by construction
            coarse_part = np.empty(nc, dtype=INDEX_DTYPE)
            coarse_part[cmap] = cur_part
            levels.append(CoarseLevel(cur, cmap, cur_fixed))
            cur = hc
            cur_fixed = cfix if cur_fixed is not None else None
            cur_part = coarse_part
        csp.set(levels=len(levels), coarsest_vertices=cur.num_vertices)
    return levels, cur, cur_fixed, cur_part
