"""Shared low-level utilities: RNG normalization, validation, timing.

These helpers are deliberately dependency-light; every subpackage of
:mod:`repro` uses them, so they import nothing from the rest of the
library except :mod:`repro.telemetry`, which is itself stdlib-only.

:class:`Timer` now lives in :mod:`repro.telemetry` (it is a thin shim over
the telemetry clock that can optionally record a span); it is re-exported
here so existing call sites keep working.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.telemetry.recorder import Timer

__all__ = [
    "as_rng",
    "check_in_range",
    "check_positive",
    "ensure_int_array",
    "multi_arange",
    "prefix_from_counts",
    "Timer",
]

#: Integer dtype used for all index arrays in the library.  int64 keeps the
#: arithmetic safe for pin counts beyond 2**31 without any special casing;
#: the memory cost is irrelevant at the scales a pure-Python partitioner can
#: handle anyway.
INDEX_DTYPE = np.int64


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (fresh entropy), an ``int`` seed, or an existing
    generator (returned unchanged so callers can thread one RNG through a
    pipeline for reproducibility).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def ensure_int_array(data: Iterable[int] | np.ndarray, name: str = "array") -> np.ndarray:
    """Convert *data* to a contiguous int64 numpy array, validating type.

    Floating-point inputs are accepted only when they are exactly integral
    (this catches accidental weight truncation early).
    """
    arr = np.asarray(data)
    if arr.dtype.kind == "f":
        if not np.all(arr == np.floor(arr)):
            raise TypeError(f"{name} must contain integers, got fractional values")
        arr = arr.astype(INDEX_DTYPE)
    elif arr.dtype.kind in "iu":
        arr = arr.astype(INDEX_DTYPE, copy=False)
    else:
        raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    return np.ascontiguousarray(arr)


def multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], starts[i] + counts[i])`` for all i.

    The vectorized equivalent of gathering many CSR segments at once:
    ``data[multi_arange(offsets[sel], lengths[sel])]`` pulls the selected
    segments in order without a Python loop.
    """
    starts = np.asarray(starts, dtype=INDEX_DTYPE)
    counts = np.asarray(counts, dtype=INDEX_DTYPE)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    ends = np.cumsum(counts)
    return np.repeat(starts - (ends - counts), counts) + np.arange(
        total, dtype=INDEX_DTYPE
    )


def prefix_from_counts(counts: Sequence[int] | np.ndarray) -> np.ndarray:
    """Build a CSR-style offset array (length ``len(counts)+1``) from counts."""
    counts = np.asarray(counts, dtype=INDEX_DTYPE)
    out = np.empty(len(counts) + 1, dtype=INDEX_DTYPE)
    out[0] = 0
    np.cumsum(counts, out=out[1:])
    return out
