"""Multilevel recursive-bisection graph partitioner (MeTiS analogue).

Pipeline (same family as pmetis, which the paper uses for the standard
graph model):

1. **Coarsening** — heavy-edge matching (HEM): random vertex order, each
   unmatched vertex pairs with its unmatched neighbour of maximum edge
   weight; the coarse graph contracts matched pairs, merging parallel edges
   by summing weights and dropping self loops.
2. **Initial bisection** — greedy graph growing (GGG) from random seeds and
   random balanced assignments, several starts, each FM-refined; the best
   feasible bisection wins.
3. **Uncoarsening** — projection plus boundary FM refinement of the
   edge-cut metric with gain buckets.
4. **K-way** — recursive bisection; removed cut edges make the total edge
   cut the sum of the bisection cuts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro._util import INDEX_DTYPE, Timer, as_rng
from repro.graph.graph import Graph
from repro.graph.metrics import edge_cut, graph_imbalance, validate_graph_partition
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.gainbucket import GainBucket

__all__ = ["GraphPartitionResult", "partition_graph"]


# ----------------------------------------------------------------------
# coarsening
# ----------------------------------------------------------------------
def heavy_edge_matching(
    g: Graph, rng: np.random.Generator, max_cluster_weight: int
) -> tuple[np.ndarray, int]:
    """Heavy-edge matching; returns ``(cmap, n_coarse)``."""
    nv = g.num_vertices
    xadj = g.xadj.tolist()
    adj = g.adj.tolist()
    wgt = g.adjwgt.tolist()
    vw = g.vwgt.tolist()
    match = [-1] * nv
    cmap = [-1] * nv
    nc = 0
    for v in rng.permutation(nv):
        v = int(v)
        if match[v] != -1:
            continue
        best_u, best_w = -1, -1
        wv = vw[v]
        for t in range(xadj[v], xadj[v + 1]):
            u = adj[t]
            if match[u] == -1 and wgt[t] > best_w and vw[u] + wv <= max_cluster_weight:
                best_u, best_w = u, wgt[t]
        if best_u == -1:
            match[v] = v
            cmap[v] = nc
        else:
            match[v] = best_u
            match[best_u] = v
            cmap[v] = cmap[best_u] = nc
        nc += 1
    return np.asarray(cmap, dtype=INDEX_DTYPE), nc


def contract(g: Graph, cmap: np.ndarray, nc: int) -> Graph:
    """Contract *g* along *cmap*: merge parallel edges, drop self loops."""
    cw = np.bincount(cmap, weights=g.vwgt, minlength=nc).astype(INDEX_DTYPE)
    src = np.repeat(np.arange(g.num_vertices, dtype=INDEX_DTYPE), np.diff(g.xadj))
    cs = cmap[src]
    cd = cmap[g.adj]
    keep = cs != cd
    cs, cd, w = cs[keep], cd[keep], g.adjwgt[keep]
    key = cs * nc + cd
    order = np.argsort(key, kind="stable")
    key_s = key[order]
    w_s = w[order]
    if len(key_s):
        new_edge = np.empty(len(key_s), dtype=bool)
        new_edge[0] = True
        new_edge[1:] = key_s[1:] != key_s[:-1]
        group = np.cumsum(new_edge) - 1
        merged_w = np.bincount(group, weights=w_s).astype(INDEX_DTYPE)
        uniq_key = key_s[new_edge]
        usrc = uniq_key // nc
        udst = uniq_key % nc
    else:
        merged_w = np.empty(0, dtype=INDEX_DTYPE)
        usrc = udst = np.empty(0, dtype=INDEX_DTYPE)
    xadj = np.zeros(nc + 1, dtype=INDEX_DTYPE)
    np.add.at(xadj, usrc + 1, 1)
    np.cumsum(xadj, out=xadj)
    return Graph(nc, xadj, udst, adjwgt=merged_w, vwgt=cw, validate=False)


# ----------------------------------------------------------------------
# FM refinement (edge cut)
# ----------------------------------------------------------------------
def _graph_gains(g: Graph, part: np.ndarray) -> np.ndarray:
    """FM gain (external minus internal weighted degree) of every vertex."""
    src = np.repeat(np.arange(g.num_vertices, dtype=INDEX_DTYPE), np.diff(g.xadj))
    ext = part[src] != part[g.adj]
    signed = np.where(ext, g.adjwgt, -g.adjwgt)
    gains = np.zeros(g.num_vertices, dtype=np.int64)
    np.add.at(gains, src, signed)
    return gains


def fm_refine_graph(
    g: Graph,
    part: np.ndarray,
    max_weights: tuple[int, int],
    cfg: PartitionerConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Boundary FM on the edge-cut metric; returns ``(part, cut)``."""
    nv = g.num_vertices
    part = np.asarray(part, dtype=INDEX_DTYPE).copy()
    cut = edge_cut(g, part)
    if nv == 0:
        return part, cut

    xadj = g.xadj.tolist()
    adj = g.adj.tolist()
    wgt = g.adjwgt.tolist()
    vw = g.vwgt.tolist()
    maxw = (int(max_weights[0]), int(max_weights[1]))

    for _ in range(cfg.fm_passes):
        gains = _graph_gains(g, part).tolist()
        part_l = part.tolist()
        W1 = int(g.vwgt[part == 1].sum())
        W = [g.total_vertex_weight() - W1, W1]

        boundary_mode = nv > cfg.fm_boundary_threshold
        if boundary_mode:
            src = np.repeat(np.arange(nv, dtype=INDEX_DTYPE), np.diff(g.xadj))
            bnd = np.unique(src[part[src] != part[g.adj]])
            cand = bnd
        else:
            cand = np.arange(nv)
        if len(cand) == 0:
            break

        wd = np.zeros(nv, dtype=np.int64)
        if len(g.adj):
            src_all = np.repeat(np.arange(nv, dtype=INDEX_DTYPE), np.diff(g.xadj))
            np.add.at(wd, src_all, g.adjwgt)
        bound = max(int(wd.max(initial=1)), 1)
        b0 = GainBucket(nv, bound)
        b1 = GainBucket(nv, bound)
        locked = [False] * nv
        inb = [False] * nv
        for i in rng.permutation(len(cand)):
            v = int(cand[i])
            (b0 if part_l[v] == 0 else b1).insert(v, gains[v])
            inb[v] = True

        exc0 = max(0, W[0] - maxw[0]) + max(0, W[1] - maxw[1])
        moves: list[int] = []
        cum = 0
        best_cum, best_idx = 0, 0
        best_feas = exc0 == 0
        best_exc = exc0
        stall_window = max(int(cfg.fm_stall_frac * len(cand)), cfg.fm_stall_min)
        stalls = 0

        def feasible_to(d: int):
            cap = maxw[d] - W[d]
            s = 1 - d
            over = W[s] > maxw[s]

            def ok(v: int) -> bool:
                wv = vw[v]
                if wv <= cap:
                    return True
                if not over:
                    return False
                red = min(wv, W[s] - maxw[s])
                inc = max(0, W[d] + wv - maxw[d])
                return inc < red

            return ok

        for _ in range(nv):
            v0 = b0.best(feasible_to(1))
            v1 = b1.best(feasible_to(0))
            if v0 is None and v1 is None:
                break
            if v0 is None:
                v = v1
            elif v1 is None:
                v = v0
            elif gains[v0] != gains[v1]:
                v = v0 if gains[v0] > gains[v1] else v1
            else:
                v = v0 if W[0] >= W[1] else v1
            frm = part_l[v]
            to = 1 - frm
            (b0 if frm == 0 else b1).remove(v)
            inb[v] = False
            locked[v] = True
            g_v = gains[v]
            # apply: neighbours previously internal become external and
            # vice versa -> delta of +-2w
            for t in range(xadj[v], xadj[v + 1]):
                u = adj[t]
                if locked[u]:
                    continue
                delta = 2 * wgt[t] if part_l[u] == frm else -2 * wgt[t]
                gains[u] += delta
                if inb[u]:
                    (b0 if part_l[u] == 0 else b1).adjust(u, delta)
                elif boundary_mode:
                    (b0 if part_l[u] == 0 else b1).insert(u, gains[u])
                    inb[u] = True
            part_l[v] = to
            gains[v] = -g_v
            W[frm] -= vw[v]
            W[to] += vw[v]
            moves.append(v)
            cum += g_v
            exc = max(0, W[0] - maxw[0]) + max(0, W[1] - maxw[1])
            feas = exc == 0
            better = False
            if feas and not best_feas:
                better = True
            elif feas == best_feas:
                if feas:
                    better = cum > best_cum
                else:
                    better = exc < best_exc or (exc == best_exc and cum > best_cum)
            if better:
                best_cum, best_idx = cum, len(moves)
                best_feas, best_exc = feas, exc
                stalls = 0
            else:
                stalls += 1
                if stalls > stall_window:
                    break

        for v in reversed(moves[best_idx:]):
            part_l[v] = 1 - part_l[v]
        part = np.asarray(part_l, dtype=INDEX_DTYPE)
        cut -= best_cum if best_idx > 0 else 0
        if best_idx == 0 or best_cum <= 0:
            break
    return part, cut


# ----------------------------------------------------------------------
# initial bisection
# ----------------------------------------------------------------------
def ggg_bisection(
    g: Graph, target0: int, max0: int, rng: np.random.Generator
) -> np.ndarray:
    """Greedy graph growing: BFS-like growth of part 0 by best gain."""
    nv = g.num_vertices
    part = np.ones(nv, dtype=INDEX_DTYPE)
    if nv == 0:
        return part
    xadj = g.xadj.tolist()
    adj = g.adj.tolist()
    wgt = g.adjwgt.tolist()
    vw = g.vwgt.tolist()
    # gain of moving v into part 0 under the all-ones start: every
    # neighbour is internal, so gain = -weighted_degree(v)
    gains = _graph_gains(g, part).tolist()
    in_q = [False] * nv
    placed = [False] * nv
    bound = 1
    if len(g.adj):
        src = np.repeat(np.arange(nv, dtype=INDEX_DTYPE), np.diff(g.xadj))
        wd = np.zeros(nv, dtype=np.int64)
        np.add.at(wd, src, g.adjwgt)
        bound = max(int(wd.max()), 1)
    bucket = GainBucket(nv, bound)
    W0 = 0
    seed = int(rng.integers(nv))
    bucket.insert(seed, gains[seed])
    in_q[seed] = True
    while W0 < target0:
        cap = max0 - W0
        v = bucket.pop_best(lambda u: vw[u] <= cap)
        if v is None:
            # grow from a fresh random seed in the unplaced region
            rest = [u for u in range(nv) if not placed[u] and not in_q[u] and vw[u] <= cap]
            if not rest:
                break
            v = rest[int(rng.integers(len(rest)))]
        in_q[v] = False
        placed[v] = True
        part[v] = 0
        W0 += vw[v]
        for t in range(xadj[v], xadj[v + 1]):
            u = adj[t]
            if placed[u]:
                continue
            delta = 2 * wgt[t]
            gains[u] += delta
            if in_q[u]:
                bucket.adjust(u, delta)
            else:
                bucket.insert(u, gains[u])
                in_q[u] = True
    return part


def random_graph_bisection(
    g: Graph, target0: int, max0: int, rng: np.random.Generator
) -> np.ndarray:
    """Random balanced bisection."""
    part = np.ones(g.num_vertices, dtype=INDEX_DTYPE)
    W0 = 0
    vw = g.vwgt
    for v in rng.permutation(g.num_vertices):
        if W0 >= target0:
            break
        if W0 + int(vw[v]) <= max0:
            part[int(v)] = 0
            W0 += int(vw[v])
    return part


# ----------------------------------------------------------------------
# multilevel bisection and recursion
# ----------------------------------------------------------------------
def multilevel_graph_bisect(
    g: Graph,
    targets: tuple[int, int],
    epsilon: float,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Multilevel bisection of *g*; returns ``(part01, cut)``."""
    t0, t1 = int(targets[0]), int(targets[1])
    maxw = (int(t0 * (1 + epsilon)), int(t1 * (1 + epsilon)))
    levels: list[tuple[Graph, np.ndarray]] = []
    cur = g
    total = max(g.total_vertex_weight(), 1)
    max_cluster_weight = max(total // max(cfg.coarsen_to // 2, 1), 1)
    for _ in range(cfg.max_coarsen_levels):
        if cur.num_vertices <= cfg.coarsen_to:
            break
        cmap, nc = heavy_edge_matching(cur, rng, max_cluster_weight)
        if nc >= cfg.min_coarsen_shrink * cur.num_vertices:
            break
        coarse = contract(cur, cmap, nc)
        levels.append((cur, cmap))
        cur = coarse

    best_part, best_key = None, None
    for s in range(cfg.n_initial_starts):
        if s % 3 == 2:
            raw = random_graph_bisection(cur, t0, maxw[0], rng)
        else:
            raw = ggg_bisection(cur, t0, maxw[0], rng)
        p, c = fm_refine_graph(cur, raw, maxw, cfg, rng)
        w0 = int(cur.vwgt[p == 0].sum())
        w1 = cur.total_vertex_weight() - w0
        excess = max(0, w0 - maxw[0]) + max(0, w1 - maxw[1])
        key = (excess, c)
        if best_key is None or key < best_key:
            best_part, best_key = p, key
    part = best_part
    for fine, cmap in reversed(levels):
        part = part[cmap]
        part, _ = fm_refine_graph(fine, part, maxw, cfg, rng)
    return part, edge_cut(g, part)


def _extract_graph_side(g: Graph, part01: np.ndarray, side: int) -> tuple[Graph, np.ndarray]:
    vmask = part01 == side
    ids = np.flatnonzero(vmask)
    old2new = np.full(g.num_vertices, -1, dtype=INDEX_DTYPE)
    old2new[ids] = np.arange(len(ids), dtype=INDEX_DTYPE)
    src = np.repeat(np.arange(g.num_vertices, dtype=INDEX_DTYPE), np.diff(g.xadj))
    keep = vmask[src] & vmask[g.adj]
    s = old2new[src[keep]]
    d = old2new[g.adj[keep]]
    w = g.adjwgt[keep]
    xadj = np.zeros(len(ids) + 1, dtype=INDEX_DTYPE)
    np.add.at(xadj, s + 1, 1)
    np.cumsum(xadj, out=xadj)
    order = np.argsort(s, kind="stable")
    sub = Graph(
        len(ids), xadj, d[order], adjwgt=w[order], vwgt=g.vwgt[ids], validate=False
    )
    return sub, ids


def _recurse(
    g: Graph, k: int, cfg: PartitionerConfig, rng: np.random.Generator, eps_b: float
) -> np.ndarray:
    if k == 1:
        return np.zeros(g.num_vertices, dtype=INDEX_DTYPE)
    k1 = (k + 1) // 2
    k2 = k - k1
    total = g.total_vertex_weight()
    t0 = int(round(total * k1 / k))
    part01, _ = multilevel_graph_bisect(g, (t0, total - t0), eps_b, cfg, rng)
    part = np.zeros(g.num_vertices, dtype=INDEX_DTYPE)
    for side, k_side, offset in ((0, k1, 0), (1, k2, k1)):
        sub, ids = _extract_graph_side(g, part01, side)
        part[ids] = offset + _recurse(sub, k_side, cfg, rng, eps_b)
    return part


@dataclass
class GraphPartitionResult:
    """Outcome of :func:`partition_graph`."""

    part: np.ndarray
    k: int
    edge_cut: int
    imbalance: float
    runtime: float

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"K={self.k} edgecut={self.edge_cut} "
            f"imbalance={100 * self.imbalance:.2f}% time={self.runtime:.2f}s"
        )


def partition_graph(
    g: Graph,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> GraphPartitionResult:
    """K-way graph partitioning minimizing edge cut under Eq. 1 balance."""
    cfg = config or PartitionerConfig()
    rng = as_rng(seed)
    if k < 1:
        raise ValueError("k must be >= 1")
    levels = max(int(math.ceil(math.log2(max(k, 2)))), 1)
    eps_b = (1.0 + cfg.epsilon) ** (1.0 / levels) - 1.0

    best = None
    best_key = None
    for run in range(cfg.n_runs):
        with Timer("graph.partition.run", run=run, k=k) as t:
            part = _recurse(g, k, cfg, rng, eps_b)
        validate_graph_partition(g, part, k)
        cut = edge_cut(g, part)
        imb = graph_imbalance(g, part, k)
        key = (max(0.0, imb - cfg.epsilon), cut)
        if best_key is None or key < best_key:
            best_key = key
            best = GraphPartitionResult(
                part=part, k=k, edge_cut=cut, imbalance=imb, runtime=t.elapsed
            )
    assert best is not None
    return best
