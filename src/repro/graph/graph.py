"""Undirected weighted graph in CSR (adjacency-list) form."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro._util import INDEX_DTYPE, ensure_int_array

__all__ = ["Graph", "graph_from_sparse"]


class Graph:
    """Undirected graph with integer vertex and edge weights.

    Storage is symmetric CSR: every undirected edge ``{u, v}`` appears both
    in ``adj[u]`` and ``adj[v]`` with the same weight.  Self loops are not
    allowed (they are meaningless for partitioning and MeTiS also rejects
    them).
    """

    __slots__ = ("num_vertices", "xadj", "adj", "adjwgt", "vwgt")

    def __init__(
        self,
        num_vertices: int,
        xadj,
        adj,
        adjwgt=None,
        vwgt=None,
        validate: bool = True,
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.xadj = ensure_int_array(xadj, "xadj")
        self.adj = ensure_int_array(adj, "adj")
        if adjwgt is None:
            self.adjwgt = np.ones(len(self.adj), dtype=INDEX_DTYPE)
        else:
            self.adjwgt = ensure_int_array(adjwgt, "adjwgt")
        if vwgt is None:
            self.vwgt = np.ones(self.num_vertices, dtype=INDEX_DTYPE)
        else:
            self.vwgt = ensure_int_array(vwgt, "vwgt")
        if validate:
            self._check()

    def _check(self) -> None:
        if len(self.xadj) != self.num_vertices + 1 or self.xadj[0] != 0:
            raise ValueError("xadj must have length n+1 and start at 0")
        if np.any(np.diff(self.xadj) < 0):
            raise ValueError("xadj must be non-decreasing")
        if self.xadj[-1] != len(self.adj):
            raise ValueError("xadj[-1] must equal len(adj)")
        if len(self.adjwgt) != len(self.adj):
            raise ValueError("adjwgt length mismatch")
        if len(self.vwgt) != self.num_vertices:
            raise ValueError("vwgt length mismatch")
        if len(self.adj):
            if self.adj.min() < 0 or self.adj.max() >= self.num_vertices:
                raise ValueError("adjacency index out of range")
            src = np.repeat(
                np.arange(self.num_vertices, dtype=INDEX_DTYPE), np.diff(self.xadj)
            )
            if np.any(src == self.adj):
                raise ValueError("self loops are not allowed")
            # symmetry: multiset of (u,v,w) must equal multiset of (v,u,w)
            fwd = np.lexsort((self.adjwgt, self.adj, src))
            bwd = np.lexsort((self.adjwgt, src, self.adj))
            if not (
                np.array_equal(src[fwd], self.adj[bwd])
                and np.array_equal(self.adj[fwd], src[bwd])
                and np.array_equal(self.adjwgt[fwd], self.adjwgt[bwd])
            ):
                raise ValueError("adjacency structure is not symmetric")

    # -- accessors -------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.adj) // 2

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of *v* (a view)."""
        return self.adj[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        """Number of neighbours of *v*."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def total_vertex_weight(self) -> int:
        """Sum of vertex weights."""
        return int(self.vwgt.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(V={self.num_vertices}, E={self.num_edges})"


def graph_from_sparse(adj_matrix: sp.spmatrix, vwgt=None) -> Graph:
    """Build a :class:`Graph` from a symmetric sparse adjacency matrix.

    Off-diagonal structure gives the edges (values are the edge weights and
    must be positive integers); the diagonal is ignored.
    """
    a = sp.csr_matrix(adj_matrix)
    if a.shape[0] != a.shape[1]:
        raise ValueError("adjacency matrix must be square")
    a = a.tolil()
    a.setdiag(0)
    a = a.tocsr()
    a.eliminate_zeros()
    a.sort_indices()
    return Graph(
        a.shape[0],
        a.indptr,
        a.indices,
        adjwgt=a.data,
        vwgt=vwgt,
    )
