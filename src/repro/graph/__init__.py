"""Graph substrate and the multilevel graph partitioner (MeTiS analogue).

The paper's first baseline is the *standard graph model* partitioned with
MeTiS [12].  This package implements a CSR graph
(:class:`~repro.graph.graph.Graph`) and a from-scratch multilevel
recursive-bisection partitioner with the same pipeline as pmetis:
heavy-edge matching coarsening, greedy graph growing initial bisection and
boundary FM refinement on the edge-cut metric
(:mod:`~repro.graph.partitioner`).
"""

from repro.graph.graph import Graph, graph_from_sparse
from repro.graph.metrics import edge_cut, graph_imbalance, graph_part_weights
from repro.graph.partitioner import GraphPartitionResult, partition_graph

__all__ = [
    "Graph",
    "graph_from_sparse",
    "edge_cut",
    "graph_imbalance",
    "graph_part_weights",
    "GraphPartitionResult",
    "partition_graph",
]
