"""Partition quality metrics for graphs (edge cut, balance)."""

from __future__ import annotations

import numpy as np

from repro._util import INDEX_DTYPE
from repro.graph.graph import Graph

__all__ = ["edge_cut", "graph_part_weights", "graph_imbalance", "validate_graph_partition"]


def edge_cut(g: Graph, part: np.ndarray) -> int:
    """Total weight of edges whose endpoints lie in different parts."""
    src = np.repeat(np.arange(g.num_vertices, dtype=INDEX_DTYPE), np.diff(g.xadj))
    cut = part[src] != part[g.adj]
    # each undirected edge is stored twice
    return int(g.adjwgt[cut].sum() // 2)


def graph_part_weights(g: Graph, part: np.ndarray, k: int) -> np.ndarray:
    """Sum of vertex weights per part."""
    return np.bincount(part, weights=g.vwgt, minlength=k).astype(INDEX_DTYPE)


def graph_imbalance(g: Graph, part: np.ndarray, k: int) -> float:
    """``(W_max - W_avg) / W_avg`` over the part weights."""
    w = graph_part_weights(g, part, k)
    avg = g.total_vertex_weight() / k
    if avg == 0:
        return 0.0
    return float((w.max() - avg) / avg)


def validate_graph_partition(g: Graph, part: np.ndarray, k: int) -> None:
    """Raise unless *part* is a valid K-way partition of the vertices."""
    part = np.asarray(part)
    if part.shape != (g.num_vertices,):
        raise ValueError("partition vector has wrong length")
    if g.num_vertices and (part.min() < 0 or part.max() >= k):
        raise ValueError("part id out of range")
