"""Baseline decomposition models the paper compares against, plus the
reduction-problem generalization.

* :mod:`~repro.models.onedim` — the 1D column-net / row-net hypergraph
  models of Çatalyürek & Aykanat (TPDS 1999);
* :mod:`~repro.models.graph_model` — the standard graph model partitioned
  with the MeTiS-analogue graph partitioner;
* :mod:`~repro.models.reduction` — generic parallel-reduction decomposition
  with optionally pre-assigned inputs/outputs (fixed part vertices, §3).
"""

from repro.models.onedim import (
    OneDimModel,
    build_columnnet_model,
    build_rownet_model,
)
from repro.models.graph_model import GraphModel, build_standard_graph_model
from repro.models.reduction import ReductionProblem, build_reduction_hypergraph
from repro.models.checkerboard import (
    decompose_2d_checkerboard,
    processor_grid,
    balanced_stripes,
)
from repro.models.jagged import decompose_2d_jagged
from repro.models.mondriaan import decompose_2d_mondriaan

__all__ = [
    "OneDimModel",
    "build_columnnet_model",
    "build_rownet_model",
    "GraphModel",
    "build_standard_graph_model",
    "ReductionProblem",
    "build_reduction_hypergraph",
    "decompose_2d_checkerboard",
    "processor_grid",
    "balanced_stripes",
    "decompose_2d_jagged",
    "decompose_2d_mondriaan",
]
