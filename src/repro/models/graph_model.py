"""The standard graph model for 1D (rowwise) matrix decomposition.

This is the paper's first baseline ("Standard Graph Model", partitioned
with MeTiS).  For a structurally symmetric matrix the model is the obvious
one: vertex *i* per row, edge ``{i, j}`` per symmetric nonzero pair.  For
nonsymmetric matrices we use the generalized form of Çatalyürek & Aykanat
(TPDS 1999): the pattern is symmetrized (``A + A^T``), and an edge gets
cost 2 when both ``a_ij`` and ``a_ji`` are stored (two words would cross
the cut in the symmetric-pattern reading) and cost 1 when only one is.

Vertex *i* is weighted by the number of nonzeros in row *i* — its share of
the scalar multiplications under a rowwise decomposition.

The well-known *flaw* of this model (the reason the paper's hypergraph
models win) is that the edge cut only approximates the true communication
volume: a vertex with cut edges to several neighbours in the same part is
charged once per edge but sends ``x_i`` only once per part.  The benchmark
harness therefore measures the *actual* volume of the induced decomposition
with the SpMV simulator, exactly as the paper's Table 2 does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro._util import INDEX_DTYPE
from repro.graph.graph import Graph, graph_from_sparse

__all__ = ["GraphModel", "build_standard_graph_model"]


@dataclass(frozen=True)
class GraphModel:
    """Standard graph model: partitioning its graph assigns rows."""

    graph: Graph
    m: int


def build_standard_graph_model(a: sp.spmatrix) -> GraphModel:
    """Build the standard (generalized) graph model of square matrix *a*."""
    a = sp.csr_matrix(a)
    if a.shape[0] != a.shape[1]:
        raise ValueError("graph model requires a square matrix")
    a.eliminate_zeros()
    m = a.shape[0]

    pattern = sp.csr_matrix(
        (np.ones(a.nnz, dtype=np.int64), a.indices.copy(), a.indptr.copy()),
        shape=a.shape,
    )
    # edge weight = number of stored directions (1 or 2)
    sym = pattern + pattern.T
    sym = sp.csr_matrix(sym)
    sym.setdiag(0)
    sym.eliminate_zeros()

    vwgt = np.diff(a.indptr).astype(INDEX_DTYPE)  # nnz per row
    # rows with zero nonzeros would have zero weight; the balance model
    # tolerates that, the partitioner places them freely
    g = graph_from_sparse(sym, vwgt=vwgt)
    return GraphModel(graph=g, m=m)
