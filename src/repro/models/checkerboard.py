"""Cartesian (checkerboard) 2D decomposition — the prior 2D baseline.

§1 of the paper: "The 2D checkerboard decomposition schemes proposed by
Hendrickson et al. [11] and Lewis and van de Geijn [15] are typically
suitable for dense matrices ... These schemes do not involve explicit
effort towards reducing communication volume."

This module implements that baseline so the claim can be measured.  The K
processors form an ``R x C`` grid.  Rows are split into R contiguous
stripes and columns into C contiguous stripes, each balanced by nonzero
count; nonzero ``a_ij`` goes to processor ``(row_stripe(i),
col_stripe(j))``.  Vector entry ``j`` lives with the processor owning the
diagonal position ``(j, j)``, which keeps the x/y distribution symmetric.

Communication structure (the appeal of the scheme): ``x_j`` is only ever
needed inside one processor *column* and partial ``y_i`` only inside one
processor *row*, so every processor exchanges messages with at most
``R - 1 + C - 1`` others — but the *volume* is whatever the sparsity
pattern dictates, with no optimization at all.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro._util import INDEX_DTYPE
from repro.core.decomposition import Decomposition

__all__ = ["processor_grid", "balanced_stripes", "decompose_2d_checkerboard"]


def processor_grid(k: int) -> tuple[int, int]:
    """Most-square factorization ``R x C = k`` with ``R <= C``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    r = int(math.isqrt(k))
    while k % r:
        r -= 1
    return r, k // r


def balanced_stripes(counts: np.ndarray, parts: int) -> np.ndarray:
    """Split ``range(len(counts))`` into contiguous stripes of roughly equal
    total count.

    Quantile cutting on the weighted prefix: index *i* goes to the stripe
    containing the midpoint of its count mass.  Stripes are contiguous and
    the assignment is monotone non-decreasing.
    """
    n = len(counts)
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if parts <= 1 or n == 0 or total == 0:
        return np.zeros(n, dtype=INDEX_DTYPE)
    midpoints = np.cumsum(counts) - counts / 2.0
    stripes = np.minimum((midpoints / total * parts).astype(INDEX_DTYPE), parts - 1)
    return stripes


def decompose_2d_checkerboard(a: sp.spmatrix, k: int) -> Decomposition:
    """Checkerboard-decompose *a* onto a ``processor_grid(k)`` mesh.

    Deterministic (no partitioner involved — that is the point of the
    baseline: zero effort toward reducing communication volume).
    """
    a = sp.csr_matrix(a)
    if a.shape[0] != a.shape[1]:
        raise ValueError("checkerboard decomposition requires a square matrix")
    a.eliminate_zeros()
    a.sort_indices()
    m = a.shape[0]
    r, c = processor_grid(k)

    row_counts = np.diff(a.indptr)
    col_counts = np.bincount(a.indices, minlength=m)
    row_stripe = balanced_stripes(row_counts, r)
    col_stripe = balanced_stripes(col_counts, c)

    coo = a.tocoo()
    nnz_row = coo.row.astype(INDEX_DTYPE)
    nnz_col = coo.col.astype(INDEX_DTYPE)
    nnz_owner = row_stripe[nnz_row] * c + col_stripe[nnz_col]
    vec_owner = row_stripe * c + col_stripe  # owner of the (j, j) position
    return Decomposition(
        k=k,
        m=m,
        nnz_row=nnz_row,
        nnz_col=nnz_col,
        nnz_val=coo.data.astype(np.float64),
        nnz_owner=nnz_owner,
        x_owner=vec_owner.astype(INDEX_DTYPE),
        y_owner=vec_owner.astype(INDEX_DTYPE).copy(),
    )
