"""1D hypergraph models (column-net and row-net) of Çatalyürek & Aykanat.

These are the "1D Hypergraph Model" baseline of the paper's Table 2
(reference [4] there: TPDS 1999).

**Column-net model** (for rowwise decomposition): vertices are the *rows*
of A, weighted by the number of nonzeros in the row (the row's scalar
multiplications); there is one net per *column*, pinning every row with a
nonzero in that column.  Under a rowwise decomposition with conformal
vector distribution, a cut column net ``n_j`` with connectivity ``lambda_j``
forces the owner of ``x_j`` to expand it to ``lambda_j - 1`` other
processors — the connectivity-minus-one cutsize is exactly the expand
volume (rowwise SpMV needs no fold).

For the symmetric x/y distribution the model needs the same consistency
device as the fine-grain model: vertex *j* (row *j*) must be a pin of net
*j* (column *j*), which holds automatically when ``a_jj != 0`` and is
enforced by adding the pin otherwise.

**Row-net model** is the exact dual, for columnwise decomposition (fold
volume only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro._util import INDEX_DTYPE, prefix_from_counts
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["OneDimModel", "build_columnnet_model", "build_rownet_model"]


@dataclass(frozen=True)
class OneDimModel:
    """A 1D hypergraph model plus its interpretation."""

    hypergraph: Hypergraph
    #: "row" => partition assigns rows (column-net model);
    #: "col" => partition assigns columns (row-net model)
    orientation: str
    m: int


def _build(a_csc: sp.csc_matrix, orientation: str) -> OneDimModel:
    """Shared construction: nets from the CSC-major axis, vertices from the
    other axis.

    For ``orientation == "row"`` pass A in CSC form: nets are columns, pins
    are the row indices.  For ``orientation == "col"`` pass A.T in CSC form.
    """
    m = a_csc.shape[0]
    indptr = a_csc.indptr.astype(INDEX_DTYPE)
    indices = a_csc.indices.astype(INDEX_DTYPE)

    # vertex weights: nonzeros per vertex (= per row for the column-net
    # model), i.e. the scalar multiplications the vertex's stripe performs
    weights = np.bincount(indices, minlength=m).astype(INDEX_DTYPE)

    # consistency: ensure vertex j is a pin of net j
    netlists_need_fix: list[int] = []
    for j in range(m):
        lo, hi = indptr[j], indptr[j + 1]
        seg = indices[lo:hi]
        pos = np.searchsorted(seg, j)
        if pos >= len(seg) or seg[pos] != j:
            netlists_need_fix.append(j)

    if netlists_need_fix:
        sizes = np.diff(indptr).astype(INDEX_DTYPE)
        extra = np.zeros(m, dtype=INDEX_DTYPE)
        extra[netlists_need_fix] = 1
        new_sizes = sizes + extra
        xpins = prefix_from_counts(new_sizes)
        pins = np.empty(int(xpins[-1]), dtype=INDEX_DTYPE)
        for j in range(m):
            lo, hi = indptr[j], indptr[j + 1]
            out = xpins[j]
            n_old = hi - lo
            pins[out : out + n_old] = indices[lo:hi]
            if extra[j]:
                pins[out + n_old] = j
    else:
        xpins = indptr
        pins = indices

    h = Hypergraph(m, xpins, pins, vertex_weights=weights, validate=False)
    return OneDimModel(hypergraph=h, orientation=orientation, m=m)


def build_columnnet_model(a: sp.spmatrix, consistency: bool = True) -> OneDimModel:
    """Column-net model: partition rows, nets are columns."""
    a = sp.csc_matrix(a)
    if a.shape[0] != a.shape[1]:
        raise ValueError("1D models require a square matrix")
    a.eliminate_zeros()
    a.sort_indices()
    model = _build(a, "row")
    if not consistency:
        # rebuild without the pin fix: use raw CSC arrays directly
        h = Hypergraph(
            a.shape[0],
            a.indptr.astype(INDEX_DTYPE),
            a.indices.astype(INDEX_DTYPE),
            vertex_weights=model.hypergraph.vertex_weights,
            validate=False,
        )
        return OneDimModel(hypergraph=h, orientation="row", m=a.shape[0])
    return model


def build_rownet_model(a: sp.spmatrix, consistency: bool = True) -> OneDimModel:
    """Row-net model: partition columns, nets are rows (dual of column-net)."""
    at = sp.csc_matrix(sp.csr_matrix(a).T)
    if at.shape[0] != at.shape[1]:
        raise ValueError("1D models require a square matrix")
    at.eliminate_zeros()
    at.sort_indices()
    model = _build(at, "col")
    if not consistency:
        h = Hypergraph(
            at.shape[0],
            at.indptr.astype(INDEX_DTYPE),
            at.indices.astype(INDEX_DTYPE),
            vertex_weights=model.hypergraph.vertex_weights,
            validate=False,
        )
        return OneDimModel(hypergraph=h, orientation="col", m=at.shape[0])
    return model
