"""Mondriaan-style recursive 2D matrix splitting.

The fine-grain model's best-known descendant (Vastenhouw & Bisseling's
Mondriaan partitioner adopted both it and this scheme): recursively bisect
the *set of nonzeros*, at every step trying a rowwise and a columnwise 1D
hypergraph split of the current submatrix and keeping whichever cuts less.
The result is a hierarchy of rectangular-ish nonzero blocks — finer than
jagged (each region chooses its own direction) but coarser than the
fine-grain model (nonzeros of one row segment move together).

Included as a baseline ablation: on the paper's axis it sits between the
1D models and the fine-grain model, and measuring it shows how much of the
fine-grain gain comes from per-nonzero freedom versus merely going 2D.

Vector ownership (x_j, y_j must share a processor for the symmetric
distribution): the owner of the diagonal nonzero when it exists, otherwise
the candidate among the processors holding column *j* or row *j* that
saves the most transfer words, ties broken toward the lower rank.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro._util import INDEX_DTYPE, as_rng, prefix_from_counts
from repro.core.decomposition import Decomposition
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.bisect import multilevel_bisect
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.recursive import bisection_epsilon

__all__ = ["decompose_2d_mondriaan"]


def _region_hypergraph(
    rows: np.ndarray, cols: np.ndarray
) -> tuple[Hypergraph, np.ndarray]:
    """Column-net hypergraph of a nonzero region.

    Vertices are the distinct row ids (weights = region nonzeros in the
    row); one net per distinct column pins the rows appearing in it.
    Returns ``(h, distinct_rows)``; partitioning h assigns region rows.
    """
    distinct_rows, row_local = np.unique(rows, return_inverse=True)
    weights = np.bincount(row_local).astype(INDEX_DTYPE)
    distinct_cols, col_local = np.unique(cols, return_inverse=True)
    order = np.lexsort((row_local, col_local))
    col_sorted = col_local[order]
    pins_all = row_local[order]
    # dedupe (col, row) pairs: a row pins a net once
    keep = np.empty(len(order), dtype=bool)
    if len(order):
        keep[0] = True
        keep[1:] = (col_sorted[1:] != col_sorted[:-1]) | (
            pins_all[1:] != pins_all[:-1]
        )
    sizes = np.bincount(col_sorted[keep], minlength=len(distinct_cols))
    xpins = prefix_from_counts(sizes)
    h = Hypergraph(
        len(distinct_rows),
        xpins,
        pins_all[keep],
        vertex_weights=weights,
        validate=False,
    )
    return h, distinct_rows


def _split_region(
    region: np.ndarray,
    nnz_row: np.ndarray,
    nnz_col: np.ndarray,
    k1: int,
    k2: int,
    eps: float,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    try_both: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Bisect one nonzero region; returns (side0 indices, side1 indices)."""
    total = len(region)
    t0 = int(round(total * k1 / (k1 + k2)))
    targets = (t0, total - t0)

    def one_direction(axis_ids: np.ndarray, other_ids: np.ndarray):
        h, distinct = _region_hypergraph(axis_ids, other_ids)
        part, cut = multilevel_bisect(h, targets, eps, cfg, rng)
        lookup = np.zeros(int(axis_ids.max()) + 1, dtype=INDEX_DTYPE)
        lookup[distinct] = part
        return lookup[axis_ids], cut

    rsel, rcut = one_direction(nnz_row[region], nnz_col[region])
    if try_both:
        csel, ccut = one_direction(nnz_col[region], nnz_row[region])
        sel = csel if ccut < rcut else rsel
    else:
        sel = rsel
    return region[sel == 0], region[sel == 1]


def decompose_2d_mondriaan(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
    try_both: bool = True,
) -> Decomposition:
    """Recursive best-direction 2D decomposition of *a* onto K processors.

    ``try_both=False`` always splits rowwise (degenerating towards a
    recursive 1D scheme), exposed for the ablation.
    """
    a = sp.csr_matrix(a)
    if a.shape[0] != a.shape[1]:
        raise ValueError("mondriaan decomposition requires a square matrix")
    a.eliminate_zeros()
    a.sort_indices()
    m = a.shape[0]
    coo = a.tocoo()
    nnz_row = coo.row.astype(INDEX_DTYPE)
    nnz_col = coo.col.astype(INDEX_DTYPE)
    cfg = config or PartitionerConfig()
    rng = as_rng(seed)
    eps = bisection_epsilon(cfg.epsilon, max(k, 2))

    owner = np.zeros(a.nnz, dtype=INDEX_DTYPE)
    stack: list[tuple[np.ndarray, int, int]] = [
        (np.arange(a.nnz, dtype=INDEX_DTYPE), k, 0)
    ]
    while stack:
        region, kk, offset = stack.pop()
        if kk <= 1 or len(region) == 0:
            owner[region] = offset
            continue
        k1 = (kk + 1) // 2
        k2 = kk - k1
        side0, side1 = _split_region(
            region, nnz_row, nnz_col, k1, k2, eps, cfg, rng, try_both
        )
        stack.append((side0, k1, offset))
        stack.append((side1, k2, offset + k1))

    vec_owner = _symmetric_vector_owners(m, k, nnz_row, nnz_col, owner)
    return Decomposition(
        k=k,
        m=m,
        nnz_row=nnz_row,
        nnz_col=nnz_col,
        nnz_val=coo.data.astype(np.float64),
        nnz_owner=owner,
        x_owner=vec_owner,
        y_owner=vec_owner.copy(),
    )


def _symmetric_vector_owners(
    m: int, k: int, nnz_row: np.ndarray, nnz_col: np.ndarray, owner: np.ndarray
) -> np.ndarray:
    """Greedy conformal vector assignment (see module docstring)."""
    # processors holding nonzeros per column / per row, as sorted pair keys
    col_pairs = np.unique(nnz_col * k + owner)
    row_pairs = np.unique(nnz_row * k + owner)
    col_start = np.searchsorted(col_pairs // k, np.arange(m + 1))
    row_start = np.searchsorted(row_pairs // k, np.arange(m + 1))

    diag_owner = np.full(m, -1, dtype=INDEX_DTYPE)
    on_diag = nnz_row == nnz_col
    diag_owner[nnz_row[on_diag]] = owner[on_diag]

    out = np.empty(m, dtype=INDEX_DTYPE)
    for j in range(m):
        if diag_owner[j] >= 0:
            out[j] = diag_owner[j]
            continue
        col_owners = (col_pairs[col_start[j] : col_start[j + 1]] % k).tolist()
        row_owners = (row_pairs[row_start[j] : row_start[j + 1]] % k).tolist()
        cand = set(col_owners) | set(row_owners)
        if not cand:
            out[j] = j % k  # untouched index: spread round-robin
            continue
        col_set, row_set = set(col_owners), set(row_owners)
        out[j] = min(
            cand,
            key=lambda p: (-(p in col_set) - (p in row_set), p),
        )
    return out
