"""Generic parallel-reduction decomposition (§1 and §3 of the paper).

Matrix–vector multiplication is one instance of a *reduction*: inputs
``x_1..x_n`` are mapped through atomic tasks into outputs ``y_1..y_m``,
every output accumulating the results of the tasks that feed it.  The
fine-grain construction generalizes verbatim:

* one vertex per atomic task (unit weight);
* one *input net* per input, pinning the tasks that consume it (expand);
* one *output net* per output, pinning the tasks that feed it (fold).

Without the symmetric-partitioning requirement no consistency device is
needed (§3): cutsize Eq. 3 already equals communication volume when each
input/output is assigned to any part in its net's connectivity set.

When inputs or outputs are **pre-assigned** to processors, the paper's
recipe is followed: one zero-weight *fixed part vertex* is added per part,
pinned into the nets of the elements pre-assigned to that part, and fixed
there during partitioning (the partitioner's fixed-vertex support).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util import INDEX_DTYPE, prefix_from_counts
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["ReductionProblem", "build_reduction_hypergraph"]


@dataclass(frozen=True)
class ReductionProblem:
    """A reduction instance: which inputs/outputs each task touches."""

    n_inputs: int
    n_outputs: int
    #: per task: indices of the inputs it reads
    task_inputs: tuple[tuple[int, ...], ...]
    #: per task: indices of the outputs it feeds
    task_outputs: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        for ins in self.task_inputs:
            for i in ins:
                if not (0 <= i < self.n_inputs):
                    raise ValueError(f"input index {i} out of range")
        for outs in self.task_outputs:
            for o in outs:
                if not (0 <= o < self.n_outputs):
                    raise ValueError(f"output index {o} out of range")
        if len(self.task_inputs) != len(self.task_outputs):
            raise ValueError("task_inputs and task_outputs must align")

    @property
    def n_tasks(self) -> int:
        """Number of atomic tasks."""
        return len(self.task_inputs)


def build_reduction_hypergraph(
    problem: ReductionProblem,
    k: int | None = None,
    input_assignment: Sequence[int] | None = None,
    output_assignment: Sequence[int] | None = None,
) -> tuple[Hypergraph, np.ndarray]:
    """Fine-grain hypergraph of a reduction problem.

    Returns ``(h, task_vertex_ids)``.  Net ordering: output nets first
    (``[0, n_outputs)``), then input nets (``[n_outputs, n_outputs +
    n_inputs)``) — mirroring the row-nets-then-column-nets layout of the
    matrix model.

    When ``input_assignment`` / ``output_assignment`` pre-assign elements to
    parts (entries in ``[0, k)``, or -1 for free), K fixed *part vertices*
    are appended (zero weight, fixed to their part) and pinned into the nets
    of the pre-assigned elements; ``h.fixed`` carries the pre-assignment for
    :func:`repro.partitioner.partition_hypergraph`.
    """
    nt = problem.n_tasks
    n_out, n_in = problem.n_outputs, problem.n_inputs
    pre = input_assignment is not None or output_assignment is not None
    if pre and (k is None or k < 1):
        raise ValueError("k is required when elements are pre-assigned")

    nv = nt + (k if pre else 0)
    netlists: list[list[int]] = [[] for _ in range(n_out + n_in)]
    for t in range(nt):
        for o in problem.task_outputs[t]:
            netlists[o].append(t)
        for i in problem.task_inputs[t]:
            netlists[n_out + i].append(t)

    fixed = None
    if pre:
        fixed = np.full(nv, -1, dtype=INDEX_DTYPE)
        for p in range(k):
            fixed[nt + p] = p
        if output_assignment is not None:
            for o, p in enumerate(output_assignment):
                if p >= 0:
                    if p >= k:
                        raise ValueError("output assignment out of range")
                    netlists[o].append(nt + p)
        if input_assignment is not None:
            for i, p in enumerate(input_assignment):
                if p >= 0:
                    if p >= k:
                        raise ValueError("input assignment out of range")
                    netlists[n_out + i].append(nt + p)

    # deduplicate pins (a task may list the same input twice)
    netlists = [sorted(set(pins)) for pins in netlists]
    counts = [len(p) for p in netlists]
    xpins = prefix_from_counts(counts)
    pins = (
        np.concatenate([np.asarray(p, dtype=INDEX_DTYPE) for p in netlists if p])
        if any(counts)
        else np.empty(0, dtype=INDEX_DTYPE)
    )
    weights = np.ones(nv, dtype=INDEX_DTYPE)
    if pre:
        weights[nt:] = 0
    h = Hypergraph(nv, xpins, pins, vertex_weights=weights, fixed=fixed)
    return h, np.arange(nt, dtype=INDEX_DTYPE)
