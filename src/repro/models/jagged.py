"""Jagged (orthogonal recursive) 2D decomposition.

The intermediate point between 1D models and the fine-grain model, from the
line of work the paper builds on (Çatalyürek's thesis [2]): first split the
*rows* into R stripes with the 1D column-net hypergraph model (minimizing
expand volume of the row split), then split each stripe's *columns*
independently into C parts with a row-net model restricted to the stripe
(minimizing the fold volume inside the stripe).  The result is an ``R x C``
"jagged" grid: row stripes are global, column splits differ per stripe.

Like the checkerboard scheme, a processor communicates with at most
``R - 1 + C - 1`` others; unlike it, both phases explicitly minimize
volume — but still less effectively than the fine-grain model, which is the
comparison the ablation bench draws.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro._util import INDEX_DTYPE, as_rng
from repro.core.decomposition import Decomposition
from repro.hypergraph.hypergraph import Hypergraph
from repro.models.checkerboard import processor_grid
from repro.models.onedim import build_columnnet_model
from repro.partitioner import PartitionerConfig, partition_hypergraph
from repro._util import prefix_from_counts

__all__ = ["decompose_2d_jagged"]


def _colsplit_hypergraph(stripe: sp.csr_matrix) -> Hypergraph:
    """Row-net model of one stripe: vertices = columns with nonzeros in the
    stripe, nets = the stripe's rows; vertex weight = nonzeros in the
    column (the stripe's scalar multiplications using that column)."""
    csc = sp.csc_matrix(stripe)
    csc.sort_indices()
    m_cols = csc.shape[1]
    # nets are rows: build from CSR
    csr = sp.csr_matrix(stripe)
    csr.sort_indices()
    weights = np.bincount(csr.indices, minlength=m_cols).astype(INDEX_DTYPE)
    return Hypergraph(
        m_cols,
        csr.indptr.astype(INDEX_DTYPE),
        csr.indices.astype(INDEX_DTYPE),
        vertex_weights=weights,
        validate=False,
    )


def decompose_2d_jagged(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> Decomposition:
    """Jagged 2D decomposition of *a* onto ``processor_grid(k)``.

    Vector entry *j* is owned by the processor ``(stripe(j),
    colpart_stripe(j)(j))`` — the owner of the diagonal position — keeping
    the x/y distribution symmetric.
    """
    a = sp.csr_matrix(a)
    if a.shape[0] != a.shape[1]:
        raise ValueError("jagged decomposition requires a square matrix")
    a.eliminate_zeros()
    a.sort_indices()
    m = a.shape[0]
    r, c = processor_grid(k)
    rng = as_rng(seed)
    cfg = config or PartitionerConfig()

    # phase 1: rows -> R stripes via the column-net model
    if r > 1:
        rows_model = build_columnnet_model(a, consistency=True)
        row_part = partition_hypergraph(
            rows_model.hypergraph, r, config=cfg, seed=rng
        ).part
    else:
        row_part = np.zeros(m, dtype=INDEX_DTYPE)

    # phase 2: within each stripe, columns -> C parts via a row-net model
    col_part_per_stripe = np.zeros((r, m), dtype=INDEX_DTYPE)
    for s in range(r):
        rows_in = np.flatnonzero(row_part == s)
        stripe = a[rows_in, :] if len(rows_in) else sp.csr_matrix((0, m))
        if c > 1 and stripe.nnz:
            h = _colsplit_hypergraph(sp.csr_matrix(stripe))
            col_part_per_stripe[s] = partition_hypergraph(
                h, c, config=cfg, seed=rng
            ).part
        # else: all columns in part 0 of the stripe

    coo = a.tocoo()
    nnz_row = coo.row.astype(INDEX_DTYPE)
    nnz_col = coo.col.astype(INDEX_DTYPE)
    stripe_of_nnz = row_part[nnz_row]
    nnz_owner = stripe_of_nnz * c + col_part_per_stripe[stripe_of_nnz, nnz_col]

    j = np.arange(m)
    vec_owner = row_part * c + col_part_per_stripe[row_part, j]
    return Decomposition(
        k=k,
        m=m,
        nnz_row=nnz_row,
        nnz_col=nnz_col,
        nnz_val=coo.data.astype(np.float64),
        nnz_owner=nnz_owner.astype(INDEX_DTYPE),
        x_owner=vec_owner.astype(INDEX_DTYPE),
        y_owner=vec_owner.astype(INDEX_DTYPE).copy(),
    )
