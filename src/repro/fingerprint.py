"""Content-addressed identity of a decomposition request.

One fingerprint function for the whole system: the engine's
checkpoint/resume layer (:func:`repro.partitioner.resilience.sweep_fingerprint`),
the partitioning service's result cache (:mod:`repro.serve.cache`), and
clients (:class:`repro.serve.client.Client`) all derive their keys through
:func:`fingerprint`, so a result computed once is recognizable everywhere.

The fingerprint is the SHA-256 of a canonical JSON document built from

* the *instance content* — for a sparse matrix the shape plus digests of
  the CSR arrays, for a hypergraph the dimensions plus digests of the
  pin/weight/cost arrays (content-addressed: two structurally identical
  instances fingerprint identically, whatever file they came from);
* the *bit-shaping* configuration fields of
  :class:`~repro.partitioner.config.PartitionerConfig` — the knobs that
  influence which partition comes out.  Pure execution knobs (workers,
  backends, transports, retries) deliberately do not participate, so the
  same request served on different hardware hits the same cache entry;
* the *seed* — an ``int`` hashes as itself; a ``numpy.random.Generator``
  hashes its bit-generator state *before any draws*; ``None`` hashes the
  state of a freshly entropy-seeded generator and therefore never
  collides (an unseeded run is not reusable and must never be answered
  from a cache);
* optionally the number of parts ``k``, the model ``method`` name, and
  any extra caller-supplied key material.

>>> import scipy.sparse as sp
>>> a = sp.random(30, 30, density=0.1, format="csr", random_state=0)
>>> fingerprint(a, k=4, method="finegrain", seed=0) == \\
...     fingerprint(a.copy(), k=4, method="finegrain", seed=0)
True
>>> fingerprint(a, k=4, method="finegrain", seed=0) == \\
...     fingerprint(a, k=8, method="finegrain", seed=0)
False
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

__all__ = ["fingerprint", "instance_digest", "seed_digest", "config_digest"]


def _bit_fields() -> tuple:
    import dataclasses

    from repro.partitioner.config import ModelConfig

    return tuple(f.name for f in dataclasses.fields(ModelConfig))


#: config fields that shape the partition bits — derived from
#: :class:`~repro.partitioner.config.ModelConfig`, so the type system is
#: the single source of truth: a field is bit-shaping iff it lives on
#: ``ModelConfig``.  Everything on
#: :class:`~repro.partitioner.config.ExecutionPolicy` (workers, backends,
#: transport, retries, deadlines, kernel tier) is deliberately excluded so
#: a resumed or cached sweep may run under different hardware settings.
BIT_FIELDS = _bit_fields()


def _digest_array(arr) -> str:
    """SHA-256 of one array's dtype, shape and raw bytes."""
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def instance_digest(instance) -> dict:
    """Canonical content description of a problem instance.

    Accepts a scipy sparse matrix (any format; canonicalized to CSR with
    sorted indices, matching the CLI's matrix normalization) or a
    :class:`repro.hypergraph.hypergraph.Hypergraph`.
    """
    from repro.hypergraph.hypergraph import Hypergraph

    if isinstance(instance, Hypergraph):
        return {
            "kind": "hypergraph",
            "v": int(instance.num_vertices),
            "n": int(instance.num_nets),
            "p": int(instance.num_pins),
            "xpins": _digest_array(instance.xpins),
            "pins": _digest_array(instance.pins),
            "w": _digest_array(instance.vertex_weights),
            "c": _digest_array(instance.net_costs),
            "fixed": (
                None if instance.fixed is None else _digest_array(instance.fixed)
            ),
        }
    import scipy.sparse as sp

    if sp.issparse(instance):
        a = sp.csr_matrix(instance)
        a.sum_duplicates()
        a.sort_indices()
        return {
            "kind": "matrix",
            "shape": [int(a.shape[0]), int(a.shape[1])],
            "nnz": int(a.nnz),
            "indptr": _digest_array(a.indptr),
            "indices": _digest_array(a.indices),
            "data": _digest_array(a.data),
        }
    raise TypeError(
        f"cannot fingerprint instance of type {type(instance).__name__}; "
        "expected a scipy sparse matrix or a Hypergraph"
    )


def seed_digest(seed) -> object:
    """Canonical JSON-serializable form of a seed.

    Every seed is normalized the way the library normalizes it for
    execution (:func:`repro._util.as_rng`) and contributes the resulting
    generator's bit-generator state *before any draws* — reading the
    state consumes nothing, and an ``int`` seed digests identically to
    the generator it creates.  ``None`` is normalized through a fresh
    entropy-seeded generator, so every unseeded request is unique (an
    unseeded run is not reproducible and must never be answered from a
    cache or resumed from a checkpoint).
    """
    if not isinstance(seed, np.random.Generator):
        seed = np.random.default_rng(seed)
    return json.loads(json.dumps(seed.bit_generator.state, default=str))


def config_digest(config) -> dict:
    """The bit-shaping slice of a config.

    Accepts a :class:`~repro.partitioner.config.PartitionerConfig` (its
    ``.model`` half is digested), a bare
    :class:`~repro.partitioner.config.ModelConfig`, or ``None`` for the
    defaults.  Execution policy can never leak into the digest: the
    fields are read off the ``ModelConfig`` dataclass itself.
    """
    import dataclasses

    from repro.partitioner.config import ModelConfig

    if config is None:
        model = ModelConfig()
    elif isinstance(config, ModelConfig):
        model = config
    else:
        model = config.model
    return {
        f.name: getattr(model, f.name) for f in dataclasses.fields(ModelConfig)
    }


def fingerprint(
    instance,
    config=None,
    seed=None,
    *,
    k: int | None = None,
    method: str | None = None,
    extra: dict | None = None,
) -> str:
    """SHA-256 identity of a decomposition request (hex string).

    Parameters
    ----------
    instance:
        A scipy sparse matrix or a :class:`Hypergraph` — fingerprinted by
        content, not by provenance.
    config:
        A :class:`PartitionerConfig` (or ``None`` for the defaults); only
        the bit-shaping fields participate.
    seed:
        ``int | numpy.random.Generator | None`` (see :func:`seed_digest`).
    k:
        Number of parts, when the request has one.
    method:
        Model/method name (``"finegrain"``, ``"columnnet"``, ...).
    extra:
        Optional extra JSON-serializable key material (e.g. per-method
        options that change the result).
    """
    doc = {
        "v": 1,
        "instance": instance_digest(instance),
        "cfg": config_digest(config),
        "seed": seed_digest(seed),
        "k": None if k is None else int(k),
        "method": method,
    }
    if extra:
        doc["extra"] = extra
    blob = json.dumps(doc, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()
