"""repro — a full reproduction of the fine-grain hypergraph model for 2D
sparse-matrix decomposition (Çatalyürek & Aykanat, IPPS 2001).

Quickstart::

    import scipy.sparse as sp
    from repro import decompose, simulate_spmv

    a = sp.random(1000, 1000, density=0.01, format="csr", random_state=0)
    res = decompose(a, k=16, method="finegrain", seed=0, n_starts=4)
    result = simulate_spmv(res.decomposition)
    print(res.summary())
    print(result.stats.summary())
    assert result.stats.total_volume == res.cutsize   # the paper's theorem

Packages:

* :mod:`repro.core` — the fine-grain model, decompositions, decode rule;
* :mod:`repro.models` — 1D hypergraph baselines, standard graph model,
  generic reduction problems;
* :mod:`repro.partitioner` — multilevel hypergraph partitioner (PaToH
  analogue);
* :mod:`repro.graph` — graph substrate + multilevel graph partitioner
  (MeTiS analogue);
* :mod:`repro.hypergraph` — hypergraph substrate and partition metrics;
* :mod:`repro.spmv` — exact communication simulator for parallel SpMV;
* :mod:`repro.matrix` — sparse-matrix toolkit and the synthetic test-matrix
  collection;
* :mod:`repro.bench` — the Table 1 / Table 2 experiment harness.
"""

from repro.core import (
    Decomposition,
    DecomposeResult,
    FineGrainModel,
    build_finegrain_model,
    decompose,
    decompose_1d_columnnet,
    decompose_1d_graph,
    decompose_1d_rownet,
    decompose_2d_finegrain,
    decompose_2d_rectangular,
    decomposition_from_finegrain,
    decomposition_from_row_partition,
)
from repro.errors import ReproFormatError
from repro.exact import ExactResult, exact_bisection
from repro.fingerprint import fingerprint
from repro.hypergraph import Hypergraph, Partition
from repro.partitioner import (
    ExecutionPolicy,
    ModelConfig,
    PartitionerConfig,
    PartitionResult,
    StartStat,
    partition_hypergraph,
    partition_multistart,
)
from repro.partitioner import kernel_info as kernels
from repro.graph import Graph, partition_graph
from repro.spmv import CommStats, communication_stats, simulate_spmv

__version__ = "1.0.0"

__all__ = [
    "Decomposition",
    "DecomposeResult",
    "FineGrainModel",
    "build_finegrain_model",
    "decompose",
    "decompose_1d_columnnet",
    "decompose_1d_graph",
    "decompose_1d_rownet",
    "decompose_2d_finegrain",
    "decompose_2d_rectangular",
    "decomposition_from_finegrain",
    "decomposition_from_row_partition",
    "Hypergraph",
    "Partition",
    "ExactResult",
    "exact_bisection",
    "ReproFormatError",
    "fingerprint",
    "kernels",
    "ExecutionPolicy",
    "ModelConfig",
    "PartitionerConfig",
    "PartitionResult",
    "StartStat",
    "partition_hypergraph",
    "partition_multistart",
    "Graph",
    "partition_graph",
    "CommStats",
    "communication_stats",
    "simulate_spmv",
    "__version__",
]
