"""Library-wide exception types.

Kept dependency-free so every subpackage can raise them without import
cycles.  :class:`ReproFormatError` subclasses ``ValueError`` on purpose:
callers that predate it (and the existing test suite) catch ``ValueError``
for malformed inputs, and that contract must keep holding.
"""

from __future__ import annotations

__all__ = ["ReproFormatError"]


class ReproFormatError(ValueError):
    """A malformed or corrupt input file (MatrixMarket, PaToH, hMeTiS).

    One exception type for every ingestion defect — out-of-range indices,
    non-finite values, duplicate entries, unparseable tokens — always
    carrying the source name and, when known, the 1-based line number, so
    a failing multi-hour sweep names the offending file and line instead
    of dying with a bare ``IndexError`` deep inside numpy.
    """

    def __init__(self, message: str, *, source: str | None = None,
                 line: int | None = None) -> None:
        self.source = source or "<stream>"
        self.line = line
        loc = self.source if line is None else f"{self.source}:{line}"
        super().__init__(f"{loc}: {message}")
