"""Long-running partitioning service: daemon, cache, protocol, client.

The paper pays heavily once for a high-quality partition precisely
because the result is reused across many SpMV executions; this package
industrializes that trade.  A ``repro serve`` daemon keeps a two-tier
content-addressed result cache (:class:`~repro.serve.cache.PartitionCache`)
in front of the multi-start engine, schedules cache misses over a bounded
worker pool with fair per-client admission
(:class:`~repro.serve.service.PartitionService`), deduplicates identical
in-flight requests, and speaks newline-delimited JSON over TCP and UNIX
sockets (:mod:`repro.serve.protocol`, :mod:`repro.serve.server`).
:class:`~repro.serve.client.Client` is the synchronous client the
``repro query`` CLI and the ``repro-bench serve`` load generator use.

Requests are keyed by :func:`repro.fingerprint` — the same
content-addressed identity the engine's checkpoint layer uses — so a
result computed once is recognizable from any client, across daemon
restarts (disk tier), forever.

The daemon is crash-safe: a durable request journal
(:class:`~repro.serve.journal.RequestJournal`) records every accepted
request before compute starts, a warm restart replays what a crash
interrupted (byte-identically, by fingerprint identity), draining
refuses new work with a typed ``shutdown-refused`` instead of a reset,
and :class:`~repro.serve.client.Client` reconnects and resubmits under
deterministic backoff with per-error-code typed exceptions.

See ``docs/serving.md`` for the wire protocol, cache semantics, the
deadline/degraded SLO contract, crash safety and an ops runbook.
"""

from repro.serve.cache import CacheEntry, PartitionCache
from repro.serve.client import (
    ERROR_TYPES,
    BadRequestError,
    Client,
    ClientBusyError,
    EngineError,
    OversizedError,
    QueueFullError,
    ServeError,
    ServeResult,
    ShutdownRefusedError,
    UnknownFingerprintError,
    serve_error,
)
from repro.serve.journal import RequestJournal
from repro.serve.protocol import ProtocolError
from repro.serve.server import PartitionServer, run_server
from repro.serve.service import PartitionService, ServeConfig

__all__ = [
    "CacheEntry",
    "PartitionCache",
    "Client",
    "ServeResult",
    "ServeError",
    "BadRequestError",
    "UnknownFingerprintError",
    "QueueFullError",
    "ClientBusyError",
    "EngineError",
    "ShutdownRefusedError",
    "OversizedError",
    "ERROR_TYPES",
    "serve_error",
    "RequestJournal",
    "ProtocolError",
    "PartitionServer",
    "run_server",
    "PartitionService",
    "ServeConfig",
]
