"""Two-tier content-addressed partition cache.

Partition results are expensive to compute and perfectly reusable — the
whole premise of the serving layer.  The cache is keyed by the
:func:`repro.fingerprint` of the request (instance content + bit-shaping
config + seed + k + method), so a hit is *guaranteed* to be the result
the engine would have recomputed, bit for bit.

memory tier
    An LRU :class:`collections.OrderedDict` with a byte-size budget
    (entries are charged their partition array plus metadata size).  The
    least recently used entries are evicted first; an entry larger than
    the whole budget skips the tier entirely.
disk tier
    One ``<fingerprint>.npz`` per entry in a cache directory, written
    atomically with the CheckpointStore idiom (sibling ``.tmp`` +
    ``os.replace``) so a crash can never leave a half-written entry
    under a valid name.  Each entry embeds a SHA-256 checksum of the
    partition bytes; a corrupt or unreadable entry is detected on read,
    deleted, and reported as a miss — the service recomputes.  Eviction
    is LRU by file mtime (refreshed on every hit) under a byte budget.

A disk hit is promoted back into the memory tier.  All operations are
thread-safe (the daemon touches the cache from the event loop and from
executor threads) and counted: ``cache.mem_hits``, ``cache.disk_hits``,
``cache.misses``, ``cache.mem_evictions``, ``cache.disk_evictions``,
``cache.corrupt_entries``, ``cache.puts``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.telemetry import get_recorder
from repro.verify.faults import trip as _fault_trip

__all__ = ["CacheEntry", "PartitionCache"]

#: on-disk entry format version (bump on incompatible changes; old
#: versions read as corrupt and are recomputed)
DISK_VERSION = 1


@dataclass
class CacheEntry:
    """One cached partition result."""

    #: content-addressed request identity (:func:`repro.fingerprint`)
    fingerprint: str
    #: part id per model vertex
    part: np.ndarray
    #: JSON-serializable result metadata (method, k, cutsize, ...)
    meta: dict

    @property
    def nbytes(self) -> int:
        """Approximate in-memory footprint used for the byte budget."""
        return int(self.part.nbytes) + len(json.dumps(self.meta)) + 128

    def checksum(self) -> str:
        """SHA-256 over the partition bytes (corruption detection)."""
        h = hashlib.sha256()
        h.update(str(self.part.dtype).encode())
        h.update(self.part.tobytes())
        return h.hexdigest()


class PartitionCache:
    """Two-tier (memory LRU + disk npz) content-addressed result cache.

    Parameters
    ----------
    mem_bytes:
        Byte budget of the in-memory tier (0 disables it).
    disk_dir:
        Directory of the on-disk tier (``None`` disables it); created on
        first use.
    disk_bytes:
        Byte budget of the on-disk tier.
    """

    def __init__(
        self,
        mem_bytes: int = 64 * 1024 * 1024,
        disk_dir: str | None = None,
        disk_bytes: int = 1024 * 1024 * 1024,
    ) -> None:
        self.mem_bytes = int(mem_bytes)
        self.disk_dir = disk_dir
        self.disk_bytes = int(disk_bytes)
        self._lock = threading.Lock()
        self._mem: OrderedDict[str, CacheEntry] = OrderedDict()
        self._mem_used = 0
        self._counts = {
            "mem_hits": 0, "disk_hits": 0, "misses": 0, "puts": 0,
            "mem_evictions": 0, "disk_evictions": 0, "corrupt_entries": 0,
        }

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> tuple[CacheEntry, str] | None:
        """Look *fingerprint* up; returns ``(entry, tier)`` with tier
        ``"memory"`` or ``"disk"``, or ``None`` on a miss.  A disk hit is
        promoted to the memory tier; a corrupt disk entry is deleted and
        reported as a miss."""
        rec = get_recorder()
        # injectable read failure (serve.cache_read): the service treats
        # the raised error as a miss and recomputes
        _fault_trip("serve.cache_read")
        with self._lock:
            entry = self._mem.get(fingerprint)
            if entry is not None:
                self._mem.move_to_end(fingerprint)
                self._counts["mem_hits"] += 1
                rec.add("cache.mem_hits")
                return entry, "memory"
            entry = self._disk_read(fingerprint)
            if entry is not None:
                self._counts["disk_hits"] += 1
                rec.add("cache.disk_hits")
                self._mem_put(entry)
                return entry, "disk"
            self._counts["misses"] += 1
            rec.add("cache.misses")
            return None

    def put(self, entry: CacheEntry) -> None:
        """Insert *entry* into both tiers (subject to their budgets)."""
        # injectable write failure (serve.cache_write): the service
        # absorbs it — a lost insert costs future hits, not the response
        _fault_trip("serve.cache_write")
        with self._lock:
            self._counts["puts"] += 1
            get_recorder().add("cache.puts")
            self._mem_put(entry)
            self._disk_write(entry)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._mem:
                return True
        return (
            self.disk_dir is not None
            and os.path.exists(self._disk_path(fingerprint))
        )

    def clear(self) -> None:
        """Drop every entry from both tiers."""
        with self._lock:
            self._mem.clear()
            self._mem_used = 0
            if self.disk_dir and os.path.isdir(self.disk_dir):
                for name in os.listdir(self.disk_dir):
                    if name.endswith(".npz") or name.endswith(".tmp"):
                        try:
                            os.remove(os.path.join(self.disk_dir, name))
                        except OSError:
                            pass

    def sweep_orphans(self) -> int:
        """Remove ``*.tmp`` orphans a crash left in the disk tier.

        A crash between the tmp write and ``os.replace`` strands a
        sibling tmp file; the entry under the final name (if any) is
        still a complete snapshot, so the orphan is pure garbage.
        Returns the number removed (counted ``cache.tmp_swept``)."""
        if not self.disk_dir or not os.path.isdir(self.disk_dir):
            return 0
        swept = 0
        with self._lock:
            for name in os.listdir(self.disk_dir):
                if not name.endswith(".tmp"):
                    continue
                try:
                    os.remove(os.path.join(self.disk_dir, name))
                except OSError:
                    continue
                swept += 1
        if swept:
            get_recorder().add("cache.tmp_swept", swept)
        return swept

    def stats(self) -> dict:
        """Counters plus current occupancy of both tiers."""
        with self._lock:
            disk_entries, disk_used = self._disk_usage()
            hits = self._counts["mem_hits"] + self._counts["disk_hits"]
            lookups = hits + self._counts["misses"]
            return {
                **self._counts,
                "hit_rate": (hits / lookups) if lookups else 0.0,
                "mem_entries": len(self._mem),
                "mem_bytes_used": self._mem_used,
                "mem_bytes_budget": self.mem_bytes,
                "disk_entries": disk_entries,
                "disk_bytes_used": disk_used,
                "disk_bytes_budget": self.disk_bytes if self.disk_dir else 0,
                "disk_dir": self.disk_dir,
            }

    # ------------------------------------------------------------------
    # memory tier
    # ------------------------------------------------------------------
    def _mem_put(self, entry: CacheEntry) -> None:
        if self.mem_bytes <= 0:
            return
        size = entry.nbytes
        if size > self.mem_bytes:
            return  # larger than the whole budget: disk tier only
        old = self._mem.pop(entry.fingerprint, None)
        if old is not None:
            self._mem_used -= old.nbytes
        self._mem[entry.fingerprint] = entry
        self._mem_used += size
        while self._mem_used > self.mem_bytes and self._mem:
            _, evicted = self._mem.popitem(last=False)
            self._mem_used -= evicted.nbytes
            self._counts["mem_evictions"] += 1
            get_recorder().add("cache.mem_evictions")

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _disk_path(self, fingerprint: str) -> str:
        return os.path.join(self.disk_dir, f"{fingerprint}.npz")

    def _disk_write(self, entry: CacheEntry) -> None:
        if not self.disk_dir:
            return
        path = self._disk_path(entry.fingerprint)
        tmp = path + ".tmp"
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            doc = {
                "version": DISK_VERSION,
                "fingerprint": entry.fingerprint,
                "checksum": entry.checksum(),
                "meta": entry.meta,
            }
            # the CheckpointStore idiom: the file under the final name is
            # always a complete snapshot, whatever instant a crash hits
            with open(tmp, "wb") as f:
                np.savez(f, part=entry.part, doc=np.frombuffer(
                    json.dumps(doc).encode(), dtype=np.uint8))
            os.replace(tmp, path)
        except OSError:
            # a full disk costs future cache hits, never the response
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        self._disk_evict()

    def _disk_read(self, fingerprint: str) -> CacheEntry | None:
        if not self.disk_dir:
            return None
        path = self._disk_path(fingerprint)
        if not os.path.exists(path):
            return None
        try:
            with np.load(path) as data:
                doc = json.loads(bytes(data["doc"]).decode())
                part = np.ascontiguousarray(data["part"])
            if doc.get("version") != DISK_VERSION:
                raise ValueError("unknown cache entry version")
            if doc.get("fingerprint") != fingerprint:
                raise ValueError("cache entry fingerprint mismatch")
            entry = CacheEntry(
                fingerprint=fingerprint, part=part, meta=doc["meta"]
            )
            if entry.checksum() != doc.get("checksum"):
                raise ValueError("cache entry checksum mismatch")
        except Exception:
            # corrupt, truncated, or unreadable: delete and recompute
            self._counts["corrupt_entries"] += 1
            get_recorder().add("cache.corrupt_entries")
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return entry

    def _disk_usage(self) -> tuple[int, int]:
        if not self.disk_dir or not os.path.isdir(self.disk_dir):
            return 0, 0
        n = used = 0
        for name in os.listdir(self.disk_dir):
            if not name.endswith(".npz"):
                continue
            try:
                used += os.path.getsize(os.path.join(self.disk_dir, name))
                n += 1
            except OSError:
                pass
        return n, used

    def _disk_evict(self) -> None:
        """Evict least-recently-used files until the tier fits its budget."""
        if not self.disk_dir or not os.path.isdir(self.disk_dir):
            return
        files = []
        total = 0
        for name in os.listdir(self.disk_dir):
            if not name.endswith(".npz"):
                continue
            path = os.path.join(self.disk_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            files.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        files.sort()  # oldest mtime first
        for mtime, size, path in files:
            if total <= self.disk_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self._counts["disk_evictions"] += 1
            get_recorder().add("cache.disk_evictions")
