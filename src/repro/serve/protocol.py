"""Wire protocol of the partitioning service: newline-delimited JSON.

Every message is one JSON object on one line (UTF-8, ``\\n``-terminated).
Requests carry an ``op`` and an optional client-chosen ``id`` that is
echoed on the response, so a client may pipeline requests over one
connection.

Request ops
-----------
``decompose``
    ``{"op": "decompose", "id": ..., "matrix": <matrix-spec>,
    "method": "finegrain", "k": 4, "seed": 0, "epsilon": 0.03,
    "n_starts": 1, "engine_workers": 1, "deadline": 5.0,
    "want_part": true}``

    The matrix spec is one of

    * ``{"path": "/abs/file.mtx"}`` — a MatrixMarket file readable by
      the daemon;
    * ``{"collection": "sherman3@0.25"}`` — the built-in test set;
    * ``{"inline": {"shape": [m, n], "rows_b64": ..., "cols_b64": ...,
      "vals_b64": ...}}`` — COO triplets shipped as base64 int64/float64
      little-endian arrays (:func:`inline_matrix` builds it);
    * ``{"fingerprint": "..."}`` — cache-only lookup: answered from the
      cache or refused with ``unknown-fingerprint``, never computed
      (there is no instance content to compute from).

``stats``
    ``{"op": "stats"}`` — service counters, queue depth, latency
    percentiles and cache occupancy.
``ping``
    ``{"op": "ping"}`` — liveness probe; answers ``{"ok": true}``.
``shutdown``
    ``{"op": "shutdown"}`` — graceful daemon shutdown, only honoured
    when the daemon was started with ``--allow-shutdown``.

Responses
---------
``{"id": ..., "ok": true, "result": {...}, "served": {...}}`` — the
``result`` document is *canonical*: it is a pure function of the request
fingerprint (sorted keys, base64 partition), so a cache hit is
byte-identical to the response that first computed it.  Everything
request-specific (cache tier, queue wait, timings) lives in ``served``.

``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}`` —
codes: ``bad-request``, ``unknown-fingerprint``, ``queue-full``,
``client-busy``, ``engine-error``, ``shutdown-refused``, ``oversized``.
"""

from __future__ import annotations

import base64
import json

import numpy as np
import scipy.sparse as sp

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "encode_msg",
    "decode_msg",
    "part_to_b64",
    "part_from_b64",
    "inline_matrix",
    "matrix_from_inline",
    "resolve_matrix",
    "parse_decompose",
    "result_doc",
    "canonical_result_bytes",
    "ok_response",
    "error_response",
]

#: hard cap on one NDJSON line (inline matrices are the big ones)
MAX_LINE_BYTES = 256 * 1024 * 1024

#: methods a request may name (mirrors repro.core.api._METHODS)
METHODS = ("finegrain", "columnnet", "rownet", "graph", "finegrain-rect")


class ProtocolError(ValueError):
    """A malformed or refusable request; carries a wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def encode_msg(obj: dict) -> bytes:
    """One NDJSON line for *obj* (canonical: sorted keys, no spaces)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode_msg(line: bytes | str) -> dict:
    """Parse one NDJSON line into a dict, or raise ``bad-request``."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("oversized", "request line exceeds the limit")
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad-request", f"not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "message must be a JSON object")
    return obj


# ----------------------------------------------------------------------
# array / matrix encodings
# ----------------------------------------------------------------------
def _b64(arr: np.ndarray) -> str:
    return base64.b64encode(np.ascontiguousarray(arr).tobytes()).decode("ascii")


def _unb64(text: str, dtype: str) -> np.ndarray:
    try:
        raw = base64.b64decode(text)
        return np.frombuffer(raw, dtype=np.dtype(dtype)).copy()
    except (ValueError, TypeError) as exc:
        raise ProtocolError("bad-request", f"bad base64 array: {exc}") from None


def part_to_b64(part: np.ndarray) -> dict:
    """Wire form of a partition vector."""
    part = np.ascontiguousarray(part, dtype=np.int64)
    return {"part_b64": _b64(part), "dtype": "int64", "n": int(part.shape[0])}


def part_from_b64(doc: dict) -> np.ndarray:
    """Decode the partition vector of a result document."""
    part = _unb64(doc["part_b64"], doc.get("dtype", "int64"))
    if "n" in doc and part.shape[0] != int(doc["n"]):
        raise ProtocolError("bad-request", "partition length mismatch")
    return part


def inline_matrix(a: sp.spmatrix) -> dict:
    """Ship a scipy sparse matrix inline (COO triplets, base64)."""
    coo = sp.coo_matrix(a)
    return {
        "shape": [int(coo.shape[0]), int(coo.shape[1])],
        "rows_b64": _b64(coo.row.astype(np.int64)),
        "cols_b64": _b64(coo.col.astype(np.int64)),
        "vals_b64": _b64(coo.data.astype(np.float64)),
    }


def matrix_from_inline(spec: dict) -> sp.csr_matrix:
    """Rebuild a CSR matrix from an inline spec (b64 arrays or plain
    ``"coo": [[r, c, v], ...]`` lists for hand-written clients)."""
    try:
        m, n = (int(x) for x in spec["shape"])
    except (KeyError, TypeError, ValueError):
        raise ProtocolError(
            "bad-request", "inline matrix needs a [m, n] 'shape'"
        ) from None
    if "coo" in spec:
        trips = spec["coo"]
        rows = np.array([t[0] for t in trips], dtype=np.int64)
        cols = np.array([t[1] for t in trips], dtype=np.int64)
        vals = np.array(
            [t[2] if len(t) > 2 else 1.0 for t in trips], dtype=np.float64
        )
    else:
        for key in ("rows_b64", "cols_b64", "vals_b64"):
            if key not in spec:
                raise ProtocolError(
                    "bad-request", f"inline matrix is missing {key!r}"
                )
        rows = _unb64(spec["rows_b64"], "int64")
        cols = _unb64(spec["cols_b64"], "int64")
        vals = _unb64(spec["vals_b64"], "float64")
    if not (len(rows) == len(cols) == len(vals)):
        raise ProtocolError("bad-request", "inline COO arrays disagree in length")
    if len(rows) and (
        rows.min() < 0 or cols.min() < 0 or rows.max() >= m or cols.max() >= n
    ):
        raise ProtocolError("bad-request", "inline COO indices out of range")
    a = sp.csr_matrix(
        sp.coo_matrix((vals, (rows, cols)), shape=(m, n))
    )
    a.sum_duplicates()
    a.eliminate_zeros()
    a.sort_indices()
    return a


def resolve_matrix(spec) -> sp.csr_matrix | None:
    """Server-side matrix resolution; ``None`` for fingerprint-only specs."""
    if not isinstance(spec, dict):
        raise ProtocolError("bad-request", "'matrix' must be an object")
    if "fingerprint" in spec:
        return None
    if "inline" in spec:
        return matrix_from_inline(spec["inline"])
    from repro.cli import load_matrix_arg

    if "collection" in spec:
        try:
            return load_matrix_arg("collection:" + str(spec["collection"]))
        except Exception as exc:
            raise ProtocolError(
                "bad-request", f"unknown collection matrix: {exc}"
            ) from None
    if "path" in spec:
        try:
            return load_matrix_arg(str(spec["path"]))
        except Exception as exc:
            raise ProtocolError(
                "bad-request", f"cannot read matrix file: {exc}"
            ) from None
    raise ProtocolError(
        "bad-request",
        "'matrix' needs one of 'path', 'collection', 'inline', 'fingerprint'",
    )


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------
def parse_decompose(obj: dict) -> dict:
    """Validate a ``decompose`` request; returns normalized fields."""
    matrix = obj.get("matrix")
    if matrix is None:
        raise ProtocolError("bad-request", "decompose needs a 'matrix'")
    method = obj.get("method", "finegrain")
    if method not in METHODS:
        raise ProtocolError(
            "bad-request", f"unknown method {method!r}; choose from {METHODS}"
        )
    fields: dict = {"matrix": matrix, "method": method}
    if "fingerprint" not in matrix:
        try:
            fields["k"] = int(obj["k"])
        except (KeyError, TypeError, ValueError):
            raise ProtocolError(
                "bad-request", "decompose needs an integer 'k'"
            ) from None
        if fields["k"] < 1:
            raise ProtocolError("bad-request", "'k' must be >= 1")
    for name, caster, lo in (
        ("seed", int, None),
        ("epsilon", float, 0.0),
        ("n_starts", int, 1),
        ("engine_workers", int, 1),
        ("deadline", float, 1e-9),
    ):
        if obj.get(name) is None:
            continue
        try:
            value = caster(obj[name])
        except (TypeError, ValueError):
            raise ProtocolError(
                "bad-request", f"{name!r} must be a {caster.__name__}"
            ) from None
        if lo is not None and value < lo:
            raise ProtocolError("bad-request", f"{name!r} must be >= {lo}")
        fields[name] = value
    fields["want_part"] = bool(obj.get("want_part", True))
    return fields


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
def result_doc(res, with_part: bool = True) -> dict:
    """Canonical result document for a :class:`repro.DecomposeResult`.

    Pure function of the fingerprint: two computations of the same
    request produce the same document (``degraded`` results are never
    cached, so timing-dependent fields stay out).
    """
    doc = {
        "fingerprint": res.fingerprint,
        "method": res.method,
        "k": int(res.k),
        "cutsize": int(res.cutsize),
        "imbalance": float(res.imbalance),
        "degraded": bool(res.degraded),
        "degraded_reason": res.degraded_reason,
    }
    if with_part:
        doc.update(part_to_b64(res.part))
    return doc


def canonical_result_bytes(result: dict) -> bytes:
    """The byte-identity witness of a result document (sorted-key JSON);
    what "a cache hit is byte-identical to the computed response" means."""
    return json.dumps(result, sort_keys=True, separators=(",", ":")).encode()


def ok_response(req_id, result: dict | None = None, **extra) -> dict:
    out = {"id": req_id, "ok": True}
    if result is not None:
        out["result"] = result
    out.update(extra)
    return out


def error_response(req_id, code: str, message: str) -> dict:
    return {"id": req_id, "ok": False, "error": {"code": code, "message": message}}
