"""Request scheduling core of the partitioning service.

:class:`PartitionService` is transport-agnostic: the TCP/UNIX server
(:mod:`repro.serve.server`) hands it one decoded request dict at a time
and writes back whatever dict it returns.  Everything interesting lives
here:

admission
    Cache misses are scheduled over a bounded pool of ``n_workers``
    compute slots (the engine's own :class:`WorkerBudget`).  When all
    slots are busy, requests queue — globally bounded by ``queue_limit``
    (excess refused with ``queue-full``), per client by
    ``per_client_limit`` (``client-busy``) — and freed slots are granted
    to waiting *clients* round-robin, so one chatty client cannot starve
    the others however many requests it pipelines.
dedup
    Identical in-flight requests (same :func:`repro.fingerprint`) share
    one computation: the first becomes the owner, later arrivals await
    the same future and receive the byte-identical canonical result.
    Deduplicated waiters bypass admission entirely — they consume no
    compute slot.
cache
    Before admission every request probes the two-tier
    :class:`~repro.serve.cache.PartitionCache`; a hit is returned
    without ever touching the engine (no ``serve.compute`` span in its
    trace).  Unseeded requests (no ``seed``) are served but never
    cached, deduplicated, or resumed — their fingerprint is entropy-
    unique by construction.
deadline
    A per-request ``deadline`` (seconds, measured from arrival; falling
    back to ``default_deadline``) is converted to the engine's graceful
    wall-clock budget: whatever time queueing consumed is subtracted and
    the remainder handed to :func:`repro.decompose`, which returns the
    best completed start with ``degraded`` set instead of raising.  The
    engine only preempts between starts, so the SLO is meaningful for
    ``n_starts > 1``; single-start requests run to completion (the
    response still reports how late it was).  Degraded results are
    **never cached** — the cache must only ever answer with the full-
    quality result.
telemetry
    Each request records into its own :class:`TelemetryRecorder` via
    :func:`~repro.telemetry.scoped_recorder` (the reentrancy refactor
    this daemon forced), so concurrent requests build disjoint traces;
    per-request timings are returned in-band and appended as NDJSON to
    ``trace_path`` when configured.  The trace file handle is held open
    and flushed per line, and :meth:`PartitionService.close` appends a
    final ``{"type": "shutdown"}`` line before closing it — a SIGTERM
    arriving mid-request still yields a complete, parseable trace.
crash safety
    With ``journal_path`` configured, every cacheable request that
    misses the cache is appended to the durable
    :class:`~repro.serve.journal.RequestJournal` *before* compute starts
    and tombstoned once it reaches a terminal outcome (result cached, or
    a deterministic error the client was told about).  On startup
    :meth:`PartitionService.startup` sweeps orphaned cache/journal tmp
    files and replays the incomplete entries through this very
    ``handle()`` path — because requests are fingerprint-keyed, the
    replayed result is byte-identical to what the dead daemon would have
    returned.  The service's lifecycle is exposed as a readiness state
    (``starting → replaying → ready → draining``) through ``stats`` and
    the in-band ``health`` op; while draining, new ``decompose``
    requests are refused with ``shutdown-refused`` instead of a reset
    connection.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.partitioner.config import PartitionerConfig
from repro.partitioner.pool import WorkerBudget
from repro.serve.cache import CacheEntry, PartitionCache
from repro.serve.journal import RequestJournal
from repro.serve.protocol import (
    ProtocolError,
    error_response,
    ok_response,
    parse_decompose,
    part_to_b64,
    resolve_matrix,
    result_doc,
)
from repro.telemetry import TelemetryRecorder, scoped_recorder
from repro.telemetry.export import trace_to_dict
from repro.verify.faults import trip as _fault_trip

__all__ = ["ServeConfig", "FairAdmission", "PartitionService"]


@dataclass
class ServeConfig:
    """Daemon configuration (CLI flags map 1:1 onto these fields)."""

    #: TCP bind address; ``port=None`` disables TCP, ``port=0`` asks the
    #: OS for an ephemeral port (printed on the ready line)
    host: str = "127.0.0.1"
    port: int | None = 0
    #: UNIX socket path (``None`` disables)
    unix_path: str | None = None
    #: compute slots — at most this many decompositions run at once
    n_workers: int = 2
    #: global bound on queued (admitted-but-waiting) requests
    queue_limit: int = 64
    #: bound on one client's simultaneously queued/running requests
    per_client_limit: int = 8
    #: memory tier budget of the result cache
    cache_mem_bytes: int = 64 * 1024 * 1024
    #: disk tier directory (``None`` disables the disk tier)
    cache_dir: str | None = None
    #: disk tier budget
    cache_disk_bytes: int = 1024 * 1024 * 1024
    #: deadline applied to requests that do not carry one (seconds)
    default_deadline: float | None = None
    #: per-request caps on engine amplification
    max_n_starts: int = 16
    max_engine_workers: int = 4
    #: NDJSON file receiving one line per served request
    trace_path: str | None = None
    #: durable request journal (``None`` disables crash recovery)
    journal_path: str | None = None
    #: grace period for in-flight requests when draining (seconds)
    drain_timeout: float = 5.0
    #: honour the in-band ``shutdown`` op
    allow_shutdown: bool = False
    #: base partitioner configuration requests override
    config: PartitionerConfig | None = None


class FairAdmission:
    """Round-robin fair admission over a bounded compute-slot pool.

    Confined to the event-loop thread (no locks): ``acquire`` either
    takes a free slot, queues the caller, or refuses; ``release`` hands
    the freed slot directly to the next waiting client in ring order.
    Per-client accounting counts queued *and* running requests, so a
    client that pipelines aggressively hits ``client-busy`` instead of
    monopolizing the queue.
    """

    def __init__(self, slots: int, queue_limit: int, per_client_limit: int):
        self.budget = WorkerBudget(slots)
        self.queue_limit = int(queue_limit)
        self.per_client_limit = int(per_client_limit)
        self.queued = 0
        self._inflight: dict[str, int] = {}
        self._waiting: dict[str, deque[asyncio.Future]] = {}
        self._ring: deque[str] = deque()

    async def acquire(self, client: str) -> None:
        """Take a compute slot for *client*, waiting fairly if needed.

        Raises :class:`ProtocolError` ``client-busy`` / ``queue-full``
        instead of queueing past the configured bounds.
        """
        if self._inflight.get(client, 0) >= self.per_client_limit:
            raise ProtocolError(
                "client-busy",
                f"client has {self.per_client_limit} requests in flight",
            )
        if not self.budget.try_acquire():
            if self.queued >= self.queue_limit:
                raise ProtocolError(
                    "queue-full", f"{self.queue_limit} requests already queued"
                )
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            queue = self._waiting.setdefault(client, deque())
            queue.append(fut)
            if client not in self._ring:
                self._ring.append(client)
            self.queued += 1
            self._inflight[client] = self._inflight.get(client, 0) + 1
            try:
                await fut
            except asyncio.CancelledError:
                if fut.done() and not fut.cancelled():
                    # the slot was granted in the same instant: pass it on
                    self._grant_next() or self.budget.release()
                self._dec(client)
                raise
            finally:
                self.queued -= 1
            return
        self._inflight[client] = self._inflight.get(client, 0) + 1

    def release(self, client: str) -> None:
        """Return *client*'s slot; granted to the next waiter in ring
        order, or back to the pool when nobody waits."""
        self._dec(client)
        if not self._grant_next():
            self.budget.release()

    # ------------------------------------------------------------------
    def _dec(self, client: str) -> None:
        n = self._inflight.get(client, 1) - 1
        if n > 0:
            self._inflight[client] = n
        else:
            self._inflight.pop(client, None)

    def _grant_next(self) -> bool:
        while self._ring:
            client = self._ring.popleft()
            queue = self._waiting.get(client)
            fut = None
            while queue:
                cand = queue.popleft()
                if not cand.done():
                    fut = cand
                    break
            if queue:
                self._ring.append(client)  # still waiting: back of the ring
            else:
                self._waiting.pop(client, None)
            if fut is not None:
                fut.set_result(None)
                return True
        return False


#: part fields stripped from a canonical result doc for want_part=false
_PART_KEYS = ("part_b64", "dtype", "n")


class PartitionService:
    """The request-handling core behind :class:`PartitionServer`.

    ``await service.handle(request_dict, client_id)`` returns the
    response dict; every error is turned into a protocol error response
    (the transport never sees an exception).
    """

    def __init__(self, cfg: ServeConfig | None = None) -> None:
        self.cfg = cfg or ServeConfig()
        self.cache = PartitionCache(
            mem_bytes=self.cfg.cache_mem_bytes,
            disk_dir=self.cfg.cache_dir,
            disk_bytes=self.cfg.cache_disk_bytes,
        )
        self.base_config = self.cfg.config or PartitionerConfig()
        self.admission = FairAdmission(
            self.cfg.n_workers, self.cfg.queue_limit, self.cfg.per_client_limit
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.cfg.n_workers),
            thread_name_prefix="repro-serve",
        )
        #: fingerprint -> future resolving to the canonical result doc
        self._inflight: dict[str, asyncio.Future] = {}
        self._counters: dict[str, int] = {}
        self._latencies_ms: deque[float] = deque(maxlen=4096)
        self._t0 = time.monotonic()
        self._trace_lock = threading.Lock()
        self._trace_file = None
        self.shutdown_event = asyncio.Event()
        #: readiness: "starting" -> "replaying" -> "ready" -> "draining"
        self.state = "starting"
        #: handle() calls currently executing (drain waits for zero)
        self._active = 0
        self.journal = (
            RequestJournal.open(self.cfg.journal_path)
            if self.cfg.journal_path
            else None
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def startup(self) -> dict:
        """Warm restart: sweep crash debris, replay the journal.

        Sweeps orphaned ``*.tmp`` files out of the disk cache tier (the
        journal sweeps its own on :meth:`RequestJournal.open`), then
        replays every accepted-but-unfinished journal entry through the
        normal :meth:`handle` path.  The state is ``replaying`` for the
        duration and ``ready`` after; new requests arriving mid-replay
        are served normally (they share fair admission with the
        replays).
        """
        swept = self.cache.sweep_orphans()
        replayed = 0
        if self.journal is not None and self.journal.incomplete():
            self.state = "replaying"
            replayed = await self.replay_incomplete()
        self.state = "ready"
        return {"cache_tmp_swept": swept, "replayed": replayed}

    async def replay_incomplete(self) -> int:
        """Re-run every open journal entry through the service path.

        A replayed request that reaches a terminal outcome — including a
        deterministic error response — is tombstoned so it cannot replay
        forever; only another crash mid-replay leaves it open.
        """
        if self.journal is None:
            return 0
        replayed = 0
        for fp, request in self.journal.incomplete():
            self._count("replays")
            resp = await self.handle(dict(request), client="__replay__")
            if not resp.get("ok", False):
                self._count("replay_errors")
            # the in-path tombstone is keyed by the *recomputed*
            # fingerprint; close the journaled key too so an entry whose
            # fingerprint cannot be recomputed (e.g. a matrix path
            # deleted since) does not replay forever
            self.journal.complete(fp)
            replayed += 1
        return replayed

    async def drain(self, timeout: float | None = None) -> bool:
        """Refuse new work and wait for in-flight requests to finish.

        Returns True when the service went idle inside the grace
        period, False when the timeout expired with requests still
        running (the caller shuts down regardless)."""
        self.state = "draining"
        if timeout is None:
            timeout = self.cfg.drain_timeout
        deadline = time.monotonic() + max(0.0, timeout)
        while self._active > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        return self._active == 0

    def close(self) -> None:
        """Release the compute pool, seal the trace, close the journal
        (idempotent)."""
        self._executor.shutdown(wait=True, cancel_futures=True)
        self._write_trace(
            {
                "type": "shutdown",
                "state": self.state,
                "uptime_s": round(time.monotonic() - self._t0, 3),
                "counters": dict(self._counters),
            }
        )
        with self._trace_lock:
            if self._trace_file is not None:
                try:
                    self._trace_file.close()
                except OSError:
                    pass
                self._trace_file = None
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def _observe(self, t0: float) -> float:
        total_ms = (time.monotonic() - t0) * 1e3
        self._latencies_ms.append(total_ms)
        return total_ms

    def _write_trace(self, line: dict) -> None:
        if not self.cfg.trace_path:
            return
        data = json.dumps(line, default=str) + "\n"
        try:
            # one persistent handle, flushed per line: a SIGTERM (or
            # SIGKILL) mid-request never loses already-served lines
            with self._trace_lock:
                if self._trace_file is None:
                    self._trace_file = open(self.cfg.trace_path, "a")
                self._trace_file.write(data)
                self._trace_file.flush()
        except OSError:
            pass  # tracing must never fail a request

    def _journal_accept(self, fp: str, request: dict) -> None:
        if self.journal is not None:
            self.journal.accept(fp, request)

    def _journal_complete(self, fp: str) -> None:
        if self.journal is not None:
            self.journal.complete(fp)

    def stats(self) -> dict:
        """Service counters, queue state, latency percentiles, cache."""
        lat = sorted(self._latencies_ms)

        def pct(p: float) -> float:
            if not lat:
                return 0.0
            return lat[min(len(lat) - 1, int(p * len(lat)))]

        hits = self._counters.get("hits_memory", 0) + self._counters.get(
            "hits_disk", 0
        )
        lookups = hits + self._counters.get("cache_misses", 0)
        return {
            "state": self.state,
            "uptime_s": time.monotonic() - self._t0,
            "workers": self.cfg.n_workers,
            "queue_depth": self.admission.queued,
            "queue_limit": self.cfg.queue_limit,
            "inflight": len(self._inflight),
            "counters": dict(self._counters),
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "latency_ms": {
                "count": len(lat),
                "p50": pct(0.50),
                "p99": pct(0.99),
                "max": lat[-1] if lat else 0.0,
            },
            "cache": self.cache.stats(),
            "journal": self.journal.stats() if self.journal else None,
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def handle(self, obj: dict, client: str = "?") -> dict:
        """Serve one decoded request; always returns a response dict."""
        op = obj.get("op")
        req_id = obj.get("id")
        self._active += 1
        try:
            if op == "ping":
                return ok_response(req_id, pong=True)
            if op == "health":
                return ok_response(
                    req_id,
                    state=self.state,
                    uptime_s=round(time.monotonic() - self._t0, 3),
                    inflight=len(self._inflight),
                    queue_depth=self.admission.queued,
                )
            if op == "stats":
                return ok_response(req_id, stats=self.stats())
            if op == "shutdown":
                if not self.cfg.allow_shutdown:
                    raise ProtocolError(
                        "shutdown-refused",
                        "daemon was not started with --allow-shutdown",
                    )
                self.shutdown_event.set()
                return ok_response(req_id, stopping=True)
            if op == "decompose":
                if self.state == "draining":
                    # a typed refusal the client can retry elsewhere,
                    # not a reset connection
                    raise ProtocolError(
                        "shutdown-refused", "daemon is draining"
                    )
                return await self._decompose(obj, req_id, client)
            raise ProtocolError("bad-request", f"unknown op {op!r}")
        except ProtocolError as exc:
            self._count("errors")
            self._count(f"errors.{exc.code}")
            return error_response(req_id, exc.code, str(exc))
        except Exception as exc:  # the transport never sees an exception
            self._count("errors")
            self._count("errors.engine-error")
            return error_response(
                req_id, "engine-error", f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._active -= 1

    # ------------------------------------------------------------------
    # the decompose path
    # ------------------------------------------------------------------
    async def _decompose(self, obj: dict, req_id, client: str) -> dict:
        from repro.core.api import decompose
        from repro.fingerprint import fingerprint

        t0 = time.monotonic()
        self._count("requests")
        rec = TelemetryRecorder()
        timings = {
            "queue_wait_ms": 0.0, "cache_probe_ms": 0.0,
            "compute_ms": 0.0, "serialize_ms": 0.0,
        }
        fields = parse_decompose(obj)
        want_part = fields["want_part"]
        fp_only = "fingerprint" in fields["matrix"]
        seed = fields.get("seed")
        # an unseeded request is not reproducible: serve it, but never
        # cache, dedup, or answer it from the cache
        cacheable = fp_only or seed is not None

        if fp_only:
            fp = str(fields["matrix"]["fingerprint"])
            a = cfg_used = None
        else:
            a = resolve_matrix(fields["matrix"])
            overrides = {
                "n_starts": min(fields.get("n_starts", 1), self.cfg.max_n_starts),
                "n_workers": min(
                    fields.get("engine_workers", 1), self.cfg.max_engine_workers
                ),
            }
            if "epsilon" in fields:
                overrides["epsilon"] = fields["epsilon"]
            cfg_used = self.base_config.with_(**overrides)
            fp = fingerprint(
                a, cfg_used, seed, k=fields["k"], method=fields["method"]
            )

        # ---- cache probe (a hit never touches the engine) -------------
        tc = time.monotonic()
        with scoped_recorder(rec), rec.span("serve.cache_probe"):
            try:
                hit = self.cache.get(fp) if cacheable else None
            except (OSError, RuntimeError):
                # a failing cache read (serve.cache_read) is a miss:
                # the engine recomputes, the client never notices
                self._count("cache_read_errors")
                hit = None
        timings["cache_probe_ms"] = (time.monotonic() - tc) * 1e3
        if not cacheable:
            self._count("uncacheable")
        if hit is not None:
            entry, tier = hit
            self._count(f"hits_{tier}")
            # a replayed request whose result was cached before the
            # crash (but not tombstoned) terminates here
            self._journal_complete(fp)
            result = dict(entry.meta)
            if want_part:
                result.update(part_to_b64(entry.part))
            return self._finish(
                req_id, client, fp, result, f"hit-{tier}", t0, timings, rec
            )
        if cacheable:
            self._count("cache_misses")
        if fp_only:
            self._count("unknown_fingerprint")
            raise ProtocolError(
                "unknown-fingerprint",
                "fingerprint not in cache and carries no instance to compute",
            )

        # ---- durable journal: accepted before compute starts ----------
        if cacheable:
            self._journal_accept(fp, obj)

        # ---- in-flight dedup: one computation, N waiters --------------
        owner_fut = self._inflight.get(fp) if cacheable else None
        if owner_fut is not None:
            self._count("deduped")
            full = await asyncio.shield(owner_fut)
            result = dict(full)
            if not want_part:
                for key in _PART_KEYS:
                    result.pop(key, None)
            return self._finish(
                req_id, client, fp, result, "deduped", t0, timings, rec
            )
        loop = asyncio.get_running_loop()
        fut: asyncio.Future | None = None
        if cacheable:
            fut = loop.create_future()
            self._inflight[fp] = fut

        admitted = False
        try:
            # ---- fair admission over the bounded compute pool ---------
            tq = time.monotonic()
            await self.admission.acquire(client)
            admitted = True
            timings["queue_wait_ms"] = (time.monotonic() - tq) * 1e3

            # ---- deadline: remaining budget after queueing ------------
            deadline = fields.get("deadline", self.cfg.default_deadline)
            kw = {}
            if deadline is not None and fields.get("n_starts", 1) > 1:
                remaining = deadline - (time.monotonic() - t0)
                kw["deadline"] = max(remaining, 1e-3)

            # ---- compute on a worker thread, scoped telemetry ---------
            def work():
                with scoped_recorder(rec), rec.span("serve.compute"):
                    # injectable compute failure / stall: a crash here
                    # becomes an engine-error response, a sleep is the
                    # window the crash-recovery tests SIGKILL us in
                    _fault_trip("serve.compute")
                    return decompose(
                        a,
                        fields["k"],
                        method=fields["method"],
                        config=cfg_used,
                        seed=seed,
                        **kw,
                    )

            tw = time.monotonic()
            res = await loop.run_in_executor(self._executor, work)
            timings["compute_ms"] = (time.monotonic() - tw) * 1e3
            self._count("computed")
            if res.degraded:
                self._count("degraded")

            # ---- serialize + cache + resolve waiters ------------------
            ts = time.monotonic()
            full = result_doc(res, with_part=True)
            timings["serialize_ms"] = (time.monotonic() - ts) * 1e3
            if cacheable and res.fingerprint != fp:
                # must never happen (same instance/config/seed hash both
                # sides); refuse to poison the cache if it somehow does
                self._count("fingerprint_mismatch")
                cacheable = False
            if cacheable and not res.degraded:
                try:
                    self.cache.put(
                        CacheEntry(
                            fingerprint=fp,
                            part=np.ascontiguousarray(res.part, dtype=np.int64),
                            meta=result_doc(res, with_part=False),
                        )
                    )
                except (OSError, RuntimeError):
                    # a failing cache write (serve.cache_write) costs
                    # future hits, never this response
                    self._count("cache_write_errors")
            # terminal outcome reached: the client gets this response,
            # so the journal entry must not replay
            if cacheable:
                self._journal_complete(fp)
            if fut is not None:
                fut.set_result(full)
        except BaseException as exc:
            if isinstance(exc, Exception):
                # a deterministic error was (or is about to be) reported
                # to the client — replaying it forever helps nobody.  A
                # cancellation (daemon killed mid-compute) is NOT an
                # Exception: that entry stays open and replays.
                self._journal_complete(fp)
            if fut is not None and not fut.done():
                fut.set_exception(exc)
                fut.exception()  # mark retrieved; waiters still re-raise
            raise
        finally:
            if fut is not None:
                self._inflight.pop(fp, None)
            if admitted:
                self.admission.release(client)

        result = dict(full)
        if not want_part:
            for key in _PART_KEYS:
                result.pop(key, None)
        tier = "degraded" if res.degraded else "computed"
        return self._finish(req_id, client, fp, result, tier, t0, timings, rec)

    # ------------------------------------------------------------------
    def _finish(
        self, req_id, client, fp, result, tier, t0, timings, rec
    ) -> dict:
        self._count("ok")
        timings["total_ms"] = self._observe(t0)
        served = {"cache": tier, **{k: round(v, 3) for k, v in timings.items()}}
        self._write_trace(
            {
                "type": "request",
                "id": req_id,
                "client": client,
                "fingerprint": fp,
                "served": served,
                "telemetry": trace_to_dict(rec, spans=True),
            }
        )
        return ok_response(req_id, result, served=served)
