"""The asyncio transport of the partitioning service.

One :class:`PartitionService` behind any number of listeners: a TCP
socket (``--host``/``--port``; port 0 picks an ephemeral port) and/or a
UNIX domain socket (``--unix``).  Each connection is a newline-delimited
JSON conversation (see :mod:`repro.serve.protocol`); requests on one
connection may be pipelined and are answered in completion order, each
response echoing the request ``id``.

:func:`run_server` is the blocking entry the ``repro serve`` CLI uses:
it prints a machine-parseable ready line --

    ``repro-serve listening tcp=127.0.0.1:43211 unix=/tmp/repro.sock``

-- then serves until SIGTERM/SIGINT or an in-band ``shutdown`` request
(when allowed), draining connections and removing the UNIX socket on the
way out.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import sys

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_msg,
    encode_msg,
    error_response,
)
from repro.serve.service import PartitionService, ServeConfig
from repro.verify.faults import trip as _fault_trip

__all__ = ["PartitionServer", "run_server"]


class PartitionServer:
    """Listeners + per-connection NDJSON loops around one service."""

    def __init__(self, cfg: ServeConfig | None = None) -> None:
        self.cfg = cfg or ServeConfig()
        self.service = PartitionService(self.cfg)
        self._servers: list[asyncio.base_events.Server] = []
        self._conn_tasks: set[asyncio.Task] = set()
        #: bound TCP (host, port) after :meth:`start`, if TCP is enabled
        self.tcp_address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind every configured listener."""
        if self.cfg.port is not None:
            srv = await asyncio.start_server(
                self._serve_connection,
                host=self.cfg.host,
                port=self.cfg.port,
                limit=MAX_LINE_BYTES,
            )
            self._servers.append(srv)
            sock = srv.sockets[0]
            self.tcp_address = sock.getsockname()[:2]
        if self.cfg.unix_path:
            with contextlib.suppress(OSError):
                os.remove(self.cfg.unix_path)
            srv = await asyncio.start_unix_server(
                self._serve_connection,
                path=self.cfg.unix_path,
                limit=MAX_LINE_BYTES,
            )
            self._servers.append(srv)
        if not self._servers:
            raise ValueError("no listener configured (need a TCP port or --unix)")

    async def close(self) -> None:
        """Stop accepting, drain connections, release the service."""
        for srv in self._servers:
            srv.close()
        for srv in self._servers:
            await srv.wait_closed()
        self._servers.clear()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.service.close()
        if self.cfg.unix_path:
            with contextlib.suppress(OSError):
                os.remove(self.cfg.unix_path)

    def ready_line(self) -> str:
        """The one-line startup banner clients and CI parse."""
        parts = ["repro-serve listening"]
        if self.tcp_address is not None:
            parts.append(f"tcp={self.tcp_address[0]}:{self.tcp_address[1]}")
        if self.cfg.unix_path:
            parts.append(f"unix={self.cfg.unix_path}")
        return " ".join(parts)

    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # injectable accept failure: closes this connection
            # gracefully, never the daemon
            _fault_trip("serve.accept")
        except (OSError, RuntimeError):
            self.service._count("accept_errors")
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()
            return
        if self.service.state == "draining":
            # refuse the newcomer with a typed error, not a reset
            self.service._count("refused_draining")
            with contextlib.suppress(Exception):
                writer.write(
                    encode_msg(
                        error_response(
                            None, "shutdown-refused", "daemon is draining"
                        )
                    )
                )
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            return
        task = asyncio.current_task()
        if task is not None:  # so close() can drain live connections
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        peer = writer.get_extra_info("peername")
        default_client = (
            f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else "unix"
        )
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def respond(response: dict) -> None:
            async with write_lock:
                # injectable respond failure: the result is already
                # cached/journaled, so a client resubmission by
                # fingerprint is answered without recomputing
                _fault_trip("serve.respond")
                writer.write(encode_msg(response))
                await writer.drain()

        async def one_request(obj: dict) -> None:
            client = str(obj.get("client") or default_client)
            response = await self.service.handle(obj, client)
            try:
                await respond(response)
            except (OSError, RuntimeError):
                self.service._count("respond_errors")
                with contextlib.suppress(Exception):
                    writer.close()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionResetError,
                ):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    obj = decode_msg(line)
                except ProtocolError as exc:
                    try:
                        await respond(error_response(None, exc.code, str(exc)))
                    except (OSError, RuntimeError):
                        self.service._count("respond_errors")
                        break
                    continue
                # pipelining: requests run concurrently, answered as done
                task = asyncio.ensure_future(one_request(obj))
                pending.add(task)
                task.add_done_callback(pending.discard)
        except asyncio.CancelledError:
            pass
        finally:
            for task in list(pending):
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()


async def _serve_until_stopped(server: PartitionServer, banner) -> None:
    await server.start()
    if banner is not None:
        print(server.ready_line(), file=banner, flush=True)
    # warm restart runs behind the already-bound listeners: the daemon
    # accepts while replaying (new requests share fair admission with
    # the replays and are answered normally)
    startup_task = asyncio.ensure_future(server.service.startup())
    loop = asyncio.get_running_loop()
    stop = server.service.shutdown_event
    # signal handlers need the main thread; tests run the loop elsewhere
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError, RuntimeError):
                loop.remove_signal_handler(signum)
        startup_task.cancel()
        with contextlib.suppress(asyncio.CancelledError, Exception):
            await startup_task
        # graceful drain: listeners stay open so in-flight requests
        # finish and latecomers get shutdown-refused, not a reset
        await server.service.drain()
        await server.close()


def run_server(cfg: ServeConfig | None = None, banner=None) -> int:
    """Blocking daemon entry: bind, announce, serve until stopped.

    *banner* is the stream the ready line goes to (stdout by default);
    pass ``banner=False`` to suppress it.  Returns the process exit code.
    """
    if banner is None:
        banner = sys.stdout
    elif banner is False:
        banner = None
    server = PartitionServer(cfg)
    try:
        asyncio.run(_serve_until_stopped(server, banner))
    except KeyboardInterrupt:
        pass
    return 0
