"""Durable request journal: the daemon's crash-safety ledger.

A daemon that dies mid-compute used to lose every accepted request
silently — the client saw a broken socket and the work evaporated.  The
journal closes that hole with the same discipline the engine's
:class:`~repro.partitioner.resilience.CheckpointStore` established:
fingerprint-keyed NDJSON, appends flushed before compute starts, and
compaction through the atomic tmp + ``os.replace`` idiom so the file
under the final name is always a complete, parseable snapshot.

Protocol
--------
* ``accept(fingerprint, request)`` is called **before** a request enters
  the compute path.  It appends one ``{"kind": "accept", ...}`` line
  carrying the full wire request — everything needed to replay it
  through the normal service path — and flushes, so the OS holds the
  bytes even if the process is SIGKILLed the next instant.
* ``complete(fingerprint)`` is called once the request reached a
  terminal outcome (result cached, degraded, or a deterministic error —
  anything that must **not** be replayed).  It appends a
  ``{"kind": "complete", ...}`` tombstone.
* On startup, :meth:`open` parses the file: accepts without a matching
  tombstone are the in-flight requests the dead daemon lost, exposed
  via :meth:`incomplete` for the service to replay.  Because requests
  are fingerprint-keyed, a replayed result is byte-identical to what
  the original request would have returned.

Failure policy mirrors ``checkpoint.write``: a journal write failure
(injectable at the ``serve.journal_write`` fault site) must never fail
the request it records — it is absorbed and counted; only the
replayability of that one request is lost.  A torn trailing line (a
crash mid-append) and unreadable lines are tolerated on load.  A stale
``<path>.tmp`` left by a crash mid-compaction is swept on open.
"""

from __future__ import annotations

import json
import os
import threading

from repro.telemetry import get_recorder
from repro.verify.faults import trip as _fault_trip

__all__ = ["RequestJournal", "JOURNAL_VERSION"]

#: on-disk journal format version (an unknown version is loaded
#: best-effort: unreadable entries are skipped, never fatal)
JOURNAL_VERSION = 1

#: completed entries tolerated in the file before the next tombstone
#: triggers a compaction rewrite
COMPACT_MIN_COMPLETED = 64


class RequestJournal:
    """Append-mostly NDJSON journal of accepted-but-unfinished requests.

    Thread-safe; all failures are absorbed (the journal protects
    requests, it must never break one).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        #: fingerprint -> wire request, for every open (un-tombstoned) entry
        self._open: dict[str, dict] = {}
        self._completed_since_compact = 0
        self._file = None
        self.appends = 0
        self.write_errors = 0
        self.compactions = 0
        self.orphan_tmp_swept = 0
        self.skipped_lines = 0

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str) -> "RequestJournal":
        """Load *path* (tolerating torn/corrupt lines), sweep a stale
        ``.tmp`` orphan, and compact the completed entries away."""
        journal = cls(path)
        tmp = path + ".tmp"
        try:
            os.remove(tmp)
        except OSError:
            pass
        else:
            journal.orphan_tmp_swept += 1
            get_recorder().add("journal.tmp_swept")
        journal._load()
        if journal._completed_since_compact:
            with journal._lock:
                journal._compact_locked()
        return journal

    def _load(self) -> None:
        try:
            with open(self.path) as f:
                raw = f.read()
        except OSError:
            return
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                kind = rec["kind"]
                fp = str(rec["fingerprint"])
            except (ValueError, KeyError, TypeError):
                # a torn trailing line from a crash mid-append, or noise:
                # never fatal — the intact entries are what matter
                self.skipped_lines += 1
                continue
            if kind == "accept" and isinstance(rec.get("request"), dict):
                self._open[fp] = rec["request"]
            elif kind == "complete":
                self._open.pop(fp, None)
                self._completed_since_compact += 1

    # ------------------------------------------------------------------
    def accept(self, fingerprint: str, request: dict) -> bool:
        """Record *request* as accepted (idempotent per fingerprint).

        Returns True when the entry is open afterwards — including when
        it already was (a deduplicated waiter, or a replay of this very
        entry); False only when the append failed.
        """
        with self._lock:
            if fingerprint in self._open:
                return True
            ok = self._append(
                {
                    "kind": "accept",
                    "version": JOURNAL_VERSION,
                    "fingerprint": fingerprint,
                    "request": request,
                }
            )
            if ok:
                self._open[fingerprint] = request
            return ok

    def complete(self, fingerprint: str) -> None:
        """Tombstone *fingerprint* (idempotent; append failures only cost
        one harmless re-replay — the cache answers it)."""
        with self._lock:
            if fingerprint not in self._open:
                return
            self._append({"kind": "complete", "fingerprint": fingerprint})
            del self._open[fingerprint]
            self._completed_since_compact += 1
            if self._completed_since_compact >= COMPACT_MIN_COMPLETED:
                self._compact_locked()

    def incomplete(self) -> list[tuple[str, dict]]:
        """The accepted-but-unfinished requests, in acceptance order."""
        with self._lock:
            return [(fp, dict(req)) for fp, req in self._open.items()]

    def stats(self) -> dict:
        with self._lock:
            return {
                "path": self.path,
                "open_entries": len(self._open),
                "appends": self.appends,
                "write_errors": self.write_errors,
                "compactions": self.compactions,
                "orphan_tmp_swept": self.orphan_tmp_swept,
                "skipped_lines": self.skipped_lines,
            }

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None

    # ------------------------------------------------------------------
    def _append(self, rec: dict) -> bool:
        """Append one line and flush; absorbed on failure (counted)."""
        try:
            _fault_trip("serve.journal_write")
            if self._file is None:
                self._file = open(self.path, "a")
            self._file.write(json.dumps(rec, sort_keys=True) + "\n")
            # flush to the OS: the bytes survive a SIGKILL of this
            # process (fsync would only add power-loss durability)
            self._file.flush()
        except (OSError, RuntimeError):
            self.write_errors += 1
            get_recorder().add("journal.write_errors")
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None  # reopen on the next append
            return False
        self.appends += 1
        return True

    def _compact_locked(self) -> None:
        """Rewrite the file with only the open entries (tmp + replace)."""
        tmp = self.path + ".tmp"
        try:
            _fault_trip("serve.journal_write")
            with open(tmp, "w") as f:
                for fp, request in self._open.items():
                    f.write(
                        json.dumps(
                            {
                                "kind": "accept",
                                "version": JOURNAL_VERSION,
                                "fingerprint": fp,
                                "request": request,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None
            os.replace(tmp, self.path)
        except (OSError, RuntimeError):
            self.write_errors += 1
            get_recorder().add("journal.write_errors")
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        self._completed_since_compact = 0
        self.compactions += 1
        get_recorder().add("journal.compactions")
