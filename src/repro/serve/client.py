"""Resilient synchronous client for the partitioning service.

Speaks the NDJSON protocol over TCP or a UNIX socket; this is the client
behind the ``repro query`` CLI and the ``repro-bench serve`` /
``repro-bench chaos`` load generators, and the reference implementation
for anything else that wants to talk to the daemon::

    from repro.serve.client import Client

    with Client("127.0.0.1:43211") as c:
        r = c.decompose("collection:sherman3@0.25", k=4, seed=0)
        print(r.cutsize, r.served["cache"])     # "computed"
        r2 = c.decompose("collection:sherman3@0.25", k=4, seed=0)
        print(r2.served["cache"])               # "hit-memory"
        assert (r.part == r2.part).all()

A matrix may be named by a path or ``collection:`` spec (resolved by the
*daemon*), passed as a scipy sparse matrix (shipped inline over the
wire), or referenced by a bare fingerprint (cache-only lookup).

Error surface
-------------
Every wire error code maps to a dedicated :class:`ServeError` subclass
carrying a ``retryable`` flag — ``queue-full``, ``client-busy`` and
``shutdown-refused`` are transient conditions a caller (or this client)
can wait out; ``bad-request``, ``unknown-fingerprint``, ``oversized``
and ``engine-error`` are terminal for that request.  ``except
ServeError`` and the ``.code`` attribute keep working as before.

Resilience
----------
A daemon restart used to kill the client on the first broken socket.
With ``max_retries > 0`` the client instead reconnects under capped
exponential backoff with deterministic CRC32 jitter (the
:func:`repro.partitioner.resilience.backoff_delay` scheme) and resubmits
the request.  Resubmission is *idempotent by construction*: a seeded
``decompose`` is content-addressed by its fingerprint, so if the first
attempt completed server-side before the connection died, the retry is
answered straight from the cache/journal — same bytes, no recompute.
Retryable error responses (see above) are retried the same way.  The
``shutdown`` op is never retried.
"""

from __future__ import annotations

import os
import socket
import time
import zlib
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_msg,
    encode_msg,
    inline_matrix,
    part_from_b64,
)

__all__ = [
    "Client",
    "ServeResult",
    "ServeError",
    "BadRequestError",
    "UnknownFingerprintError",
    "QueueFullError",
    "ClientBusyError",
    "EngineError",
    "ShutdownRefusedError",
    "OversizedError",
    "ERROR_TYPES",
    "serve_error",
]


class ServeError(RuntimeError):
    """An error response from the daemon, with its wire error code.

    ``retryable`` distinguishes transient refusals (worth waiting out)
    from terminal errors (the same request will fail the same way).
    """

    #: class-level default; instances copy it so callers can override
    retryable: bool = False

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retryable = type(self).retryable


class BadRequestError(ServeError):
    """``bad-request``: the request itself is malformed — terminal."""

    retryable = False


class UnknownFingerprintError(ServeError):
    """``unknown-fingerprint``: cache-only lookup missed — terminal
    (resubmitting the same bare fingerprint cannot succeed)."""

    retryable = False


class QueueFullError(ServeError):
    """``queue-full``: the global queue bound was hit — retryable."""

    retryable = True


class ClientBusyError(ServeError):
    """``client-busy``: this client's in-flight bound was hit —
    retryable once earlier requests drain."""

    retryable = True


class EngineError(ServeError):
    """``engine-error``: the computation failed deterministically —
    terminal (a retry recomputes the same failure)."""

    retryable = False


class ShutdownRefusedError(ServeError):
    """``shutdown-refused``: the daemon is draining (refusing new work)
    or was started without ``--allow-shutdown``.  Retryable — a
    restarted daemon on the same address will accept the resubmission."""

    retryable = True


class OversizedError(ServeError):
    """``oversized``: the request line exceeds the wire limit — terminal."""

    retryable = False


#: wire error code -> dedicated exception class
ERROR_TYPES: dict[str, type[ServeError]] = {
    "bad-request": BadRequestError,
    "unknown-fingerprint": UnknownFingerprintError,
    "queue-full": QueueFullError,
    "client-busy": ClientBusyError,
    "engine-error": EngineError,
    "shutdown-refused": ShutdownRefusedError,
    "oversized": OversizedError,
}


def serve_error(code: str, message: str) -> ServeError:
    """Build the typed exception for *code* (base ``ServeError`` for a
    code this client does not know — unknown means not retryable)."""
    return ERROR_TYPES.get(code, ServeError)(code, message)


@dataclass
class ServeResult:
    """One successful ``decompose`` response, decoded."""

    #: content-addressed request identity
    fingerprint: str
    #: model name and part count
    method: str
    k: int
    #: partitioner objective value and achieved imbalance
    cutsize: int
    imbalance: float
    #: deadline SLO outcome
    degraded: bool
    degraded_reason: str | None
    #: part id per model vertex (``None`` with ``want_part=False``)
    part: np.ndarray | None
    #: how the request was served (cache tier + stage timings)
    served: dict
    #: the canonical result document exactly as received
    raw: dict


def _matrix_spec(matrix) -> dict:
    """Wire form of any of the accepted matrix arguments."""
    if isinstance(matrix, dict):
        return matrix
    if sp.issparse(matrix):
        return {"inline": inline_matrix(matrix)}
    if isinstance(matrix, str):
        if matrix.startswith("collection:"):
            return {"collection": matrix.split(":", 1)[1]}
        if matrix.startswith("fingerprint:"):
            return {"fingerprint": matrix.split(":", 1)[1]}
        return {"path": os.path.abspath(matrix)}
    raise TypeError(
        "matrix must be a scipy sparse matrix, a path, a 'collection:...' "
        "or 'fingerprint:...' spec, or a wire-form dict"
    )


class Client:
    """Blocking NDJSON client over one connection, with reconnect.

    *address* is ``"host:port"`` (TCP), a filesystem path (UNIX socket),
    or a ``(host, port)`` tuple.  The connection is opened lazily on the
    first request and reused; use as a context manager or call
    :meth:`close`.

    Parameters
    ----------
    max_retries:
        Resubmissions attempted after a connection loss or a retryable
        error response (0 restores fail-fast behaviour).
    backoff_base, backoff_cap:
        Exponential backoff schedule between attempts (seconds); the
        actual delay is jittered deterministically by CRC32 of the
        client identity and attempt number, exactly like the engine's
        retry machinery.
    """

    def __init__(
        self,
        address,
        timeout: float | None = 60.0,
        client_id: str | None = None,
        max_retries: int = 0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.client_id = client_id
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._sock: socket.socket | None = None
        self._rfile = None
        self._next_id = 0
        #: times the connection was re-established after a loss
        self.reconnects = 0
        #: requests resubmitted (connection loss or retryable error)
        self.retries = 0

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        addr = self.address
        if isinstance(addr, str) and ":" in addr and not os.path.exists(addr):
            host, port = addr.rsplit(":", 1)
            addr = (host, int(port))
        if isinstance(addr, tuple):
            sock = socket.create_connection(addr, timeout=self.timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(addr)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        """Deterministic jittered delay before retry *attempt* (1-based);
        the :func:`repro.partitioner.resilience.backoff_delay` scheme."""
        raw = min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))
        salt = f"{self.client_id or self.address}:{attempt}"
        u = zlib.crc32(salt.encode()) / 0xFFFFFFFF
        return raw * (0.5 + 0.5 * u)

    def _request_once(self, obj: dict) -> dict:
        """One send/receive round; raises the typed error on failure."""
        self._connect()
        self._next_id += 1
        obj = dict(obj)
        obj.setdefault("id", self._next_id)
        if self.client_id is not None:
            obj.setdefault("client", self.client_id)
        self._sock.sendall(encode_msg(obj))
        line = self._rfile.readline(MAX_LINE_BYTES)
        if not line:
            self.close()
            raise ConnectionError("server closed the connection")
        try:
            response = decode_msg(line)
        except ProtocolError as exc:
            raise ConnectionError(f"undecodable response: {exc}") from None
        if not response.get("ok"):
            err = response.get("error") or {}
            raise serve_error(
                err.get("code", "unknown"), err.get("message", "unknown error")
            )
        return response

    def request(self, obj: dict) -> dict:
        """Send one request dict, return the raw response dict.

        Raises the typed :class:`ServeError` subclass on an error
        response and :class:`ConnectionError` when the daemon hangs up
        and every retry is exhausted.  With ``max_retries > 0``, a lost
        connection or a retryable error response is retried under
        backoff; resubmission after a loss is idempotent because seeded
        requests are content-addressed — a first attempt that completed
        server-side answers the retry from the cache, byte-identically.
        The ``shutdown`` op is never retried (a lost response cannot be
        distinguished from a daemon that obeyed and exited).
        """
        retries = 0 if obj.get("op") == "shutdown" else self.max_retries
        attempt = 0
        while True:
            try:
                return self._request_once(obj)
            except (ConnectionError, OSError):
                self.close()
                attempt += 1
                if attempt > retries:
                    raise
                self.reconnects += 1
            except ServeError as exc:
                if not exc.retryable:
                    raise
                attempt += 1
                if attempt > retries:
                    raise
            self.retries += 1
            time.sleep(self._backoff(attempt))

    def decompose(
        self,
        matrix,
        k: int | None = None,
        method: str = "finegrain",
        seed: int | None = None,
        epsilon: float | None = None,
        n_starts: int | None = None,
        engine_workers: int | None = None,
        deadline: float | None = None,
        want_part: bool = True,
    ) -> ServeResult:
        """Request a decomposition; see :func:`repro.decompose` for the
        semantics of the knobs.  ``matrix`` may also be a bare
        ``"fingerprint:..."`` spec for a cache-only lookup (no ``k``)."""
        obj: dict = {
            "op": "decompose",
            "matrix": _matrix_spec(matrix),
            "method": method,
            "want_part": want_part,
        }
        for name, value in (
            ("k", k), ("seed", seed), ("epsilon", epsilon),
            ("n_starts", n_starts), ("engine_workers", engine_workers),
            ("deadline", deadline),
        ):
            if value is not None:
                obj[name] = value
        response = self.request(obj)
        result = response["result"]
        part = part_from_b64(result) if "part_b64" in result else None
        return ServeResult(
            fingerprint=result["fingerprint"],
            method=result["method"],
            k=int(result["k"]),
            cutsize=int(result["cutsize"]),
            imbalance=float(result["imbalance"]),
            degraded=bool(result["degraded"]),
            degraded_reason=result.get("degraded_reason"),
            part=part,
            served=response.get("served", {}),
            raw=result,
        )

    def stats(self) -> dict:
        """The daemon's live statistics document."""
        return self.request({"op": "stats"})["stats"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def health(self) -> dict:
        """Readiness probe: ``{"state": "starting|replaying|ready|draining",
        ...}`` plus uptime and load gauges."""
        response = self.request({"op": "health"})
        return {
            key: value
            for key, value in response.items()
            if key not in ("ok", "id")
        }

    def shutdown(self) -> bool:
        """Ask the daemon to stop (needs ``--allow-shutdown``)."""
        return bool(self.request({"op": "shutdown"}).get("stopping"))
