"""Synchronous client for the partitioning service.

Speaks the NDJSON protocol over TCP or a UNIX socket; this is the client
behind the ``repro query`` CLI and the ``repro-bench serve`` load
generator, and the reference implementation for anything else that wants
to talk to the daemon::

    from repro.serve.client import Client

    with Client("127.0.0.1:43211") as c:
        r = c.decompose("collection:sherman3@0.25", k=4, seed=0)
        print(r.cutsize, r.served["cache"])     # "computed"
        r2 = c.decompose("collection:sherman3@0.25", k=4, seed=0)
        print(r2.served["cache"])               # "hit-memory"
        assert (r.part == r2.part).all()

A matrix may be named by a path or ``collection:`` spec (resolved by the
*daemon*), passed as a scipy sparse matrix (shipped inline over the
wire), or referenced by a bare fingerprint (cache-only lookup).
"""

from __future__ import annotations

import os
import socket
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_msg,
    encode_msg,
    inline_matrix,
    part_from_b64,
)

__all__ = ["Client", "ServeResult", "ServeError"]


class ServeError(RuntimeError):
    """An error response from the daemon, with its wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


@dataclass
class ServeResult:
    """One successful ``decompose`` response, decoded."""

    #: content-addressed request identity
    fingerprint: str
    #: model name and part count
    method: str
    k: int
    #: partitioner objective value and achieved imbalance
    cutsize: int
    imbalance: float
    #: deadline SLO outcome
    degraded: bool
    degraded_reason: str | None
    #: part id per model vertex (``None`` with ``want_part=False``)
    part: np.ndarray | None
    #: how the request was served (cache tier + stage timings)
    served: dict
    #: the canonical result document exactly as received
    raw: dict


def _matrix_spec(matrix) -> dict:
    """Wire form of any of the accepted matrix arguments."""
    if isinstance(matrix, dict):
        return matrix
    if sp.issparse(matrix):
        return {"inline": inline_matrix(matrix)}
    if isinstance(matrix, str):
        if matrix.startswith("collection:"):
            return {"collection": matrix.split(":", 1)[1]}
        if matrix.startswith("fingerprint:"):
            return {"fingerprint": matrix.split(":", 1)[1]}
        return {"path": os.path.abspath(matrix)}
    raise TypeError(
        "matrix must be a scipy sparse matrix, a path, a 'collection:...' "
        "or 'fingerprint:...' spec, or a wire-form dict"
    )


class Client:
    """Blocking NDJSON client over one connection.

    *address* is ``"host:port"`` (TCP), a filesystem path (UNIX socket),
    or a ``(host, port)`` tuple.  The connection is opened lazily on the
    first request and reused; use as a context manager or call
    :meth:`close`.
    """

    def __init__(
        self, address, timeout: float | None = 60.0, client_id: str | None = None
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.client_id = client_id
        self._sock: socket.socket | None = None
        self._rfile = None
        self._next_id = 0

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        addr = self.address
        if isinstance(addr, str) and ":" in addr and not os.path.exists(addr):
            host, port = addr.rsplit(":", 1)
            addr = (host, int(port))
        if isinstance(addr, tuple):
            sock = socket.create_connection(addr, timeout=self.timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(addr)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, obj: dict) -> dict:
        """Send one request dict, return the raw response dict.

        Raises :class:`ServeError` on an error response and
        :class:`ConnectionError` when the daemon hangs up mid-request.
        """
        self._connect()
        self._next_id += 1
        obj = dict(obj)
        obj.setdefault("id", self._next_id)
        if self.client_id is not None:
            obj.setdefault("client", self.client_id)
        self._sock.sendall(encode_msg(obj))
        line = self._rfile.readline(MAX_LINE_BYTES)
        if not line:
            self.close()
            raise ConnectionError("server closed the connection")
        try:
            response = decode_msg(line)
        except ProtocolError as exc:
            raise ConnectionError(f"undecodable response: {exc}") from None
        if not response.get("ok"):
            err = response.get("error") or {}
            raise ServeError(
                err.get("code", "unknown"), err.get("message", "unknown error")
            )
        return response

    def decompose(
        self,
        matrix,
        k: int | None = None,
        method: str = "finegrain",
        seed: int | None = None,
        epsilon: float | None = None,
        n_starts: int | None = None,
        engine_workers: int | None = None,
        deadline: float | None = None,
        want_part: bool = True,
    ) -> ServeResult:
        """Request a decomposition; see :func:`repro.decompose` for the
        semantics of the knobs.  ``matrix`` may also be a bare
        ``"fingerprint:..."`` spec for a cache-only lookup (no ``k``)."""
        obj: dict = {
            "op": "decompose",
            "matrix": _matrix_spec(matrix),
            "method": method,
            "want_part": want_part,
        }
        for name, value in (
            ("k", k), ("seed", seed), ("epsilon", epsilon),
            ("n_starts", n_starts), ("engine_workers", engine_workers),
            ("deadline", deadline),
        ):
            if value is not None:
                obj[name] = value
        response = self.request(obj)
        result = response["result"]
        part = part_from_b64(result) if "part_b64" in result else None
        return ServeResult(
            fingerprint=result["fingerprint"],
            method=result["method"],
            k=int(result["k"]),
            cutsize=int(result["cutsize"]),
            imbalance=float(result["imbalance"]),
            degraded=bool(result["degraded"]),
            degraded_reason=result.get("degraded_reason"),
            part=part,
            served=response.get("served", {}),
            raw=result,
        )

    def stats(self) -> dict:
        """The daemon's live statistics document."""
        return self.request({"op": "stats"})["stats"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def shutdown(self) -> bool:
        """Ask the daemon to stop (needs ``--allow-shutdown``)."""
        return bool(self.request({"op": "shutdown"}).get("stopping"))
