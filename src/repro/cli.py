"""Command-line interface: ``python -m repro <command>``.

Commands
--------
info
    Print Table-1 style structural statistics of a matrix.
partition
    Decompose a matrix with one of the models and write the ownership
    arrays; prints partition quality and exact communication statistics.
spmv
    Load a decomposition produced by ``partition`` and simulate one
    distributed multiply, verifying it against the serial product.
verify
    Audit a saved partition file with the independent oracles of
    :mod:`repro.verify`: balance, cutsize, the consistency condition and
    the Eq. 3 cutsize == communication-volume equivalence.  Exits 1 when
    any check fails.
profile
    Run a full decomposition + simulated SpMV under a telemetry recorder;
    print the span tree, counter totals and the hottest phases, and
    optionally write an NDJSON trace / flat JSON summary.
serve
    Run the partitioning daemon: newline-delimited JSON over TCP and/or a
    UNIX socket, scheduling decompositions over a bounded worker pool
    behind a two-tier content-addressed result cache (``docs/serving.md``).
    ``repro serve --stats ADDRESS`` queries a running daemon instead.
query
    One decomposition request against a running daemon (the client side
    of ``serve``); repeated queries are answered from the daemon's cache.

Matrices are given either as a MatrixMarket file path or as
``collection:<name>[@scale]`` referring to the built-in test set, e.g.
``collection:ken-11@0.125``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np
import scipy.sparse as sp

from repro.core.api import decompose
from repro.matrix.collection import load_collection_matrix
from repro.matrix.io import read_matrix_market
from repro.matrix.stats import matrix_stats
from repro.models import (
    decompose_2d_checkerboard,
    decompose_2d_jagged,
    decompose_2d_mondriaan,
)
from repro.partitioner import PartitionerConfig
from repro.spmv import communication_stats, simulate_spmv

__all__ = ["main", "load_matrix_arg"]

#: CLI model name -> unified decompose() method name (partitioner-backed)
_DECOMPOSE_METHODS = {
    "finegrain2d": "finegrain",
    "hypergraph1d": "columnnet",
    "rownet1d": "rownet",
    "graph": "graph",
}

_MODELS = {
    **{
        name: (
            lambda a, k, cfg, seed, _m=method: decompose(
                a, k, method=_m, config=cfg, seed=seed
            ).decomposition
        )
        for name, method in _DECOMPOSE_METHODS.items()
    },
    "checkerboard": lambda a, k, cfg, seed: decompose_2d_checkerboard(a, k),
    "jagged": lambda a, k, cfg, seed: decompose_2d_jagged(a, k, cfg, seed),
    "mondriaan": lambda a, k, cfg, seed: decompose_2d_mondriaan(a, k, cfg, seed),
}


def load_matrix_arg(spec: str) -> sp.csr_matrix:
    """Resolve a matrix argument: a path or ``collection:<name>[@scale]``."""
    if spec.startswith("collection:"):
        rest = spec[len("collection:"):]
        scale = 1.0
        if "@" in rest:
            rest, scale_s = rest.rsplit("@", 1)
            scale = float(scale_s)
        a = load_collection_matrix(rest, scale=scale)
    else:
        a = read_matrix_market(spec)
    # canonical form so nonzero ordering is stable across commands
    a = sp.csr_matrix(a)
    a.eliminate_zeros()
    a.sort_indices()
    return a


def _parse(argv):
    p = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    pi = sub.add_parser("info", help="matrix structural statistics")
    pi.add_argument("matrix")

    pp = sub.add_parser("partition", help="decompose a matrix")
    pp.add_argument("matrix")
    pp.add_argument("-k", type=int, required=True, help="number of processors")
    pp.add_argument("--model", choices=sorted(_MODELS), default="finegrain2d")
    pp.add_argument("--epsilon", type=float, default=0.03)
    pp.add_argument("--seed", type=int, default=0)
    pp.add_argument("--starts", type=int, default=1,
                    help="multi-start engine attempts (best cut wins)")
    pp.add_argument("--workers", type=int, default=1,
                    help="worker budget shared by starts and subtree tasks")
    pp.add_argument("--tree-parallel", action="store_true",
                    help="seed-tree recursion: schedule the two sides of "
                         "every bisection over the worker budget "
                         "(bit-identical at any worker count)")
    pp.add_argument("--kernel", choices=["auto", "python", "flat", "jit"],
                    default=None,
                    help="refinement/matching implementation tier "
                         "(bit-identical; unavailable tiers fall back "
                         "jit -> flat -> python; default: REPRO_KERNEL "
                         "or python)")
    pp.add_argument("--output", default=None,
                    help="write ownership arrays (and the model partition, "
                         "when the model has one) to this .npz file")
    pp.add_argument("--verify", action="store_true",
                    help="audit the result with the independent oracles "
                         "before reporting; non-zero exit on failure")
    pp.add_argument("--retries", type=int, default=None, metavar="N",
                    help="retry a failed/crashed engine start up to N times "
                         "with backoff (retries re-derive the original seed: "
                         "bit-identical results)")
    pp.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                    help="wall-clock budget for the multi-start sweep; past "
                         "it the best completed start is returned (marked "
                         "degraded) instead of raising")
    pp.add_argument("--checkpoint", default=None, metavar="PATH",
                    help="crash-resumable sweep checkpoint (NDJSON, written "
                         "atomically after every completed start)")
    pp.add_argument("--resume", action="store_true",
                    help="resume a previous sweep from --checkpoint (skips "
                         "the recorded starts); without this flag an "
                         "existing checkpoint file is cleared first")

    ps = sub.add_parser("spmv", help="simulate a distributed multiply")
    ps.add_argument("matrix")
    ps.add_argument("decomposition", help=".npz written by the partition command")
    ps.add_argument("--seed", type=int, default=0)

    pv = sub.add_parser(
        "verify", help="audit a saved partition with independent oracles"
    )
    pv.add_argument("matrix")
    pv.add_argument("decomposition", help=".npz written by the partition command")
    pv.add_argument("--epsilon", type=float, default=0.03)
    pv.add_argument("--exact", action="store_true",
                    help="also run the branch-and-bound exact bipartitioner "
                         "and report the true optimality gap (k=2 results "
                         "only; skipped with a note otherwise)")
    pv.add_argument("--exact-nodes", type=int, default=None, metavar="N",
                    help="node budget for the exact search; past it the gap "
                         "is reported against the best-found (unproven) "
                         "bound instead of a certified optimum")

    pa = sub.add_parser("analyze", help="per-processor decomposition report")
    pa.add_argument("matrix")
    pa.add_argument("-k", type=int, required=True)
    pa.add_argument("--model", choices=sorted(_MODELS), default="finegrain2d")
    pa.add_argument("--epsilon", type=float, default=0.03)
    pa.add_argument("--seed", type=int, default=0)
    pa.add_argument("--starts", type=int, default=1)
    pa.add_argument("--workers", type=int, default=1)
    pa.add_argument("--tree-parallel", action="store_true")
    pa.add_argument("--kernel", choices=["auto", "python", "flat", "jit"],
                    default=None)

    pf = sub.add_parser(
        "profile", help="trace a decomposition + simulated SpMV end to end"
    )
    pf.add_argument("matrix")
    pf.add_argument("-k", type=int, default=4, help="number of processors")
    pf.add_argument("--model", choices=sorted(_MODELS), default="finegrain2d")
    pf.add_argument("--epsilon", type=float, default=0.03)
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument("--starts", type=int, default=1)
    pf.add_argument("--workers", type=int, default=1)
    pf.add_argument("--tree-parallel", action="store_true")
    pf.add_argument("--kernel", choices=["auto", "python", "flat", "jit"],
                    default=None)
    pf.add_argument("--depth", type=int, default=4,
                    help="maximum span-tree depth to print")
    pf.add_argument("--trace", default=None,
                    help="write the NDJSON event log to this path")
    pf.add_argument("--json", dest="json_out", default=None,
                    help="write the flat JSON summary to this path")
    pf.add_argument("--no-spmv", action="store_true",
                    help="profile the partitioner only")

    pd = sub.add_parser("serve", help="run the partitioning daemon")
    pd.add_argument("--host", default="127.0.0.1")
    pd.add_argument("--port", type=int, default=None, metavar="PORT",
                    help="TCP listen port (0 = ephemeral, printed on the "
                         "ready line); omit for UNIX-socket-only")
    pd.add_argument("--unix", default=None, metavar="PATH",
                    help="UNIX domain socket path to listen on")
    pd.add_argument("--workers", type=int, default=2,
                    help="compute slots: concurrent decompositions")
    pd.add_argument("--queue-limit", type=int, default=64,
                    help="queued requests beyond this are refused")
    pd.add_argument("--per-client-limit", type=int, default=8,
                    help="one client's in-flight request bound")
    pd.add_argument("--cache-mem-mb", type=int, default=64,
                    help="memory tier budget of the result cache (MiB)")
    pd.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="disk tier directory (omit to disable)")
    pd.add_argument("--cache-disk-mb", type=int, default=1024,
                    help="disk tier budget (MiB)")
    pd.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                    help="default per-request deadline (degraded-result "
                         "SLO) for requests that carry none")
    pd.add_argument("--max-starts", type=int, default=16,
                    help="cap on per-request n_starts")
    pd.add_argument("--max-engine-workers", type=int, default=4,
                    help="cap on per-request engine workers")
    pd.add_argument("--trace", default=None, metavar="PATH",
                    help="append one NDJSON trace line per served request")
    pd.add_argument("--journal", default=None, metavar="PATH",
                    help="durable request journal: accepted requests are "
                         "recorded here before compute and replayed on "
                         "restart after a crash (omit to disable)")
    pd.add_argument("--drain-timeout", type=float, default=5.0,
                    metavar="SECONDS",
                    help="grace period for in-flight requests on shutdown")
    pd.add_argument("--allow-shutdown", action="store_true",
                    help="honour the in-band shutdown op")
    pd.add_argument("--epsilon", type=float, default=0.03,
                    help="base imbalance tolerance of the daemon's config")
    pd.add_argument("--stats", default=None, metavar="ADDRESS",
                    help="query a running daemon's statistics instead of "
                         "serving (host:port or UNIX socket path)")

    pq = sub.add_parser("query", help="one request against a running daemon")
    pq.add_argument("--connect", required=True, metavar="ADDRESS",
                    help="daemon address: host:port or UNIX socket path")
    pq.add_argument("matrix",
                    help="matrix path, collection:<name>[@scale], or "
                         "fingerprint:<hex> for a cache-only lookup")
    pq.add_argument("-k", type=int, default=None, help="number of processors")
    pq.add_argument("--model", choices=sorted(_DECOMPOSE_METHODS),
                    default="finegrain2d")
    pq.add_argument("--epsilon", type=float, default=None)
    pq.add_argument("--seed", type=int, default=None)
    pq.add_argument("--starts", type=int, default=None)
    pq.add_argument("--engine-workers", type=int, default=None)
    pq.add_argument("--deadline", type=float, default=None)
    pq.add_argument("--inline", action="store_true",
                    help="load the matrix locally and ship it inline "
                         "instead of naming a daemon-side path")
    pq.add_argument("--no-part", action="store_true",
                    help="skip the partition vector in the response")
    pq.add_argument("--output", default=None, metavar="PATH",
                    help="write the partition vector to this .npz file")
    return p.parse_args(argv)


def _config_from_args(args) -> PartitionerConfig:
    """Build the partitioner config from common CLI options."""
    import os

    kwargs = {}
    if getattr(args, "tree_parallel", False):
        # only force the knob when the flag is given, so the
        # REPRO_TREE_PARALLEL env default still applies otherwise
        kwargs["tree_parallel"] = True
    if getattr(args, "retries", None) is not None:
        kwargs["max_retries"] = args.retries
    if getattr(args, "kernel", None) is not None:
        # only force the tier when the flag is given, so the REPRO_KERNEL
        # env default still applies otherwise
        kwargs["kernel"] = args.kernel
    if getattr(args, "deadline", None) is not None:
        kwargs["deadline"] = args.deadline
    checkpoint = getattr(args, "checkpoint", None)
    if checkpoint:
        if not getattr(args, "resume", False) and os.path.exists(checkpoint):
            # a fresh sweep must not silently resume yesterday's file
            os.remove(checkpoint)
        kwargs["checkpoint_path"] = checkpoint
    return PartitionerConfig(
        epsilon=args.epsilon,
        n_starts=getattr(args, "starts", 1),
        n_workers=getattr(args, "workers", 1),
        **kwargs,
    )


def _load_saved_decomposition(a: sp.csr_matrix, data) -> "Decomposition":
    """Rebuild a :class:`Decomposition` from a ``partition --output`` file.

    Older files carry no ``n`` entry; the matrix itself supplies the input
    dimension so rectangular decompositions round-trip correctly.
    """
    from repro.core.decomposition import Decomposition

    coo = sp.coo_matrix(a)
    return Decomposition(
        k=int(data["k"]),
        m=a.shape[0],
        n=int(data["n"]) if "n" in data else a.shape[1],
        nnz_row=coo.row.astype(np.int64),
        nnz_col=coo.col.astype(np.int64),
        nnz_val=coo.data.astype(np.float64),
        nnz_owner=data["nnz_owner"],
        x_owner=data["x_owner"],
        y_owner=data["y_owner"],
    )


def _cmd_verify(a: sp.csr_matrix, args) -> int:
    """The ``verify`` command: oracle-audit a saved partition file."""
    from types import SimpleNamespace

    from repro.verify import check_decomposition, verify_decompose

    data = np.load(args.decomposition)
    dec = _load_saved_decomposition(a, data)
    exact_kwargs = {}
    if getattr(args, "exact", False):
        exact_kwargs["exact_gap"] = True
        if args.exact_nodes is not None:
            exact_kwargs["exact_nodes"] = args.exact_nodes
    if "part" in data and "method" in data and "cutsize" in data:
        res = SimpleNamespace(
            method=str(data["method"]),
            k=dec.k,
            part=np.asarray(data["part"]),
            cutsize=int(data["cutsize"]),
            decomposition=dec,
        )
        report = verify_decompose(a, res, epsilon=args.epsilon, **exact_kwargs)
    else:
        # ownership arrays only (e.g. checkerboard/jagged models): the
        # decomposition-level invariants are still fully checkable
        report = check_decomposition(dec)
        if exact_kwargs:
            print("verify: --exact needs a partition vector in the file; skipped")
    print(report.summary())
    gap = report.extras.get("exact") if hasattr(report, "extras") else None
    if gap is not None:
        tag = "certified" if gap["proven"] else "unproven"
        print(
            f"optimality gap: {gap['gap']} ({tag}; cut={gap['cut']} "
            f"exact={gap['exact_cut']} nodes={gap['nodes']} "
            f"time={gap['runtime']:.3f}s)"
        )
    return 0 if report.passed else 1


def _cmd_profile(a: sp.csr_matrix, args) -> int:
    """The ``profile`` command: run everything under a real recorder."""
    from repro.telemetry import (
        render_tree,
        trace_to_dict,
        use_recorder,
        write_ndjson,
    )

    cfg = _config_from_args(args)
    with use_recorder() as rec:
        dec = _MODELS[args.model](a, args.k, cfg, args.seed)
        if not args.no_spmv:
            simulate_spmv(dec)

    print(render_tree(rec, max_depth=args.depth))
    phases = sorted(
        rec.durations_by_name(self_time=True).items(), key=lambda kv: -kv[1]
    )
    print()
    print("hot phases (self time):")
    for name, secs in phases[:10]:
        print(f"  {name:<24}{secs * 1e3:10.2f} ms")
    totals = rec.counter_totals()
    if totals:
        print()
        print("counters:")
        for name in sorted(totals):
            print(f"  {name:<24}{totals[name]}")
    if args.trace:
        n_lines = write_ndjson(rec, args.trace)
        print(f"\nwrote {args.trace} ({n_lines} lines)")
    if args.json_out:
        import json

        with open(args.json_out, "w") as f:
            json.dump(trace_to_dict(rec), f, indent=2)
        print(f"wrote {args.json_out}")
    return 0


def _cmd_serve(args) -> int:
    """The ``serve`` command: run the daemon (or query a running one)."""
    import json

    if args.stats:
        from repro.serve.client import Client

        with Client(args.stats) as client:
            print(json.dumps(client.stats(), indent=2, default=str))
        return 0

    from repro.serve import ServeConfig, run_server

    if args.port is None and not args.unix:
        print("serve: need --port and/or --unix", file=sys.stderr)
        return 2
    cfg = ServeConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        n_workers=args.workers,
        queue_limit=args.queue_limit,
        per_client_limit=args.per_client_limit,
        cache_mem_bytes=args.cache_mem_mb * 1024 * 1024,
        cache_dir=args.cache_dir,
        cache_disk_bytes=args.cache_disk_mb * 1024 * 1024,
        default_deadline=args.deadline,
        max_n_starts=args.max_starts,
        max_engine_workers=args.max_engine_workers,
        trace_path=args.trace,
        journal_path=args.journal,
        drain_timeout=args.drain_timeout,
        allow_shutdown=args.allow_shutdown,
        config=PartitionerConfig(epsilon=args.epsilon),
    )
    return run_server(cfg)


def _cmd_query(args) -> int:
    """The ``query`` command: one decompose request against a daemon."""
    from repro.serve.client import Client, ServeError

    matrix = args.matrix
    if args.inline and not matrix.startswith("fingerprint:"):
        matrix = load_matrix_arg(matrix)
    try:
        with Client(args.connect) as client:
            res = client.decompose(
                matrix,
                k=args.k,
                method=_DECOMPOSE_METHODS[args.model],
                seed=args.seed,
                epsilon=args.epsilon,
                n_starts=args.starts,
                engine_workers=args.engine_workers,
                deadline=args.deadline,
                want_part=not args.no_part,
            )
    except (ServeError, ConnectionError, OSError) as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    served = res.served
    print(
        f"method={res.method} K={res.k} cutsize={res.cutsize} "
        f"imbalance={100 * res.imbalance:.2f}% "
        f"served={served.get('cache')} total={served.get('total_ms', 0):.1f}ms"
    )
    print(f"fingerprint={res.fingerprint}")
    if res.degraded:
        print(f"degraded: {res.degraded_reason}")
    if args.output and res.part is not None:
        np.savez(args.output, part=res.part, k=res.k,
                 fingerprint=res.fingerprint)
        print(f"wrote {args.output}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _parse(argv if argv is not None else sys.argv[1:])

    # the service commands resolve (or forward) their matrix themselves
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        return _cmd_query(args)

    a = load_matrix_arg(args.matrix)

    if args.command == "info":
        print(matrix_stats(a, args.matrix).table1_row())
        return 0

    if args.command == "profile":
        return _cmd_profile(a, args)

    if args.command == "verify":
        return _cmd_verify(a, args)

    if args.command == "partition":
        cfg = _config_from_args(args)
        res = None
        if args.model in _DECOMPOSE_METHODS:
            res = decompose(
                a,
                args.k,
                method=_DECOMPOSE_METHODS[args.model],
                config=cfg,
                seed=args.seed,
                verify=False if args.verify else None,
            )
            dec = res.decomposition
        else:
            dec = _MODELS[args.model](a, args.k, cfg, args.seed)
        stats = communication_stats(dec)
        print(stats.summary())
        print(
            f"scaled: tot={stats.scaled_total_volume:.3f} "
            f"max={stats.scaled_max_volume:.3f}"
        )
        if res is not None and res.degraded:
            print(f"degraded: {res.degraded_reason}")
        if args.verify:
            from repro.verify import check_decomposition, verify_decompose

            report = (
                verify_decompose(a, res, epsilon=cfg.epsilon)
                if res is not None
                else check_decomposition(dec)
            )
            print(report.summary())
            if not report.passed:
                return 1
        if args.output:
            payload = dict(
                k=dec.k,
                m=dec.m,
                n=dec.n,
                nnz_owner=dec.nnz_owner,
                x_owner=dec.x_owner,
                y_owner=dec.y_owner,
            )
            if res is not None:
                payload.update(
                    part=res.part, cutsize=res.cutsize, method=res.method
                )
            np.savez(args.output, **payload)
            print(f"wrote {args.output}")
        return 0

    if args.command == "analyze":
        from repro.analysis import analyze_decomposition, render_report

        cfg = _config_from_args(args)
        dec = _MODELS[args.model](a, args.k, cfg, args.seed)
        print(render_report(analyze_decomposition(dec)))
        return 0

    # spmv
    data = np.load(args.decomposition)
    dec = _load_saved_decomposition(a, data)
    # the input vector lives in the matrix's column space (dec.n != dec.m
    # for rectangular decompositions)
    x = np.random.default_rng(args.seed).standard_normal(dec.n)
    res = simulate_spmv(dec, x)
    ok = np.allclose(res.y, a @ x)
    print(res.stats.summary())
    print(f"distributed result matches serial product: {ok}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
