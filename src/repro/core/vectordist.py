"""Conformal vector distribution: global-to-local index maps.

A distributed SpMV implementation stores on each processor only its slice
of x and y plus *ghost* entries received during expand.  This module
derives those layouts from a :class:`~repro.core.decomposition.Decomposition`:
for every processor, the owned global indices, the ghost indices, and the
dense local renumbering an implementation would use to address its local
buffers (owned entries first, ghosts after — the usual PETSc/Trilinos
layout).

Round-trip invariants (tested): every global x index a processor's local
nonzeros reference resolves to a local index, and gathering the owned
slices reconstructs the global vector exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import INDEX_DTYPE
from repro.core.decomposition import Decomposition

__all__ = ["LocalVectorLayout", "VectorDistribution", "build_vector_distribution"]


@dataclass(frozen=True)
class LocalVectorLayout:
    """Per-processor vector layout: owned entries first, then ghosts."""

    rank: int
    #: global indices owned by this rank (sorted)
    owned: np.ndarray
    #: global indices of ghost entries received during expand (sorted)
    ghosts: np.ndarray

    @property
    def local_size(self) -> int:
        """Length of the local buffer (owned + ghosts)."""
        return len(self.owned) + len(self.ghosts)

    def global_to_local(self, idx: int) -> int:
        """Local position of global index *idx* (raises if absent)."""
        pos = np.searchsorted(self.owned, idx)
        if pos < len(self.owned) and self.owned[pos] == idx:
            return int(pos)
        pos = np.searchsorted(self.ghosts, idx)
        if pos < len(self.ghosts) and self.ghosts[pos] == idx:
            return len(self.owned) + int(pos)
        raise KeyError(f"global index {idx} is not local to rank {self.rank}")

    def localize(self, global_indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`global_to_local` (raises if any is absent)."""
        gi = np.asarray(global_indices)
        pos = np.searchsorted(self.owned, gi)
        pos_c = np.clip(pos, 0, max(len(self.owned) - 1, 0))
        own_hit = (len(self.owned) > 0) & (self.owned[pos_c] == gi)
        gpos = np.searchsorted(self.ghosts, gi)
        gpos_c = np.clip(gpos, 0, max(len(self.ghosts) - 1, 0))
        ghost_hit = (len(self.ghosts) > 0) & (self.ghosts[gpos_c] == gi)
        if not np.all(own_hit | ghost_hit):
            missing = gi[~(own_hit | ghost_hit)]
            raise KeyError(
                f"global indices {missing[:5].tolist()} not local to rank {self.rank}"
            )
        return np.where(own_hit, pos_c, len(self.owned) + gpos_c).astype(INDEX_DTYPE)


@dataclass(frozen=True)
class VectorDistribution:
    """The x-vector layouts of all K processors (y is conformal for the
    square symmetric case)."""

    k: int
    #: length of x (the matrix's column count)
    m: int
    layouts: tuple[LocalVectorLayout, ...]

    def owner_of(self, j: int) -> int:
        """Rank owning global entry *j*."""
        for layout in self.layouts:
            pos = np.searchsorted(layout.owned, j)
            if pos < len(layout.owned) and layout.owned[pos] == j:
                return layout.rank
        raise KeyError(f"index {j} owned by nobody (invalid distribution)")

    def total_ghosts(self) -> int:
        """Total ghost entries — equals the expand communication volume."""
        return sum(len(layout.ghosts) for layout in self.layouts)


def build_vector_distribution(dec: Decomposition) -> VectorDistribution:
    """Derive the conformal x layout of every processor from *dec*.

    A rank's ghosts are exactly the x entries it needs for its local
    nonzeros but does not own, so ``total_ghosts()`` equals the expand
    volume counted by the simulator (asserted by the tests).
    """
    k = dec.k
    layouts = []
    for p in range(k):
        owned = np.flatnonzero(dec.x_owner == p).astype(INDEX_DTYPE)
        needed = np.unique(dec.nnz_col[dec.nnz_owner == p])
        ghosts = needed[dec.x_owner[needed] != p].astype(INDEX_DTYPE)
        layouts.append(LocalVectorLayout(rank=p, owned=owned, ghosts=ghosts))
    return VectorDistribution(k=k, m=dec.n, layouts=tuple(layouts))
