"""The paper's primary contribution: the 2D fine-grain hypergraph model.

* :mod:`~repro.core.finegrain` — build the fine-grain hypergraph of a
  sparse matrix (one vertex per nonzero, one net per row and per column,
  dummy diagonal vertices enforcing the consistency condition);
* :mod:`~repro.core.decomposition` — generic 2D decompositions (ownership
  of nonzeros and of x/y vector entries) plus the decode rule
  ``map[n_j] = map[m_j] = part[v_jj]``;
* :mod:`~repro.core.api` — one-call decomposition entry points for all
  three models compared in the paper;
* :mod:`~repro.core.render` — the Figure-1 style dependency view.
"""

from repro.core.finegrain import FineGrainModel, build_finegrain_model
from repro.core.decomposition import (
    Decomposition,
    decomposition_from_finegrain,
    decomposition_from_finegrain_rect,
    decomposition_from_row_partition,
    decomposition_from_col_partition,
)
from repro.core.api import (
    DecomposeResult,
    decompose,
    decompose_2d_finegrain,
    decompose_2d_rectangular,
    decompose_1d_columnnet,
    decompose_1d_rownet,
    decompose_1d_graph,
)

__all__ = [
    "FineGrainModel",
    "build_finegrain_model",
    "Decomposition",
    "decomposition_from_finegrain",
    "decomposition_from_finegrain_rect",
    "decomposition_from_row_partition",
    "decomposition_from_col_partition",
    "DecomposeResult",
    "decompose",
    "decompose_2d_finegrain",
    "decompose_2d_rectangular",
    "decompose_1d_columnnet",
    "decompose_1d_rownet",
    "decompose_1d_graph",
]
