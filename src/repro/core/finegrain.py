"""The fine-grain hypergraph model (§3 of the paper).

An ``M x M`` matrix **A** with ``Z`` nonzeros becomes a hypergraph with

* one **vertex** per nonzero ``a_ij`` — the atomic task computing the
  scalar product ``y_i^j = a_ij * x_j`` — with unit weight;
* one **row net** ``m_i`` per row, whose pins are the nonzeros of row *i*
  (the partial products folded into ``y_i``);
* one **column net** ``n_j`` per column, whose pins are the nonzeros of
  column *j* (the tasks that need ``x_j`` expanded to them).

Every vertex has exactly two nets (its row net and its column net).

**Consistency condition.**  The decode rule that keeps x/y distributions
symmetric assigns both ``x_j`` and ``y_j`` to the part of the diagonal
vertex ``v_jj``.  For zero diagonal entries a *dummy* vertex with weight 0
is added and pinned into both ``m_j`` and ``n_j`` (so ``Lambda[n_j]`` and
``Lambda[m_j]`` always intersect); zero weight keeps Eq. 1 untouched.

Net ordering inside the hypergraph: nets ``[0, M)`` are the row nets
``m_0..m_{M-1}``; nets ``[M, 2M)`` are the column nets ``n_0..n_{M-1}``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro._util import INDEX_DTYPE, prefix_from_counts
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["FineGrainModel", "build_finegrain_model"]


@dataclass(frozen=True)
class FineGrainModel:
    """The fine-grain hypergraph of a matrix plus the nonzero <-> vertex maps."""

    #: the hypergraph to partition (M + N nets: row nets first, then columns)
    hypergraph: Hypergraph
    #: number of rows M
    m: int
    #: number of real (stored) nonzeros Z; vertices [0, Z) are real,
    #: vertices [Z, Z + n_dummy) are zero-weight dummy diagonal vertices
    nnz: int
    #: row index of every vertex (length Z + n_dummy)
    vertex_row: np.ndarray
    #: column index of every vertex
    vertex_col: np.ndarray
    #: numeric value of every real vertex's nonzero (length Z)
    vertex_val: np.ndarray
    #: vertex id of v_jj for every j (real diagonal or dummy); for the
    #: rectangular consistency-free model, -1 where no diagonal cell exists
    diag_vertex: np.ndarray
    #: number of columns N (== m for the paper's square setting)
    n_cols: int = -1

    def __post_init__(self) -> None:
        if self.n_cols < 0:
            object.__setattr__(self, "n_cols", self.m)

    @property
    def n_dummy(self) -> int:
        """Number of dummy diagonal vertices added for consistency."""
        return self.hypergraph.num_vertices - self.nnz

    def row_net(self, i: int) -> int:
        """Net id of row net ``m_i``."""
        return i

    def col_net(self, j: int) -> int:
        """Net id of column net ``n_j``."""
        return self.m + j

    def is_dummy(self, v: int) -> bool:
        """Whether vertex *v* is a zero-weight dummy diagonal vertex."""
        return v >= self.nnz


def build_finegrain_model(
    a: sp.spmatrix, consistency: bool = True
) -> FineGrainModel:
    """Build the fine-grain hypergraph model of sparse matrix *a*.

    ``consistency=True`` (the paper's sparse-matrix setting; requires a
    square matrix) adds the dummy diagonal vertices for zero diagonal
    entries; ``False`` builds the bare model appropriate for reduction
    problems without the symmetric x/y-partitioning requirement (§3) —
    including rectangular matrices, where inputs and outputs differ in
    count and no symmetric distribution exists.

    Explicitly stored zeros are dropped first: they would create vertices
    with real weight but no numeric effect.
    """
    a = sp.csr_matrix(a)
    if consistency and a.shape[0] != a.shape[1]:
        raise ValueError(
            "the consistent fine-grain model requires a square matrix; "
            "use consistency=False for rectangular reductions"
        )
    a.eliminate_zeros()
    a.sort_indices()
    m, n = a.shape
    z = a.nnz

    coo = a.tocoo()
    vr = coo.row.astype(INDEX_DTYPE)
    vc = coo.col.astype(INDEX_DTYPE)
    vv = coo.data.astype(np.float64)

    diag_vertex = np.full(min(m, n), -1, dtype=INDEX_DTYPE)
    on_diag = vr == vc
    diag_vertex[vr[on_diag]] = np.flatnonzero(on_diag)

    if consistency:
        missing = np.flatnonzero(diag_vertex < 0)
        n_dummy = len(missing)
        diag_vertex[missing] = z + np.arange(n_dummy, dtype=INDEX_DTYPE)
        vr = np.concatenate([vr, missing])
        vc = np.concatenate([vc, missing])
    else:
        n_dummy = 0
    nv = z + n_dummy

    # row nets 0..M-1 then column nets M..M+N-1, built with counting sorts
    vertex_ids = np.arange(nv, dtype=INDEX_DTYPE)
    row_order = np.argsort(vr, kind="stable")
    col_order = np.argsort(vc, kind="stable")
    row_counts = np.bincount(vr, minlength=m)
    col_counts = np.bincount(vc, minlength=n)
    xpins = prefix_from_counts(np.concatenate([row_counts, col_counts]))
    pins = np.concatenate([vertex_ids[row_order], vertex_ids[col_order]])

    weights = np.ones(nv, dtype=INDEX_DTYPE)
    weights[z:] = 0  # dummies do not affect the balance model (Eq. 1)

    h = Hypergraph(
        nv,
        xpins,
        pins,
        vertex_weights=weights,
        net_costs=None,  # unit costs: each cut contributes lambda - 1 words
        validate=False,
    )
    return FineGrainModel(
        hypergraph=h,
        m=m,
        nnz=z,
        vertex_row=vr,
        vertex_col=vc,
        vertex_val=vv,
        diag_vertex=diag_vertex,
        n_cols=n,
    )
