"""One-call decomposition entry points for the models of the paper.

:func:`decompose` is the unified front door: one call, any model, one
result shape (:class:`DecomposeResult`) carrying the decomposition plus
normalized quality/runtime metadata — including per-start statistics when
the multi-start engine runs.  The per-model ``decompose_*`` functions
remain as thin wrappers returning the historical ``(Decomposition, info)``
pairs.

Every entry point accepts ``seed`` as ``int | numpy.random.Generator |
None``, normalized through one code path (:func:`repro._util.as_rng`), and
honours the multi-start engine knobs on :class:`PartitionerConfig`
(``n_starts``, ``n_workers``, ``early_stop_cut``).

The cutsize relationships the paper proves are directly checkable::

    res = decompose(a, 16, method="finegrain")
    stats = communication_stats(res.decomposition)
    assert stats.total_volume == res.cutsize       # Eq. 3 == words moved
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro._util import Timer, as_rng
from repro.core.decomposition import (
    Decomposition,
    decomposition_from_col_partition,
    decomposition_from_finegrain,
    decomposition_from_row_partition,
)
from repro.core.finegrain import build_finegrain_model
from repro.graph.partitioner import GraphPartitionResult, partition_graph
from repro.models.graph_model import build_standard_graph_model
from repro.models.onedim import build_columnnet_model, build_rownet_model
from repro.partitioner import (
    PartitionerConfig,
    PartitionResult,
    partition_multistart,
)
from repro.partitioner.config import _env_bool

__all__ = [
    "DecomposeResult",
    "decompose",
    "decompose_2d_finegrain",
    "decompose_2d_rectangular",
    "decompose_1d_columnnet",
    "decompose_1d_rownet",
    "decompose_1d_graph",
]


def decompose_2d_finegrain(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
    seed_1d: bool = False,
) -> tuple[Decomposition, PartitionResult]:
    """2D fine-grain decomposition (the paper's contribution).

    Builds the fine-grain hypergraph (dummy diagonal vertices included),
    partitions it into K equally weighted parts minimizing Eq. 3, and
    decodes the partition with ``map[n_j] = map[m_j] = part[v_jj]``.  The
    resulting decomposition's total communication volume equals the
    partition's cutsize exactly.

    ``seed_1d=True`` additionally computes a 1D column-net partition, maps
    it into the fine-grain solution space (every rowwise decomposition is
    one), and keeps whichever of {direct fine-grain, refined 1D seed}
    cuts less — guaranteeing the 2D result never loses to the 1D model on
    the same run (ablation A7; an extension beyond the paper).
    """
    from repro.hypergraph.partition import (
        cutsize_connectivity,
        cutsize_cutnet,
        imbalance,
    )
    from repro.partitioner.refine_kway import refine_partition

    rng = as_rng(seed)
    model = build_finegrain_model(a, consistency=True)
    res = partition_multistart(model.hypergraph, k, config=config, seed=rng)
    if seed_1d:
        with Timer("partition.seed1d") as t:
            one_d = build_columnnet_model(a, consistency=True)
            row_res = partition_multistart(one_d.hypergraph, k, config=config, seed=rng)
            seeded = row_res.part[model.vertex_row]  # rowwise point in 2D space
            seeded = refine_partition(
                model.hypergraph, seeded, k, config=config, seed=rng
            )
            cut = cutsize_connectivity(model.hypergraph, seeded)
        if cut < res.cutsize:
            res = PartitionResult(
                part=seeded,
                k=k,
                cutsize=cut,
                cutsize_cutnet=cutsize_cutnet(model.hypergraph, seeded),
                imbalance=imbalance(model.hypergraph, seeded, k),
                runtime=res.runtime + t.elapsed,
                bisection_cuts=[],
            )
    dec = decomposition_from_finegrain(model, res.part, k)
    return dec, res


def decompose_2d_rectangular(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[Decomposition, PartitionResult]:
    """Fine-grain decomposition of a (possibly rectangular) matrix.

    The consistency-free variant of §3: no symmetric x/y distribution is
    required (inputs and outputs of the reduction are distinct element
    sets), so the bare fine-grain hypergraph is already exact.  Vector
    entries are assigned to the majority part of their net, keeping the
    decomposition's volume at the partition's cutsize.
    """
    from repro.core.decomposition import decomposition_from_finegrain_rect

    model = build_finegrain_model(a, consistency=False)
    res = partition_multistart(model.hypergraph, k, config=config, seed=as_rng(seed))
    dec = decomposition_from_finegrain_rect(model, res.part, k)
    return dec, res


def decompose_1d_columnnet(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[Decomposition, PartitionResult]:
    """1D rowwise decomposition via the column-net hypergraph model
    (the paper's "1D Hypergraph Model" baseline, TPDS 1999)."""
    model = build_columnnet_model(a, consistency=True)
    res = partition_multistart(model.hypergraph, k, config=config, seed=as_rng(seed))
    dec = decomposition_from_row_partition(a, res.part, k)
    return dec, res


def decompose_1d_rownet(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[Decomposition, PartitionResult]:
    """1D columnwise decomposition via the row-net hypergraph model."""
    model = build_rownet_model(a, consistency=True)
    res = partition_multistart(model.hypergraph, k, config=config, seed=as_rng(seed))
    dec = decomposition_from_col_partition(a, res.part, k)
    return dec, res


def decompose_1d_graph(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[Decomposition, GraphPartitionResult]:
    """1D rowwise decomposition via the standard graph model (the paper's
    MeTiS baseline)."""
    model = build_standard_graph_model(a)
    res = partition_graph(model.graph, k, config=config, seed=as_rng(seed))
    dec = decomposition_from_row_partition(a, res.part, k)
    return dec, res


# ----------------------------------------------------------------------
# unified front door
# ----------------------------------------------------------------------

#: method name -> per-model wrapper, in documentation order
_METHODS = {
    "finegrain": decompose_2d_finegrain,
    "columnnet": decompose_1d_columnnet,
    "rownet": decompose_1d_rownet,
    "graph": decompose_1d_graph,
    "finegrain-rect": decompose_2d_rectangular,
}


@dataclass
class DecomposeResult:
    """Uniform outcome of :func:`decompose`, whatever the method.

    Normalizes the historical ``PartitionResult`` /
    ``GraphPartitionResult`` shape differences: ``cutsize`` is always the
    partitioner's objective value (connectivity-1 cutsize for the
    hypergraph models, edge cut for the graph model), and the raw result
    object stays available as :attr:`info`.
    """

    #: method name the decomposition was produced with
    method: str
    #: number of parts
    k: int
    #: the matrix decomposition (ownership arrays)
    decomposition: Decomposition
    #: part id per model vertex
    part: np.ndarray
    #: partitioner objective value (Eq. 3 cutsize, or edge cut for "graph")
    cutsize: int
    #: achieved imbalance ratio
    imbalance: float
    #: total wall-clock seconds (model build + partitioning + decode)
    runtime: float
    #: per-start engine statistics (empty unless ``n_starts > 1``)
    start_stats: list = field(default_factory=list)
    #: True when the engine stopped early under a resilience policy (a
    #: ``deadline`` expired before every start ran); the decomposition is
    #: still valid — just not the full best-of-N
    degraded: bool = False
    #: human-readable reason when ``degraded``
    degraded_reason: str | None = None
    #: the underlying partitioner result object
    info: PartitionResult | GraphPartitionResult | None = None
    #: oracle audit of this result (``decompose(..., verify=True)`` or
    #: ``REPRO_VERIFY=1``); ``None`` when verification did not run
    verification: object | None = None
    #: content-addressed identity of the request that produced this result
    #: (:func:`repro.fingerprint` over instance + bit-shaping config +
    #: seed + k + method) — the key the serving cache, checkpoints and
    #: clients share
    fingerprint: str | None = None

    def summary(self) -> str:
        """One-line human-readable summary."""
        starts = f" starts={len(self.start_stats)}" if self.start_stats else ""
        tail = " [degraded]" if self.degraded else ""
        return (
            f"method={self.method} K={self.k} cutsize={self.cutsize} "
            f"imbalance={100 * self.imbalance:.2f}%{starts} "
            f"time={self.runtime:.2f}s{tail}"
        )


def decompose(
    a: sp.spmatrix,
    k: int,
    method: str = "finegrain",
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
    n_starts: int | None = None,
    n_workers: int | None = None,
    early_stop_cut: int | None = None,
    tree_parallel: bool | None = None,
    deadline: float | None = None,
    checkpoint_path: str | None = None,
    max_retries: int | None = None,
    kernel: str | None = None,
    verify: bool | None = None,
    **method_kwargs,
) -> DecomposeResult:
    """Decompose sparse matrix *a* over *k* processors with any model.

    Parameters
    ----------
    method:
        ``"finegrain"`` (the paper's 2D model), ``"columnnet"`` /
        ``"rownet"`` (the 1D hypergraph baselines), ``"graph"`` (the
        MeTiS-style baseline) or ``"finegrain-rect"`` (consistency-free
        fine-grain for rectangular matrices).
    config:
        Partitioner tuning knobs; defaults to :class:`PartitionerConfig`.
    seed:
        ``int | numpy.random.Generator | None``, normalized via
        :func:`repro._util.as_rng`.
    n_starts, n_workers, early_stop_cut, tree_parallel:
        Convenience overrides for the execution-model fields of *config*
        (ignored by the ``"graph"`` method, whose partitioner has no
        engine).  ``n_workers`` is the one shared budget: starts and
        tree-parallel subtrees together never occupy more workers than
        this.
    deadline, checkpoint_path, max_retries:
        Convenience overrides for the resilience fields of *config* (see
        :mod:`repro.partitioner.resilience`): a graceful wall-clock
        budget in seconds (the best completed start is returned with
        ``result.degraded`` set when it expires — never an exception once
        one start finished), a crash-resumable sweep checkpoint path, and
        the per-start retry budget.
    kernel:
        Convenience override for the refinement/matching implementation
        tier (``"python" | "flat" | "jit" | "auto"``; see
        :func:`repro.kernels`).  Every tier is bit-identical; an
        unavailable tier falls back ``jit -> flat -> python``.
    verify:
        Audit the result with the independent oracles of
        :mod:`repro.verify` before returning (balance, cutsize,
        consistency condition, Eq. 3 volume equivalence) and raise
        :class:`repro.verify.VerificationError` on any failure.  The
        report is attached as ``result.verification``.  Defaults to the
        ``REPRO_VERIFY`` environment variable (off).
    method_kwargs:
        Extra per-method options (e.g. ``seed_1d=True`` for
        ``"finegrain"``).

    >>> import scipy.sparse as sp
    >>> a = sp.random(60, 60, density=0.1, format="csr", random_state=0)
    >>> res = decompose(a, 4, method="finegrain", seed=0)
    >>> res.k, res.part.shape[0] == res.decomposition.nnz_owner.shape[0] or True
    (4, True)
    """
    if method not in _METHODS:
        raise KeyError(
            f"unknown method {method!r}; choose from {sorted(_METHODS)}"
        )
    cfg = config or PartitionerConfig()
    overrides = {
        name: value
        for name, value in (
            ("n_starts", n_starts),
            ("n_workers", n_workers),
            ("early_stop_cut", early_stop_cut),
            ("tree_parallel", tree_parallel),
            ("deadline", deadline),
            ("checkpoint_path", checkpoint_path),
            ("max_retries", max_retries),
            ("kernel", kernel),
        )
        if value is not None
    }
    if overrides:
        cfg = cfg.with_(**overrides)
    # normalize the seed here (as_rng passes generators through unchanged,
    # so the method wrappers see the exact same stream) and fingerprint
    # the request from the pristine RNG state, before any draws
    from repro.fingerprint import fingerprint as _fingerprint

    rng = as_rng(seed)
    fp = _fingerprint(
        a, cfg, rng, k=k, method=method,
        extra=method_kwargs if method_kwargs else None,
    )
    with Timer() as t:
        dec, info = _METHODS[method](a, k, config=cfg, seed=rng, **method_kwargs)
    cutsize = info.cutsize if hasattr(info, "cutsize") else info.edge_cut
    res = DecomposeResult(
        method=method,
        k=k,
        decomposition=dec,
        part=info.part,
        cutsize=int(cutsize),
        imbalance=float(info.imbalance),
        runtime=t.elapsed,
        start_stats=list(getattr(info, "start_stats", [])),
        degraded=bool(getattr(info, "degraded", False)),
        degraded_reason=getattr(info, "degraded_reason", None),
        info=info,
        fingerprint=fp,
    )
    if verify is None:
        verify = _env_bool("REPRO_VERIFY", False)
    if verify:
        from repro.verify import verify_decompose

        res.verification = verify_decompose(a, res, epsilon=cfg.epsilon)
        res.verification.raise_if_failed()
    return res
