"""One-call decomposition entry points for the three models of the paper.

Each function takes a square sparse matrix and K and returns a
``(Decomposition, info)`` pair, where ``info`` carries the partitioner's
result object (cutsize, imbalance, runtime).  The cutsize relationships the
paper proves are then directly checkable::

    dec, info = decompose_2d_finegrain(a, 16)
    stats = communication_stats(dec)
    assert stats.total_volume == info.cutsize      # Eq. 3 == words moved
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro._util import as_rng
from repro.core.decomposition import (
    Decomposition,
    decomposition_from_col_partition,
    decomposition_from_finegrain,
    decomposition_from_row_partition,
)
from repro.core.finegrain import build_finegrain_model
from repro.graph.partitioner import GraphPartitionResult, partition_graph
from repro.models.graph_model import build_standard_graph_model
from repro.models.onedim import build_columnnet_model, build_rownet_model
from repro.partitioner import PartitionerConfig, PartitionResult, partition_hypergraph

__all__ = [
    "decompose_2d_finegrain",
    "decompose_1d_columnnet",
    "decompose_1d_rownet",
    "decompose_1d_graph",
]


def decompose_2d_finegrain(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
    seed_1d: bool = False,
) -> tuple[Decomposition, PartitionResult]:
    """2D fine-grain decomposition (the paper's contribution).

    Builds the fine-grain hypergraph (dummy diagonal vertices included),
    partitions it into K equally weighted parts minimizing Eq. 3, and
    decodes the partition with ``map[n_j] = map[m_j] = part[v_jj]``.  The
    resulting decomposition's total communication volume equals the
    partition's cutsize exactly.

    ``seed_1d=True`` additionally computes a 1D column-net partition, maps
    it into the fine-grain solution space (every rowwise decomposition is
    one), and keeps whichever of {direct fine-grain, refined 1D seed}
    cuts less — guaranteeing the 2D result never loses to the 1D model on
    the same run (ablation A7; an extension beyond the paper).
    """
    from repro._util import Timer
    from repro.hypergraph.partition import (
        cutsize_connectivity,
        cutsize_cutnet,
        imbalance,
    )
    from repro.partitioner.refine_kway import refine_partition

    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    model = build_finegrain_model(a, consistency=True)
    res = partition_hypergraph(model.hypergraph, k, config=config, seed=rng)
    if seed_1d:
        with Timer("partition.seed1d") as t:
            one_d = build_columnnet_model(a, consistency=True)
            row_res = partition_hypergraph(one_d.hypergraph, k, config=config, seed=rng)
            seeded = row_res.part[model.vertex_row]  # rowwise point in 2D space
            seeded = refine_partition(
                model.hypergraph, seeded, k, config=config, seed=rng
            )
            cut = cutsize_connectivity(model.hypergraph, seeded)
        if cut < res.cutsize:
            res = PartitionResult(
                part=seeded,
                k=k,
                cutsize=cut,
                cutsize_cutnet=cutsize_cutnet(model.hypergraph, seeded),
                imbalance=imbalance(model.hypergraph, seeded, k),
                runtime=res.runtime + t.elapsed,
                bisection_cuts=[],
            )
    dec = decomposition_from_finegrain(model, res.part, k)
    return dec, res


def decompose_2d_rectangular(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[Decomposition, PartitionResult]:
    """Fine-grain decomposition of a (possibly rectangular) matrix.

    The consistency-free variant of §3: no symmetric x/y distribution is
    required (inputs and outputs of the reduction are distinct element
    sets), so the bare fine-grain hypergraph is already exact.  Vector
    entries are assigned to the majority part of their net, keeping the
    decomposition's volume at the partition's cutsize.
    """
    from repro.core.decomposition import decomposition_from_finegrain_rect

    model = build_finegrain_model(a, consistency=False)
    res = partition_hypergraph(model.hypergraph, k, config=config, seed=seed)
    dec = decomposition_from_finegrain_rect(model, res.part, k)
    return dec, res


def decompose_1d_columnnet(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[Decomposition, PartitionResult]:
    """1D rowwise decomposition via the column-net hypergraph model
    (the paper's "1D Hypergraph Model" baseline, TPDS 1999)."""
    model = build_columnnet_model(a, consistency=True)
    res = partition_hypergraph(model.hypergraph, k, config=config, seed=seed)
    dec = decomposition_from_row_partition(a, res.part, k)
    return dec, res


def decompose_1d_rownet(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[Decomposition, PartitionResult]:
    """1D columnwise decomposition via the row-net hypergraph model."""
    model = build_rownet_model(a, consistency=True)
    res = partition_hypergraph(model.hypergraph, k, config=config, seed=seed)
    dec = decomposition_from_col_partition(a, res.part, k)
    return dec, res


def decompose_1d_graph(
    a: sp.spmatrix,
    k: int,
    config: PartitionerConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[Decomposition, GraphPartitionResult]:
    """1D rowwise decomposition via the standard graph model (the paper's
    MeTiS baseline)."""
    model = build_standard_graph_model(a)
    res = partition_graph(model.graph, k, config=config, seed=seed)
    dec = decomposition_from_row_partition(a, res.part, k)
    return dec, res
