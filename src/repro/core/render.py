"""Text rendering of the fine-grain dependency relation (Figure 1).

Figure 1 of the paper illustrates how a column net gathers the scalar
multiplications that need one ``x_j`` and a row net gathers the partial
results folded into one ``y_i``.  :func:`render_dependency_view` draws the
same picture for any (small) matrix as plain text, and
:func:`render_partitioned_matrix` shows a decomposition as a processor grid
over the nonzero pattern — both used by the example scripts.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.decomposition import Decomposition
from repro.core.finegrain import FineGrainModel

__all__ = ["render_dependency_view", "render_partitioned_matrix"]


def render_dependency_view(model: FineGrainModel, row: int, col: int) -> str:
    """Describe row net ``m_row`` and column net ``n_col`` (Figure-1 view).

    Lists the atomic tasks (vertices) each net connects and the expand/fold
    operation it models, e.g.::

        column-net n_2 (expand of x_2, 3 pins):
          v_02: y_0^2 = a_02 * x_2
          ...
    """
    h = model.hypergraph
    m = model.m
    if not (0 <= row < m and 0 <= col < m):
        raise ValueError("row/col out of range")
    lines: list[str] = []

    pins = h.pins_of(model.col_net(col))
    lines.append(f"column-net n_{col} (expand of x_{col}, {len(pins)} pins):")
    for v in pins:
        i = int(model.vertex_row[v])
        tag = " (dummy)" if model.is_dummy(int(v)) else ""
        lines.append(f"  v_{i}{col}: y_{i}^{col} = a_{i}{col} * x_{col}{tag}")

    pins = h.pins_of(model.row_net(row))
    lines.append(f"row-net m_{row} (fold of y_{row}, {len(pins)} pins):")
    terms = []
    for v in pins:
        j = int(model.vertex_col[v])
        tag = " (dummy)" if model.is_dummy(int(v)) else ""
        lines.append(f"  v_{row}{j}: y_{row}^{j} = a_{row}{j} * x_{j}{tag}")
        terms.append(f"y_{row}^{j}")
    lines.append(f"  fold: y_{row} = " + " + ".join(terms))
    return "\n".join(lines)


def render_partitioned_matrix(dec: Decomposition, max_size: int = 64) -> str:
    """ASCII map of nonzero ownership: digit/letter = owning processor.

    ``.`` marks structural zeros.  Only matrices up to ``max_size`` are
    rendered (the picture is useless beyond terminal width).
    """
    if dec.m > max_size:
        raise ValueError(f"matrix too large to render (> {max_size})")
    symbols = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    if dec.k > len(symbols):
        raise ValueError("too many parts to render")
    grid = np.full((dec.m, dec.m), ".", dtype="<U1")
    for r, c, p in zip(dec.nnz_row, dec.nnz_col, dec.nnz_owner):
        grid[int(r), int(c)] = symbols[int(p)]
    rows = ["".join(grid[i]) for i in range(dec.m)]
    legend = (
        "x owner: "
        + "".join(symbols[int(p)] for p in dec.x_owner)
        + "\ny owner: "
        + "".join(symbols[int(p)] for p in dec.y_owner)
    )
    return "\n".join(rows) + "\n" + legend
