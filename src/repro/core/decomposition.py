"""Decompositions of a sparse matrix for parallel y = A x.

A :class:`Decomposition` records who owns what on K virtual processors:

* ``nnz_owner[e]`` — processor computing the scalar product of the *e*-th
  stored nonzero (entries ordered as in the matrix's COO form, row-major);
* ``x_owner[j]`` — processor holding ``x_j`` (expand source);
* ``y_owner[i]`` — processor accumulating ``y_i`` (fold destination).

The three models of the paper all produce this one representation:

* **2D fine-grain**: nonzeros are partitioned directly; the decode rule of
  §3 assigns ``x_j`` and ``y_j`` to ``part[v_jj]`` (always well-defined via
  the consistency condition);
* **1D rowwise** (graph model, column-net hypergraph model): a row partition
  owns every nonzero of its rows, and ``x``/``y`` conformally;
* **1D columnwise** (row-net hypergraph model): dually.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro._util import INDEX_DTYPE, ensure_int_array
from repro.core.finegrain import FineGrainModel

__all__ = [
    "Decomposition",
    "decomposition_from_finegrain",
    "decomposition_from_finegrain_rect",
    "decomposition_from_row_partition",
    "decomposition_from_col_partition",
]


@dataclass(frozen=True)
class Decomposition:
    """Ownership maps of a K-way 2D decomposition (see module docstring).

    ``m`` is the number of rows (length of y); ``n`` the number of columns
    (length of x), defaulting to ``m`` for the paper's square setting.
    Rectangular decompositions arise from the general reduction problems of
    §3, where inputs and outputs differ in count and no symmetric
    distribution exists.
    """

    k: int
    m: int
    #: COO coordinates of the stored nonzeros (row-major order)
    nnz_row: np.ndarray
    nnz_col: np.ndarray
    nnz_val: np.ndarray
    nnz_owner: np.ndarray
    x_owner: np.ndarray
    y_owner: np.ndarray
    #: number of columns; None (default) means square (n = m)
    n: int | None = None

    def __post_init__(self) -> None:
        if self.n is None:
            object.__setattr__(self, "n", self.m)
        for name in ("nnz_owner", "x_owner", "y_owner"):
            arr = getattr(self, name)
            if len(arr) and (arr.min() < 0 or arr.max() >= self.k):
                raise ValueError(f"{name} contains ids outside [0, {self.k})")
        if not (len(self.nnz_row) == len(self.nnz_col) == len(self.nnz_val) == len(self.nnz_owner)):
            raise ValueError("nonzero arrays must have equal length")
        if len(self.x_owner) != self.n:
            raise ValueError("x_owner must have length n (columns)")
        if len(self.y_owner) != self.m:
            raise ValueError("y_owner must have length m (rows)")

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return len(self.nnz_row)

    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape ``(rows, cols)``."""
        return (self.m, self.n)

    def computational_loads(self) -> np.ndarray:
        """Scalar multiplications per processor (the Eq. 1 load)."""
        return np.bincount(self.nnz_owner, minlength=self.k).astype(INDEX_DTYPE)

    def load_imbalance(self) -> float:
        """``(W_max - W_avg) / W_avg`` of the computational loads."""
        loads = self.computational_loads()
        avg = self.nnz / self.k
        if avg == 0:
            return 0.0
        return float((loads.max() - avg) / avg)

    def is_symmetric(self) -> bool:
        """Whether x and y are partitioned conformally (paper requirement;
        only possible for square matrices)."""
        return self.m == self.n and bool(
            np.array_equal(self.x_owner, self.y_owner)
        )

    def matrix(self) -> sp.csr_matrix:
        """Reassemble the decomposed matrix."""
        return sp.csr_matrix(
            (self.nnz_val, (self.nnz_row, self.nnz_col)), shape=self.shape
        )

    def local_matrix(self, p: int) -> sp.csr_matrix:
        """The nonzeros owned by processor *p*, as a full-shape matrix."""
        sel = self.nnz_owner == p
        return sp.csr_matrix(
            (self.nnz_val[sel], (self.nnz_row[sel], self.nnz_col[sel])),
            shape=self.shape,
        )


def decomposition_from_finegrain(
    model: FineGrainModel, part: np.ndarray, k: int
) -> Decomposition:
    """Decode a fine-grain hypergraph partition into a 2D decomposition.

    Implements the paper's decode: ``map[n_j] = map[m_j] = part[v_jj]`` —
    both ``x_j`` and ``y_j`` live with the diagonal vertex, which the
    consistency condition guarantees shares a part with pins of both nets.
    """
    part = ensure_int_array(part, "part")
    if len(part) != model.hypergraph.num_vertices:
        raise ValueError("part vector length mismatch")
    z = model.nnz
    vec_owner = part[model.diag_vertex]
    return Decomposition(
        k=k,
        m=model.m,
        nnz_row=model.vertex_row[:z].copy(),
        nnz_col=model.vertex_col[:z].copy(),
        nnz_val=model.vertex_val.copy(),
        nnz_owner=part[:z].copy(),
        x_owner=vec_owner.copy(),
        y_owner=vec_owner.copy(),
    )


def decomposition_from_finegrain_rect(
    model: FineGrainModel, part: np.ndarray, k: int
) -> Decomposition:
    """Decode a consistency-free (possibly rectangular) fine-grain partition.

    Without the symmetric-distribution requirement, §3 observes the model
    is already exact when every vector entry is assigned to *any* part in
    its net's connectivity set: ``x_j`` to some part of ``Lambda[n_j]``
    (expand volume = lambda - 1), ``y_i`` to some part of ``Lambda[m_i]``.
    We pick the part holding the most pins of the net (deterministic:
    lowest rank on ties); entries of empty rows/columns go to rank 0.
    """
    part = ensure_int_array(part, "part")
    if len(part) != model.hypergraph.num_vertices:
        raise ValueError("part vector length mismatch")
    z = model.nnz
    h = model.hypergraph
    m, n = model.m, model.n_cols

    def majority_owner(net_id: int) -> int:
        pins = h.pins_of(net_id)
        if len(pins) == 0:
            return 0
        counts = np.bincount(part[pins], minlength=k)
        return int(np.argmax(counts))

    y_owner = np.fromiter(
        (majority_owner(model.row_net(i)) for i in range(m)),
        dtype=INDEX_DTYPE, count=m,
    )
    x_owner = np.fromiter(
        (majority_owner(model.col_net(j)) for j in range(n)),
        dtype=INDEX_DTYPE, count=n,
    )
    return Decomposition(
        k=k,
        m=m,
        n=n,
        nnz_row=model.vertex_row[:z].copy(),
        nnz_col=model.vertex_col[:z].copy(),
        nnz_val=model.vertex_val.copy(),
        nnz_owner=part[:z].copy(),
        x_owner=x_owner,
        y_owner=y_owner,
    )


def _coo_arrays(a: sp.spmatrix):
    a = sp.csr_matrix(a)
    a.eliminate_zeros()
    a.sort_indices()
    coo = a.tocoo()
    return (
        coo.row.astype(INDEX_DTYPE),
        coo.col.astype(INDEX_DTYPE),
        coo.data.astype(np.float64),
        a.shape[0],
    )


def decomposition_from_row_partition(
    a: sp.spmatrix, row_part: np.ndarray, k: int
) -> Decomposition:
    """1D rowwise decomposition: processor ``row_part[i]`` owns row *i*,
    ``y_i`` and (conformally) ``x_i``."""
    row, col, val, m = _coo_arrays(a)
    row_part = ensure_int_array(row_part, "row_part")
    if len(row_part) != m:
        raise ValueError("row_part must have one entry per row")
    return Decomposition(
        k=k,
        m=m,
        nnz_row=row,
        nnz_col=col,
        nnz_val=val,
        nnz_owner=row_part[row],
        x_owner=row_part.copy(),
        y_owner=row_part.copy(),
    )


def decomposition_from_col_partition(
    a: sp.spmatrix, col_part: np.ndarray, k: int
) -> Decomposition:
    """1D columnwise decomposition: processor ``col_part[j]`` owns column
    *j*, ``x_j`` and (conformally) ``y_j``."""
    row, col, val, m = _coo_arrays(a)
    col_part = ensure_int_array(col_part, "col_part")
    if len(col_part) != m:
        raise ValueError("col_part must have one entry per column")
    return Decomposition(
        k=k,
        m=m,
        nnz_row=row,
        nnz_col=col,
        nnz_val=val,
        nnz_owner=col_part[col],
        x_owner=col_part.copy(),
        y_owner=col_part.copy(),
    )
