"""Differential replay: one seed, every execution path, diffed bit-by-bit.

PRs 2–3 added three orthogonal execution knobs — the multi-start backend
(serial/thread/process), the tree-parallel recursion, and the shm
transport — and PR 7 added a fourth, the refinement/matching kernel tier
(python/flat/jit) — each promising not to change a single output bit.
This module
replays one ``decompose()`` call across the whole grid and diffs the
results stage by stage, reporting the *first* divergent stage per variant:

1. ``bisection_cuts`` — the per-bisection cut sequence (depth-first order),
   the earliest observable signal of a divergent RNG stream;
2. ``cutsize`` — the final Eq. 3 objective;
3. ``part`` — SHA-256 of the partition vector;
4. ``decomposition`` — SHA-256 of the three ownership arrays;
5. ``counters`` — backend-independent telemetry totals.

Bit-identity is only promised *within* a determinism universe:
``tree_parallel=False`` (the legacy sequential RNG stream) and
``tree_parallel=True`` (the seed tree) are different deterministic
universes by design, so runs are grouped by universe and each group is
diffed against its own serial reference — never across groups.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.partitioner.config import PartitionerConfig
from repro.telemetry import use_recorder

__all__ = [
    "ReplayVariant",
    "ReplayRun",
    "ReplayDivergence",
    "ReplayReport",
    "default_variants",
    "replay_decompose",
    "write_replay_report",
]

#: telemetry counters whose totals must not depend on the backend (spans
#: recorded inside process-pool workers are lost, so most counters are
#: legitimately backend-dependent; these are recorded by the parent)
STABLE_COUNTERS = ("engine.starts", "engine.best_cut", "engine.cut_spread")

#: the comparison stages, in diff order
STAGES = ("bisection_cuts", "cutsize", "part", "decomposition", "counters")


@dataclass(frozen=True)
class ReplayVariant:
    """One point of the execution grid."""

    label: str
    backend: str  # start_backend: "serial" | "thread" | "process"
    shm: bool
    tree_parallel: bool
    kernel: str = "python"  # refinement/matching tier, bit-identical by contract
    kway: bool = False  # enable the K-way boundary refinement pass

    @property
    def universe(self) -> str:
        """Determinism universe this variant must be bit-identical within.

        The kernel tier is deliberately *not* part of the universe: every
        tier promises the same bits, so kernel variants are diffed against
        the python reference of their universe rather than forming their
        own group.  ``kway`` *is* part of the universe — the extra
        refinement pass legitimately changes the partition — so the
        K-way kernel tiers diff against a python+kway reference.
        """
        base = "tree" if self.tree_parallel else "legacy"
        return base + "+kway" if self.kway else base


@dataclass
class ReplayRun:
    """Observed outcome of one variant."""

    label: str
    backend: str
    shm: bool
    tree_parallel: bool
    universe: str
    kernel: str = "python"
    kway: bool = False
    cutsize: int | None = None
    imbalance: float | None = None
    part_sha: str | None = None
    bisection_cuts: list = field(default_factory=list)
    dec_sha: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    runtime: float | None = None
    error: str | None = None


@dataclass(frozen=True)
class ReplayDivergence:
    """First stage at which a variant's output differs from its reference."""

    label: str
    reference: str
    stage: str  # one of STAGES, or "error"
    detail: str


@dataclass
class ReplayReport:
    """Everything one replay observed, plus the verdict."""

    matrix: str
    method: str
    k: int
    seed: int
    n_starts: int
    n_workers: int
    runs: list = field(default_factory=list)
    divergences: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Bit-identity held across every variant of every universe."""
        return not self.divergences

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"replay {self.matrix} method={self.method} k={self.k} "
            f"seed={self.seed} starts={self.n_starts} workers={self.n_workers}: "
            + ("bit-identical" if self.passed else "DIVERGED")
        ]
        for r in self.runs:
            state = f"cut={r.cutsize} sha={r.part_sha[:12]}" if not r.error else f"ERROR: {r.error}"
            lines.append(f"  [{r.universe:>6}] {r.label:<24} {state}")
        for d in self.divergences:
            lines.append(
                f"  DIVERGENCE {d.label} vs {d.reference} at stage "
                f"{d.stage!r}: {d.detail}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly form."""
        return {
            "matrix": self.matrix,
            "method": self.method,
            "k": self.k,
            "seed": self.seed,
            "n_starts": self.n_starts,
            "n_workers": self.n_workers,
            "passed": self.passed,
            "runs": [asdict(r) for r in self.runs],
            "divergences": [asdict(d) for d in self.divergences],
        }


def default_variants() -> list[ReplayVariant]:
    """The full grid: backends × shm × tree, plus the kernel universe.

    ``shm`` only matters for the process backend, so the pickle/shm pair is
    enumerated there only; the serial variant of each universe is the
    reference the others are diffed against.  The kernel tiers (flat, jit)
    ride on the serial backend of each universe — they promise the same
    bits as the python reference, and an unavailable tier falls back
    (jit -> flat -> python), which must itself be bit-identical.  The
    kernel axis now spans every V-cycle phase (matching, coarse build,
    initial GHG, FM, K-way), so the serial+flat variant exercises all of
    them at once; a separate ``+kway`` universe turns on the K-way
    boundary refinement pass (which legitimately changes the partition)
    and diffs its flat sweep against a python+kway reference.
    """
    out: list[ReplayVariant] = []
    for tree in (False, True):
        suffix = "+tree" if tree else ""
        out.append(ReplayVariant(f"serial{suffix}", "serial", False, tree))
        out.append(ReplayVariant(f"thread{suffix}", "thread", False, tree))
        out.append(ReplayVariant(f"process{suffix}", "process", False, tree))
        out.append(ReplayVariant(f"process+shm{suffix}", "process", True, tree))
        for kern in ("flat", "jit"):
            out.append(
                ReplayVariant(
                    f"serial+{kern}{suffix}", "serial", False, tree, kernel=kern
                )
            )
    # the K-way universe: legacy serial only — one reference plus the
    # non-reference tiers driving the K-way flat sweep
    out.append(
        ReplayVariant("serial+kway", "serial", False, False, kway=True)
    )
    for kern in ("flat", "jit"):
        out.append(
            ReplayVariant(
                f"serial+{kern}+kway", "serial", False, False,
                kernel=kern, kway=True,
            )
        )
    return out


def _sha(arr: np.ndarray) -> str:
    return hashlib.sha256(np.asarray(arr, dtype=np.int64).tobytes()).hexdigest()


def _first_divergence(run: ReplayRun, ref: ReplayRun) -> ReplayDivergence | None:
    """Compare *run* to its universe reference, stage by stage."""
    if run.bisection_cuts != ref.bisection_cuts:
        pairs = [
            (i, a, b)
            for i, (a, b) in enumerate(zip(run.bisection_cuts, ref.bisection_cuts))
            if a != b
        ]
        where = (
            f"first at bisection {pairs[0][0]}: {pairs[0][1]} != {pairs[0][2]}"
            if pairs
            else f"lengths {len(run.bisection_cuts)} != {len(ref.bisection_cuts)}"
        )
        return ReplayDivergence(run.label, ref.label, "bisection_cuts", where)
    if run.cutsize != ref.cutsize:
        return ReplayDivergence(
            run.label, ref.label, "cutsize", f"{run.cutsize} != {ref.cutsize}"
        )
    if run.part_sha != ref.part_sha:
        return ReplayDivergence(
            run.label, ref.label, "part", "partition bits differ"
        )
    if run.dec_sha != ref.dec_sha:
        keys = [key for key in ref.dec_sha if run.dec_sha.get(key) != ref.dec_sha[key]]
        return ReplayDivergence(
            run.label, ref.label, "decomposition", f"ownership differs: {keys}"
        )
    diff = {
        name: (run.counters.get(name), ref.counters.get(name))
        for name in STABLE_COUNTERS
        if run.counters.get(name) != ref.counters.get(name)
    }
    if diff:
        return ReplayDivergence(
            run.label, ref.label, "counters", f"stable counters differ: {diff}"
        )
    return None


def replay_decompose(
    a,
    k: int,
    method: str = "finegrain",
    seed: int = 0,
    n_starts: int = 2,
    n_workers: int = 2,
    epsilon: float = 0.03,
    variants: list[ReplayVariant] | None = None,
    config: PartitionerConfig | None = None,
    matrix_label: str = "matrix",
) -> ReplayReport:
    """Run one decompose across the execution grid and diff the outputs.

    Every variant runs with the same *seed* and ``early_stop_cut`` left
    off (early stop deliberately trades run-set determinism for time, so
    it is excluded from the bit-identity contract).  Failures to run a
    variant (e.g. no process pools in a sandbox) are recorded as
    ``error`` divergences rather than crashing the replay.
    """
    from repro.core.api import decompose  # deferred: replay -> api -> engine

    variants = variants if variants is not None else default_variants()
    base = config or PartitionerConfig(epsilon=epsilon)
    report = ReplayReport(
        matrix=matrix_label,
        method=method,
        k=k,
        seed=seed,
        n_starts=n_starts,
        n_workers=n_workers,
    )

    for v in variants:
        cfg = base.with_(
            n_starts=n_starts,
            n_workers=n_workers,
            start_backend=v.backend,
            shm_transport=v.shm,
            tree_parallel=v.tree_parallel,
            early_stop_cut=None,
            kernel=v.kernel,
            kway_refine=v.kway,
        )
        run = ReplayRun(
            label=v.label,
            backend=v.backend,
            shm=v.shm,
            tree_parallel=v.tree_parallel,
            universe=v.universe,
            kernel=v.kernel,
            kway=v.kway,
        )
        try:
            with use_recorder() as rec:
                res = decompose(a, k, method=method, config=cfg, seed=seed)
            run.cutsize = int(res.cutsize)
            run.imbalance = float(res.imbalance)
            run.part_sha = _sha(res.part)
            run.bisection_cuts = [
                int(c) for c in getattr(res.info, "bisection_cuts", [])
            ]
            dec = res.decomposition
            run.dec_sha = {
                "nnz_owner": _sha(dec.nnz_owner),
                "x_owner": _sha(dec.x_owner),
                "y_owner": _sha(dec.y_owner),
            }
            run.runtime = float(res.runtime)
            totals = rec.counter_totals()
            run.counters = {name: int(totals[name]) for name in sorted(totals)}
        except Exception as exc:  # record, don't crash the replay
            run.error = f"{type(exc).__name__}: {exc}"
        report.runs.append(run)

    # diff each universe against its own serial reference
    for universe in sorted({r.universe for r in report.runs}):
        group = [r for r in report.runs if r.universe == universe]
        if not group:
            continue
        ref = next((r for r in group if r.error is None), None)
        for run in group:
            if run.error is not None:
                report.divergences.append(
                    ReplayDivergence(run.label, "-", "error", run.error)
                )
                continue
            if ref is None or run is ref:
                continue
            d = _first_divergence(run, ref)
            if d is not None:
                report.divergences.append(d)
    return report


def write_replay_report(path: str, reports: list[ReplayReport]) -> None:
    """Write replay reports as one JSON document."""
    doc = {
        "passed": all(r.passed for r in reports),
        "reports": [r.to_dict() for r in reports],
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
