"""Deterministic fault injection for the parallel machinery.

The engine, the tree scheduler and the shared-memory transport all promise
graceful degradation: a crashed start falls back to another backend, a dead
subtree task is recomputed inline, a failed shm export falls back to pickle
transport, and the segment is unlinked on every exit path.  Those promises
are only worth anything if the failure paths actually run — this module
makes them run *on demand and deterministically* so the test suite (and CI)
can assert each one.

Fault plans
-----------
A plan is a comma-separated list of ``site:action[@hit]`` specs::

    tree.task:crash            # first subtree task raises FaultInjected
    shm.attach:oserror         # first worker attach raises OSError
    tree.task:sleep0.5@2       # second subtree task sleeps half a second
    pool.submit:oserror@all    # every submit fails

*Sites* are the named ``trip()`` calls wired into the production code:

``engine.start``
    A multi-start engine worker body (``_run_start`` / ``_run_start_shm``).
``shm.create``
    :func:`repro.hypergraph.shm.hypergraph_to_shm`, before the segment is
    allocated (exercises the engine's pickle-transport fallback).
``shm.attach``
    :func:`repro.hypergraph.shm.hypergraph_from_shm`, before attaching
    (exercises the process→thread backend fallback; fire it via the
    environment so worker processes see it).
``shm.unlink``
    :meth:`repro.hypergraph.shm.SharedHypergraph.close`, before unlinking
    (``oserror`` only — close() absorbs it and counts
    ``shm.unlink_errors``).
``pool.submit``
    :meth:`repro.partitioner.pool.TreeScheduler.offer`, at the executor
    submit (exercises the broken-pool inline path).
``tree.task``
    :func:`repro.partitioner.recursive._solve_subtree`, the subtree task
    body (exercises the inline-recompute path; combine ``sleep`` with
    ``PartitionerConfig.tree_task_timeout`` to exercise the timeout path).
``worker.heartbeat``
    The heartbeat loop of a supervised engine worker
    (:mod:`repro.partitioner.resilience`), before each beat is written.
    ``crash`` silently kills the heartbeat thread, so with a small
    ``PartitionerConfig.heartbeat_timeout`` the supervisor presumes the
    worker hung, kills it, respawns and re-queues its seed (exercises the
    kill/respawn/re-queue path; fire it via the environment so worker
    processes see it).
``checkpoint.write``
    :meth:`repro.partitioner.resilience.CheckpointStore` just before the
    atomic ``os.replace`` — a failed checkpoint write must never fail the
    partitioning run that produced it (absorbed and counted as
    ``checkpoint.write_errors``).
``serve.accept``
    :meth:`repro.serve.server.PartitionServer._serve_connection`, as a
    new connection is accepted — a failed accept closes that connection
    gracefully (counted ``accept_errors``), never the daemon.
``serve.journal_write``
    :meth:`repro.serve.journal.RequestJournal` appends, before the line
    is written — a failed journal write must never fail the request it
    records (absorbed and counted ``journal_write_errors``; only
    replayability of that request is lost).
``serve.cache_read``
    :meth:`repro.serve.cache.PartitionCache.get` — a failed cache read
    is a miss (counted ``cache_read_errors``): the service recomputes.
``serve.cache_write``
    :meth:`repro.serve.cache.PartitionCache.put` — a failed cache write
    costs future hits, never the response (counted
    ``cache_write_errors``).
``serve.compute``
    The service's engine call on a worker thread — a crash here is an
    ``engine-error`` response to that request (and its deduplicated
    waiters), not a daemon death; ``sleep`` holds a request in compute,
    the window the crash-recovery tests SIGKILL the daemon in.
``serve.respond``
    :meth:`repro.serve.server.PartitionServer` response writes — a
    failed write closes the connection (counted ``respond_errors``);
    the result is already cached/journaled, so a client resubmission by
    fingerprint is answered without recomputing.

*Actions*: ``crash`` raises :class:`FaultInjected` (a ``RuntimeError``,
so the existing degradation handlers catch it), ``oserror`` raises
``OSError``, and ``sleep<seconds>`` delays without raising.

*Hits*: ``@N`` fires on the N-th invocation of ``trip(site)`` (1-based,
counted per process; default ``@1``); ``@all`` fires every time.

Activation
----------
Either scope a plan to a block in the current process::

    with inject("tree.task:crash") as plan:
        decompose(...)
    assert plan.count("tree.task") >= 1

or export ``REPRO_FAULTS=<spec>`` so forked worker processes inherit the
plan too (each process keeps its own hit counters).  ``trip()`` costs one
dict lookup when nothing is active, so the production sites are free in
normal runs.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

__all__ = [
    "ENV_VAR",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "inject",
    "trip",
    "active_plan",
    "reset",
]

#: environment variable carrying a fault plan into worker processes
ENV_VAR = "REPRO_FAULTS"

#: the trip() sites wired into the production code (documented above)
KNOWN_SITES = frozenset(
    {
        "engine.start",
        "shm.create",
        "shm.attach",
        "shm.unlink",
        "pool.submit",
        "tree.task",
        "worker.heartbeat",
        "checkpoint.write",
        "serve.accept",
        "serve.journal_write",
        "serve.cache_read",
        "serve.cache_write",
        "serve.compute",
        "serve.respond",
    }
)


class FaultInjected(RuntimeError):
    """Raised by the ``crash`` action (a RuntimeError on purpose: the
    degradation paths under test catch ``(OSError, RuntimeError, ...)``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``site:action[@hit]`` entry of a fault plan."""

    site: str
    #: "crash" | "oserror" | "sleep"
    action: str
    #: delay for the sleep action
    seconds: float = 0.0
    #: 1-based trip() invocation that fires; None means every invocation
    hit: int | None = 1

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        text = text.strip()
        if ":" not in text:
            raise ValueError(f"fault spec {text!r} is not 'site:action[@hit]'")
        site, action = text.split(":", 1)
        site = site.strip()
        hit: int | None = 1
        if "@" in action:
            action, hit_s = action.split("@", 1)
            hit = None if hit_s.strip() == "all" else int(hit_s)
            if hit is not None and hit < 1:
                raise ValueError(f"fault hit must be >= 1, got {hit}")
        action = action.strip()
        seconds = 0.0
        if action.startswith("sleep"):
            seconds = float(action[len("sleep"):])
            if seconds < 0:
                raise ValueError("sleep duration must be non-negative")
            action = "sleep"
        elif action not in ("crash", "oserror"):
            raise ValueError(f"unknown fault action {action!r}")
        if site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; known: {sorted(KNOWN_SITES)}"
            )
        return cls(site=site, action=action, seconds=seconds, hit=hit)

    def spec_string(self) -> str:
        """Round-trippable text form (suitable for ``REPRO_FAULTS``)."""
        action = f"sleep{self.seconds:g}" if self.action == "sleep" else self.action
        suffix = "@all" if self.hit is None else ("" if self.hit == 1 else f"@{self.hit}")
        return f"{self.site}:{action}{suffix}"


class FaultPlan:
    """A set of :class:`FaultSpec` entries plus per-site hit counters.

    Thread-safe: the tree scheduler trips sites from multiple threads.
    Counters are per plan instance — and therefore per process when the
    plan travels through the environment (every forked worker parses its
    own copy lazily).
    """

    def __init__(self, specs) -> None:
        self.specs: list[FaultSpec] = list(specs)
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        #: (site, action, hit_number) of every fault that actually fired
        self.fired: list[tuple[str, str, int]] = []

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a comma-separated ``site:action[@hit]`` plan string."""
        specs = [FaultSpec.parse(t) for t in text.split(",") if t.strip()]
        return cls(specs)

    def spec_string(self) -> str:
        """The plan as ``REPRO_FAULTS`` text."""
        return ",".join(s.spec_string() for s in self.specs)

    def count(self, site: str) -> int:
        """How many times ``trip(site)`` ran under this plan."""
        with self._lock:
            return self._counts.get(site, 0)

    def trip(self, site: str) -> None:
        """Record one invocation of *site* and fire any matching spec."""
        with self._lock:
            n = self._counts[site] = self._counts.get(site, 0) + 1
            due = [
                s
                for s in self.specs
                if s.site == site and (s.hit is None or s.hit == n)
            ]
            self.fired.extend((s.site, s.action, n) for s in due)
        for s in due:
            if s.action == "sleep":
                time.sleep(s.seconds)
            elif s.action == "oserror":
                raise OSError(f"injected fault at {site} (hit {n})")
            else:
                raise FaultInjected(f"injected fault at {site} (hit {n})")


# ----------------------------------------------------------------------
# activation: an in-process plan takes precedence over the environment
# ----------------------------------------------------------------------
_ACTIVE: FaultPlan | None = None
#: (raw env string, parsed plan) — parsed once so hit counters persist
#: across trip() calls; invalidated when the env value changes
_ENV_CACHE: tuple[str | None, FaultPlan | None] = (None, None)


def active_plan() -> FaultPlan | None:
    """The plan ``trip()`` consults, or None when fault injection is off."""
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    global _ENV_CACHE
    if _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, FaultPlan.parse(raw))
    return _ENV_CACHE[1]


def trip(site: str) -> None:
    """Production-side hook: fire any active fault spec for *site*.

    Near-zero cost when no plan is active (one global read plus one
    ``os.environ`` lookup).
    """
    plan = active_plan()
    if plan is not None:
        plan.trip(site)


def reset() -> None:
    """Deactivate any plan and drop the env-plan cache (test isolation)."""
    global _ACTIVE, _ENV_CACHE
    _ACTIVE = None
    _ENV_CACHE = (None, None)


class inject:
    """Context manager activating a plan in the current process only.

    Accepts a plan string or a :class:`FaultPlan`; yields the plan so the
    caller can assert on :attr:`FaultPlan.fired` / :meth:`FaultPlan.count`
    afterwards.  Worker *processes* do not see it — use ``REPRO_FAULTS``
    for those.
    """

    def __init__(self, plan: FaultPlan | str) -> None:
        self.plan = FaultPlan.parse(plan) if isinstance(plan, str) else plan

    def __enter__(self) -> FaultPlan:
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self.plan
        return self.plan

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._prev
